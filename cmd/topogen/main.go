// Command topogen generates and summarizes the evaluation topologies:
// node/edge counts, degree distribution, landmark statistics, and a
// sampled diameter estimate.
//
// Usage:
//
//	topogen -topo geometric -n 4096 -seed 1
//	topogen -topo routerlike -n 8192 -deg
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"disco/internal/eval"
	"disco/internal/graph"
	"disco/internal/static"
	"disco/internal/vicinity"
)

func main() {
	topo := flag.String("topo", "gnm", "topology: gnm | geometric | aslike | routerlike")
	n := flag.Int("n", 1024, "node count")
	seed := flag.Int64("seed", 1, "random seed")
	deg := flag.Bool("deg", false, "print the degree distribution")
	flag.Parse()

	g := eval.BuildTopo(eval.TopoKind(*topo), *n, *seed)
	fmt.Printf("topology %s: n=%d m=%d avg-degree=%.2f max-degree=%d connected=%v\n",
		*topo, g.N(), g.M(), g.AvgDegree(), g.MaxDegree(), g.Connected())

	// Sampled eccentricity -> diameter lower bound.
	s := graph.NewSSSP(g)
	rng := rand.New(rand.NewSource(*seed))
	maxEcc, maxHops := 0.0, 0
	for i := 0; i < 8; i++ {
		src := graph.NodeID(rng.Intn(g.N()))
		s.Run(src)
		for v := 0; v < g.N(); v++ {
			if d := s.Dist(graph.NodeID(v)); d > maxEcc && d < 1e17 {
				maxEcc = d
			}
			if p := s.PathTo(graph.NodeID(v)); len(p)-1 > maxHops {
				maxHops = len(p) - 1
			}
		}
	}
	fmt.Printf("sampled max distance=%.3f max hops=%d\n", maxEcc, maxHops)

	env := static.NewEnv(g, *seed)
	fmt.Printf("landmarks=%d (%.2f%% of nodes), vicinity size K=%d\n",
		len(env.Landmarks), 100*float64(len(env.Landmarks))/float64(g.N()),
		vicinity.DefaultK(g.N()))
	mean, p95, max := env.AddrSizeStats()
	fmt.Printf("address explicit-route sizes: mean=%.2fB p95=%.2fB max=%.3fB\n", mean, p95, max)

	if *deg {
		hist := map[int]int{}
		for v := 0; v < g.N(); v++ {
			hist[g.Degree(graph.NodeID(v))]++
		}
		ds := make([]int, 0, len(hist))
		for d := range hist {
			ds = append(ds, d)
		}
		sort.Ints(ds)
		fmt.Println("degree distribution:")
		for _, d := range ds {
			fmt.Printf("  %5d %6d\n", d, hist[d])
		}
	}
	os.Exit(0)
}
