package main

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestDocListsEveryExperiment keeps the package doc comment's
// "Experiments:" sentence in sync with the experiments table — the table
// is the single source of truth (it drives -list and dispatch), and the
// doc comment has silently rotted before when experiments were added.
func TestDocListsEveryExperiment(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?s)// Experiments: (.*?)\.\n`).FindSubmatch(src)
	if m == nil {
		t.Fatal("main.go doc comment has no \"// Experiments: ...\" sentence")
	}
	listed := strings.Fields(strings.ReplaceAll(string(m[1]), "//", ""))
	inDoc := make(map[string]bool, len(listed))
	for _, name := range listed {
		inDoc[name] = true
	}
	for _, e := range experiments {
		if !inDoc[e.name] {
			t.Errorf("experiment %q is registered but missing from the doc comment's Experiments list", e.name)
		}
		delete(inDoc, e.name)
	}
	for name := range inDoc {
		t.Errorf("doc comment lists %q, which is not in the experiments table", name)
	}
}

// TestExperimentTableSane guards the table the doc list is synced to:
// unique names, nonempty descriptions, runnable entries.
func TestExperimentTableSane(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range experiments {
		if e.name == "" || e.desc == "" || e.run == nil {
			t.Errorf("experiment %+v has an empty field", e.name)
		}
		if seen[e.name] {
			t.Errorf("duplicate experiment name %q", e.name)
		}
		seen[e.name] = true
	}
}
