package main

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestDocListsEveryExperiment keeps the package doc comment's
// "Experiments:" sentence in sync with the experiments table — the table
// is the single source of truth (it drives -list and dispatch), and the
// doc comment has silently rotted before when experiments were added.
func TestDocListsEveryExperiment(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?s)// Experiments: (.*?)\.\n`).FindSubmatch(src)
	if m == nil {
		t.Fatal("main.go doc comment has no \"// Experiments: ...\" sentence")
	}
	listed := strings.Fields(strings.ReplaceAll(string(m[1]), "//", ""))
	inDoc := make(map[string]bool, len(listed))
	for _, name := range listed {
		inDoc[name] = true
	}
	for _, e := range experiments {
		if !inDoc[e.name] {
			t.Errorf("experiment %q is registered but missing from the doc comment's Experiments list", e.name)
		}
		delete(inDoc, e.name)
	}
	for name := range inDoc {
		t.Errorf("doc comment lists %q, which is not in the experiments table", name)
	}
}

// TestValidateFlags pins the up-front CLI validation: garbage sizes and
// pair counts must be rejected at flag-parse time with a clear message
// instead of failing deep inside an experiment.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                             string
		n                                int
		seed                             int64
		pairs, events, queriers, workers int
		spill                            string
		compact                          bool
		ok                               bool
	}{
		{"defaults", 0, 1, 500, 0, 0, 0, "", false, true},
		{"explicit", 16384, 7, 100, 32, 8, 8, "", false, true},
		{"negative n", -1, 1, 500, 0, 0, 0, "", false, false},
		{"zero pairs", 0, 1, 0, 0, 0, 0, "", false, false},
		{"negative pairs", 0, 1, -5, 0, 0, 0, "", false, false},
		{"negative seed", 0, -1, 500, 0, 0, 0, "", false, false},
		{"negative events", 0, 1, 500, -1, 0, 0, "", false, false},
		{"negative queriers", 0, 1, 500, 0, -2, 0, "", false, false},
		{"negative workers", 0, 1, 500, 0, 0, -4, "", false, false},
		{"spill with compact", 0, 1, 500, 0, 0, 0, "/tmp/spill", true, true},
		{"spill without compact", 0, 1, 500, 0, 0, 0, "/tmp/spill", false, false},
	}
	for _, tc := range cases {
		err := validateFlags(tc.n, tc.seed, tc.pairs, tc.events, tc.queriers, tc.workers, tc.spill, tc.compact)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid flags accepted", tc.name)
		}
	}
}

// TestListColumnWidth guards the -list alignment: the name column is
// printed %-14s wide, so every experiment name must fit (churn-timeline,
// at 14 characters, used to overflow the old %-10s column).
func TestListColumnWidth(t *testing.T) {
	const listWidth = 14 // keep in sync with the Printf in main
	for _, e := range experiments {
		if len(e.name) > listWidth {
			t.Errorf("experiment name %q is %d chars; widen the -list column (%%-%ds)", e.name, len(e.name), listWidth)
		}
	}
}

// TestExperimentTableSane guards the table the doc list is synced to:
// unique names, nonempty descriptions, runnable entries.
func TestExperimentTableSane(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range experiments {
		if e.name == "" || e.desc == "" || e.run == nil {
			t.Errorf("experiment %+v has an empty field", e.name)
		}
		if seen[e.name] {
			t.Errorf("duplicate experiment name %q", e.name)
		}
		seen[e.name] = true
	}
}
