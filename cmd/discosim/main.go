// Command discosim runs the paper's experiments (§5) and prints the same
// rows and series the figures and tables report.
//
// Usage:
//
//	discosim -exp fig2                 # one experiment at default (scaled) sizes
//	discosim -exp all                  # everything
//	discosim -exp fig3 -n 16384        # override the size
//	discosim -exp fig2 -full           # paper-scale sizes (slow, much memory)
//	discosim -exp fig3 -workers 8      # bound the worker pool (default GOMAXPROCS)
//	discosim -exp fig2 -n 16384 -memprofile mem.pb.gz
//	                                   # report peak RSS and write a heap profile
//	                                   # (the -full feasibility workflow)
//	discosim -exp fig3 -full -compact  # paper scale on the compact snapshot
//	                                   # encoding (~2.5x less route-state memory;
//	                                   # exact on unit-weight topologies)
//	discosim -serve -n 1024 -queriers 8
//	                                   # serving mode: answer route queries
//	                                   # lock-free WHILE a fail/recover storm
//	                                   # repairs and republishes the snapshot
//	                                   # chain (-events bounds the storm)
//	discosim -serve -forward           # same, on the forwarding fast path:
//	                                   # compiled next-hop interval tables,
//	                                   # re-derived per epoch by blast-radius
//	                                   # invalidation
//	discosim -list                     # list experiments
//
// Experiment output is bit-identical at any -workers value: the harness
// derives all randomness before fanning out and merges results in task
// order (see internal/parallel). The serving mode's per-epoch event log is
// likewise deterministic; its qps/latency/staleness line is wall-clock.
//
// Experiments: fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 addrsize
// accuracy nerror fingers imbalance landmarks tradeoff churn failures
// churn-timeline serve-storm.
// (TestDocListsEveryExperiment keeps this list in sync with the
// experiments table below; -list prints the authoritative table.)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"disco/internal/eval"
	"disco/internal/parallel"
)

type experiment struct {
	name string
	desc string
	run  func(o opts) error
}

type opts struct {
	n        int // 0 = per-experiment default
	seed     int64
	pairs    int
	full     bool
	events   int  // serve/serve-storm: storm length (0 = default)
	queriers int  // serve/serve-storm: query goroutines (0 = GOMAXPROCS)
	forward  bool // serve/serve-storm: compiled next-hop tables instead of fork-and-walk
}

func pick(n, scaled, paper int, full bool) int {
	if n > 0 {
		return n
	}
	if full {
		return paper
	}
	return scaled
}

var experiments = []experiment{
	{"fig2", "state CDFs: Disco/NDDisco/S4 on geometric, AS-level, router-level", func(o opts) error {
		fmt.Print(eval.Fig2State(eval.TopoGeometric, pick(o.n, 4096, 16384, o.full), o.seed).Format())
		fmt.Print(eval.Fig2State(eval.TopoASLike, pick(o.n, 4096, 30610, o.full), o.seed).Format())
		fmt.Print(eval.Fig2State(eval.TopoRouterLike, pick(o.n, 8192, 192244, o.full), o.seed).Format())
		return nil
	}},
	{"fig3", "stretch CDFs (first/later): Disco vs S4 on the three topologies", func(o opts) error {
		fmt.Print(eval.Fig3Stretch(eval.TopoGeometric, pick(o.n, 4096, 16384, o.full), o.seed, o.pairs).Format())
		fmt.Print(eval.Fig3Stretch(eval.TopoASLike, pick(o.n, 4096, 30610, o.full), o.seed, o.pairs).Format())
		fmt.Print(eval.Fig3Stretch(eval.TopoRouterLike, pick(o.n, 8192, 192244, o.full), o.seed, o.pairs).Format())
		return nil
	}},
	{"fig4", "state/stretch/congestion incl. VRR on 1,024-node G(n,m)", func(o opts) error {
		fmt.Print(eval.Fig45(eval.TopoGnm, pick(o.n, 1024, 1024, o.full), o.seed, o.pairs).Format())
		return nil
	}},
	{"fig5", "state/stretch/congestion incl. VRR on 1,024-node geometric", func(o opts) error {
		fmt.Print(eval.Fig45(eval.TopoGeometric, pick(o.n, 1024, 1024, o.full), o.seed, o.pairs).Format())
		return nil
	}},
	{"fig6", "mean stretch for the six shortcutting heuristics x four topologies", func(o opts) error {
		n1 := pick(o.n, 2048, 30610, o.full)
		n2 := pick(o.n, 2048, 192244, o.full)
		n3 := pick(o.n, 2048, 16384, o.full)
		fmt.Print(eval.Fig6Shortcuts([]eval.Fig6Spec{
			{Label: "AS-Level", Kind: eval.TopoASLike, N: n1},
			{Label: "Router-level", Kind: eval.TopoRouterLike, N: n2},
			{Label: "Geometric", Kind: eval.TopoGeometric, N: n3},
			{Label: "GNM", Kind: eval.TopoGnm, N: n3},
		}, o.seed, o.pairs).Format())
		return nil
	}},
	{"fig7", "state in entries and KB (IPv4/IPv6 names) on router-level", func(o opts) error {
		fmt.Print(eval.Fig7StateBytes(pick(o.n, 8192, 192244, o.full), o.seed).Format())
		return nil
	}},
	{"fig8", "messages/node until convergence vs n (event-driven simulation)", func(o opts) error {
		sizes := []int{128, 256, 512, 1024}
		pvCap := 512
		if o.n > 0 {
			sizes = append(sizes, o.n)
		}
		fmt.Print(eval.Fig8Convergence(sizes, pvCap, o.seed).Format())
		return nil
	}},
	{"fig9", "scaling sweep: mean stretch and state vs n, geometric graphs", func(o opts) error {
		sizes := []int{1024, 2048, 4096, 8192}
		if o.full {
			sizes = []int{2048, 4096, 8192, 16384}
		}
		fmt.Print(eval.Fig9Scaling(sizes, o.seed, o.pairs).Format())
		return nil
	}},
	{"fig10", "congestion tail on the AS-level topology", func(o opts) error {
		fmt.Print(eval.Fig10ASCongestion(pick(o.n, 4096, 30610, o.full), o.seed).Format())
		return nil
	}},
	{"addrsize", "explicit-route address sizes on the router-level map (§4.2)", func(o opts) error {
		fmt.Print(eval.AddrSizes(pick(o.n, 16384, 192244, o.full), o.seed).Format())
		return nil
	}},
	{"accuracy", "static vs event-driven simulator agreement (§5)", func(o opts) error {
		fmt.Print(eval.StaticAccuracy(pick(o.n, 512, 1024, o.full), o.seed, o.pairs).Format())
		return nil
	}},
	{"nerror", "robustness to error in the estimate of n (§5)", func(o opts) error {
		n := pick(o.n, 1024, 1024, o.full)
		fmt.Print(eval.EstimateError(n, o.seed, 0.4, o.pairs).Format())
		fmt.Print(eval.EstimateError(n, o.seed, 0.6, o.pairs).Format())
		return nil
	}},
	{"fingers", "1 vs 3 overlay fingers: dissemination distance and messages (§5)", func(o opts) error {
		fmt.Print(eval.FingerExperiment(pick(o.n, 1024, 1024, o.full), o.seed).Format())
		return nil
	}},
	{"imbalance", "resolution-DB load imbalance: 1 vs 8 hash functions (§4.5)", func(o opts) error {
		fmt.Print(eval.ResolveImbalance(pick(o.n, 4096, 16384, o.full), o.seed).Format())
		return nil
	}},
	{"landmarks", "operator-chosen landmarks: random vs high/low degree (§6)", func(o opts) error {
		fmt.Print(eval.LandmarkStrategies(eval.TopoASLike, pick(o.n, 2048, 30610, o.full), o.seed, o.pairs).Format())
		return nil
	}},
	{"tradeoff", "TZ k-level state/stretch tradeoff sweep (§6 future work)", func(o opts) error {
		fmt.Print(eval.TradeoffSweep(eval.TopoGnm, pick(o.n, 2048, 16384, o.full), []int{1, 2, 3, 4}, o.seed, o.pairs).Format())
		return nil
	}},
	{"churn", "messages to re-converge after a link failure (§5 future work)", func(o opts) error {
		r, err := eval.ChurnCost(pick(o.n, 256, 1024, o.full), o.seed, 5)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	}},
	{"failures", "delivery and stretch after link/node/region failures on repaired snapshots", func(o opts) error {
		kind := eval.TopoGnm
		n := pick(o.n, 1024, 192244, o.full)
		if o.full && o.n == 0 {
			kind = eval.TopoRouterLike // paper-scale: the router-level map
		}
		fmt.Print(eval.FailureScenarios(kind, n, o.seed, o.pairs).Format())
		return nil
	}},
	{"churn-timeline", "continuous churn: snapshot timeline with recovery + modeled message cost", func(o opts) error {
		kind := eval.TopoGnm
		n := pick(o.n, 1024, 192244, o.full)
		if o.full && o.n == 0 {
			kind = eval.TopoRouterLike // paper-scale: the router-level map
		}
		r, err := eval.ChurnTimeline(kind, n, o.seed, o.pairs, 0)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	}},
	{"serve-storm", "serving mode: lock-free queries during a fail/recover storm (epochs + staleness)", func(o opts) error {
		kind := eval.TopoGnm
		n := pick(o.n, 1024, 192244, o.full)
		if o.full && o.n == 0 {
			kind = eval.TopoRouterLike // paper-scale: the router-level map
		}
		r, err := eval.ServeStorm(kind, n, o.seed, o.pairs, o.events, o.queriers, o.forward)
		if err != nil {
			return err
		}
		fmt.Print(r.Format())
		return nil
	}},
}

// peakRSSBytes returns the process's peak resident set size (VmHWM from
// /proc/self/status) in bytes, or 0 when unavailable (non-Linux).
func peakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line) // "VmHWM:  123456 kB"
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// reportMemory prints the peak-RSS / heap summary and writes the heap
// profile the -full feasibility analysis needs: paper-scale runs are
// memory-bound, so their footprint is measured, not guessed.
func reportMemory(profilePath string) {
	runtime.GC() // settle the heap so the profile reflects live state
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const mb = 1024 * 1024
	line := fmt.Sprintf("memory: heap-live %.1f MB, total-alloc %.1f MB, sys %.1f MB",
		float64(ms.HeapAlloc)/mb, float64(ms.TotalAlloc)/mb, float64(ms.Sys)/mb)
	if rss := peakRSSBytes(); rss > 0 {
		line = fmt.Sprintf("memory: peak RSS %.1f MB, %s", float64(rss)/mb, line[len("memory: "):])
	}
	fmt.Println(line)
	f, err := os.Create(profilePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		return
	}
	fmt.Printf("memory: heap profile written to %s (go tool pprof -sample_index=inuse_space)\n", profilePath)
}

// validateFlags rejects flag combinations that would otherwise fail deep
// inside an experiment with an unhelpful message: sizes and pair counts
// feed directly into topology generation and sampling loops. Returns the
// first problem found; main reports it and exits 2 (usage error).
func validateFlags(n int, seed int64, pairs, events, queriers, workers int, spill string, compact bool) error {
	if spill != "" && !compact {
		return fmt.Errorf("-spill requires -compact (only the compact shard store has a file encoding)")
	}
	if n < 0 {
		return fmt.Errorf("-n must be >= 0 (0 = experiment default), got %d", n)
	}
	if pairs <= 0 {
		return fmt.Errorf("-pairs must be >= 1, got %d", pairs)
	}
	if seed < 0 {
		return fmt.Errorf("-seed must be >= 0 (seeds derive per-task RNG streams), got %d", seed)
	}
	if events < 0 {
		return fmt.Errorf("-events must be >= 0 (0 = default storm length), got %d", events)
	}
	if queriers < 0 {
		return fmt.Errorf("-queriers must be >= 0 (0 = GOMAXPROCS), got %d", queriers)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", workers)
	}
	return nil
}

func main() {
	exp := flag.String("exp", "", "experiment to run (see -list), or 'all'")
	n := flag.Int("n", 0, "override network size (0 = experiment default)")
	seed := flag.Int64("seed", 1, "random seed")
	pairs := flag.Int("pairs", 500, "sampled source-destination pairs")
	full := flag.Bool("full", false, "use paper-scale sizes (up to 192,244 nodes; slow)")
	compact := flag.Bool("compact", false, "build route-state snapshots in the compact encoding (delta-coded members, float32 distances; ~2.5x less memory — the -full enabler). Exact on unit-weight topologies; geometric distances quantize to float32")
	workers := flag.Int("workers", 0, "worker pool size for parallel sweeps (0 = GOMAXPROCS); results are identical at any value")
	memprofile := flag.String("memprofile", "", "write a heap profile here after the run and report peak RSS (the -full feasibility workflow)")
	spill := flag.String("spill", "", "spill compact snapshot base storage to files under this directory, served through read-only mappings (cold shards leave the heap; requires -compact)")
	serveMode := flag.Bool("serve", false, "serving mode: answer route queries from a concurrent closed-loop load while a fail/recover storm repairs and republishes the snapshot chain (shorthand for -exp serve-storm; combine with -n, -events, -queriers)")
	events := flag.Int("events", 0, "serving mode: storm length in fail/recover events (0 = 16)")
	queriers := flag.Int("queriers", 0, "serving mode: concurrent query goroutines (0 = GOMAXPROCS)")
	forward := flag.Bool("forward", false, "serving mode: answer queries on compiled next-hop interval tables (the forwarding fast path, repair-aware invalidation) instead of protocol fork-and-walk")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()
	if err := validateFlags(*n, *seed, *pairs, *events, *queriers, *workers, *spill, *compact); err != nil {
		fmt.Fprintf(os.Stderr, "discosim: %v\n", err)
		os.Exit(2)
	}
	parallel.SetWorkers(*workers)
	eval.SetSnapshotCompact(*compact)
	if *spill != "" {
		if err := os.MkdirAll(*spill, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "discosim: -spill: %v\n", err)
			os.Exit(2)
		}
		eval.SetSnapshotSpill(*spill)
	}
	if *serveMode {
		if *exp != "" && *exp != "serve-storm" {
			fmt.Fprintf(os.Stderr, "discosim: -serve and -exp %s conflict (use one)\n", *exp)
			os.Exit(2)
		}
		*exp = "serve-storm"
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-14s %s\n", e.name, e.desc)
		}
		if *exp == "" {
			os.Exit(2)
		}
		return
	}
	runExperiment := func(e experiment, o opts) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
			}
		}()
		return e.run(o)
	}

	o := opts{n: *n, seed: *seed, pairs: *pairs, full: *full, events: *events, queriers: *queriers, forward: *forward}
	ran := false
	var failed []string
	for _, e := range experiments {
		if *exp == "all" || *exp == e.name {
			//disco:measured wall-clock experiment duration, printed as a progress aside, never in figure data
			start := time.Now()
			fmt.Printf("== %s: %s ==\n", e.name, e.desc)
			// A failing experiment must not abort the sweep: report it,
			// keep going, and only exit nonzero after the remaining
			// experiments and the memory report have run. Panics count as
			// failures too — one experiment blowing up at an extreme -n
			// must not cost the rest of an -exp all run.
			if err := runExperiment(e, o); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
				failed = append(failed, e.name)
			}
			//disco:measured wall-clock experiment duration, printed as a progress aside, never in figure data
			fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	if *memprofile != "" {
		reportMemory(*memprofile)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "discosim: %d experiment(s) failed: %s\n", len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}
