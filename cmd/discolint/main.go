// Discolint is the repo's contract-enforcement static analyzer suite:
// maporder, seedrand, snapmutate, handleref and mergeorder (see
// internal/lint for what each enforces and the //disco: waiver
// directives).
//
// Two ways to run it:
//
//	go build -o /tmp/discolint ./cmd/discolint
//	go vet -vettool=/tmp/discolint ./...     # the CI invocation
//
//	go run ./cmd/discolint ./...             # convenience: re-execs
//	                                         # go vet -vettool=self
//
// As a vettool the binary speaks cmd/go's unit-checker protocol
// (-V=full for the build-cache tool ID, then one vet.cfg per package);
// with package patterns it finds the go command on $PATH and drives
// itself through it, so both forms analyze test files and share the
// build cache.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"disco/internal/lint"
	"disco/internal/lint/vetdriver"
)

func main() {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "-V":
			// Tool-ID handshake: cmd/go requires "<name> version <v>"
			// with at least three fields and v != "devel".
			fmt.Printf("discolint version %s-1\n", strings.TrimPrefix(runtime.Version(), "go"))
			return
		case strings.HasSuffix(args[0], ".cfg"):
			n, err := vetdriver.Run(args[0], lint.Analyzers(), os.Stderr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "discolint: %v\n", err)
				os.Exit(1)
			}
			if n > 0 {
				os.Exit(2)
			}
			return
		case args[0] == "-flags":
			// cmd/go queries supported vet flags as JSON; discolint
			// takes none.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: discolint [packages]   (or as go vet -vettool=discolint)")
		os.Exit(2)
	}

	// Standalone mode: drive the go command with ourselves as vettool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "discolint: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "discolint: %v\n", err)
		os.Exit(1)
	}
}
