package disco_test

import (
	"fmt"

	"disco"
)

// Example builds a tiny network by hand and routes on flat names.
func Example() {
	b := disco.NewBuilder(6)
	b.SetName(0, "gateway")
	b.SetName(5, "printer")
	b.AddLink(0, 1, 1).AddLink(1, 2, 1).AddLink(2, 3, 1)
	b.AddLink(3, 4, 1).AddLink(4, 5, 1).AddLink(0, 5, 10) // slow direct wire
	nw, err := b.Build(disco.Config{Seed: 1})
	if err != nil {
		panic(err)
	}
	r, err := nw.RouteLater("gateway", "printer")
	if err != nil {
		panic(err)
	}
	fmt.Printf("hops=%d length=%.0f stretch=%.1f\n", len(r.Nodes)-1, r.Length, r.Stretch)
	// Output: hops=5 length=5 stretch=1.0
}

// ExampleNetwork_RouteFirst shows first-packet routing on a generated
// topology: only the destination's flat name is known to the source.
func ExampleNetwork_RouteFirst() {
	nw, err := disco.RandomGraph(200, 8, 42).Build(disco.Config{Seed: 42})
	if err != nil {
		panic(err)
	}
	r, err := nw.RouteFirst("node10", "node150")
	if err != nil {
		panic(err)
	}
	fmt.Printf("first-packet stretch within bound: %v\n", r.Stretch <= 7)
	// Output: first-packet stretch within bound: true
}
