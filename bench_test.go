package disco

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5). Each BenchmarkFig* runs the corresponding experiment
// from internal/eval and prints the same rows/series the paper reports
// (once, on the first iteration). Sizes default to laptop-scale — the
// shapes (who wins, by what factor, where crossovers fall) are the
// reproduction target; cmd/discosim -full runs paper-scale sizes.
//
// The experiments fan out over the internal/parallel worker pool; bound
// it with -workers (default GOMAXPROCS). Printed results are bit-identical
// at any worker count, so -workers only moves the ns/op number:
//
//	go test -bench Fig3 -workers 8
//
// The Benchmark{Dijkstra,Vicinity,...} group at the bottom are ordinary
// performance microbenchmarks of the substrate.

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"disco/internal/addr"
	"disco/internal/core"
	"disco/internal/eval"
	"disco/internal/forward"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/overlay"
	"disco/internal/parallel"
	"disco/internal/pathvector"
	"disco/internal/sim"
	"disco/internal/sloppy"
	"disco/internal/snapshot"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

const benchSeed = 1

var workersFlag = flag.Int("workers", 0, "worker pool size for the experiment harness (0 = GOMAXPROCS)")

func TestMain(m *testing.M) {
	flag.Parse()
	parallel.SetWorkers(*workersFlag)
	os.Exit(m.Run())
}

var printed = map[string]bool{}

// show prints an experiment's formatted output once per benchmark.
func show(b *testing.B, out string) {
	b.Helper()
	if !printed[b.Name()] {
		printed[b.Name()] = true
		fmt.Printf("\n--- %s ---\n%s", b.Name(), out)
	}
}

// --- Fig. 2: state CDFs ---------------------------------------------------

func BenchmarkFig2StateGeometric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig2State(eval.TopoGeometric, 2048, benchSeed).Format())
	}
}

func BenchmarkFig2StateASLike(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig2State(eval.TopoASLike, 2048, benchSeed).Format())
	}
}

func BenchmarkFig2StateRouterLike(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig2State(eval.TopoRouterLike, 4096, benchSeed).Format())
	}
}

// --- Fig. 3: stretch CDFs ---------------------------------------------------

func BenchmarkFig3StretchGeometric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig3Stretch(eval.TopoGeometric, 2048, benchSeed, 300).Format())
	}
}

func BenchmarkFig3StretchASLike(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig3Stretch(eval.TopoASLike, 2048, benchSeed, 300).Format())
	}
}

func BenchmarkFig3StretchRouterLike(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig3Stretch(eval.TopoRouterLike, 4096, benchSeed, 300).Format())
	}
}

// --- Figs. 4 & 5: 1,024-node three-panel comparisons incl. VRR -------------

func BenchmarkFig4Gnm1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig45(eval.TopoGnm, 1024, benchSeed, 300).Format())
	}
}

func BenchmarkFig5Geometric1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig45(eval.TopoGeometric, 1024, benchSeed, 300).Format())
	}
}

// --- Fig. 6: shortcutting heuristics table ----------------------------------

func BenchmarkFig6Shortcuts(b *testing.B) {
	specs := []eval.Fig6Spec{
		{Label: "AS-Level", Kind: eval.TopoASLike, N: 2048},
		{Label: "Router-level", Kind: eval.TopoRouterLike, N: 2048},
		{Label: "Geometric", Kind: eval.TopoGeometric, N: 2048},
		{Label: "GNM", Kind: eval.TopoGnm, N: 2048},
	}
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig6Shortcuts(specs, benchSeed, 200).Format())
	}
}

// --- Fig. 7: state in entries and bytes -------------------------------------

func BenchmarkFig7StateBytes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig7StateBytes(4096, benchSeed).Format())
	}
}

// --- Fig. 8: control messaging until convergence ----------------------------

func BenchmarkFig8Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig8Convergence([]int{128, 256, 512, 1024}, 512, benchSeed).Format())
	}
}

// --- Fig. 9: scaling sweep ---------------------------------------------------

func BenchmarkFig9Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig9Scaling([]int{1024, 2048, 4096}, benchSeed, 200).Format())
	}
}

// --- Fig. 10: AS-level congestion tail ---------------------------------------

func BenchmarkFig10ASCongestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.Fig10ASCongestion(2048, benchSeed).Format())
	}
}

// --- §4.2 address sizes ------------------------------------------------------

func BenchmarkAddrSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.AddrSizes(8192, benchSeed).Format())
	}
}

// --- §5 static-simulation accuracy -------------------------------------------

func BenchmarkStaticAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.StaticAccuracy(512, benchSeed, 300).Format())
	}
}

// --- §5 estimate-error robustness ---------------------------------------------

func BenchmarkEstimateError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := eval.EstimateError(1024, benchSeed, 0.4, 300).Format() +
			eval.EstimateError(1024, benchSeed, 0.6, 300).Format()
		show(b, out)
	}
}

// --- §5 finger-count experiment -------------------------------------------------

func BenchmarkFingerCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.FingerExperiment(1024, benchSeed).Format())
	}
}

// --- Ablations (design choices called out in DESIGN.md) -----------------------

// BenchmarkAblationResolveImbalance: single vs multiple hash functions in
// the landmark resolution DB (§4.5).
func BenchmarkAblationResolveImbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.ResolveImbalance(4096, benchSeed).Format())
	}
}

// BenchmarkAblationVicinitySize sweeps |V(v)| around the default
// sqrt(n log n): the state/stretch trade-off NDDisco's fixed-size
// vicinities pin down.
func BenchmarkAblationVicinitySize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 2048
		g := topology.Geometric(rand.New(rand.NewSource(benchSeed)), n, 8)
		env := static.NewEnv(g, benchSeed)
		k0 := vicinity.DefaultK(n)
		out := fmt.Sprintf("Vicinity-size ablation, geometric n=%d (default K=%d)\n", n, k0)
		out += fmt.Sprintf("  %8s %14s %14s\n", "K", "first stretch", "later stretch")
		ps := metrics.SamplePairs(rand.New(rand.NewSource(benchSeed+1)), n, 200)
		for _, k := range []int{k0 / 4, k0 / 2, k0, 2 * k0} {
			nd := core.NewNDDisco(env, core.WithK(k))
			f, l, c := 0.0, 0.0, 0
			for _, pr := range ps {
				s, t := graph.NodeID(pr.Src), graph.NodeID(pr.Dst)
				short := nd.ShortestDist(s, t)
				if short == 0 {
					continue
				}
				f += g.PathLength(nd.FirstRoute(s, t, core.ShortcutNoPathKnowledge)) / short
				l += g.PathLength(nd.LaterRoute(s, t, core.ShortcutNoPathKnowledge)) / short
				c++
			}
			out += fmt.Sprintf("  %8d %14.3f %14.3f\n", k, f/float64(c), l/float64(c))
		}
		show(b, out)
	}
}

// BenchmarkAblationLandmarkStrategy: §6 operator-chosen landmarks (random
// vs high-degree vs adversarial low-degree) on the AS-like topology.
func BenchmarkAblationLandmarkStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.LandmarkStrategies(eval.TopoASLike, 2048, benchSeed, 200).Format())
	}
}

// BenchmarkAblationGroupMemberSelection: longest-prefix vs
// closest-with-long-enough-prefix w selection (§4.4 parenthetical).
func BenchmarkAblationGroupMemberSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 2048
		g := topology.GnmAvgDeg(rand.New(rand.NewSource(benchSeed)), n, 8)
		env := static.NewEnv(g, benchSeed)
		ps := metrics.SamplePairs(rand.New(rand.NewSource(benchSeed+1)), n, 300)
		out := fmt.Sprintf("Group-member selection ablation, G(n,m) n=%d\n", n)
		for _, mode := range []struct {
			name string
			opts []core.DiscoOption
		}{
			{"longest-prefix", []core.DiscoOption{core.WithSeed(benchSeed)}},
			{"closest-member", []core.DiscoOption{core.WithSeed(benchSeed), core.WithClosestMember()}},
		} {
			d := core.NewDisco(env, mode.opts...)
			sum, cnt := 0.0, 0
			for _, pr := range ps {
				s, t := graph.NodeID(pr.Src), graph.NodeID(pr.Dst)
				short := d.ND.ShortestDist(s, t)
				if short == 0 {
					continue
				}
				sum += g.PathLength(d.FirstRoute(s, t, core.ShortcutNoPathKnowledge)) / short
				cnt++
			}
			fb, _ := d.Fallbacks()
			out += fmt.Sprintf("  %-15s mean first-packet stretch %.4f (fallbacks %d)\n",
				mode.name, sum/float64(cnt), fb)
		}
		show(b, out)
	}
}

// BenchmarkAblationAddressing compares the paper's explicit-route
// addresses with the §4.2 fixed-width interval-label alternative.
func BenchmarkAblationAddressing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 4096
		g := topology.RouterLike(rand.New(rand.NewSource(benchSeed)), n)
		env := static.NewEnv(g, benchSeed)
		parent := make([]graph.NodeID, n)
		for v := 0; v < n; v++ {
			path := env.LandmarkPath(graph.NodeID(v))
			if len(path) >= 2 {
				parent[v] = path[len(path)-2]
			} else {
				parent[v] = graph.None
			}
		}
		it := addr.BuildIntervals(parent, env.LMOf)
		mean, p95, max := env.AddrSizeStats()
		show(b, fmt.Sprintf(
			"Addressing ablation, router-like n=%d, %d landmarks\n"+
				"  explicit routes: mean %.1f bits, p95 %.1f, max %.1f (variable)\n"+
				"  interval labels: %d bits fixed + per-node child-interval state\n",
			n, len(env.Landmarks), mean*8, p95*8, max*8, it.BitsPerLabel()))
	}
}

// BenchmarkAblationTradeoff: the §6 open question — other points of the
// state/stretch tradeoff space — via the TZ k-level family (k=2 is
// Disco's point).
func BenchmarkAblationTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.TradeoffSweep(eval.TopoGnm, 2048, []int{1, 2, 3, 4}, benchSeed, 200).Format())
	}
}

// BenchmarkAblationForgetfulRouting compares control-plane state with and
// without forgetful routing [24] (§4.2: Θ(δ·sqrt(n log n)) vs
// Θ(sqrt(n log n))).
func BenchmarkAblationForgetfulRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 256
		g := topology.GnmAvgDeg(rand.New(rand.NewSource(benchSeed)), n, 8)
		env := static.NewEnv(g, benchSeed)
		k := vicinity.DefaultK(n)
		run := func(forgetful bool) (float64, float64) {
			var eng sim.Engine
			p := pathvector.New(g, &eng, pathvector.Config{
				Mode: pathvector.ModeVicinity, K: k,
				IsLandmark: env.IsLM, Forgetful: forgetful,
			})
			p.Start()
			eng.Run(0)
			data, ctrl := 0, 0
			for v := 0; v < n; v++ {
				data += p.DataEntries(graph.NodeID(v))
				ctrl += p.ControlEntries(graph.NodeID(v))
			}
			return float64(data) / float64(n), float64(ctrl) / float64(n)
		}
		d1, c1 := run(false)
		d2, c2 := run(true)
		show(b, fmt.Sprintf(
			"Forgetful-routing ablation, G(n,m) n=%d K=%d\n"+
				"  standard : data %.1f entries/node, control %.1f entries/node\n"+
				"  forgetful: data %.1f entries/node, control %.1f entries/node\n",
			n, k, d1, c1, d2, c2))
	}
}

// BenchmarkAblationChurnCost: messages to re-converge after a single link
// failure vs initial convergence (§5 "future work" dynamics).
func BenchmarkAblationChurnCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := eval.ChurnCost(256, benchSeed, 3)
		if err != nil {
			b.Fatal(err)
		}
		show(b, r.Format())
	}
}

// BenchmarkFailureScenarios: the failure-family wall time is dominated by
// incremental snapshot repair plus per-pair routing over repaired state —
// the cost that blast-radius repair (vs full rebuilds per trial) keeps
// proportional to the failures, not to n.
func BenchmarkFailureScenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		show(b, eval.FailureScenarios(eval.TopoGnm, 512, benchSeed, 100).Format())
	}
}

// --- Substrate microbenchmarks -------------------------------------------------

func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	return topology.GnmAvgDeg(rand.New(rand.NewSource(benchSeed)), n, 8)
}

func BenchmarkDijkstraFull4096(b *testing.B) {
	g := benchGraph(b, 4096)
	s := graph.NewSSSP(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(graph.NodeID(i % 4096))
	}
}

func BenchmarkVicinityBuild4096(b *testing.B) {
	g := benchGraph(b, 4096)
	s := graph.NewSSSP(g)
	k := vicinity.DefaultK(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunK(graph.NodeID(i%4096), k)
	}
}

func BenchmarkRouteFirst(b *testing.B) {
	g := benchGraph(b, 2048)
	env := static.NewEnv(g, benchSeed)
	d := core.NewDisco(env)
	rng := rand.New(rand.NewSource(benchSeed))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := graph.NodeID(rng.Intn(2048))
		t := graph.NodeID(rng.Intn(2048))
		if s == t {
			continue
		}
		d.FirstRoute(s, t, core.ShortcutNoPathKnowledge)
	}
}

func BenchmarkRouteLater(b *testing.B) {
	g := benchGraph(b, 2048)
	env := static.NewEnv(g, benchSeed)
	d := core.NewDisco(env)
	rng := rand.New(rand.NewSource(benchSeed))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := graph.NodeID(rng.Intn(2048))
		t := graph.NodeID(rng.Intn(2048))
		if s == t {
			continue
		}
		d.LaterRoute(s, t, core.ShortcutNoPathKnowledge)
	}
}

// BenchmarkForwardThroughput is the root-harness routes/sec line: the two
// query planes — protocol fork walking the snapshot versus the compiled
// next-hop interval tables — over the same n=1024 snapshot, mirroring
// internal/forward's benchmark so the headline number regenerates from
// `go test -bench ForwardThroughput` at the repo root. The tables line
// must stay 0 allocs/op (the fast path's zero-allocation contract).
func BenchmarkForwardThroughput(b *testing.B) {
	const n = 1024
	g := benchGraph(b, n)
	env := static.NewEnv(g, benchSeed)
	base, err := snapshot.Build(g, vicinity.DefaultK(n), env.Landmarks)
	if err != nil {
		b.Fatalf("snapshot build: %v", err)
	}
	nd := core.NewDisco(env, core.WithSeed(benchSeed)).ND
	ps := metrics.SamplePairs(rand.New(rand.NewSource(benchSeed)), n, 4096)

	b.Run("fork-and-walk", func(b *testing.B) {
		r := nd.ForkRepaired(base)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr := ps[i%len(ps)]
			s, t := graph.NodeID(pr.Src), graph.NodeID(pr.Dst)
			if i%2 == 0 {
				r.RepairedFirstRoute(s, t)
			} else {
				r.RepairedLaterRoute(s, t)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "routes/s")
	})

	b.Run("tables", func(b *testing.B) {
		tbls := forward.Compile(base, env.Landmarks, env.LMOf)
		tbls.Precompile()
		r := tbls.NewRouter()
		buf := make([]graph.NodeID, 0, 256)
		for _, pr := range ps { // steady-state the scratch buffers
			buf, _ = r.AppendRoute(buf[:0], graph.NodeID(pr.Src), graph.NodeID(pr.Dst), true)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr := ps[i%len(ps)]
			buf, _ = r.AppendRoute(buf[:0], graph.NodeID(pr.Src), graph.NodeID(pr.Dst), i%2 == 1)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "routes/s")
	})
}

func BenchmarkOverlayDisseminate(b *testing.B) {
	env := static.NewEnv(benchGraph(b, 4096), benchSeed)
	view := sloppy.BuildView(env.Hashes, env.NEst)
	net := overlay.Build(env.Hashes, view, 1, rand.New(rand.NewSource(benchSeed)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Disseminate(graph.NodeID(i % 4096))
	}
}

func BenchmarkAddressEncode(b *testing.B) {
	g := benchGraph(b, 4096)
	env := static.NewEnv(g, benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := env.AddrOf(graph.NodeID(i % 4096))
		a.Encode(g)
	}
}
