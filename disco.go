// Package disco is a from-scratch implementation of Disco — Distributed
// Compact Routing — from "Scalable Routing on Flat Names" (Singla, Godfrey,
// Fall, Iannaccone, Ratnasamy; ACM CoNEXT 2010): the first dynamic
// distributed routing protocol that guarantees, on any topology,
//
//   - O~(sqrt(n)) routing-table entries per node,
//   - worst-case stretch 7 on a flow's first packet and 3 afterwards,
//   - routing on arbitrary flat (location-independent) names.
//
// The package exposes a small facade over the full implementation in
// internal/: build a network from links and flat names, then route packets
// by destination name and inspect state, addresses and stretch. The
// baselines the paper compares against (S4, VRR, shortest-path routing),
// the event-driven control plane, and the harness reproducing every figure
// and table of the paper's evaluation live in internal/ and are driven by
// cmd/discosim.
//
// Quick start:
//
//	b := disco.NewBuilder(4)
//	b.SetName(0, "alice")
//	b.SetName(1, "bob")
//	... b.AddLink(0, 1, 1.0) ...
//	nw, err := b.Build(disco.Config{})
//	route, err := nw.RouteFirst("alice", "bob")
package disco

import (
	"fmt"

	"disco/internal/core"
	"disco/internal/estimate"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/names"
	"disco/internal/static"
)

// Shortcut selects the route-shortening heuristic for a flow's first
// packet (§4.2 of the paper; Fig. 6 compares them).
type Shortcut = core.Shortcut

// Shortcut heuristics, from none to the most aggressive. NoPathKnowledge
// is the paper's default.
const (
	ShortcutNone            = core.ShortcutNone
	ShortcutToDestination   = core.ShortcutToDestination
	ShortcutShorterPath     = core.ShortcutShorterPath
	ShortcutNoPathKnowledge = core.ShortcutNoPathKnowledge
	ShortcutUpDownStream    = core.ShortcutUpDownStream
	ShortcutPathKnowledge   = core.ShortcutPathKnowledge
)

// Config tunes a Network. The zero value gives the paper's defaults.
type Config struct {
	// Seed drives landmark selection, overlay fingers and name hashing
	// side channels. Networks with equal inputs and seeds are identical.
	Seed int64
	// Fingers is the number of outgoing overlay fingers per node
	// (default 1; the paper also evaluates 3).
	Fingers int
	// VicinitySize overrides |V(v)| (default ceil(sqrt(n log2 n))).
	VicinitySize int
	// ResolveHashFns is the number of hash functions in the landmark
	// resolution database (default 1).
	ResolveHashFns int
	// EstimateError, if nonzero, perturbs each node's estimate of n by a
	// uniform factor in [1-e, 1+e] — the paper's robustness experiment.
	EstimateError float64
	// Shortcut is the default heuristic for Route* calls (default
	// NoPathKnowledge, as in the paper's evaluation).
	Shortcut Shortcut
}

// Builder assembles a network topology with flat node names.
type Builder struct {
	n        int
	names    []names.Name
	g        *graph.Graph
	haveName []bool
}

// NewBuilder starts a topology with n nodes (IDs 0..n-1) and default
// names "node<i>".
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, g: graph.New(n), names: make([]names.Name, n), haveName: make([]bool, n)}
	for i := range b.names {
		b.names[i] = names.Name(fmt.Sprintf("node%d", i))
	}
	return b
}

// SetName assigns a flat, location-independent name to node v. Names are
// arbitrary strings (DNS names, MAC addresses, self-certifying hashes —
// the protocol never interprets them).
func (b *Builder) SetName(v int, name string) *Builder {
	b.names[v] = names.Name(name)
	b.haveName[v] = true
	return b
}

// AddLink adds an undirected link between u and v with the given latency
// (or cost; must be positive).
func (b *Builder) AddLink(u, v int, latency float64) *Builder {
	b.g.AddEdge(graph.NodeID(u), graph.NodeID(v), latency)
	return b
}

// Build validates the topology and constructs the converged Disco network.
func (b *Builder) Build(cfg Config) (*Network, error) {
	if b.n == 0 {
		return nil, fmt.Errorf("disco: empty network")
	}
	b.g.Finalize()
	if !b.g.Connected() {
		return nil, fmt.Errorf("disco: network is not connected (the paper assumes a connected graph)")
	}
	seen := map[names.Name]int{}
	for i, nm := range b.names {
		if j, dup := seen[nm]; dup {
			return nil, fmt.Errorf("disco: duplicate name %q on nodes %d and %d", nm, j, i)
		}
		seen[nm] = i
	}
	return newNetwork(b.g, b.names, cfg)
}

// Network is a converged Disco network: route packets by flat name,
// inspect addresses and per-node state.
type Network struct {
	cfg    Config
	env    *static.Env
	d      *core.Disco
	byName map[names.Name]graph.NodeID

	stateOnce  bool
	stateCache []core.StateBreakdown
}

func newNetwork(g *graph.Graph, nodeNames []names.Name, cfg Config) (*Network, error) {
	if cfg.Fingers == 0 {
		cfg.Fingers = 1
	}
	if cfg.ResolveHashFns == 0 {
		cfg.ResolveHashFns = 1
	}
	if cfg.Shortcut == 0 {
		cfg.Shortcut = core.ShortcutNoPathKnowledge
	}
	envOpts := []static.Option{}
	if cfg.EstimateError > 0 {
		envOpts = append(envOpts,
			static.WithNEst(estimate.InjectError(newRand(cfg.Seed), g.N(), cfg.EstimateError)))
	}
	env := static.NewEnvWithNames(g, nodeNames, envOpts...)
	dOpts := []core.DiscoOption{
		core.WithSeed(cfg.Seed),
		core.WithFingers(cfg.Fingers),
		core.WithResolveVNodes(cfg.ResolveHashFns),
	}
	if cfg.VicinitySize > 0 {
		dOpts = append(dOpts, core.WithNDOptions(core.WithK(cfg.VicinitySize)))
	}
	d := core.NewDisco(env, dOpts...)
	nw := &Network{cfg: cfg, env: env, d: d, byName: make(map[names.Name]graph.NodeID, g.N())}
	for i, nm := range nodeNames {
		nw.byName[nm] = graph.NodeID(i)
	}
	return nw, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.env.N() }

// Landmarks returns the self-selected landmark node IDs.
func (nw *Network) Landmarks() []int {
	out := make([]int, len(nw.env.Landmarks))
	for i, lm := range nw.env.Landmarks {
		out[i] = int(lm)
	}
	return out
}

// Lookup resolves a flat name to its node ID.
func (nw *Network) Lookup(name string) (int, bool) {
	v, ok := nw.byName[names.Name(name)]
	return int(v), ok
}

// NameOf returns node v's flat name.
func (nw *Network) NameOf(v int) string { return string(nw.env.NameOf(graph.NodeID(v))) }

// Route is a materialized packet route.
type Route struct {
	Nodes   []int   // the nodes traversed, source first
	Length  float64 // total latency/cost
	Stretch float64 // Length divided by the shortest-path distance
}

func (nw *Network) route(srcName, dstName string, later bool) (Route, error) {
	s, ok := nw.byName[names.Name(srcName)]
	if !ok {
		return Route{}, fmt.Errorf("disco: unknown source name %q", srcName)
	}
	t, ok := nw.byName[names.Name(dstName)]
	if !ok {
		return Route{}, fmt.Errorf("disco: unknown destination name %q", dstName)
	}
	var p []graph.NodeID
	if later {
		p = nw.d.LaterRoute(s, t, nw.cfg.Shortcut)
	} else {
		p = nw.d.FirstRoute(s, t, nw.cfg.Shortcut)
	}
	length := nw.env.G.PathLength(p)
	short := nw.d.ND.ShortestDist(s, t)
	out := Route{Nodes: make([]int, len(p)), Length: length, Stretch: metrics.Stretch(length, short)}
	for i, v := range p {
		out.Nodes[i] = int(v)
	}
	return out, nil
}

// RouteFirst routes a flow's first packet from srcName to dstName, knowing
// only the destination's flat name. Worst-case stretch 7 after
// convergence (Theorem 1 of the paper).
func (nw *Network) RouteFirst(srcName, dstName string) (Route, error) {
	return nw.route(srcName, dstName, false)
}

// RouteLater routes packets after the first (the source has learned the
// destination's address; the handshake applies). Worst-case stretch 3.
func (nw *Network) RouteLater(srcName, dstName string) (Route, error) {
	return nw.route(srcName, dstName, true)
}

// AddressInfo describes a node's current (location-dependent, internal)
// address: its nearest landmark plus the compact explicit route.
type AddressInfo struct {
	Landmark  int
	Hops      int
	RouteBits int // encoded size of the explicit route in bits
}

// AddressOf returns the protocol-internal address of the named node.
func (nw *Network) AddressOf(name string) (AddressInfo, error) {
	v, ok := nw.byName[names.Name(name)]
	if !ok {
		return AddressInfo{}, fmt.Errorf("disco: unknown name %q", name)
	}
	a := nw.env.AddrOf(v)
	return AddressInfo{Landmark: int(a.Landmark), Hops: a.Hops(), RouteBits: a.Bits()}, nil
}

// StateInfo itemizes one node's routing-table entries.
type StateInfo struct {
	LandmarkRoutes int
	VicinityRoutes int
	LabelMappings  int
	Resolution     int
	GroupAddrs     int
	OverlayLinks   int
	Total          int
}

// stateVectors computes and caches the per-node breakdowns (the converged
// state never changes for a built Network).
func (nw *Network) stateVectors() []core.StateBreakdown {
	if !nw.stateOnce {
		_, _, _, db := nw.d.StateVectors()
		nw.stateCache = db
		nw.stateOnce = true
	}
	return nw.stateCache
}

// StateOf returns node v's routing state breakdown. The total is
// O~(sqrt(n)) on every topology — the protocol's scalability guarantee.
func (nw *Network) StateOf(v int) StateInfo {
	b := nw.stateVectors()[v]
	return StateInfo{
		LandmarkRoutes: b.LandmarkRoutes,
		VicinityRoutes: b.VicinityRoutes,
		LabelMappings:  b.LabelMappings,
		Resolution:     b.Resolution,
		GroupAddrs:     b.GroupAddrs,
		OverlayLinks:   b.OverlayLinks,
		Total:          b.Total(),
	}
}

// MaxState returns the maximum routing-table entry count over all nodes.
func (nw *Network) MaxState() int {
	max := 0
	for _, b := range nw.stateVectors() {
		if t := b.Total(); t > max {
			max = t
		}
	}
	return max
}

// Fallbacks reports how many first-packet routes used the landmark
// database fallback because no vicinity node held the destination's
// address (vanishingly rare with accurate estimates of n).
func (nw *Network) Fallbacks() int {
	fb, _ := nw.d.Fallbacks()
	return fb
}
