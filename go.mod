module disco

go 1.24
