// Mobility: the location-independence payoff of flat names (§2 of the
// paper). A laptop moves across the network: its attachment point — and
// therefore its protocol-internal address (landmark + explicit route) —
// changes completely, but its name does not, so every correspondent keeps
// reaching it with the same identifier and the stretch guarantees intact.
//
// Re-convergence after the move is modeled by rebuilding the converged
// network state, which is exactly what the distributed control plane
// (internal/pathvector + the dissemination overlay) computes dynamically.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"disco"
)

const n = 800

// buildWorld wires the fixed 799-node infrastructure (deterministic from
// the seed) plus the laptop as node n-1, attached at the given anchors.
// The infrastructure is identical across calls; only the laptop's links
// differ — a clean model of one mobile node re-homing.
func buildWorld(anchors []int) *disco.Network {
	big := disco.NewBuilder(n)
	big.SetName(n-1, "laptop")
	rng := rand.New(rand.NewSource(5))
	for _, e := range genGnmEdges(rng, n-1, 4*(n-1)) {
		big.AddLink(e[0], e[1], 1)
	}
	for _, a := range anchors {
		big.AddLink(n-1, a, 1)
	}
	nw, err := big.Build(disco.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	return nw
}

// genGnmEdges replays the G(n,m) generator: a random spanning tree plus
// uniform extra edges (matching internal/topology.Gnm).
func genGnmEdges(rng *rand.Rand, nn, m int) [][2]int {
	type key = [2]int
	seen := map[key]bool{}
	var edges [][2]int
	add := func(u, v int) bool {
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if u == v || seen[key{a, b}] {
			return false
		}
		seen[key{a, b}] = true
		edges = append(edges, [2]int{u, v})
		return true
	}
	perm := rng.Perm(nn)
	for i := 1; i < nn; i++ {
		add(perm[i], perm[rng.Intn(i)])
	}
	for len(edges) < m {
		add(rng.Intn(nn), rng.Intn(nn))
	}
	return edges
}

func main() {
	correspondent := "node77"

	fmt.Println("laptop attaches downtown (anchors 10, 11, 12)")
	home := buildWorld([]int{10, 11, 12})
	a1, _ := home.AddressOf("laptop")
	r1, _ := home.RouteFirst(correspondent, "laptop")
	fmt.Printf("  address: landmark %d, %d hops | first packet stretch %.3f\n",
		a1.Landmark, a1.Hops, r1.Stretch)

	fmt.Println("laptop moves across town (anchors 500, 501)")
	away := buildWorld([]int{500, 501})
	a2, _ := away.AddressOf("laptop")
	r2, _ := away.RouteFirst(correspondent, "laptop")
	fmt.Printf("  address: landmark %d, %d hops | first packet stretch %.3f\n",
		a2.Landmark, a2.Hops, r2.Stretch)

	fmt.Println()
	fmt.Println("the name \"laptop\" never changed; only the protocol-internal")
	fmt.Printf("address did (landmark %d -> %d). correspondents keep using the\n",
		a1.Landmark, a2.Landmark)
	fmt.Println("name; the sloppy group re-disseminates the new address; stretch")
	fmt.Printf("guarantees hold at both locations (%.3f and %.3f, bound 7).\n",
		r1.Stretch, r2.Stretch)

	later, _ := away.RouteLater(correspondent, "laptop")
	fmt.Printf("after handshake: stretch %.3f (bound 3)\n", later.Stretch)
}
