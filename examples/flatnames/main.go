// Flat names as security primitive: self-certifying identifiers (§2 of the
// paper — AIP [5], DONA [28], SFS [35]). A node's name is the hash of its
// public key, so reaching "the owner of this key" needs no PKI and no
// location registry: the name is the identity, and Disco routes on it with
// guaranteed stretch.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"disco"
)

func main() {
	const n = 600
	rng := rand.New(rand.NewSource(31))

	// Every service publishes a key; its network name is the key hash.
	type service struct {
		node int
		key  []byte
		name string
	}
	services := make([]service, 5)
	for i := range services {
		key := make([]byte, 32)
		rng.Read(key)
		services[i] = service{
			node: 100 + 37*i,
			key:  key,
			name: disco.SelfCertifyingName(key),
		}
	}

	b := disco.RandomGraph(n, 8, 31)
	for _, s := range services {
		b.SetName(s.node, s.name)
	}
	nw, err := b.Build(disco.Config{Seed: 31})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("self-certifying services:")
	client := "node3"
	for _, s := range services {
		r, err := nw.RouteFirst(client, s.name)
		if err != nil {
			log.Fatal(err)
		}
		// End-to-end: the responder proves ownership by presenting the
		// key; the client checks it against the name it routed on.
		authentic := disco.VerifyName(s.name, s.key)
		fmt.Printf("  %s…  %2d hops  stretch %.2f  key-verified=%v\n",
			s.name[:24], len(r.Nodes)-1, r.Stretch, authentic)
	}

	// An impostor cannot claim the name: verification is intrinsic.
	forged := make([]byte, 32)
	rng.Read(forged)
	fmt.Printf("\nimpostor presenting a different key verifies: %v\n",
		disco.VerifyName(services[0].name, forged))
}
