// Internet: the paper's motivating deployment (§1, §6) — a large
// Internet-like topology where hierarchy would force location-dependent
// addresses and renumbering. Disco routes on flat names with balanced
// O~(sqrt(n)) state everywhere, including at the hub "transit providers"
// whose centrality blows up cluster-based schemes, and a provider can pick
// its own well-provisioned landmark without breaking any guarantee.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"disco"
)

func main() {
	const n = 3000
	b := disco.InternetASLike(n, 2026)
	// Domains get DNS-style flat names.
	for i := 0; i < n; i++ {
		b.SetName(i, fmt.Sprintf("as%d.example.net", i))
	}
	nw, err := b.Build(disco.Config{Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("internet-like network: %d domains, %d landmarks\n\n", nw.N(), len(nw.Landmarks()))

	// State balance: compare the busiest node against the median and the
	// theoretical scale. On this power-law topology S4-style clusters
	// would concentrate state at the hubs; Disco's stays flat.
	states := make([]int, n)
	for v := 0; v < n; v++ {
		states[v] = nw.StateOf(v).Total
	}
	sort.Ints(states)
	fmt.Printf("state entries: median %d, p99 %d, max %d  (sqrt(n log n) = %.0f)\n",
		states[n/2], states[n*99/100], states[n-1],
		math.Sqrt(float64(n)*math.Log2(float64(n))))

	// Traffic sample: long-haul flows across the topology.
	rng := rand.New(rand.NewSource(7))
	var worstFirst, sumFirst, sumLater float64
	const flows = 400
	for i := 0; i < flows; i++ {
		s, t := rng.Intn(n), rng.Intn(n)
		if s == t {
			continue
		}
		first, err := nw.RouteFirst(nw.NameOf(s), nw.NameOf(t))
		if err != nil {
			log.Fatal(err)
		}
		later, _ := nw.RouteLater(nw.NameOf(s), nw.NameOf(t))
		sumFirst += first.Stretch
		sumLater += later.Stretch
		if first.Stretch > worstFirst {
			worstFirst = first.Stretch
		}
	}
	fmt.Printf("over %d flows: mean first-packet stretch %.3f (worst %.2f, bound 7), mean later %.3f (bound 3)\n",
		flows, sumFirst/flows, worstFirst, sumLater/flows)
	fmt.Printf("landmark-database fallbacks used: %d\n", nw.Fallbacks())
}
