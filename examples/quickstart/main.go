// Quickstart: build a 500-node network, route between two flat names, and
// inspect what the protocol actually stores — the three guarantees of the
// paper in one run: O~(sqrt(n)) state, stretch <= 7 (first packet) / <= 3
// (later packets), and routing on location-independent names.
package main

import (
	"fmt"
	"log"
	"math"

	"disco"
)

func main() {
	// A random network with average degree 8 (the paper's G(n,m)
	// evaluation topology). Two nodes get human names; the rest default
	// to "node<i>". Names are flat: nothing about "alice" encodes where
	// she is.
	b := disco.RandomGraph(500, 8, 7)
	b.SetName(17, "alice")
	b.SetName(481, "bob")

	nw, err := b.Build(disco.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d landmarks\n", nw.N(), len(nw.Landmarks()))

	// First packet: alice knows only the flat name "bob". The packet
	// finds a sloppy-group member in alice's vicinity that knows bob's
	// current address, then rides to bob's landmark and down.
	first, err := nw.RouteFirst("alice", "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first packet:  %d hops, length %.0f, stretch %.3f (guarantee: <= 7)\n",
		len(first.Nodes)-1, first.Length, first.Stretch)

	// Later packets: alice has learned bob's address, and if alice is in
	// bob's vicinity, bob has handed back the exact shortest path.
	later, err := nw.RouteLater("alice", "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("later packets: %d hops, length %.0f, stretch %.3f (guarantee: <= 3)\n",
		len(later.Nodes)-1, later.Length, later.Stretch)

	// Bob's address is internal to the protocol: his nearest landmark
	// plus a compact explicit route (a few bits per hop).
	a, _ := nw.AddressOf("bob")
	fmt.Printf("bob's address: landmark %d, %d hops, %d bits encoded\n",
		a.Landmark, a.Hops, a.RouteBits)

	// State: every node stores O~(sqrt(n)) entries regardless of the
	// topology.
	st := nw.StateOf(17)
	n := float64(nw.N())
	fmt.Printf("alice's state: %d entries (landmarks %d + vicinity %d + labels %d + group %d + overlay %d)\n",
		st.Total, st.LandmarkRoutes, st.VicinityRoutes, st.LabelMappings, st.GroupAddrs, st.OverlayLinks)
	fmt.Printf("max state across all nodes: %d entries (sqrt(n log n) = %.0f)\n",
		nw.MaxState(), math.Sqrt(n*math.Log2(n)))
}
