// Sensornet: the wireless-sensor-network scenario that motivated S4 [34],
// on a geometric random graph where link cost is physical distance (radio
// latency). Sensors are named by device IDs (flat names, MAC-style), a
// sink collects readings, and we measure what compact routing costs in
// stretch on a latency-weighted network — the setting of the paper's
// Fig. 5, where stretch is not masked by unit hop counts.
//
// The run also sweeps the vicinity size, the protocol's one state/stretch
// knob (DESIGN.md ablation): bigger vicinities cost linearly more state
// and buy shorter first-packet routes.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"disco"
)

func main() {
	const n = 1500
	base := rand.New(rand.NewSource(99))

	build := func(vicSize int) *disco.Network {
		b := disco.GeometricGraph(n, 8, 99)
		// MAC-style flat device names.
		for i := 0; i < n; i++ {
			b.SetName(i, fmt.Sprintf("02:ab:%02x:%02x:%02x:%02x",
				(i>>24)&0xff, (i>>16)&0xff, (i>>8)&0xff, i&0xff))
		}
		nw, err := b.Build(disco.Config{Seed: 99, VicinitySize: vicSize})
		if err != nil {
			log.Fatal(err)
		}
		return nw
	}

	sinkName := "02:ab:00:00:00:00" // node 0 acts as the data sink

	meanStretch := func(nw *disco.Network, later bool) float64 {
		rng := rand.New(rand.NewSource(base.Int63()))
		total, count := 0.0, 0
		for i := 0; i < 300; i++ {
			src := rng.Intn(n)
			if src == 0 {
				continue
			}
			var r disco.Route
			var err error
			if later {
				r, err = nw.RouteLater(nw.NameOf(src), sinkName)
			} else {
				r, err = nw.RouteFirst(nw.NameOf(src), sinkName)
			}
			if err != nil {
				log.Fatal(err)
			}
			total += r.Stretch
			count++
		}
		return total / float64(count)
	}

	fmt.Printf("sensornet: %d sensors reporting to sink %s\n\n", n, sinkName)
	defaultK := int(math.Ceil(math.Sqrt(float64(n) * math.Log2(float64(n)))))
	fmt.Printf("%10s %12s %14s %14s\n", "vicinity", "max state", "first stretch", "later stretch")
	for _, k := range []int{defaultK / 2, defaultK, 2 * defaultK} {
		nw := build(k)
		fmt.Printf("%10d %12d %14.3f %14.3f\n",
			k, nw.MaxState(), meanStretch(nw, false), meanStretch(nw, true))
	}
	fmt.Printf("\n(default vicinity sqrt(n log n) = %d; halving it trades stretch for state)\n", defaultK)
}
