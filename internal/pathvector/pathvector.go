// Package pathvector implements the event-driven distributed control plane
// of §4.2: "Nodes learn shortest paths to landmarks and vicinities via a
// single, standard path vector routing protocol. When learning paths, a
// route announcement is accepted into v's routing table if and only if the
// route's destination is a landmark or one of the Θ(sqrt(n log n)) closest
// nodes currently advertised to v. The entire routing table is then
// exported to v's neighbors."
//
// The same engine also runs the two baselines' control planes: plain path
// vector (accept everything — the Fig. 8 "Path-vector" curve) and S4's
// cluster-scoped flooding (accept a destination while the offered distance
// is below the destination's own landmark distance).
//
// Convergence is quiescence of the event queue (triggered updates only).
// Messages are counted per destination announcement or withdrawal sent to
// one neighbor, coalesced per processing instant — the granularity behind
// the paper's "mean messages per node until convergence" (Fig. 8).
package pathvector

import (
	"fmt"
	"sort"

	"disco/internal/graph"
	"disco/internal/sim"
	"disco/internal/vicinity"
)

// Mode selects the acceptance rule.
type Mode int

const (
	// ModeFull accepts every destination: classic path vector, Ω(n) state.
	ModeFull Mode = iota
	// ModeVicinity accepts landmarks plus the K closest currently
	// advertised destinations (NDDisco/Disco, §4.2).
	ModeVicinity
	// ModeLandmarksOnly accepts only landmark destinations (S4/NDDisco
	// phase 1: build the landmark forest).
	ModeLandmarksOnly
	// ModeCluster accepts a destination d while the offered distance is
	// strictly below d's own landmark distance (S4's clusters; requires
	// LMDist, i.e. a completed ModeLandmarksOnly phase).
	ModeCluster
)

// Config parameterizes a protocol run.
type Config struct {
	Mode       Mode
	K          int       // vicinity size including self (ModeVicinity)
	IsLandmark []bool    // landmark flags by node (ModeVicinity/LandmarksOnly/Cluster)
	LMDist     []float64 // per-node landmark distance (ModeCluster)
	Forgetful  bool      // forgetful routing [24]: keep only best candidates
}

type route struct {
	dist float64
	path []graph.NodeID // from the holding node to the destination
}

type node struct {
	id            graph.NodeID
	cand          map[graph.NodeID]map[graph.NodeID]route // dst -> via -> candidate
	best          map[graph.NodeID]route
	vic           map[graph.NodeID]bool // destinations occupying vicinity slots
	dirty         map[graph.NodeID]bool
	sendScheduled bool
}

// Protocol is one protocol instance over a graph.
type Protocol struct {
	g     *graph.Graph
	eng   *sim.Engine
	cfg   Config
	nodes []*node
	dead  map[uint64]bool // failed links (see dynamics.go)

	// Messages counts announcements + withdrawals, per destination per
	// neighbor (the Fig. 8 unit).
	Messages int64
}

// New creates a protocol instance bound to an engine. Call Start then
// eng.Run.
func New(g *graph.Graph, eng *sim.Engine, cfg Config) *Protocol {
	if cfg.Mode == ModeVicinity && cfg.K < 1 {
		panic("pathvector: ModeVicinity requires K >= 1")
	}
	if cfg.Mode == ModeCluster && cfg.LMDist == nil {
		panic("pathvector: ModeCluster requires LMDist")
	}
	p := &Protocol{g: g, eng: eng, cfg: cfg}
	p.nodes = make([]*node, g.N())
	for i := range p.nodes {
		p.nodes[i] = &node{
			id:    graph.NodeID(i),
			cand:  make(map[graph.NodeID]map[graph.NodeID]route),
			best:  make(map[graph.NodeID]route),
			vic:   make(map[graph.NodeID]bool),
			dirty: make(map[graph.NodeID]bool),
		}
	}
	return p
}

// Clone returns a deep copy of a quiesced protocol instance bound to a
// fresh engine: the routing tables (candidates, best routes, vicinity
// membership) are copied so the clone can diverge, while the immutable
// path slices inside routes are shared — announcements always build fresh
// paths, so shared slices are never written through. Cloning a converged
// instance replaces re-running initial convergence per churn trial with an
// O(state) copy; Clone may be called concurrently from multiple workers
// (it only reads p). Cloning an instance that still has scheduled sends
// is an error — they would be lost in the engine swap — returned rather
// than panicked, matching the snapshot layer's Build convention.
func (p *Protocol) Clone(eng *sim.Engine) (*Protocol, error) {
	c := &Protocol{g: p.g, eng: eng, cfg: p.cfg}
	c.nodes = make([]*node, len(p.nodes))
	for i, nd := range p.nodes {
		if nd.sendScheduled || len(nd.dirty) > 0 {
			return nil, fmt.Errorf("pathvector: Clone of a non-quiesced instance (node %d has pending sends)", nd.id)
		}
		cn := &node{
			id:    nd.id,
			cand:  make(map[graph.NodeID]map[graph.NodeID]route, len(nd.cand)),
			best:  make(map[graph.NodeID]route, len(nd.best)),
			vic:   make(map[graph.NodeID]bool, len(nd.vic)),
			dirty: make(map[graph.NodeID]bool),
		}
		for dst, m := range nd.cand {
			mm := make(map[graph.NodeID]route, len(m))
			for via, r := range m {
				mm[via] = r
			}
			cn.cand[dst] = mm
		}
		for dst, r := range nd.best {
			cn.best[dst] = r
		}
		for v := range nd.vic {
			cn.vic[v] = true
		}
		c.nodes[i] = cn
	}
	if p.dead != nil {
		c.dead = make(map[uint64]bool, len(p.dead))
		for k, v := range p.dead {
			c.dead[k] = v
		}
	}
	return c, nil
}

// Start seeds every node's route to itself and schedules the initial
// announcements.
func (p *Protocol) Start() {
	for _, nd := range p.nodes {
		nd.best[nd.id] = route{dist: 0, path: []graph.NodeID{nd.id}}
		nd.vic[nd.id] = true
		p.markDirty(nd, nd.id)
	}
}

func (p *Protocol) isLandmark(v graph.NodeID) bool {
	return p.cfg.IsLandmark != nil && p.cfg.IsLandmark[v]
}

// accepts decides whether nd may store destination dst at offered distance
// d, per the configured rule. It may evict a vicinity member to make room
// (returning the same decision a converged run would).
func (p *Protocol) accepts(nd *node, dst graph.NodeID, d float64) bool {
	if dst == nd.id {
		return false
	}
	if _, stored := nd.best[dst]; stored {
		return true
	}
	if _, hasCand := nd.cand[dst]; hasCand {
		return true
	}
	switch p.cfg.Mode {
	case ModeFull:
		return true
	case ModeLandmarksOnly:
		return p.isLandmark(dst)
	case ModeCluster:
		return p.isLandmark(dst) || d < p.cfg.LMDist[dst]
	case ModeVicinity:
		// Landmarks are always stored; they additionally occupy a
		// vicinity slot when among the K closest, exactly like the static
		// definition (V(v) is the K closest nodes of any kind).
		admitted := p.vicAdmit(nd, dst, d)
		return admitted || p.isLandmark(dst)
	}
	panic("pathvector: unknown mode")
}

// vicAdmit applies the "K closest currently advertised" rule, evicting the
// current worst member if the newcomer beats it.
func (p *Protocol) vicAdmit(nd *node, dst graph.NodeID, d float64) bool {
	if len(nd.vic) < p.cfg.K {
		nd.vic[dst] = true
		return true
	}
	worst, worstD := p.worstVic(nd)
	if worst == graph.None {
		return false
	}
	if d < worstD || (d == worstD && dst < worst) {
		p.evictVic(nd, worst)
		nd.vic[dst] = true
		return true
	}
	return false
}

func (p *Protocol) worstVic(nd *node) (graph.NodeID, float64) {
	worst := graph.None
	worstD := -1.0
	//disco:orderinvariant max-fold with a total-order tie-break on node ID
	for v := range nd.vic {
		d := nd.best[v].dist
		if _, ok := nd.best[v]; !ok {
			continue
		}
		if worst == graph.None || d > worstD || (d == worstD && v > worst) {
			worst, worstD = v, d
		}
	}
	return worst, worstD
}

// evictVic removes v from nd's vicinity; unless v is a landmark its routes
// are dropped entirely and a withdrawal is scheduled.
func (p *Protocol) evictVic(nd *node, v graph.NodeID) {
	delete(nd.vic, v)
	if p.isLandmark(v) {
		return // still stored as a landmark route
	}
	delete(nd.cand, v)
	delete(nd.best, v)
	p.markDirty(nd, v)
}

// markDirty schedules (once per instant) the export of dst's state to all
// neighbors.
func (p *Protocol) markDirty(nd *node, dst graph.NodeID) {
	nd.dirty[dst] = true
	if nd.sendScheduled {
		return
	}
	nd.sendScheduled = true
	p.eng.Schedule(0, func() { p.flush(nd) })
}

// flush sends one coalesced update per dirty destination to every neighbor.
func (p *Protocol) flush(nd *node) {
	nd.sendScheduled = false
	if len(nd.dirty) == 0 {
		return
	}
	dsts := make([]graph.NodeID, 0, len(nd.dirty))
	for d := range nd.dirty {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	nd.dirty = make(map[graph.NodeID]bool)
	for _, e := range p.g.Neighbors(nd.id) {
		if !p.LinkAlive(nd.id, e.To) {
			continue
		}
		to := p.nodes[e.To]
		lat := e.Weight
		if lat <= 0 {
			lat = 1e-6 // zero-latency links still impose an ordering step
		}
		for _, dst := range dsts {
			p.Messages++
			if r, ok := nd.best[dst]; ok {
				pathCopy := append([]graph.NodeID(nil), r.path...)
				dst := dst
				p.eng.Schedule(lat, func() { p.receive(to, nd.id, dst, pathCopy) })
			} else {
				dst := dst
				p.eng.Schedule(lat, func() { p.withdraw(to, nd.id, dst) })
			}
		}
	}
}

// receive processes an announcement at node nd from neighbor via.
func (p *Protocol) receive(nd *node, via, dst graph.NodeID, path []graph.NodeID) {
	if dst == nd.id {
		return
	}
	// Loop prevention: the path already contains us.
	for _, x := range path {
		if x == nd.id {
			p.withdraw(nd, via, dst)
			return
		}
	}
	full := append([]graph.NodeID{nd.id}, path...)
	// Distances are recomputed from the full path, summed source-outward,
	// so converged values are bit-identical to the static simulator's
	// Dijkstra (same association order on the same path).
	offered := p.g.PathLength(full)
	if !p.accepts(nd, dst, offered) {
		return
	}
	m := nd.cand[dst]
	if m == nil {
		m = make(map[graph.NodeID]route)
		nd.cand[dst] = m
	}
	m[via] = route{dist: offered, path: full}
	if p.cfg.Forgetful {
		p.forget(nd, dst)
	}
	p.reselect(nd, dst)
}

// withdraw processes a withdrawal of dst received from via.
func (p *Protocol) withdraw(nd *node, via, dst graph.NodeID) {
	m, ok := nd.cand[dst]
	if !ok {
		return
	}
	if _, had := m[via]; !had {
		return
	}
	delete(m, via)
	if len(m) == 0 {
		delete(nd.cand, dst)
	}
	p.reselect(nd, dst)
}

// forget implements forgetful routing [24]: keep only the best candidate
// per destination, discarding alternates (trades convergence speed for
// control-plane state, §4.2).
func (p *Protocol) forget(nd *node, dst graph.NodeID) {
	m := nd.cand[dst]
	if len(m) <= 1 {
		return
	}
	bestVia, bestR, first := graph.None, route{}, true
	//disco:orderinvariant min-fold with a total-order tie-break on via
	for via, r := range m {
		if first || r.dist < bestR.dist || (r.dist == bestR.dist && via < bestVia) {
			bestVia, bestR, first = via, r, false
		}
	}
	nd.cand[dst] = map[graph.NodeID]route{bestVia: bestR}
}

// reselect recomputes nd's best route to dst and triggers announcements on
// change.
func (p *Protocol) reselect(nd *node, dst graph.NodeID) {
	m := nd.cand[dst]
	bestVia, bestR, found := graph.None, route{}, false
	//disco:orderinvariant min-fold with a total-order tie-break on via
	for via, r := range m {
		if !found || r.dist < bestR.dist || (r.dist == bestR.dist && via < bestVia) {
			bestVia, bestR, found = via, r, true
		}
	}
	old, had := nd.best[dst]
	if !found {
		if had {
			delete(nd.best, dst)
			if nd.vic[dst] && !p.isLandmark(dst) {
				delete(nd.vic, dst)
			}
			p.markDirty(nd, dst)
		}
		return
	}
	// A stored destination outside the vicinity (a far landmark) may
	// qualify for a slot — on route improvement, or when vicinity members
	// worsened after a failure and a refresh re-offered this one. This
	// must run even when the best route itself is unchanged.
	if p.cfg.Mode == ModeVicinity && !nd.vic[dst] {
		p.vicAdmit(nd, dst, bestR.dist)
	}
	if had && old.dist == bestR.dist && equalPath(old.path, bestR.path) {
		return
	}
	nd.best[dst] = bestR
	p.markDirty(nd, dst)
}

func equalPath(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BestDist returns v's converged distance to dst (+Inf if unknown).
func (p *Protocol) BestDist(v, dst graph.NodeID) float64 {
	if r, ok := p.nodes[v].best[dst]; ok {
		return r.dist
	}
	return graph.Inf
}

// BestPath returns v's converged path to dst or nil.
func (p *Protocol) BestPath(v, dst graph.NodeID) []graph.NodeID {
	if r, ok := p.nodes[v].best[dst]; ok {
		return append([]graph.NodeID(nil), r.path...)
	}
	return nil
}

// VicinitySet assembles v's converged vicinity as a vicinity.Set for
// comparison against the static simulator.
func (p *Protocol) VicinitySet(v graph.NodeID) *vicinity.Set {
	nd := p.nodes[v]
	entries := make([]vicinity.Entry, 0, len(nd.vic))
	//disco:orderinvariant FromEntries sorts the entries by node before building the set
	for dst := range nd.vic {
		r := nd.best[dst]
		parent := graph.None
		if len(r.path) >= 2 {
			// Parent of dst on the path from v: the node before dst.
			parent = r.path[len(r.path)-2]
		}
		entries = append(entries, vicinity.Entry{Node: dst, Parent: parent, Dist: r.dist})
	}
	return vicinity.FromEntries(v, entries)
}

// VicinityMembers returns the converged vicinity membership of v, sorted.
func (p *Protocol) VicinityMembers(v graph.NodeID) []graph.NodeID {
	nd := p.nodes[v]
	out := make([]graph.NodeID, 0, len(nd.vic))
	for dst := range nd.vic {
		out = append(out, dst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DataEntries returns v's data-plane entry count (stored destinations).
func (p *Protocol) DataEntries(v graph.NodeID) int { return len(p.nodes[v].best) }

// ControlEntries returns v's control-plane entry count: all per-neighbor
// candidates (Θ(δ·sqrt(n log n)) without forgetful routing, §4.2).
func (p *Protocol) ControlEntries(v graph.NodeID) int {
	t := 0
	for _, m := range p.nodes[v].cand {
		t += len(m)
	}
	return t
}

// LMDistances extracts every node's distance to its nearest landmark from a
// converged ModeLandmarksOnly (or ModeVicinity) run — the input to S4's
// cluster phase.
func (p *Protocol) LMDistances() []float64 {
	out := make([]float64, len(p.nodes))
	for v := range p.nodes {
		best := graph.Inf
		//disco:orderinvariant min-fold over distances; float min is commutative
		for dst, r := range p.nodes[v].best {
			if p.isLandmark(dst) && r.dist < best {
				best = r.dist
			}
		}
		if p.isLandmark(graph.NodeID(v)) {
			best = 0
		}
		out[v] = best
	}
	return out
}

// String describes the configuration.
func (c Config) String() string {
	switch c.Mode {
	case ModeFull:
		return "path-vector(full)"
	case ModeVicinity:
		return fmt.Sprintf("path-vector(vicinity K=%d)", c.K)
	case ModeLandmarksOnly:
		return "path-vector(landmarks)"
	case ModeCluster:
		return "path-vector(cluster)"
	}
	return "path-vector(?)"
}
