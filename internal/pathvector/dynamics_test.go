package pathvector

import (
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/sim"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

// withoutEdge clones g minus one edge (for reference computations).
func withoutEdge(g *graph.Graph, u, v graph.NodeID) *graph.Graph {
	g2 := graph.New(g.N())
	for a := 0; a < g.N(); a++ {
		for _, e := range g.Neighbors(graph.NodeID(a)) {
			if e.To <= graph.NodeID(a) {
				continue
			}
			if (graph.NodeID(a) == u && e.To == v) || (graph.NodeID(a) == v && e.To == u) {
				continue
			}
			g2.AddEdge(graph.NodeID(a), e.To, e.Weight)
		}
	}
	g2.Finalize()
	return g2
}

func TestFailLinkFullModeReconverges(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(1)), 60, 240)
	var eng sim.Engine
	p := New(g, &eng, Config{Mode: ModeFull})
	p.Start()
	if _, q := eng.Run(0); !q {
		t.Fatal("initial convergence failed")
	}
	// Fail an arbitrary live link and re-converge.
	var u, v graph.NodeID = 0, g.Neighbors(0)[0].To
	if err := p.FailLink(u, v); err != nil {
		t.Fatalf("FailLink: %v", err)
	}
	p.PruneStale()
	if _, q := eng.Run(0); !q {
		t.Fatal("re-convergence failed")
	}
	// Distances must now match Dijkstra on the graph without the edge.
	g2 := withoutEdge(g, u, v)
	if !g2.Connected() {
		t.Skip("failed link was a bridge")
	}
	s := graph.NewSSSP(g2)
	for a := 0; a < g.N(); a++ {
		s.Run(graph.NodeID(a))
		for b := 0; b < g.N(); b++ {
			if a == b {
				continue
			}
			want := s.Dist(graph.NodeID(b))
			got := p.BestDist(graph.NodeID(a), graph.NodeID(b))
			if got != want {
				t.Fatalf("after failure dist(%d,%d)=%v want %v", a, b, got, want)
			}
			// No route may cross the dead link.
			if !p.pathAlive(p.BestPath(graph.NodeID(a), graph.NodeID(b))) {
				t.Fatalf("route %d->%d crosses the failed link", a, b)
			}
		}
	}
}

func TestFailBridgePartitions(t *testing.T) {
	// Two cliques joined by one bridge; failing it must withdraw every
	// cross-side route.
	g := graph.New(8)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.AddEdge(graph.NodeID(a), graph.NodeID(b), 1)
			g.AddEdge(graph.NodeID(a+4), graph.NodeID(b+4), 1)
		}
	}
	g.AddEdge(0, 4, 1) // the bridge
	g.Finalize()

	var eng sim.Engine
	p := New(g, &eng, Config{Mode: ModeFull})
	p.Start()
	eng.Run(0)
	if p.BestDist(1, 5) >= graph.Inf {
		t.Fatal("cross-side route missing before failure")
	}
	if err := p.FailLink(0, 4); err != nil {
		t.Fatalf("FailLink: %v", err)
	}
	p.PruneStale()
	if _, q := eng.Run(5_000_000); !q {
		t.Fatal("did not quiesce after bridge failure (count-to-infinity?)")
	}
	for a := 0; a < 4; a++ {
		for b := 4; b < 8; b++ {
			if p.BestDist(graph.NodeID(a), graph.NodeID(b)) < graph.Inf {
				t.Fatalf("route %d->%d survived a partition", a, b)
			}
		}
	}
	// Same-side routes intact.
	if p.BestDist(1, 2) != 1 || p.BestDist(5, 6) != 1 {
		t.Fatal("intra-side routes damaged")
	}
}

func TestFailLinkVicinityWithRefresh(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(3)), 120, 480)
	env := static.NewEnv(g, 3)
	K := 16
	var eng sim.Engine
	p := New(g, &eng, Config{Mode: ModeVicinity, K: K, IsLandmark: env.IsLM})
	p.Start()
	if _, q := eng.Run(0); !q {
		t.Fatal("initial convergence failed")
	}
	var u, v graph.NodeID = 7, g.Neighbors(7)[0].To
	g2 := withoutEdge(g, u, v)
	if !g2.Connected() {
		t.Skip("failed link was a bridge")
	}
	if err := p.FailLink(u, v); err != nil {
		t.Fatalf("FailLink: %v", err)
	}
	p.PruneStale()
	eng.Run(0)
	rounds := p.RefreshUntilStable(10)
	t.Logf("refresh reached a fixpoint in %d rounds", rounds)
	// Converged vicinities must equal the static computation on g2.
	want := vicinity.Build(g2, K, nil)
	for a := 0; a < g.N(); a++ {
		got := p.VicinityMembers(graph.NodeID(a))
		ws := want.Of(graph.NodeID(a))
		if len(got) != ws.Size() {
			t.Fatalf("node %d vicinity size %d want %d after failure+refresh", a, len(got), ws.Size())
		}
		for _, m := range got {
			e, ok := ws.Find(m)
			if !ok {
				t.Fatalf("node %d: member %d not in post-failure vicinity", a, m)
			}
			if m != graph.NodeID(a) && p.BestDist(graph.NodeID(a), m) != e.Dist {
				t.Fatalf("node %d member %d dist mismatch", a, m)
			}
		}
	}
}

func TestFailLinkMessagesCounted(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(5)), 80, 320)
	var eng sim.Engine
	p := New(g, &eng, Config{Mode: ModeFull})
	p.Start()
	eng.Run(0)
	before := p.Messages
	if err := p.FailLink(2, g.Neighbors(2)[0].To); err != nil {
		t.Fatalf("FailLink: %v", err)
	}
	p.PruneStale()
	eng.Run(0)
	if p.Messages <= before {
		t.Fatal("re-convergence after failure should cost messages")
	}
}

func TestLinkAliveAndFailLinkErrors(t *testing.T) {
	g := topology.Line(4)
	var eng sim.Engine
	p := New(g, &eng, Config{Mode: ModeFull})
	if !p.LinkAlive(0, 1) {
		t.Fatal("link should start alive")
	}
	if err := p.FailLink(0, 1); err != nil {
		t.Fatalf("FailLink on a live link: %v", err)
	}
	if p.LinkAlive(0, 1) || p.LinkAlive(1, 0) {
		t.Fatal("failed link should be dead both ways")
	}
	if err := p.FailLink(0, 3); err == nil {
		t.Fatal("expected error failing a non-edge")
	}
	if err := p.FailLink(0, 1); err == nil {
		t.Fatal("expected error failing an already-failed link")
	}
	if err := p.FailLink(2, 2); err == nil {
		t.Fatal("expected error failing a self-loop")
	}
}

func TestCloneNonQuiescedErrors(t *testing.T) {
	g := topology.Line(4)
	var eng sim.Engine
	p := New(g, &eng, Config{Mode: ModeFull})
	p.Start() // pending sends, never run to quiescence
	var eng2 sim.Engine
	if _, err := p.Clone(&eng2); err == nil {
		t.Fatal("expected error cloning a non-quiesced instance")
	}
	if _, q := eng.Run(0); !q {
		t.Fatal("convergence failed")
	}
	c, err := p.Clone(&eng2)
	if err != nil {
		t.Fatalf("Clone of a quiesced instance: %v", err)
	}
	if c.BestDist(0, 3) != p.BestDist(0, 3) {
		t.Fatal("clone diverges from original")
	}
}
