package pathvector

import (
	"fmt"
	"sort"

	"disco/internal/graph"
)

// Dynamics: the paper evaluates messaging "during initial convergence
// only, leaving continuous churn to future work" (§5). This file takes the
// first step past that: link failures with withdrawal-driven
// re-convergence, plus the periodic full-table Refresh that real routing
// protocols use and that the vicinity acceptance rule needs to recover
// destinations it dropped while they looked too far away (admission is
// monotone during initial convergence but not across failures).

// edgeKey canonically identifies an undirected node pair.
func edgeKey(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// FailLink fails the link between u and v: both endpoints immediately drop
// every candidate learned from the dead neighbor and re-announce; no
// further messages traverse the link. Stale routes elsewhere that cross
// the link are withdrawn transitively as the re-announcements propagate —
// standard path-vector dynamics, loop-free by the path check. Call between
// engine runs (or from a scheduled event), then Run the engine again to
// re-converge. Failing a nonexistent (or already-failed) link is a caller
// error, returned rather than panicked, matching the snapshot layer's
// Build/ApplyFailures convention.
func (p *Protocol) FailLink(u, v graph.NodeID) error {
	if u == v || int(u) < 0 || int(v) < 0 || int(u) >= p.g.N() || int(v) >= p.g.N() || p.g.PortOf(u, v) < 0 {
		return fmt.Errorf("pathvector: no link %d-%d to fail", u, v)
	}
	if !p.LinkAlive(u, v) {
		return fmt.Errorf("pathvector: link %d-%d already failed", u, v)
	}
	if p.dead == nil {
		p.dead = make(map[uint64]bool)
	}
	p.dead[edgeKey(u, v)] = true
	p.dropNeighbor(p.nodes[u], v)
	p.dropNeighbor(p.nodes[v], u)
	return nil
}

// LinkAlive reports whether the link between u and v is usable.
func (p *Protocol) LinkAlive(u, v graph.NodeID) bool {
	return p.dead == nil || !p.dead[edgeKey(u, v)]
}

// dropNeighbor removes every candidate nd learned via the dead neighbor
// and reselects the affected destinations. Destinations are processed in
// sorted order: reselection can admit or evict vicinity members, so map
// iteration order here would leak into the converged state and message
// counts.
func (p *Protocol) dropNeighbor(nd *node, via graph.NodeID) {
	dsts := make([]graph.NodeID, 0, len(nd.cand))
	for dst, m := range nd.cand {
		if _, ok := m[via]; ok {
			dsts = append(dsts, dst)
		}
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		m := nd.cand[dst]
		delete(m, via)
		if len(m) == 0 {
			delete(nd.cand, dst)
		}
		p.reselect(nd, dst)
	}
}

// Refresh makes every node re-announce its full routing table, modeling
// one round of the periodic refresh real protocols run. After failures
// this restores the vicinity invariant: dropped-but-now-qualifying
// destinations get re-offered and re-admitted, and members whose distance
// grew get re-evaluated against them.
func (p *Protocol) Refresh() {
	for _, nd := range p.nodes {
		//disco:orderinvariant markDirty only inserts into the dirty set; flush drains it in sorted order
		for dst := range nd.best {
			p.markDirty(nd, dst)
		}
	}
}

// RefreshUntilStable runs periodic refresh rounds (Refresh + engine run to
// quiescence) until a round leaves every routing table unchanged, and
// returns the number of rounds used. A single round can miss: an offer
// judged against a transiently stale table is rejected and, with purely
// triggered updates, never repeated — which is exactly why deployed
// protocols refresh periodically. It panics if maxRounds rounds do not
// reach a fixpoint (the vicinity rule converges in a handful).
func (p *Protocol) RefreshUntilStable(maxRounds int) int {
	prev := p.tableFingerprint()
	for r := 1; r <= maxRounds; r++ {
		p.Refresh()
		if _, q := p.eng.Run(0); !q {
			panic("pathvector: refresh round did not quiesce")
		}
		cur := p.tableFingerprint()
		if cur == prev {
			return r
		}
		prev = cur
	}
	panic(fmt.Sprintf("pathvector: no fixpoint after %d refresh rounds", maxRounds))
}

// tableFingerprint hashes all best tables. Each (node, dst, dist) entry is
// hashed independently and the results are summed, so the fingerprint is
// independent of map iteration order.
func (p *Protocol) tableFingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var total uint64
	for v, nd := range p.nodes {
		for dst, r := range nd.best {
			h := uint64(offset)
			for _, x := range [3]uint64{uint64(v), uint64(dst), uint64(int64(r.dist * (1 << 20)))} {
				for i := 0; i < 8; i++ {
					h ^= (x >> (8 * uint(i))) & 0xff
					h *= prime
				}
			}
			total += h
		}
	}
	return total
}

// PruneStale drops, at every node, any best route whose path crosses a
// dead link, forcing reselection from surviving candidates. Real nodes
// notice this lazily (data-plane failure or withdrawal); calling it after
// FailLink models immediate detection and keeps re-convergence
// deterministic in tests.
func (p *Protocol) PruneStale() {
	for _, nd := range p.nodes {
		// Sorted destination order: reselection has vicinity side effects,
		// so map iteration order would make re-convergence nondeterministic.
		stale := make([]graph.NodeID, 0)
		//disco:orderinvariant pathAlive reads only link state; the stale set is sorted before reselection
		for dst, r := range nd.best {
			if !p.pathAlive(r.path) {
				stale = append(stale, dst)
			}
		}
		sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
		for _, dst := range stale {
			// Drop every candidate with a dead path, then reselect.
			m := nd.cand[dst]
			//disco:orderinvariant pathAlive is a pure predicate of the candidate; each delete removes its own key
			for via, c := range m {
				if !p.pathAlive(c.path) {
					delete(m, via)
				}
			}
			if len(m) == 0 {
				delete(nd.cand, dst)
			}
			p.reselect(nd, dst)
		}
	}
}

func (p *Protocol) pathAlive(path []graph.NodeID) bool {
	for i := 1; i < len(path); i++ {
		if !p.LinkAlive(path[i-1], path[i]) {
			return false
		}
	}
	return true
}
