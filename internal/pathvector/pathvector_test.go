package pathvector

import (
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/sim"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

func runProtocol(t *testing.T, g *graph.Graph, cfg Config) *Protocol {
	t.Helper()
	var eng sim.Engine
	p := New(g, &eng, cfg)
	p.Start()
	_, quiesced := eng.Run(200_000_000)
	if !quiesced {
		t.Fatal("protocol did not converge")
	}
	return p
}

func TestFullModeConvergesToShortestPaths(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(1)), 60, 240)
	p := runProtocol(t, g, Config{Mode: ModeFull})
	s := graph.NewSSSP(g)
	for v := 0; v < g.N(); v++ {
		s.Run(graph.NodeID(v))
		for dst := 0; dst < g.N(); dst++ {
			if v == dst {
				continue
			}
			want := s.Dist(graph.NodeID(dst))
			got := p.BestDist(graph.NodeID(v), graph.NodeID(dst))
			if got != want {
				t.Fatalf("dist(%d,%d)=%v want %v", v, dst, got, want)
			}
			// Path must be valid and match the distance.
			path := p.BestPath(graph.NodeID(v), graph.NodeID(dst))
			if path[0] != graph.NodeID(v) || path[len(path)-1] != graph.NodeID(dst) {
				t.Fatalf("path endpoints wrong")
			}
			if g.PathLength(path) != want {
				t.Fatalf("path length mismatch")
			}
		}
	}
}

func TestFullModeWeightedGraph(t *testing.T) {
	g := topology.Geometric(rand.New(rand.NewSource(2)), 80, 8)
	p := runProtocol(t, g, Config{Mode: ModeFull})
	s := graph.NewSSSP(g)
	for v := 0; v < g.N(); v += 7 {
		s.Run(graph.NodeID(v))
		for dst := 0; dst < g.N(); dst++ {
			if v == dst {
				continue
			}
			if got, want := p.BestDist(graph.NodeID(v), graph.NodeID(dst)), s.Dist(graph.NodeID(dst)); got != want {
				t.Fatalf("dist(%d,%d)=%v want %v", v, dst, got, want)
			}
		}
	}
}

func TestVicinityModeMatchesStaticSimulator(t *testing.T) {
	// The §5 "accuracy of static simulation" cross-check, as an exact
	// equality on vicinity membership and distances.
	g := topology.Gnm(rand.New(rand.NewSource(3)), 150, 600)
	env := static.NewEnv(g, 3)
	isLM := env.IsLM
	K := 20
	p := runProtocol(t, g, Config{Mode: ModeVicinity, K: K, IsLandmark: isLM})
	want := vicinity.Build(g, K, nil)
	for v := 0; v < g.N(); v++ {
		got := p.VicinityMembers(graph.NodeID(v))
		wantSet := want.Of(graph.NodeID(v))
		if len(got) != wantSet.Size() {
			t.Fatalf("node %d vicinity size %d want %d (members %v)", v, len(got), wantSet.Size(), got)
		}
		for _, m := range got {
			e, ok := wantSet.Find(m)
			if !ok {
				t.Fatalf("node %d: member %d not in static vicinity", v, m)
			}
			if d := p.BestDist(graph.NodeID(v), m); m != graph.NodeID(v) && d != e.Dist {
				t.Fatalf("node %d member %d dist %v want %v", v, m, d, e.Dist)
			}
		}
	}
}

func TestVicinityModeWeighted(t *testing.T) {
	g := topology.Geometric(rand.New(rand.NewSource(4)), 120, 8)
	env := static.NewEnv(g, 4)
	K := 15
	p := runProtocol(t, g, Config{Mode: ModeVicinity, K: K, IsLandmark: env.IsLM})
	want := vicinity.Build(g, K, nil)
	for v := 0; v < g.N(); v++ {
		got := p.VicinitySet(graph.NodeID(v))
		wantSet := want.Of(graph.NodeID(v))
		if got.Size() != wantSet.Size() {
			t.Fatalf("node %d vicinity size %d want %d", v, got.Size(), wantSet.Size())
		}
		for _, e := range wantSet.Entries {
			ge, ok := got.Find(e.Node)
			if !ok || ge.Dist != e.Dist {
				t.Fatalf("node %d: member %d missing or wrong dist", v, e.Node)
			}
		}
	}
}

func TestLandmarkDistances(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(5)), 200, 800)
	env := static.NewEnv(g, 5)
	p := runProtocol(t, g, Config{Mode: ModeLandmarksOnly, IsLandmark: env.IsLM})
	got := p.LMDistances()
	for v := 0; v < g.N(); v++ {
		if got[v] != env.LMDist[v] {
			t.Fatalf("LMDist[%d]=%v want %v", v, got[v], env.LMDist[v])
		}
		// Non-landmark destinations must not be stored.
		if p.DataEntries(graph.NodeID(v)) > len(env.Landmarks)+1 {
			t.Fatalf("node %d stores too many destinations in landmarks-only mode", v)
		}
	}
}

func TestClusterModeMatchesS4Definition(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(6)), 150, 600)
	env := static.NewEnv(g, 6)
	p := runProtocol(t, g, Config{Mode: ModeCluster, IsLandmark: env.IsLM, LMDist: env.LMDist})
	s := graph.NewSSSP(g)
	for v := 0; v < g.N(); v += 11 {
		s.Run(graph.NodeID(v))
		for dst := 0; dst < g.N(); dst++ {
			if v == dst {
				continue
			}
			inCluster := s.Dist(graph.NodeID(dst)) < env.LMDist[dst]
			stored := p.BestDist(graph.NodeID(v), graph.NodeID(dst)) < graph.Inf
			if env.IsLM[dst] {
				if !stored {
					t.Fatalf("landmark %d not stored at %d", dst, v)
				}
				continue
			}
			if inCluster != stored {
				t.Fatalf("cluster membership mismatch at (%d,%d): want %v", v, dst, inCluster)
			}
			if stored {
				if got := p.BestDist(graph.NodeID(v), graph.NodeID(dst)); got != s.Dist(graph.NodeID(dst)) {
					t.Fatalf("cluster dist mismatch at (%d,%d)", v, dst)
				}
			}
		}
	}
}

func TestForgetfulReducesControlState(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(7)), 150, 600)
	env := static.NewEnv(g, 7)
	cfg := Config{Mode: ModeVicinity, K: 20, IsLandmark: env.IsLM}
	p1 := runProtocol(t, g, cfg)
	cfg.Forgetful = true
	p2 := runProtocol(t, g, cfg)
	tot1, tot2 := 0, 0
	for v := 0; v < g.N(); v++ {
		tot1 += p1.ControlEntries(graph.NodeID(v))
		tot2 += p2.ControlEntries(graph.NodeID(v))
		// Data planes must agree.
		m1 := p1.VicinityMembers(graph.NodeID(v))
		m2 := p2.VicinityMembers(graph.NodeID(v))
		if len(m1) != len(m2) {
			t.Fatalf("forgetful changed vicinity size at %d", v)
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("forgetful changed vicinity at %d", v)
			}
		}
	}
	if tot2 >= tot1 {
		t.Errorf("forgetful routing should cut control state: %d vs %d", tot2, tot1)
	}
}

func TestMessagesCountedAndDeterministic(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(8)), 100, 400)
	env := static.NewEnv(g, 8)
	cfg := Config{Mode: ModeVicinity, K: 15, IsLandmark: env.IsLM}
	p1 := runProtocol(t, g, cfg)
	p2 := runProtocol(t, g, cfg)
	if p1.Messages == 0 {
		t.Fatal("no messages counted")
	}
	if p1.Messages != p2.Messages {
		t.Fatalf("message count must be deterministic: %d vs %d", p1.Messages, p2.Messages)
	}
}

func TestVicinityMessagesScaleBelowFull(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(9)), 200, 800)
	env := static.NewEnv(g, 9)
	full := runProtocol(t, g, Config{Mode: ModeFull})
	vic := runProtocol(t, g, Config{Mode: ModeVicinity, K: vicinity.DefaultK(200), IsLandmark: env.IsLM})
	if vic.Messages >= full.Messages {
		t.Errorf("vicinity PV should send fewer messages than full PV: %d vs %d",
			vic.Messages, full.Messages)
	}
	t.Logf("messages/node: full=%.0f vicinity=%.0f",
		float64(full.Messages)/200, float64(vic.Messages)/200)
}

func TestLineTopologyVicinity(t *testing.T) {
	// On a line with K=3, V(v) must be v and its two nearest (tie to
	// lower IDs at the ends).
	g := topology.Line(9)
	isLM := make([]bool, 9)
	isLM[4] = true
	p := runProtocol(t, g, Config{Mode: ModeVicinity, K: 3, IsLandmark: isLM})
	want := vicinity.Build(g, 3, nil)
	for v := 0; v < 9; v++ {
		got := p.VicinityMembers(graph.NodeID(v))
		ws := want.Of(graph.NodeID(v))
		if len(got) != ws.Size() {
			t.Fatalf("node %d vicinity %v want size %d", v, got, ws.Size())
		}
		for _, m := range got {
			if !ws.Contains(m) {
				t.Fatalf("node %d vicinity %v: %d unexpected", v, got, m)
			}
		}
	}
}
