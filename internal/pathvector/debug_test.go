package pathvector

import (
	"math/rand"
	"sort"
	"testing"

	"disco/internal/graph"
	"disco/internal/sim"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

// TestDebugVicinityFailure reproduces the failing scenario with full
// diagnostics (kept as a regression probe).
func TestDebugVicinityFailure(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(3)), 120, 480)
	env := static.NewEnv(g, 3)
	K := 16
	var eng sim.Engine
	p := New(g, &eng, Config{Mode: ModeVicinity, K: K, IsLandmark: env.IsLM})
	p.Start()
	eng.Run(0)
	var u, v graph.NodeID = 7, g.Neighbors(7)[0].To
	g2 := withoutEdge(g, u, v)
	if !g2.Connected() {
		t.Skip("bridge")
	}
	if err := p.FailLink(u, v); err != nil {
		t.Fatalf("FailLink: %v", err)
	}
	p.PruneStale()
	eng.Run(0)
	p.RefreshUntilStable(20)

	want := vicinity.Build(g2, K, nil)
	s := graph.NewSSSP(g2)
	bad := 0
	for a := 0; a < g.N() && bad < 3; a++ {
		got := p.VicinityMembers(graph.NodeID(a))
		ws := want.Of(graph.NodeID(a))
		same := len(got) == ws.Size()
		if same {
			for _, m := range got {
				if !ws.Contains(m) {
					same = false
				}
			}
		}
		if same {
			continue
		}
		bad++
		s.Run(graph.NodeID(a))
		var wantIDs []graph.NodeID
		for _, e := range ws.Entries {
			wantIDs = append(wantIDs, e.Node)
		}
		sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
		t.Logf("node %d PV vicinity:", a)
		for _, m := range got {
			t.Logf("  member %d pvDist=%v trueDist=%v inStatic=%v",
				m, p.BestDist(graph.NodeID(a), m), s.Dist(m), ws.Contains(m))
		}
		for _, m := range wantIDs {
			found := false
			for _, gm := range got {
				if gm == m {
					found = true
				}
			}
			if !found {
				t.Logf("  MISSING %d trueDist=%v pvBest=%v", m, s.Dist(m), p.BestDist(graph.NodeID(a), m))
			}
		}
	}
	if bad == 0 {
		t.Log("no mismatches")
	}
}
