package vicinity

import (
	"math"
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/topology"
)

func TestDefaultK(t *testing.T) {
	if DefaultK(1) != 1 || DefaultK(0) != 0 {
		t.Error("degenerate sizes")
	}
	// sqrt(1024*10) = 101.2 -> 102
	if k := DefaultK(1024); k != 102 {
		t.Errorf("DefaultK(1024)=%d want 102", k)
	}
	if DefaultK(4) > 4 {
		t.Error("K must be clamped to n")
	}
}

func TestBuildLineGraph(t *testing.T) {
	g := topology.Line(10)
	tab := Build(g, 3, nil)
	v := tab.Of(5)
	if v.Size() != 3 {
		t.Fatalf("size %d want 3", v.Size())
	}
	// Closest 3 to node 5 on a line: {5, 4, 6} (ties by ID: 4 before 6).
	for _, want := range []graph.NodeID{4, 5, 6} {
		if !v.Contains(want) {
			t.Errorf("vicinity of 5 should contain %d: %v", want, v.Members())
		}
	}
	if v.Dist(5) != 0 || v.Dist(4) != 1 {
		t.Errorf("distances wrong: %v %v", v.Dist(5), v.Dist(4))
	}
	if !math.IsInf(v.Dist(9), 1) {
		t.Error("non-member distance must be Inf")
	}
	if v.Radius() != 1 {
		t.Errorf("radius %v want 1", v.Radius())
	}
}

func TestPathReconstruction(t *testing.T) {
	g := topology.Grid(6, 6)
	k := 12
	tab := Build(g, k, nil)
	for src := 0; src < g.N(); src++ {
		set := tab.Of(graph.NodeID(src))
		for _, e := range set.Entries {
			p := set.PathTo(e.Node)
			if p[0] != graph.NodeID(src) || p[len(p)-1] != e.Node {
				t.Fatalf("path endpoints wrong: %v", p)
			}
			if got := g.PathLength(p); got != e.Dist {
				t.Fatalf("path length %v want %v", got, e.Dist)
			}
		}
	}
}

func TestFirstHop(t *testing.T) {
	g := topology.Line(6)
	tab := Build(g, 4, nil)
	v := tab.Of(0)
	if h := v.FirstHopTo(3); h != 1 {
		t.Errorf("first hop to 3 is %d want 1", h)
	}
	if h := v.FirstHopTo(0); h != graph.None {
		t.Errorf("first hop to self must be None, got %d", h)
	}
	if h := v.FirstHopTo(5); h != graph.None {
		t.Errorf("first hop to non-member must be None, got %d", h)
	}
}

func TestVicinityIsKClosest(t *testing.T) {
	// Brute-force check on random weighted graphs: V(v) must be exactly
	// the k nodes with smallest (dist, id).
	rng := rand.New(rand.NewSource(11))
	g := topology.Geometric(rng, 150, 8)
	k := 20
	tab := Build(g, k, nil)
	s := graph.NewSSSP(g)
	for src := 0; src < g.N(); src += 13 {
		s.Run(graph.NodeID(src))
		type dn struct {
			d float64
			v graph.NodeID
		}
		all := make([]dn, 0, g.N())
		for v := 0; v < g.N(); v++ {
			all = append(all, dn{d: s.Dist(graph.NodeID(v)), v: graph.NodeID(v)})
		}
		// selection sort of top k for clarity
		for i := 0; i < k; i++ {
			m := i
			for j := i + 1; j < len(all); j++ {
				if all[j].d < all[m].d || (all[j].d == all[m].d && all[j].v < all[m].v) {
					m = j
				}
			}
			all[i], all[m] = all[m], all[i]
		}
		set := tab.Of(graph.NodeID(src))
		for i := 0; i < k; i++ {
			if !set.Contains(all[i].v) {
				t.Fatalf("src %d: %d-closest node %d (d=%v) missing from vicinity",
					src, i, all[i].v, all[i].d)
			}
		}
	}
}

func TestAsymmetry(t *testing.T) {
	// s ∈ V(t) does not imply t ∈ V(s) (§4.2). Construct: hub 0 with many
	// close leaves; distant node far away. V(far) includes hub, but
	// V(hub) (small k) holds only leaves.
	g := graph.New(12)
	for i := 1; i <= 10; i++ {
		g.AddEdge(0, graph.NodeID(i), 1)
	}
	g.AddEdge(10, 11, 10) // node 11 hangs far off leaf 10
	g.Finalize()
	tab := Build(g, 5, nil)
	vFar := tab.Of(11)
	vHub := tab.Of(0)
	if !vFar.Contains(10) {
		t.Fatal("far node's vicinity should reach its neighbor")
	}
	if vHub.Contains(11) {
		t.Fatal("hub's small vicinity must not contain the far node")
	}
}

func TestBuildSampledSources(t *testing.T) {
	g := topology.Ring(30)
	tab := Build(g, 5, []graph.NodeID{3, 7})
	if tab.Of(3) == nil || tab.Of(7) == nil {
		t.Fatal("requested vicinities missing")
	}
	if tab.Of(0) != nil {
		t.Fatal("unrequested vicinity should be nil")
	}
	srcs := tab.Sources()
	if len(srcs) != 2 || srcs[0] != 3 || srcs[1] != 7 {
		t.Fatalf("sources %v", srcs)
	}
}

func TestBuildOneMatchesTable(t *testing.T) {
	g := topology.Grid(5, 5)
	tab := Build(g, 7, nil)
	one := BuildOne(g, 12, 7)
	want := tab.Of(12)
	if one.Size() != want.Size() {
		t.Fatalf("sizes differ: %d vs %d", one.Size(), want.Size())
	}
	for i := range one.Entries {
		if one.Entries[i] != want.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestCoveringProperty(t *testing.T) {
	// The lemma that makes path-vector converge to exact vicinities (and
	// To-Destination splices optimal): if w ∈ V(v), then w ∈ V(u) for u
	// the first hop on v's vicinity path to w — under the consistent
	// (dist, id) tie-breaking this implementation uses throughout.
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		if seed%2 == 0 {
			g = topology.Geometric(rng, 250, 8)
		} else {
			g = topology.Gnm(rng, 250, 1000)
		}
		tab := Build(g, 25, nil)
		for v := 0; v < g.N(); v++ {
			set := tab.Of(graph.NodeID(v))
			for _, e := range set.Entries {
				if e.Node == graph.NodeID(v) {
					continue
				}
				u := set.FirstHopTo(e.Node)
				if u == e.Node {
					continue // direct neighbor: trivially in its own vicinity
				}
				if !tab.Of(u).Contains(e.Node) {
					t.Fatalf("seed %d: covering violated: %d ∈ V(%d) but not in V(%d) (first hop)",
						seed, e.Node, v, u)
				}
			}
		}
	}
}

func TestSelfAlwaysMember(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(5)), 64, 256)
	tab := Build(g, 8, nil)
	for v := 0; v < g.N(); v++ {
		set := tab.Of(graph.NodeID(v))
		if !set.Contains(graph.NodeID(v)) {
			t.Fatalf("node %d missing from own vicinity", v)
		}
		if set.Dist(graph.NodeID(v)) != 0 {
			t.Fatalf("self distance nonzero")
		}
	}
}
