// Package vicinity computes vicinities (§4.2): V(v) is the set of the
// Θ(sqrt(n log n)) nodes closest to v, learned in the real protocol through
// path vector with the "accept only landmarks or the k closest advertised
// nodes" rule, and computed here directly with truncated Dijkstra for the
// static simulator. Unlike S4's clusters, vicinity size is fixed, which is
// what enforces Disco's per-node state bound on every topology.
package vicinity

import (
	"math"
	"sort"

	"disco/internal/graph"
)

// DefaultK returns the vicinity size used throughout the evaluation:
// ceil(sqrt(n*log2(n))), the paper's Θ(sqrt(n log n)) with constant 1.
func DefaultK(n int) int {
	if n <= 1 {
		return n
	}
	k := int(math.Ceil(math.Sqrt(float64(n) * math.Log2(float64(n)))))
	if k > n {
		k = n
	}
	return k
}

// Entry is one vicinity member as seen from the vicinity's owner: the
// member, its shortest-path distance from the owner, and its parent on the
// owner-rooted shortest-path tree (None for the owner itself). Parents are
// always vicinity members themselves, so paths can be reconstructed
// entirely within the Set.
type Entry struct {
	Node   graph.NodeID
	Parent graph.NodeID
	Dist   float64
}

// Set is the vicinity of one node. Entries are sorted by member node ID for
// binary search; the owner itself is included with distance 0.
type Set struct {
	Src     graph.NodeID
	Entries []Entry
	radius  float64
}

// Find returns the entry for w and whether w is in the vicinity.
func (s *Set) Find(w graph.NodeID) (Entry, bool) {
	i := sort.Search(len(s.Entries), func(i int) bool { return s.Entries[i].Node >= w })
	if i < len(s.Entries) && s.Entries[i].Node == w {
		return s.Entries[i], true
	}
	return Entry{}, false
}

// Contains reports whether w ∈ V(src).
func (s *Set) Contains(w graph.NodeID) bool {
	_, ok := s.Find(w)
	return ok
}

// Dist returns the shortest-path distance src⇝w if w is in the vicinity,
// else +Inf.
func (s *Set) Dist(w graph.NodeID) float64 {
	if e, ok := s.Find(w); ok {
		return e.Dist
	}
	return math.Inf(1)
}

// Radius returns the distance of the farthest vicinity member — the
// "radius" a node can announce to neighbors to suppress useless
// advertisements (§4.2 control-state discussion).
func (s *Set) Radius() float64 { return s.radius }

// Size returns the number of members including the owner.
func (s *Set) Size() int { return len(s.Entries) }

// PathTo returns the shortest path src⇝w (inclusive) reconstructed from
// parent pointers, or nil if w is not in the vicinity.
func (s *Set) PathTo(w graph.NodeID) []graph.NodeID {
	if _, ok := s.Find(w); !ok {
		return nil
	}
	var rev []graph.NodeID
	for u := w; u != graph.None; {
		rev = append(rev, u)
		e, ok := s.Find(u)
		if !ok {
			panic("vicinity: parent chain leaves the set")
		}
		u = e.Parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// FirstHopTo returns the first hop from src on the shortest path to w, or
// None if w == src or w is not in the vicinity.
func (s *Set) FirstHopTo(w graph.NodeID) graph.NodeID {
	p := s.PathTo(w)
	if len(p) < 2 {
		return graph.None
	}
	return p[1]
}

// Members returns the member IDs in ascending order (fresh slice).
func (s *Set) Members() []graph.NodeID {
	out := make([]graph.NodeID, len(s.Entries))
	for i, e := range s.Entries {
		out[i] = e.Node
	}
	return out
}

// Table holds vicinities for a subset of (or all) nodes.
type Table struct {
	K    int
	sets map[graph.NodeID]*Set
}

// Build computes the k-node vicinity of every node in sources (nil means
// all nodes) by truncated Dijkstra, fanning the per-source runs out over
// the parallel worker pool. Ties at the vicinity boundary are broken by
// node ID, matching the deterministic path-vector acceptance order, so the
// table is identical at any worker count.
func Build(g *graph.Graph, k int, sources []graph.NodeID) *Table {
	if sources == nil {
		sources = graph.AllNodes(g)
	}
	sets := make([]*Set, len(sources))
	graph.ForEachSource(g, sources, func(s *graph.SSSP, i int, src graph.NodeID) {
		sets[i] = buildOne(s, src, k)
	})
	t := &Table{K: k, sets: make(map[graph.NodeID]*Set, len(sources))}
	for i, src := range sources {
		t.sets[src] = sets[i]
	}
	return t
}

func buildOne(s *graph.SSSP, src graph.NodeID, k int) *Set {
	s.RunK(src, k)
	order := s.Order()
	entries := make([]Entry, len(order))
	for i, w := range order {
		entries[i] = Entry{Node: w, Parent: s.Parent(w), Dist: s.Dist(w)}
	}
	return FromEntries(src, entries)
}

// MakeSet assembles a Set view over entries that are already sorted by
// member node ID, without copying or re-sorting: the slice is referenced as
// is, so callers can hand out windows of one contiguous backing array (the
// snapshot layer's flat vicinity table). Only the radius is computed.
func MakeSet(src graph.NodeID, entries []Entry) Set {
	s := Set{Src: src, Entries: entries}
	for _, e := range entries {
		if e.Dist > s.radius {
			s.radius = e.Dist
		}
	}
	return s
}

// FromEntries assembles a Set from raw entries (e.g. collected by the
// event-driven path-vector protocol), sorting them and computing the
// radius. The entries slice is taken over by the Set.
func FromEntries(src graph.NodeID, entries []Entry) *Set {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Node < entries[j].Node })
	set := MakeSet(src, entries)
	return &set
}

// Of returns the vicinity of v, or nil if it was not built.
func (t *Table) Of(v graph.NodeID) *Set { return t.sets[v] }

// Sources returns the nodes whose vicinities were built, ascending.
func (t *Table) Sources() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(t.sets))
	for v := range t.sets {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BuildOne computes a single vicinity without retaining a table — used for
// on-demand computation on sampled nodes of very large topologies.
func BuildOne(g *graph.Graph, src graph.NodeID, k int) *Set {
	return buildOne(graph.NewSSSP(g), src, k)
}
