package core

import (
	"math"
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

const eps = 1e-9

// testEnv builds a Gnm environment where the w.h.p. preconditions of
// Theorem 1 are verified to hold (every node has a landmark in its
// vicinity).
func testEnv(t *testing.T, seed int64, n, m int) (*static.Env, *Disco) {
	t.Helper()
	g := topology.Gnm(rand.New(rand.NewSource(seed)), n, m)
	env := static.NewEnv(g, seed)
	d := NewDisco(env, WithSeed(seed))
	for v := 0; v < n; v++ {
		if !d.ND.Vicinity(graph.NodeID(v)).Contains(env.LMOf[v]) {
			t.Fatalf("precondition failed: node %d has no landmark in vicinity (topology too adversarial for the w.h.p. argument)", v)
		}
	}
	return env, d
}

func routeOK(t *testing.T, g *graph.Graph, route []graph.NodeID, s, dst graph.NodeID) float64 {
	t.Helper()
	if len(route) == 0 || route[0] != s || route[len(route)-1] != dst {
		t.Fatalf("route endpoints wrong: %v (want %d..%d)", route, s, dst)
	}
	return g.PathLength(route) // panics on non-adjacent steps
}

func TestNDDiscoStretchBounds(t *testing.T) {
	env, d := testEnv(t, 1, 400, 1600)
	nd := d.ND
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(2)), env.N(), 300)
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		short := nd.ShortestDist(s, dst)
		first := routeOK(t, env.G, nd.FirstRoute(s, dst, ShortcutNone), s, dst)
		if first > 5*short+eps {
			t.Fatalf("NDDisco first-packet stretch %v > 5 (pair %d->%d)", first/short, s, dst)
		}
		later := routeOK(t, env.G, nd.LaterRoute(s, dst, ShortcutNone), s, dst)
		if later > 3*short+eps {
			t.Fatalf("NDDisco later-packet stretch %v > 3 (pair %d->%d)", later/short, s, dst)
		}
	}
}

func TestDiscoStretchBound7(t *testing.T) {
	env, d := testEnv(t, 3, 400, 1600)
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(4)), env.N(), 300)
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		short := d.ND.ShortestDist(s, dst)
		fb0, _ := d.Fallbacks()
		first := routeOK(t, env.G, d.FirstRoute(s, dst, ShortcutNone), s, dst)
		fb1, _ := d.Fallbacks()
		if fb1 != fb0 {
			continue // fallback used: Theorem 1 does not apply
		}
		if first > 7*short+eps {
			t.Fatalf("Disco first-packet stretch %v > 7 (pair %d->%d)", first/short, s, dst)
		}
		later := routeOK(t, env.G, d.LaterRoute(s, dst, ShortcutNone), s, dst)
		if later > 3*short+eps {
			t.Fatalf("Disco later-packet stretch %v > 3", later/short)
		}
	}
}

func TestDiscoStretchBoundsWeightedGraph(t *testing.T) {
	// Same bounds on a latency-weighted geometric graph, where stretch is
	// not capped by hop-count ratios (§5.2).
	g := topology.Geometric(rand.New(rand.NewSource(5)), 600, 8)
	env := static.NewEnv(g, 5)
	d := NewDisco(env)
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(6)), env.N(), 300)
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		if !d.ND.Vicinity(s).Contains(env.LMOf[s]) {
			continue // precondition of the Useful Fact
		}
		short := d.ND.ShortestDist(s, dst)
		fb0, _ := d.Fallbacks()
		first := routeOK(t, env.G, d.FirstRoute(s, dst, ShortcutNone), s, dst)
		if fb1, _ := d.Fallbacks(); fb1 != fb0 {
			continue
		}
		if first > 7*short+eps {
			t.Fatalf("weighted first-packet stretch %v > 7", first/short)
		}
		later := routeOK(t, env.G, d.LaterRoute(s, dst, ShortcutNone), s, dst)
		if later > 3*short+eps {
			t.Fatalf("weighted later-packet stretch %v > 3", later/short)
		}
	}
}

func TestHandshakeExactPath(t *testing.T) {
	// If s ∈ V(t), the later route must be exactly shortest.
	env, d := testEnv(t, 7, 300, 1200)
	nd := d.ND
	count := 0
	for s := 0; s < env.N() && count < 50; s++ {
		for dst := 0; dst < env.N() && count < 50; dst++ {
			if s == dst {
				continue
			}
			sv, dv := graph.NodeID(s), graph.NodeID(dst)
			if !nd.Vicinity(dv).Contains(sv) || nd.Vicinity(sv).Contains(dv) || env.IsLM[dv] {
				continue // want the asymmetric handshake case only
			}
			count++
			later := routeOK(t, env.G, nd.LaterRoute(sv, dv, ShortcutNone), sv, dv)
			if later != nd.ShortestDist(sv, dv) {
				t.Fatalf("handshake route %v != shortest %v", later, nd.ShortestDist(sv, dv))
			}
		}
	}
	if count == 0 {
		t.Skip("no asymmetric vicinity pairs found")
	}
}

func TestDirectCases(t *testing.T) {
	env, d := testEnv(t, 9, 200, 800)
	nd := d.ND
	// Self.
	r := nd.FirstRoute(5, 5, ShortcutNoPathKnowledge)
	if len(r) != 1 || r[0] != 5 {
		t.Fatal("self route wrong")
	}
	// Landmark destination: stretch 1.
	lm := env.Landmarks[0]
	src := graph.NodeID(1)
	if src == lm {
		src = 2
	}
	first := routeOK(t, env.G, nd.FirstRoute(src, lm, ShortcutNone), src, lm)
	if first != nd.ShortestDist(src, lm) {
		t.Fatalf("route to landmark %v != shortest %v", first, nd.ShortestDist(src, lm))
	}
	// Vicinity destination: stretch 1.
	var vdst graph.NodeID = graph.None
	for _, e := range nd.Vicinity(src).Entries {
		if e.Node != src && !env.IsLM[e.Node] {
			vdst = e.Node
			break
		}
	}
	if vdst != graph.None {
		first = routeOK(t, env.G, nd.FirstRoute(src, vdst, ShortcutNone), src, vdst)
		if first != nd.ShortestDist(src, vdst) {
			t.Fatal("vicinity route not shortest")
		}
	}
}

func TestShortcutsNeverLengthen(t *testing.T) {
	env, d := testEnv(t, 11, 400, 1600)
	nd := d.ND
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(12)), env.N(), 150)
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		base := routeOK(t, env.G, nd.FirstRoute(s, dst, ShortcutNone), s, dst)
		toDest := routeOK(t, env.G, nd.FirstRoute(s, dst, ShortcutToDestination), s, dst)
		shorter := routeOK(t, env.G, nd.FirstRoute(s, dst, ShortcutShorterPath), s, dst)
		npk := routeOK(t, env.G, nd.FirstRoute(s, dst, ShortcutNoPathKnowledge), s, dst)
		upDown := routeOK(t, env.G, nd.FirstRoute(s, dst, ShortcutUpDownStream), s, dst)
		pk := routeOK(t, env.G, nd.FirstRoute(s, dst, ShortcutPathKnowledge), s, dst)
		if toDest > base+eps {
			t.Fatalf("To-Destination lengthened route: %v > %v", toDest, base)
		}
		if shorter > base+eps {
			t.Fatalf("Shorter{} lengthened route: %v > %v", shorter, base)
		}
		if npk > toDest+eps || npk > shorter+eps {
			t.Fatalf("NoPathKnowledge must dominate its components")
		}
		if upDown > base+eps {
			t.Fatalf("Up-Down Stream lengthened route")
		}
		if pk > upDown+eps {
			t.Fatalf("PathKnowledge must dominate Up-Down Stream")
		}
		short := nd.ShortestDist(s, dst)
		if pk < short-eps || npk < short-eps {
			t.Fatalf("route shorter than shortest path?!")
		}
	}
}

func TestWalkToDestinationOptimal(t *testing.T) {
	// After a To-Destination splice, the suffix must be exactly shortest
	// from the splice node.
	env, d := testEnv(t, 13, 300, 1200)
	nd := d.ND
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(14)), env.N(), 100)
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		route := nd.FirstRoute(s, dst, ShortcutToDestination)
		routeOK(t, env.G, route, s, dst)
		// Find the first node on the route whose vicinity contains dst;
		// from there the route must be shortest.
		for i, u := range route {
			if nd.Vicinity(u).Contains(dst) {
				suffix := route[i:]
				if env.G.PathLength(suffix) > nd.ShortestDist(u, dst)+eps {
					t.Fatalf("suffix after splice not shortest")
				}
				break
			}
		}
	}
}

func TestJoinPaths(t *testing.T) {
	p := joinPaths([]graph.NodeID{1, 2, 3}, []graph.NodeID{3, 4})
	want := []graph.NodeID{1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("join %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("join %v want %v", p, want)
		}
	}
	// Backtrack collapse: 1,2,3 + 3,2,5 -> 1,2,5
	p = joinPaths([]graph.NodeID{1, 2, 3}, []graph.NodeID{3, 2, 5})
	want = []graph.NodeID{1, 2, 5}
	if len(p) != len(want) {
		t.Fatalf("backtrack join %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("backtrack join %v want %v", p, want)
		}
	}
}

func TestJoinPathsPanicsOnGap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	joinPaths([]graph.NodeID{1, 2}, []graph.NodeID{3, 4})
}

func TestDiscoFindGroupMember(t *testing.T) {
	env, d := testEnv(t, 15, 500, 2000)
	rng := rand.New(rand.NewSource(16))
	misses := 0
	for trial := 0; trial < 200; trial++ {
		s := graph.NodeID(rng.Intn(env.N()))
		dst := graph.NodeID(rng.Intn(env.N()))
		if s == dst {
			continue
		}
		w, ok := d.FindGroupMember(s, dst)
		if w == graph.None {
			t.Fatal("no vicinity members at all")
		}
		if !ok {
			misses++
			continue
		}
		if !d.HasAddress(w, dst) {
			t.Fatal("FindGroupMember returned ok but no address")
		}
		if !d.ND.Vicinity(s).Contains(w) {
			t.Fatal("w must be in V(s)")
		}
	}
	// With exact estimates misses should be extremely rare.
	if misses > 4 {
		t.Errorf("too many group-member misses with exact estimates: %d/200", misses)
	}
}

func TestDiscoFallbackUnderError(t *testing.T) {
	// With ±60% estimate error, routing must still complete via the
	// landmark-database fallback (§4.4 "routing could operate correctly by
	// simply using name resolution on the landmark database").
	g := topology.Gnm(rand.New(rand.NewSource(17)), 400, 1600)
	est := make([]float64, 400)
	rng := rand.New(rand.NewSource(18))
	for i := range est {
		est[i] = 400 * (1 + (rng.Float64()*2-1)*0.6)
	}
	env := static.NewEnv(g, 17, static.WithNEst(est))
	d := NewDisco(env)
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(19)), 400, 200)
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		route := d.FirstRoute(s, dst, ShortcutNoPathKnowledge)
		routeOK(t, env.G, route, s, dst) // must still deliver
	}
}

func TestStateBoundDisco(t *testing.T) {
	env, d := testEnv(t, 21, 1024, 4096)
	ndE, dE, _, dBreak := d.StateVectors()
	bound := 14 * math.Sqrt(1024*math.Log2(1024)) // generous constant
	for v := 0; v < env.N(); v++ {
		if float64(dE[v]) > bound {
			t.Fatalf("Disco state at %d is %d > bound %.0f (breakdown %+v)",
				v, dE[v], bound, dBreak[v])
		}
		if ndE[v] > dE[v] {
			t.Fatalf("NDDisco state cannot exceed Disco state")
		}
	}
}

func TestStateBreakdownConsistency(t *testing.T) {
	env, d := testEnv(t, 23, 256, 1024)
	ndE, dE, ndB, dB := d.StateVectors()
	totalRes := 0
	for v := 0; v < env.N(); v++ {
		if ndB[v].Total() != ndE[v] || dB[v].Total() != dE[v] {
			t.Fatal("breakdown totals inconsistent")
		}
		if ndB[v].GroupAddrs != 0 || ndB[v].OverlayLinks != 0 {
			t.Fatal("NDDisco must not carry Disco-only state")
		}
		if ndB[v].LandmarkRoutes != len(env.Landmarks) {
			t.Fatal("landmark routes wrong")
		}
		if ndB[v].VicinityRoutes != d.K {
			t.Fatal("vicinity routes wrong")
		}
		if ndB[v].Resolution > 0 && !env.IsLM[v] {
			t.Fatal("non-landmark storing resolution entries")
		}
		totalRes += ndB[v].Resolution
	}
	if totalRes != env.N() {
		t.Fatalf("resolution entries total %d want n=%d", totalRes, env.N())
	}
}

func TestVicinitySizeOverride(t *testing.T) {
	env, _ := testEnv(t, 25, 200, 800)
	nd := NewNDDisco(env, WithK(17))
	if nd.Vicinity(3).Size() != 17 {
		t.Fatalf("K override ignored: %d", nd.Vicinity(3).Size())
	}
}

func TestVicinityDefaultK(t *testing.T) {
	env, _ := testEnv(t, 27, 300, 1200)
	nd := NewNDDisco(env)
	if nd.K != vicinity.DefaultK(300) {
		t.Fatalf("default K %d want %d", nd.K, vicinity.DefaultK(300))
	}
}

func TestClosestMemberSelection(t *testing.T) {
	// The §4.4 variant must (a) keep all guarantees and (b) never pick a
	// farther w than necessary among full-prefix members.
	g := topology.Gnm(rand.New(rand.NewSource(61)), 500, 2000)
	env := static.NewEnv(g, 61)
	dLongest := NewDisco(env, WithSeed(61))
	dClosest := NewDisco(env, WithSeed(61), WithClosestMember())
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(62)), 500, 200)
	sumL, sumC := 0.0, 0.0
	for _, p := range pairs {
		s, t2 := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		short := dLongest.ND.ShortestDist(s, t2)
		if short == 0 {
			continue
		}
		rl := routeOK(t, g, dLongest.FirstRoute(s, t2, ShortcutNone), s, t2)
		rc := routeOK(t, g, dClosest.FirstRoute(s, t2, ShortcutNone), s, t2)
		sumL += rl / short
		sumC += rc / short
		// Both selections must satisfy Theorem 1 when no fallback fired.
		fb, _ := dClosest.Fallbacks()
		if fb == 0 && rc > 7*short+eps {
			t.Fatalf("closest-member stretch %v > 7", rc/short)
		}
		// The chosen w under closest-mode is never farther than under
		// longest-mode when both hold the address and share the prefix
		// requirement.
		wl, okL := dLongest.FindGroupMember(s, t2)
		wc, okC := dClosest.FindGroupMember(s, t2)
		if okL && okC {
			vs := dLongest.ND.Vicinity(s)
			if vs.Dist(wc) > vs.Dist(wl)+eps {
				t.Fatalf("closest-member picked farther w: %v vs %v", vs.Dist(wc), vs.Dist(wl))
			}
		}
	}
	t.Logf("mean first stretch: longest-prefix %.4f, closest-member %.4f",
		sumL/float64(len(pairs)), sumC/float64(len(pairs)))
}

func TestMeanStretchReasonable(t *testing.T) {
	// Sanity: mean first-packet stretch with NoPathKnowledge on a random
	// graph should be low (paper Fig. 6: 1.18 for GNM-16384).
	env, d := testEnv(t, 29, 512, 2048)
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(30)), env.N(), 200)
	total, count := 0.0, 0
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		short := d.ND.ShortestDist(s, dst)
		if short == 0 {
			continue
		}
		l := env.G.PathLength(d.FirstRoute(s, dst, ShortcutNoPathKnowledge))
		total += l / short
		count++
	}
	mean := total / float64(count)
	if mean > 1.6 {
		t.Errorf("mean first-packet stretch %v implausibly high", mean)
	}
	if mean < 1 {
		t.Errorf("mean stretch < 1?!")
	}
}
