package core

import (
	"fmt"

	"disco/internal/graph"
)

// Hop-by-hop forwarding: FirstRoute/LaterRoute materialize routes from the
// converged environment for evaluation speed; this file forwards a packet
// using only the state an individual node actually holds — its vicinity
// table (first hops), its landmark routes (first hop toward each
// landmark), and the packet's carried address (explicit-route ports). The
// equality of the two (tested in forward_test.go) is what makes the static
// simulator's routes trustworthy as protocol output.

// packetPhase tracks which leg of s ⇝ l_t ⇝ t the packet is on.
type packetPhase int

const (
	phaseToLandmark packetPhase = iota
	phaseSourceRoute
)

// ForwardFirst forwards a first packet from s toward t's address hop by
// hop with To-Destination shortcutting (the component of the default
// heuristic that operates en route), returning the traversed node path.
// Each step consults only node-local state.
func (r *NDDisco) ForwardFirst(s, t graph.NodeID) []graph.NodeID {
	a := r.Env.AddrOf(t)
	path := []graph.NodeID{s}
	cur := s
	phase := phaseToLandmark
	srIdx := 0 // next explicit-route hop index once in phaseSourceRoute
	if cur == a.Landmark {
		phase = phaseSourceRoute
	}
	limit := 4*r.Env.N() + 16
	for cur != t {
		if len(path) > limit {
			panic(fmt.Sprintf("core: forwarding loop %d->%d", s, t))
		}
		// Local check 1: destination in my vicinity -> direct first hop.
		// (Probe membership first: it skips the compact-regime window
		// decode on the per-hop misses.)
		if r.VicinityContains(cur, t) {
			nh := r.Vicinity(cur).FirstHopTo(t)
			path = append(path, nh)
			cur = nh
			continue
		}
		// Local check 2: en route to the landmark, forward along my
		// landmark route; at the landmark, switch to the carried
		// explicit route.
		switch phase {
		case phaseToLandmark:
			nh := r.landmarkFirstHop(cur, a.Landmark)
			path = append(path, nh)
			cur = nh
			if cur == a.Landmark {
				phase = phaseSourceRoute
			}
		case phaseSourceRoute:
			// The carried ports index positions on l_t ⇝ t; find our
			// position lazily (nodes on the explicit route know their
			// offset in a real header; the simulator recovers it).
			for srIdx < len(a.Path) && a.Path[srIdx] != cur {
				srIdx++
			}
			if srIdx >= len(a.Path)-1 {
				panic(fmt.Sprintf("core: source route exhausted at %d (dest %d)", cur, t))
			}
			nh := r.Env.G.NeighborAt(cur, int(a.Ports[srIdx])).To
			path = append(path, nh)
			cur = nh
		}
	}
	return path
}

// landmarkFirstHop returns cur's first hop toward landmark lm — the data
// plane's landmark routing entry. In the converged protocol this is the
// parent of cur in lm's shortest-path tree (the reverse of the tree path),
// exactly what path vector installs.
func (r *NDDisco) landmarkFirstHop(cur, lm graph.NodeID) graph.NodeID {
	p := r.tree().Parent(lm, cur)
	if p == graph.None {
		panic(fmt.Sprintf("core: node %d has no route toward landmark %d", cur, lm))
	}
	return p
}

// ForwardLater forwards a non-first packet: if s ∈ V(t) the handshake has
// installed the exact reverse path at s, otherwise the packet takes the
// same landmark route as ForwardFirst.
func (r *NDDisco) ForwardLater(s, t graph.NodeID) []graph.NodeID {
	if s == t {
		return []graph.NodeID{s}
	}
	if vt := r.Vicinity(t); vt.Contains(s) {
		p := vt.PathTo(s)
		rev := make([]graph.NodeID, len(p))
		for i := range p {
			rev[len(p)-1-i] = p[i]
		}
		return rev
	}
	return r.ForwardFirst(s, t)
}

// ForwardFirst for Disco: the name-independent first packet. s consults
// only its own tables: vicinity membership, its sloppy-group address
// store, and prefix matching over its vicinity; the chosen w then forwards
// with the attached address exactly like NDDisco.
func (d *Disco) ForwardFirst(s, t graph.NodeID) []graph.NodeID {
	if s == t {
		return []graph.NodeID{s}
	}
	if d.ND.Vicinity(s).Contains(t) || d.Env().IsLM[t] || d.HasAddress(s, t) {
		return d.ND.ForwardFirst(s, t)
	}
	w, ok := d.FindGroupMember(s, t)
	if !ok {
		// Landmark-database fallback: forward to the owning landmark.
		owner := d.DB.OwnerOf(d.Env().HashOf(t))
		head := d.forwardVia(s, owner)
		rest := d.ND.ForwardFirst(owner, t)
		return append(head, rest[1:]...)
	}
	head := d.forwardVia(s, w)
	rest := d.ND.ForwardFirst(w, t)
	return append(head, rest[1:]...)
}

// forwardVia forwards hop by hop toward an intermediate target the source
// knows directly (vicinity member or landmark).
func (d *Disco) forwardVia(s, mid graph.NodeID) []graph.NodeID {
	path := []graph.NodeID{s}
	cur := s
	limit := 4*d.Env().N() + 16
	for cur != mid {
		if len(path) > limit {
			panic("core: forwarding loop toward intermediate")
		}
		var nh graph.NodeID
		if d.ND.VicinityContains(cur, mid) {
			nh = d.ND.Vicinity(cur).FirstHopTo(mid)
		} else if d.Env().IsLM[mid] {
			nh = d.ND.landmarkFirstHop(cur, mid)
		} else {
			panic(fmt.Sprintf("core: node %d cannot forward toward %d", cur, mid))
		}
		path = append(path, nh)
		cur = nh
	}
	return path
}
