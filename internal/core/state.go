package core

import (
	"disco/internal/addr"
	"disco/internal/graph"
	"disco/internal/names"
	"disco/internal/parallel"
)

// StateBreakdown itemizes one node's data-plane routing state in table
// entries, following the §5.2 accounting: "forwarding entries for landmarks
// and vicinities, name resolution entries on the landmark database,
// forwarding label mappings for our compact source route format in
// NDDisco, and the address mappings for Disco".
type StateBreakdown struct {
	LandmarkRoutes int // shortest-path entries to every landmark
	VicinityRoutes int // entries for V(v)
	LabelMappings  int // compact-source-route label → interface mappings
	Resolution     int // name-resolution entries (landmarks only)
	GroupAddrs     int // sloppy-group address entries (Disco only)
	OverlayLinks   int // overlay neighbor state (Disco only)
}

// Total returns the entry count.
func (b StateBreakdown) Total() int {
	return b.LandmarkRoutes + b.VicinityRoutes + b.LabelMappings + b.Resolution + b.GroupAddrs + b.OverlayLinks
}

// Bytes converts the breakdown to bytes under a name-size model (Fig. 7):
// landmark/vicinity/label entries are name+nexthop entries; resolution and
// group entries each store a name plus a full address.
func (b StateBreakdown) Bytes(m addr.SizeModel, avgAddr float64) float64 {
	plain := m.PlainEntryBytes()
	withAddr := float64(2*m.NameBytes) + avgAddr
	return float64(b.LandmarkRoutes+b.VicinityRoutes)*plain +
		float64(b.LabelMappings)*2 +
		float64(b.Resolution+b.GroupAddrs)*withAddr +
		float64(b.OverlayLinks)*plain
}

// resolutionLoad computes, for every node, how many resolution entries it
// stores (zero for non-landmarks): the consistent-hashing share of all n
// name→address bindings (§4.3).
func (d *Disco) resolutionLoad() []int {
	n := d.Env().N()
	load := make([]int, n)
	keys := make([]names.Hash, n)
	copy(keys, d.Env().Hashes)
	for lm, c := range d.DB.Load(keys) {
		load[lm] = c
	}
	return load
}

// NDStateBreakdown returns node v's NDDisco state given the precomputed
// resolution load vector (from Disco.resolutionLoad or equivalent).
func ndStateBreakdown(r *NDDisco, v graph.NodeID, resLoad []int) StateBreakdown {
	nLM := len(r.Env.Landmarks)
	// Forwarding labels are needed only for next hops actually used by
	// landmark/vicinity routes: at most min(degree, routes).
	labels := r.Env.G.Degree(v)
	if m := nLM + r.K; labels > m {
		labels = m
	}
	b := StateBreakdown{
		LandmarkRoutes: nLM,
		VicinityRoutes: r.K,
		LabelMappings:  labels,
	}
	if resLoad != nil {
		b.Resolution = resLoad[v]
	}
	return b
}

// StateVectors computes per-node state entry counts for NDDisco and Disco
// in one pass (they share everything but the group/overlay additions).
// Index i holds node i's entry count. The per-node accounting fans out
// over the worker pool — every task writes only its own index, so the
// vectors are identical at any worker count.
func (d *Disco) StateVectors() (ndEntries, discoEntries []int, ndBreak, discoBreak []StateBreakdown) {
	n := d.Env().N()
	resLoad := d.resolutionLoad()
	ndEntries = make([]int, n)
	discoEntries = make([]int, n)
	ndBreak = make([]StateBreakdown, n)
	discoBreak = make([]StateBreakdown, n)

	// Group sizes per node: under a uniform view these are shared per
	// group; compute by bucketing instead of O(n^2) scanning.
	groupSize := d.groupSizes()

	parallel.Run(n, func(v int) {
		nd := ndStateBreakdown(d.ND, graph.NodeID(v), resLoad)
		ndBreak[v] = nd
		ndEntries[v] = nd.Total()
		dd := nd
		dd.GroupAddrs = groupSize[v]
		dd.OverlayLinks = d.Net.Degree(graph.NodeID(v))
		discoBreak[v] = dd
		discoEntries[v] = dd.Total()
	})
	return ndEntries, discoEntries, ndBreak, discoBreak
}

// groupSizes returns |G(v)| (excluding v) for every node, bucketed by each
// node's own k — O(n) when views are uniform, O(n) with two passes when k
// differs by one bit.
func (d *Disco) groupSizes() []int {
	n := d.Env().N()
	out := make([]int, n)
	// Count nodes per (k, prefix) bucket for the ks in use.
	kset := map[int]bool{}
	for v := 0; v < n; v++ {
		kset[d.View.KOf(graph.NodeID(v))] = true
	}
	counts := map[int]map[uint64]int{}
	//disco:orderinvariant each k's histogram is built from the full hash set independently; writes are keyed by k
	for k := range kset {
		c := make(map[uint64]int)
		for w := 0; w < n; w++ {
			c[names.PrefixBits(d.Env().Hashes[w], k)]++
		}
		counts[k] = c
	}
	for v := 0; v < n; v++ {
		k := d.View.KOf(graph.NodeID(v))
		out[v] = counts[k][names.PrefixBits(d.Env().Hashes[v], k)] - 1
	}
	return out
}
