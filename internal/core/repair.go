package core

import (
	"disco/internal/dynamics"
	"disco/internal/graph"
	"disco/internal/snapshot"
)

// Routing over repaired route state: after link failures or recoveries,
// the control plane's triggered updates rebuild exactly the vicinity
// windows and landmark trees snapshot.ApplyFailures/ApplyRecoveries
// recompute, so the repaired snapshot IS the post-re-convergence data
// plane. This file forwards on it without ever consulting pre-event state
// that a real node would have invalidated — the stale explicit-route
// addresses in static.Env, the old landmark assignment of a node whose
// landmark became unreachable — and returns ok=false instead of panicking
// when a destination is genuinely undeliverable (partitioned away, or in
// a component that lost all its landmarks). Delivery ratio, not a crash,
// is the observable.
//
// The NDDisco and Disco views both satisfy dynamics.Router — the
// protocol-agnostic interface the timeline engine and the failure/churn
// experiments route through — and the To-Destination peel-off is the
// shared dynamics.WalkToDest walk, not a per-protocol copy.

var (
	_ dynamics.Router = (*NDDisco)(nil)
	_ dynamics.Router = (*Disco)(nil)
)

// ForkRepaired returns a routing view of r over the repaired snapshot:
// the environment's immutable parts (names, landmark identities) are
// shared and the repaired snapshot supplies vicinities and landmark
// trees. The fork must route ONLY via RepairedFirstRoute/
// RepairedLaterRoute — those never read the pre-failure addresses, and
// the fork carries no destination scratch (none of the repaired paths
// needs one), so the ordinary Env-bound route methods are off limits.
func (r *NDDisco) ForkRepaired(rep *snapshot.Snapshot) *NDDisco {
	return &NDDisco{Env: r.Env, K: r.K, snap: rep}
}

// rehomeLandmark returns the landmark the repaired control plane homes t
// to: t's original landmark while its tree still reaches t, else the
// lowest-ID landmark whose repaired tree does (the deterministic
// re-registration rule), or graph.None when t's component lost every
// landmark — the undeliverable case.
func (r *NDDisco) rehomeLandmark(t graph.NodeID) graph.NodeID {
	if lm := r.Env.LMOf[t]; r.snap.Reaches(lm, t) {
		return lm
	}
	best := graph.None
	for _, lm := range r.Env.Landmarks {
		if (best == graph.None || lm < best) && r.snap.Reaches(lm, t) {
			best = lm
		}
	}
	return best
}

// RepairedFirstRoute returns the first-packet route s ⇝ t on the repaired
// data plane — vicinity hit, or landmark leg with the refreshed explicit
// route and To-Destination shortcutting — and ok=false when no route
// exists. Requires a repaired (or any) snapshot installed via
// ForkRepaired.
func (r *NDDisco) RepairedFirstRoute(s, t graph.NodeID) ([]graph.NodeID, bool) {
	if direct, ok := r.repairedDirect(s, t); direct != nil || !ok {
		return direct, ok
	}
	return r.repairedLandmarkRoute(s, t)
}

// RepairedLaterRoute is RepairedFirstRoute after the handshake: if t's
// repaired vicinity contains s, t has installed the exact reverse path.
func (r *NDDisco) RepairedLaterRoute(s, t graph.NodeID) ([]graph.NodeID, bool) {
	if direct, ok := r.repairedDirect(s, t); direct != nil || !ok {
		return direct, ok
	}
	if vt := r.snap.Vicinity(t); vt.Contains(s) {
		return dynamics.ReversePath(vt.PathTo(s)), true
	}
	return r.repairedLandmarkRoute(s, t)
}

// repairedDirect handles the cases where s knows a live shortest path to
// t outright: s == t, t a still-reachable landmark, or t in s's repaired
// vicinity. It returns (nil, true) when none applies (fall through) and
// (nil, false) when t is a landmark s cannot reach.
func (r *NDDisco) repairedDirect(s, t graph.NodeID) ([]graph.NodeID, bool) {
	if s == t {
		return []graph.NodeID{s}, true
	}
	if r.Env.IsLM[t] {
		if !r.snap.Reaches(t, s) {
			return nil, false
		}
		return r.snap.PathFrom(t, s), true
	}
	if r.snap.VicinityContains(s, t) {
		return r.snap.Vicinity(s).PathTo(t), true
	}
	return nil, true
}

// repairedLandmarkRoute is the landmark leg s ⇝ l_t ⇝ t over repaired
// trees, with the To-Destination splice at the first en-route node whose
// repaired vicinity knows t.
func (r *NDDisco) repairedLandmarkRoute(s, t graph.NodeID) ([]graph.NodeID, bool) {
	lm := r.rehomeLandmark(t)
	if lm == graph.None || !r.snap.Reaches(lm, s) {
		return nil, false
	}
	route := joinPaths(r.snap.PathFrom(lm, s), r.snap.PathTo(lm, t))
	return r.repairedWalkToDest(route, t), true
}

// repairedWalkToDest applies To-Destination shortcutting along route via
// the shared dynamics walk: the packet peels off to the direct path at the
// first node whose repaired vicinity contains t (every node on a shortest
// sub-path to t then also knows it, so one splice is final).
func (r *NDDisco) repairedWalkToDest(route []graph.NodeID, t graph.NodeID) []graph.NodeID {
	return dynamics.WalkToDest(route, t,
		func(u graph.NodeID) bool { return r.snap.VicinityContains(u, t) },
		func(u graph.NodeID) []graph.NodeID { return r.snap.Vicinity(u).PathTo(t) })
}

// ForkRepaired returns a Disco routing view over the repaired snapshot
// (see NDDisco.ForkRepaired). Resolution DB, grouping view and overlay
// are converged name-space state — independent of topology — and stay
// shared.
func (d *Disco) ForkRepaired(rep *snapshot.Snapshot) *Disco {
	return &Disco{
		ND:       d.ND.ForkRepaired(rep),
		DB:       d.DB,
		View:     d.View,
		Net:      d.Net,
		K:        d.K,
		closestW: d.closestW,
	}
}

// RepairedFirstRoute routes a first packet given only t's name, on the
// repaired data plane: s ⇝ w (the repaired-vicinity group member holding
// t's refreshed address) ⇝ l_t ⇝ t, falling back to the landmark
// resolution database. ok=false when neither the group member path nor
// the resolution owner can reach t.
func (d *Disco) RepairedFirstRoute(s, t graph.NodeID) ([]graph.NodeID, bool) {
	nd := d.ND
	if direct, ok := nd.repairedDirect(s, t); direct != nil || !ok {
		return direct, ok
	}
	if d.HasAddress(s, t) {
		return nd.RepairedFirstRoute(s, t)
	}
	if w, ok := d.FindGroupMember(s, t); ok {
		head := nd.snap.Vicinity(s).PathTo(w)
		rest, ok2 := nd.RepairedFirstRoute(w, t)
		if !ok2 {
			return nil, false
		}
		return nd.repairedWalkToDest(joinPaths(head, rest), t), true
	}
	// Resolution fallback: the owning landmark answers the query and
	// forwards — both legs must survive the failures.
	d.fallbacks++
	d.misses++
	owner := d.DB.OwnerOf(d.Env().HashOf(t))
	if !nd.snap.Reaches(owner, s) {
		return nil, false
	}
	rest, ok := nd.RepairedFirstRoute(owner, t)
	if !ok {
		return nil, false
	}
	return nd.repairedWalkToDest(joinPaths(nd.snap.PathFrom(owner, s), rest), t), true
}

// RepairedLaterRoute routes Disco packets after the handshake. Later
// packets carry the refreshed address from the first exchange, so the
// name-resolution machinery drops out and the route is exactly NDDisco's —
// which is what completes dynamics.Router for the Disco view.
func (d *Disco) RepairedLaterRoute(s, t graph.NodeID) ([]graph.NodeID, bool) {
	return d.ND.RepairedLaterRoute(s, t)
}
