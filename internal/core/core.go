package core
