package core

import (
	"math/rand"
	"testing"

	"disco/internal/addr"
	"disco/internal/graph"
	"disco/internal/static"
	"disco/internal/topology"
)

func TestStateBytesAccounting(t *testing.T) {
	b := StateBreakdown{
		LandmarkRoutes: 10,
		VicinityRoutes: 20,
		LabelMappings:  5,
		Resolution:     3,
		GroupAddrs:     7,
		OverlayLinks:   4,
	}
	if b.Total() != 49 {
		t.Fatalf("total %d want 49", b.Total())
	}
	m := addr.SizeModel{NameBytes: 4}
	// plain = 6B; withAddr = 8 + avgAddr; labels 2B each; overlay plain.
	avgAddr := 3.0
	want := float64(10+20)*6 + 5*2 + float64(3+7)*(8+3) + 4*6
	if got := b.Bytes(m, avgAddr); got != want {
		t.Fatalf("bytes %v want %v", got, want)
	}
	// IPv6 names strictly cost more.
	if b.Bytes(addr.SizeModel{NameBytes: 16}, avgAddr) <= want {
		t.Fatal("IPv6 accounting must exceed IPv4")
	}
}

func TestGroupSizesMatchBruteForce(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(71)), 300, 1200)
	env := static.NewEnv(g, 71)
	d := NewDisco(env)
	fast := d.groupSizes()
	for v := 0; v < 300; v += 23 {
		if got, want := fast[v], d.GroupSize(graph.NodeID(v)); got != want {
			t.Fatalf("groupSizes[%d]=%d but GroupSize=%d", v, got, want)
		}
	}
}

func TestStateVectorsUnderEstimateError(t *testing.T) {
	// With per-node estimates, group sizes differ by node; totals must
	// stay consistent with the per-node breakdowns.
	g := topology.Gnm(rand.New(rand.NewSource(73)), 400, 1600)
	est := make([]float64, 400)
	rng := rand.New(rand.NewSource(74))
	for i := range est {
		est[i] = 400 * (1 + (rng.Float64()*2-1)*0.4)
	}
	env := static.NewEnv(g, 73, static.WithNEst(est))
	d := NewDisco(env)
	_, dE, _, dB := d.StateVectors()
	for v := 0; v < 400; v++ {
		if dB[v].Total() != dE[v] {
			t.Fatal("breakdown mismatch under estimate error")
		}
		if dB[v].GroupAddrs != d.GroupSize(graph.NodeID(v)) {
			t.Fatalf("group size mismatch at %d under estimate error", v)
		}
	}
}

func TestVicinityCacheCap(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(75)), 200, 800)
	env := static.NewEnv(g, 75)
	nd := NewNDDisco(env, WithVicinityCacheCap(4))
	for v := 0; v < 20; v++ {
		nd.Vicinity(graph.NodeID(v))
	}
	if len(nd.vic) > 4 {
		t.Fatalf("vicinity cache grew to %d beyond cap 4", len(nd.vic))
	}
	// Evicted vicinities recompute identically.
	a := nd.Vicinity(0)
	if a.Size() != nd.K {
		t.Fatal("recomputed vicinity wrong size")
	}
}

func TestResetCaches(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(77)), 150, 600)
	env := static.NewEnv(g, 77)
	nd := NewNDDisco(env)
	before := nd.Vicinity(3)
	nd.ResetCaches()
	after := nd.Vicinity(3)
	if before == after {
		t.Fatal("ResetCaches must drop cached vicinities")
	}
	if before.Size() != after.Size() {
		t.Fatal("recomputed vicinity differs")
	}
}
