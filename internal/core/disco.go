package core

import (
	"fmt"
	"math/rand"

	"disco/internal/graph"
	"disco/internal/names"
	"disco/internal/overlay"
	"disco/internal/pathtree"
	"disco/internal/resolve"
	"disco/internal/sloppy"
	"disco/internal/static"
)

// Disco is the full name-independent protocol (§4.4): NDDisco plus the
// landmark name-resolution database (§4.3) and sloppy-group address tables
// maintained through the dissemination overlay. A source needs only the
// destination's flat name.
type Disco struct {
	ND        *NDDisco
	DB        *resolve.DB  // consistent-hashing resolution over landmarks
	View      *sloppy.View // per-node grouping opinions (handles estimate error)
	Net       *overlay.Net // dissemination overlay (state accounting, Fig. 8)
	K         int          // vicinity size (same as ND.K)
	closestW  bool         // §4.4 variant: closest w with a long-enough prefix
	fallbacks int          // count of lookups that needed the landmark DB
	misses    int          // count of lookups where even the group had no address
}

// DiscoOption customizes NewDisco.
type DiscoOption func(*discoOptions)

type discoOptions struct {
	ndOpts  []NDOption
	fingers int
	vnodes  int
	seed    int64
	closest bool
}

// WithNDOptions forwards options to the underlying NDDisco.
func WithNDOptions(opts ...NDOption) DiscoOption {
	return func(o *discoOptions) { o.ndOpts = append(o.ndOpts, opts...) }
}

// WithFingers sets the number of outgoing overlay fingers per node (the
// paper evaluates 1 and 3; default 1).
func WithFingers(f int) DiscoOption { return func(o *discoOptions) { o.fingers = f } }

// WithResolveVNodes sets the number of hash functions per landmark in the
// resolution DB (default 1; §4.5 notes multiple functions cut imbalance).
func WithResolveVNodes(v int) DiscoOption { return func(o *discoOptions) { o.vnodes = v } }

// WithSeed seeds overlay finger selection.
func WithSeed(s int64) DiscoOption { return func(o *discoOptions) { o.seed = s } }

// WithClosestMember switches group-member selection to the §4.4
// parenthetical variant: "this can be optimized slightly to be the closest
// node w with a 'long enough' prefix match" — pick the nearest vicinity
// member matching the destination's full group prefix instead of the
// longest-prefix one. Shortens the s ⇝ w leg at equal hit probability.
func WithClosestMember() DiscoOption { return func(o *discoOptions) { o.closest = true } }

// NewDisco assembles the converged Disco protocol over env.
func NewDisco(env *static.Env, opts ...DiscoOption) *Disco {
	o := discoOptions{fingers: 1, vnodes: 1, seed: 1}
	for _, f := range opts {
		f(&o)
	}
	nd := NewNDDisco(env, o.ndOpts...)
	view := sloppy.BuildView(env.Hashes, env.NEst)
	db := resolve.New(env.Landmarks, env.NameOf, o.vnodes)
	net := overlay.Build(env.Hashes, view, o.fingers, rand.New(rand.NewSource(o.seed)))
	return &Disco{ND: nd, DB: db, View: view, Net: net, K: nd.K, closestW: o.closest}
}

// Env returns the shared environment.
func (d *Disco) Env() *static.Env { return d.ND.Env }

// Fork returns a concurrency view of d for one worker of a parallel
// sweep: the converged resolution DB, grouping view, overlay and (when
// installed) the immutable snapshot are shared read-only, the NDDisco
// layer is forked (scratch only under a snapshot, private caches without
// one), and the fallback/miss counters start at zero so each worker
// tallies its own routes. Sum fork counters (order-independent) to recover
// the serial totals.
func (d *Disco) Fork() *Disco { return d.ForkWith(nil) }

// ForkWith is Fork with a caller-supplied destination-tree scratch shared
// between the protocol forks of one worker (see NDDisco.ForkWith).
func (d *Disco) ForkWith(dest *pathtree.Lazy) *Disco {
	return &Disco{
		ND:       d.ND.ForkWith(dest),
		DB:       d.DB,
		View:     d.View,
		Net:      d.Net,
		K:        d.K,
		closestW: d.closestW,
	}
}

// HasAddress reports whether node holder stores target's current address:
// the dissemination overlay delivers t's announcements to (at least) the
// nodes that mutually agree with t on the grouping (§4.4 core-group
// argument).
func (d *Disco) HasAddress(holder, target graph.NodeID) bool {
	if holder == target {
		return true
	}
	return d.View.Mutual(target, holder)
}

// FindGroupMember returns the vicinity node w that should hold t's
// address, plus whether it actually does. Default selection: the node with
// the longest prefix match between h(w) and h(t), ties broken by distance
// then ID (§4.4). With WithClosestMember, the closest node whose prefix
// match covers s's full group width ("long enough"), falling back to
// longest-prefix when none qualifies.
func (d *Disco) FindGroupMember(s, t graph.NodeID) (w graph.NodeID, ok bool) {
	ht := d.Env().HashOf(t)
	vs := d.ND.Vicinity(s)
	if d.closestW {
		need := d.View.KOf(s)
		best := graph.None
		bestDist := 0.0
		for _, e := range vs.Entries {
			if e.Node == s {
				continue
			}
			if names.CommonPrefixLen(d.Env().HashOf(e.Node), ht) < need {
				continue
			}
			if best == graph.None || e.Dist < bestDist || (e.Dist == bestDist && e.Node < best) {
				best, bestDist = e.Node, e.Dist
			}
		}
		if best != graph.None {
			return best, d.HasAddress(best, t)
		}
		// No full-prefix member: fall through to longest-prefix.
	}
	best := graph.None
	bestPrefix := -1
	bestDist := 0.0
	for _, e := range vs.Entries {
		if e.Node == s {
			continue
		}
		p := names.CommonPrefixLen(d.Env().HashOf(e.Node), ht)
		if p > bestPrefix || (p == bestPrefix && (e.Dist < bestDist || (e.Dist == bestDist && e.Node < best))) {
			best, bestPrefix, bestDist = e.Node, p, e.Dist
		}
	}
	if best == graph.None {
		return graph.None, false
	}
	return best, d.HasAddress(best, t)
}

// FirstRoute returns the route of a flow's first packet from s to t given
// only t's flat name. The general path is s ⇝ w ⇝ l_t ⇝ t where w is the
// vicinity node in t's sloppy group; worst-case stretch 7 (§4.5 Theorem 1).
// If no vicinity node holds the address (vanishing probability with exact
// estimates; measurable under injected error) the packet falls back to the
// landmark resolution database: s ⇝ owner(h(t)) ⇝ l_t ⇝ t.
func (d *Disco) FirstRoute(s, t graph.NodeID, sc Shortcut) []graph.NodeID {
	if direct := d.ND.directRoute(s, t); direct != nil {
		return direct
	}
	if d.HasAddress(s, t) {
		// s is in t's group and already stores the address: pure NDDisco.
		return d.ND.FirstRoute(s, t, sc)
	}
	w, ok := d.FindGroupMember(s, t)
	if ok {
		// s ⇝ w (vicinity path), then w forwards using t's address.
		head := d.ND.Vicinity(s).PathTo(w)
		rest := d.ND.baseForward(w, t)
		return d.ND.walk(joinPaths(head, rest), t, sc)
	}
	// Fallback: resolution query forwarded through the owning landmark.
	d.fallbacks++
	if !ok {
		d.misses++
	}
	owner := d.DB.OwnerOf(d.Env().HashOf(t))
	head := d.ND.tree().PathFrom(owner, s) // s ⇝ owner (a landmark)
	rest := d.ND.baseForward(owner, t)
	return d.ND.walk(joinPaths(head, rest), t, sc)
}

// LaterRoute returns the route after the first packet: s has learned t's
// address (and the handshake applies), so routing is NDDisco with stretch
// <= 3 (§4.5 Theorem 1).
func (d *Disco) LaterRoute(s, t graph.NodeID, sc Shortcut) []graph.NodeID {
	return d.ND.LaterRoute(s, t, sc)
}

// Fallbacks returns how many FirstRoute calls used the landmark-database
// fallback, and how many of those were true misses (no vicinity member had
// the address). Used by the estimate-error experiment (§5).
func (d *Disco) Fallbacks() (fallbacks, misses int) { return d.fallbacks, d.misses }

// ResetCounters zeroes the fallback/miss counters.
func (d *Disco) ResetCounters() { d.fallbacks, d.misses = 0, 0 }

// GroupSize returns |G(v)| as v sees it (the number of addresses v stores).
func (d *Disco) GroupSize(v graph.NodeID) int {
	n := d.Env().N()
	count := 0
	for w := 0; w < n; w++ {
		if graph.NodeID(w) != v && d.View.InGroup(v, graph.NodeID(w)) {
			count++
		}
	}
	return count
}

// String summarizes the instance.
func (d *Disco) String() string {
	return fmt.Sprintf("Disco{n=%d, landmarks=%d, K=%d}", d.Env().N(), len(d.Env().Landmarks), d.K)
}
