// Package core implements the paper's primary contribution: NDDisco, the
// name-dependent distributed compact routing protocol (§4.2), and Disco,
// the full name-independent protocol (§4.4) layered on NDDisco, the
// landmark name-resolution database (§4.3), sloppy groups and the
// dissemination overlay.
//
// The types here model the *converged data plane*: given a static.Env (the
// paper's static simulator, §5.1) they materialize exactly the routes the
// distributed protocol forwards along, including every shortcutting
// heuristic of Fig. 6. The event-driven control plane that builds the same
// state dynamically lives in internal/pathvector and internal/overlay, and
// is cross-validated against this package.
package core

import (
	"fmt"

	"disco/internal/dynamics"
	"disco/internal/graph"
	"disco/internal/pathtree"
	"disco/internal/snapshot"
	"disco/internal/static"
	"disco/internal/vicinity"
)

// NDDisco is the converged name-dependent protocol instance: landmark
// routes plus fixed-size vicinities. The source must know the destination's
// address for routing (Disco removes that assumption).
//
// Two cache regimes exist. Without a snapshot (the legacy regime),
// vicinities and trees are computed lazily into instance-private caches and
// Fork() rebuilds them per worker. With UseSnapshot, the shared immutable
// snapshot serves every vicinity and landmark-tree read — allocation-free
// in its exact storage regime, one decoded window per Vicinity call in the
// compact regime (membership probes stay materialization-free via
// VicinityContains) — forks share it by pointer, and the only per-fork
// state is a reusable Dijkstra scratch for destination-rooted queries.
// Route values are identical in all regimes (see eval's
// snapshot-equivalence test).
type NDDisco struct {
	Env *static.Env
	K   int // vicinity size |V(v)|, Θ(sqrt(n log n))

	// Shared immutable state (snapshot regime).
	snap *snapshot.Snapshot
	dest *pathtree.Lazy // per-fork scratch for destination-rooted queries

	// Private lazy caches (legacy regime; nil/unused under a snapshot).
	vic    map[graph.NodeID]*vicinity.Set
	vicCap int
	sssp   *graph.SSSP
	trees  *pathtree.Cache
}

// NDOption customizes NewNDDisco.
type NDOption func(*NDDisco)

// WithK overrides the vicinity size (used by the vicinity-size ablation).
func WithK(k int) NDOption { return func(r *NDDisco) { r.K = k } }

// WithTreeCacheCap bounds the number of cached shortest-path trees.
func WithTreeCacheCap(c int) NDOption {
	return func(r *NDDisco) { r.trees = pathtree.NewCache(r.Env.G, c) }
}

// WithVicinityCacheCap bounds the number of cached vicinities (0 = unbounded).
func WithVicinityCacheCap(c int) NDOption { return func(r *NDDisco) { r.vicCap = c } }

// NewNDDisco builds the converged NDDisco data plane over env. Vicinities
// and shortest-path trees are computed lazily and cached, so instances are
// cheap to create even on very large graphs; install a shared snapshot
// with UseSnapshot before heavy parallel sweeps.
func NewNDDisco(env *static.Env, opts ...NDOption) *NDDisco {
	r := &NDDisco{
		Env:  env,
		K:    vicinity.DefaultK(env.N()),
		vic:  make(map[graph.NodeID]*vicinity.Set),
		sssp: graph.NewSSSP(env.G),
	}
	r.trees = pathtree.NewCache(env.G, 128)
	for _, o := range opts {
		o(r)
	}
	return r
}

// UseSnapshot switches r (and every future fork) to the shared immutable
// snapshot: vicinity and landmark-tree reads come from s, destination-
// rooted queries run on a private reusable Dijkstra scratch. The snapshot
// must have been built over the same graph with r's vicinity size.
func (r *NDDisco) UseSnapshot(s *snapshot.Snapshot) {
	want := r.K
	if n := r.Env.N(); want > n {
		want = n
	}
	if s.K() != want {
		panic(fmt.Sprintf("core: snapshot K=%d does not match NDDisco K=%d", s.K(), want))
	}
	r.snap = s
	r.dest = pathtree.NewLazy(r.Env.G)
}

// Snapshot returns the installed shared snapshot, or nil.
func (r *NDDisco) Snapshot() *snapshot.Snapshot { return r.snap }

// Fork returns a concurrency view of r for one worker of a parallel sweep.
// Under a snapshot the fork shares all converged read-only state and owns
// only a destination-tree scratch; in the legacy regime it owns private
// lazy caches. Routes are pure functions of the Env, so a fork returns
// exactly the routes the original would.
func (r *NDDisco) Fork() *NDDisco { return r.ForkWith(nil) }

// ForkWith is Fork with a caller-supplied destination-tree scratch, letting
// the protocol forks of one worker (e.g. Disco and S4 routing the same
// sampled pairs) share each other's destination Dijkstra runs. A nil dest
// gives the fork its own scratch. Ignored in the legacy regime.
func (r *NDDisco) ForkWith(dest *pathtree.Lazy) *NDDisco {
	if r.snap != nil {
		if dest == nil {
			dest = pathtree.NewLazy(r.Env.G)
		}
		return &NDDisco{Env: r.Env, K: r.K, snap: r.snap, dest: dest}
	}
	return &NDDisco{
		Env:    r.Env,
		K:      r.K,
		vic:    make(map[graph.NodeID]*vicinity.Set),
		vicCap: r.vicCap,
		sssp:   graph.NewSSSP(r.Env.G),
		trees:  pathtree.NewCache(r.Env.G, r.trees.Cap()),
	}
}

// Vicinity returns V(v): from the shared snapshot when installed
// (allocation-free), else computed and cached on first use.
func (r *NDDisco) Vicinity(v graph.NodeID) *vicinity.Set {
	if r.snap != nil {
		return r.snap.Vicinity(v)
	}
	if s, ok := r.vic[v]; ok {
		return s
	}
	if r.vicCap > 0 && len(r.vic) >= r.vicCap {
		//disco:orderinvariant eviction victim choice only affects future recompute cost, never any returned set
		for k := range r.vic { // evict an arbitrary entry
			delete(r.vic, k)
			break
		}
	}
	r.sssp.RunK(v, r.K)
	set := setFromSSSP(r.sssp, v)
	r.vic[v] = set
	return set
}

// VicinityContains reports w ∈ V(v) without materializing the set in the
// compact snapshot regime — the guard the forwarding loops probe once per
// hop, where the common answer is "no". Falls back to the full set
// elsewhere (exact sets are shared views; legacy sets are cached anyway).
func (r *NDDisco) VicinityContains(v, w graph.NodeID) bool {
	if r.snap != nil {
		return r.snap.VicinityContains(v, w)
	}
	return r.Vicinity(v).Contains(w)
}

func setFromSSSP(s *graph.SSSP, src graph.NodeID) *vicinity.Set {
	order := s.Order()
	entries := make([]vicinity.Entry, len(order))
	for i, w := range order {
		entries[i] = vicinity.Entry{Node: w, Parent: s.Parent(w), Dist: s.Dist(w)}
	}
	return vicinity.FromEntries(src, entries)
}

// tree returns the fork's tree view (the shared regime-dispatch rule in
// internal/snapshot).
func (r *NDDisco) tree() snapshot.TreeView {
	return snapshot.TreeView{Snap: r.snap, Dest: r.dest, Cache: r.trees}
}

// ShortestDist returns the true shortest-path distance d(s,t), used as the
// stretch denominator.
func (r *NDDisco) ShortestDist(s, t graph.NodeID) float64 {
	return r.tree().Dist(t, s)
}

// ShortestPath returns a true shortest path s ⇝ t (the path-vector
// baseline's route).
func (r *NDDisco) ShortestPath(s, t graph.NodeID) []graph.NodeID {
	return r.tree().PathFrom(t, s)
}

// RouteLen returns the weighted length of a node path.
func (r *NDDisco) RouteLen(p []graph.NodeID) float64 { return r.Env.G.PathLength(p) }

// FirstRoute returns the route of a flow's first packet from s to t under
// the given shortcut heuristic, assuming s knows t's address (the
// name-dependent model). Worst-case stretch 5 (§4.2, [44]).
func (r *NDDisco) FirstRoute(s, t graph.NodeID, sc Shortcut) []graph.NodeID {
	if direct := r.directRoute(s, t); direct != nil {
		return direct
	}
	fwd := r.walk(r.baseForward(s, t), t, sc)
	if !sc.usesReverse() {
		return fwd
	}
	rev := r.walk(r.baseReverse(s, t), t, sc)
	if r.RouteLen(rev) < r.RouteLen(fwd) {
		return rev
	}
	return fwd
}

// LaterRoute returns the route of packets after the first: if s ∈ V(t) the
// destination has informed s of the exact shortest path (the handshake of
// [44] §4); otherwise the packet keeps using the landmark route. Worst-case
// stretch 3 (§4.5).
func (r *NDDisco) LaterRoute(s, t graph.NodeID, sc Shortcut) []graph.NodeID {
	if direct := r.directRoute(s, t); direct != nil {
		return direct
	}
	if r.VicinityContains(t, s) {
		// t knows the shortest path t ⇝ s even though s didn't; reversed it
		// is the exact route s ⇝ t.
		return dynamics.ReversePath(r.Vicinity(t).PathTo(s))
	}
	return r.FirstRoute(s, t, sc)
}

// directRoute handles the cases where s already knows a shortest path to t:
// s == t, t a landmark, or t ∈ V(s). Returns nil otherwise.
func (r *NDDisco) directRoute(s, t graph.NodeID) []graph.NodeID {
	if s == t {
		return []graph.NodeID{s}
	}
	if r.Env.IsLM[t] {
		return r.tree().PathFrom(t, s)
	}
	if r.VicinityContains(s, t) {
		return r.Vicinity(s).PathTo(t)
	}
	return nil
}

// baseForward is the unshortcut route s ⇝ l_t ⇝ t: the learned shortest
// path to t's landmark followed by t's explicit route.
func (r *NDDisco) baseForward(s, t graph.NodeID) []graph.NodeID {
	a := r.Env.AddrOf(t)
	toLM := r.tree().PathFrom(a.Landmark, s) // s ⇝ l_t
	return joinPaths(toLM, a.Path)
}

// baseReverse is the reversed t → s route as traveled s → t:
// s ⇝ l_s (reversed explicit route) followed by l_s ⇝ t (shortest path,
// reversed from t's learned route to the landmark). Valid because the
// graph is undirected (§6 reversibility assumption).
func (r *NDDisco) baseReverse(s, t graph.NodeID) []graph.NodeID {
	a := r.Env.AddrOf(s)
	down := a.Reverse()                   // s ⇝ l_s
	toT := r.tree().PathTo(a.Landmark, t) // l_s ⇝ t
	return joinPaths(down, toT)
}

// joinPaths concatenates a⇝b and b⇝c, deduplicating the joint node and
// trimming any immediate backtrack across the joint (…x,b,x… → …x…),
// which arises when the second segment starts back along the first.
func joinPaths(p1, p2 []graph.NodeID) []graph.NodeID {
	if len(p1) == 0 {
		return append([]graph.NodeID(nil), p2...)
	}
	if len(p2) == 0 {
		return append([]graph.NodeID(nil), p1...)
	}
	if p1[len(p1)-1] != p2[0] {
		panic(fmt.Sprintf("core: joinPaths segments do not meet: %d vs %d", p1[len(p1)-1], p2[0]))
	}
	out := append([]graph.NodeID(nil), p1...)
	for _, v := range p2[1:] {
		if len(out) >= 2 && out[len(out)-2] == v {
			out = out[:len(out)-1] // backtrack x,b,x collapses to x
			continue
		}
		out = append(out, v)
	}
	return out
}

// walk simulates the packet traveling along route toward t, applying the
// configured shortcut heuristics at every node it passes (§4.2).
func (r *NDDisco) walk(route []graph.NodeID, t graph.NodeID, sc Shortcut) []graph.NodeID {
	if !sc.usesToDest() && !sc.usesUpDown() {
		return route
	}
	cur := append([]graph.NodeID(nil), route...)
	for i := 0; i < len(cur)-1; i++ {
		u := cur[i]
		if sc.usesUpDown() {
			cur = r.spliceUpDown(cur, i, r.Vicinity(u))
			continue
		}
		// To-Destination: follow the direct path as soon as any node knows
		// one. Nodes on a shortest path to t also have t in their
		// vicinities with consistent sub-paths, so no further improvement
		// is possible after the splice. Membership is probed without
		// materializing the window (the per-node common case is a miss).
		if r.VicinityContains(u, t) {
			direct := r.Vicinity(u).PathTo(t)
			return append(cur[:i:i], direct...)
		}
	}
	return cur
}

// spliceUpDown implements Up-Down Stream at position i: the node inspects
// the listed route and splices in its vicinity path to the farthest
// downstream route node it can reach more cheaply.
func (r *NDDisco) spliceUpDown(cur []graph.NodeID, i int, vu *vicinity.Set) []graph.NodeID {
	g := r.Env.G
	// Prefix sums of the remaining route for O(1) segment lengths.
	segLen := make([]float64, len(cur)-i)
	for j := i + 1; j < len(cur); j++ {
		segLen[j-i] = segLen[j-i-1] + g.EdgeWeight(cur[j-1], cur[j])
	}
	const eps = 1e-12
	for j := len(cur) - 1; j > i; j-- {
		e, ok := vu.Find(cur[j])
		if !ok {
			continue
		}
		if e.Dist < segLen[j-i]-eps {
			short := vu.PathTo(cur[j])
			out := append(cur[:i:i], short...)
			out = append(out, cur[j+1:]...)
			return out
		}
		// The farthest known node is already optimal; nearer known nodes
		// lie on consistent shortest sub-paths and cannot improve more.
		return cur
	}
	return cur
}

// Landmarks returns the number of landmark routes every node stores.
func (r *NDDisco) Landmarks() int { return len(r.Env.Landmarks) }

// VicinityRadius returns the distance to the farthest member of V(v).
func (r *NDDisco) VicinityRadius(v graph.NodeID) float64 { return r.Vicinity(v).Radius() }

// ResetCaches drops cached vicinities and trees (between experiments on the
// same Env). A shared snapshot is immutable and stays installed.
func (r *NDDisco) ResetCaches() {
	if r.snap != nil {
		r.dest = pathtree.NewLazy(r.Env.G)
		return
	}
	r.vic = make(map[graph.NodeID]*vicinity.Set)
	r.trees = pathtree.NewCache(r.Env.G, r.trees.Cap())
}
