package core

// Shortcut selects the route-shortening heuristic applied to a flow's first
// packet (§4.2 "Shortcutting heuristics", evaluated in Fig. 6). The
// protocol's stretch guarantees hold even with ShortcutNone; the heuristics
// only improve mean stretch.
type Shortcut int

const (
	// ShortcutNone routes strictly along s ⇝ (w ⇝) l_t ⇝ t.
	ShortcutNone Shortcut = iota
	// ShortcutToDestination follows a direct vicinity path as soon as the
	// packet passes through any node that knows one to the destination
	// (S4's heuristic [34]).
	ShortcutToDestination
	// ShortcutShorterPath uses the shorter of the forward route s → t and
	// the reversed route t → s, without To-Destination.
	ShortcutShorterPath
	// ShortcutNoPathKnowledge combines ShortcutToDestination with
	// ShortcutShorterPath. This is the paper's default ("All results
	// discussed subsequently use the No Path Knowledge optimization").
	ShortcutNoPathKnowledge
	// ShortcutUpDownStream lets every node along the route inspect the
	// listed route nodes and splice in a shorter vicinity path to the
	// farthest reachable one (requires carrying node identifiers on the
	// first packet).
	ShortcutUpDownStream
	// ShortcutPathKnowledge combines ShortcutUpDownStream with the reverse
	// route: the most aggressive heuristic (last row of Fig. 6).
	ShortcutPathKnowledge
)

// String returns the paper's name for the heuristic.
func (s Shortcut) String() string {
	switch s {
	case ShortcutNone:
		return "No Shortcutting"
	case ShortcutToDestination:
		return "To-Destination Shortcuts"
	case ShortcutShorterPath:
		return "Shorter{ReversePath, ForwardPath}"
	case ShortcutNoPathKnowledge:
		return "No Path Knowledge"
	case ShortcutUpDownStream:
		return "Up-Down Stream"
	case ShortcutPathKnowledge:
		return "Using Path Knowledge"
	default:
		return "Unknown"
	}
}

// AllShortcuts lists the heuristics in the order of the Fig. 6 table.
var AllShortcuts = []Shortcut{
	ShortcutNone,
	ShortcutToDestination,
	ShortcutShorterPath,
	ShortcutNoPathKnowledge,
	ShortcutUpDownStream,
	ShortcutPathKnowledge,
}

// usesToDest reports whether the mode applies To-Destination splicing.
func (s Shortcut) usesToDest() bool {
	return s == ShortcutToDestination || s == ShortcutNoPathKnowledge
}

// usesUpDown reports whether the mode applies Up-Down Stream splicing
// (which subsumes To-Destination: the destination is on the route list).
func (s Shortcut) usesUpDown() bool {
	return s == ShortcutUpDownStream || s == ShortcutPathKnowledge
}

// usesReverse reports whether the mode also evaluates the reversed route
// t → s and picks the shorter.
func (s Shortcut) usesReverse() bool {
	return s == ShortcutShorterPath || s == ShortcutNoPathKnowledge || s == ShortcutPathKnowledge
}
