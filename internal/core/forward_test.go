package core

import (
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/snapshot"
)

func TestForwardFirstMatchesBounds(t *testing.T) {
	env, d := testEnv(t, 41, 400, 1600)
	nd := d.ND
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(42)), env.N(), 300)
	equal := 0
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		short := nd.ShortestDist(s, dst)
		fwd := nd.ForwardFirst(s, dst)
		fwdLen := routeOK(t, env.G, fwd, s, dst)
		if fwdLen > 5*short+eps {
			t.Fatalf("hop-by-hop first packet stretch %v > 5", fwdLen/short)
		}
		// The materialized route may be shorter only by backtrack
		// trimming at the landmark joint; never longer.
		mat := env.G.PathLength(nd.FirstRoute(s, dst, ShortcutToDestination))
		if mat > fwdLen+eps {
			t.Fatalf("materialized route (%v) longer than forwarded packet (%v)", mat, fwdLen)
		}
		if mat == fwdLen {
			equal++
		}
	}
	if equal < len(pairs)*9/10 {
		t.Errorf("forwarded and materialized lengths should match on most pairs: %d/%d", equal, len(pairs))
	}
}

func TestForwardLaterHandshake(t *testing.T) {
	env, d := testEnv(t, 43, 300, 1200)
	nd := d.ND
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(44)), env.N(), 200)
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		short := nd.ShortestDist(s, dst)
		fwd := nd.ForwardLater(s, dst)
		fwdLen := routeOK(t, env.G, fwd, s, dst)
		if fwdLen > 3*short+eps {
			t.Fatalf("hop-by-hop later packet stretch %v > 3", fwdLen/short)
		}
		// Handshake case must be exactly shortest.
		if nd.Vicinity(dst).Contains(s) && fwdLen != short {
			t.Fatalf("handshake forwarding not shortest: %v vs %v", fwdLen, short)
		}
	}
}

func TestDiscoForwardFirst(t *testing.T) {
	env, d := testEnv(t, 51, 400, 1600)
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(46)), env.N(), 300)
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		short := d.ND.ShortestDist(s, dst)
		fb0, _ := d.Fallbacks()
		fwd := d.ForwardFirst(s, dst)
		fwdLen := routeOK(t, env.G, fwd, s, dst)
		if fb1, _ := d.Fallbacks(); fb1 != fb0 {
			continue // fallback: Theorem 1 does not apply
		}
		if fwdLen > 7*short+eps {
			t.Fatalf("hop-by-hop Disco first packet stretch %v > 7 (%d->%d)", fwdLen/short, s, dst)
		}
	}
}

func TestForwardSelfAndVicinity(t *testing.T) {
	env, d := testEnv(t, 47, 200, 800)
	nd := d.ND
	// Self.
	if p := nd.ForwardLater(9, 9); len(p) != 1 || p[0] != 9 {
		t.Fatal("self forward wrong")
	}
	// Vicinity member: exactly shortest.
	src := graph.NodeID(4)
	for _, e := range nd.Vicinity(src).Entries {
		if e.Node == src {
			continue
		}
		fwd := nd.ForwardFirst(src, e.Node)
		if env.G.PathLength(fwd) != nd.ShortestDist(src, e.Node) {
			t.Fatalf("vicinity forwarding not shortest to %d", e.Node)
		}
		break
	}
}

func TestForwardDeterministic(t *testing.T) {
	env, d := testEnv(t, 49, 250, 1000)
	a := d.ND.ForwardFirst(3, 200)
	b := d.ND.ForwardFirst(3, 200)
	if len(a) != len(b) {
		t.Fatal("forwarding must be deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forwarding must be deterministic")
		}
	}
	_ = env
}

// TestForwardSnapshotRegime pins the hop-by-hop forwarding plane under
// the shared-snapshot regime: a snapshot-backed fork (whose legacy tree
// cache is nil) must forward every packet along exactly the path the
// legacy instance does, for both protocols and both packet generations —
// in both the exact and the compact snapshot encoding (the test topology
// has unit weights, so float32 distance quantization is lossless and the
// compact regime must match bit for bit too).
func TestForwardSnapshotRegime(t *testing.T) {
	env, legacy := testEnv(t, 47, 300, 1200)
	for _, regime := range []struct {
		name  string
		build func() (*snapshot.Snapshot, error)
	}{
		{"exact", func() (*snapshot.Snapshot, error) {
			return snapshot.Build(env.G, legacy.ND.K, env.Landmarks)
		}},
		{"compact", func() (*snapshot.Snapshot, error) {
			return snapshot.BuildCompact(env.G, legacy.ND.K, env.Landmarks)
		}},
	} {
		t.Run(regime.name, func(t *testing.T) {
			snap, err := regime.build()
			if err != nil {
				t.Fatalf("snapshot build: %v", err)
			}
			snapped := NewDisco(env, WithSeed(47))
			snapped.ND.UseSnapshot(snap)
			fork := snapped.Fork() // snapshot fork: no private caches at all
			pairs := metrics.SamplePairs(rand.New(rand.NewSource(48)), env.N(), 200)
			for _, p := range pairs {
				s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
				checks := []struct {
					name      string
					want, got []graph.NodeID
				}{
					{"ND.ForwardFirst", legacy.ND.ForwardFirst(s, dst), fork.ND.ForwardFirst(s, dst)},
					{"ND.ForwardLater", legacy.ND.ForwardLater(s, dst), fork.ND.ForwardLater(s, dst)},
					{"Disco.ForwardFirst", legacy.ForwardFirst(s, dst), fork.ForwardFirst(s, dst)},
				}
				for _, c := range checks {
					if len(c.want) != len(c.got) {
						t.Fatalf("%s(%d,%d): snapshot fork path %v != legacy %v", c.name, s, dst, c.got, c.want)
					}
					for i := range c.want {
						if c.want[i] != c.got[i] {
							t.Fatalf("%s(%d,%d): snapshot fork path %v != legacy %v", c.name, s, dst, c.got, c.want)
						}
					}
				}
			}
		})
	}
}
