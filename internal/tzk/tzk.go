// Package tzk implements the generalized Thorup–Zwick k-level scheme [44]
// that §6 of the paper poses as future work: "Disco has chosen one point
// in the state/stretch tradeoff space, with O~(sqrt(n)) state and stretch
// <= 3 for packets after the first; can we translate other tradeoff points
// to a distributed setting for name-independent routing?"
//
// This package provides the name-dependent half of the answer as a
// converged data plane: the k-level landmark hierarchy with per-node
// bunches, stretch at most 2k-1 and expected state O~(k·n^(1/k)) — the
// k = 2 instance is exactly the landmark/cluster structure NDDisco and S4
// build on. The tradeoff experiment (eval.TradeoffSweep) measures state
// and stretch across k, reproducing the theory's staircase in simulation.
package tzk

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"disco/internal/graph"
	"disco/internal/pathtree"
)

// Scheme is a converged k-level Thorup–Zwick instance.
type Scheme struct {
	G *graph.Graph
	K int

	levels  [][]graph.NodeID // levels[i] = A_i (A_0 = all nodes), descending sets
	inLevel [][]bool         // inLevel[i][v]
	witness [][]graph.NodeID // witness[i][v] = p_i(v), nearest node of A_i
	distA   [][]float64      // distA[i][v] = d(v, A_i)

	// bunch[v] holds d(v,w) for every w in v's bunch B(v).
	bunch []map[graph.NodeID]float64

	trees *pathtree.Cache
}

// New builds the scheme with k levels over g. Levels are sampled with the
// standard probability n^(-1/k) per level; rng drives the sampling.
// k = 1 degenerates to full shortest-path state (stretch 1); k = 2 is the
// Disco/S4 landmark point.
func New(g *graph.Graph, k int, rng *rand.Rand) *Scheme {
	if k < 1 {
		panic("tzk: k must be >= 1")
	}
	n := g.N()
	s := &Scheme{G: g, K: k, trees: pathtree.NewCache(g, 64)}
	p := math.Pow(float64(n), -1.0/float64(k))

	// Sample the hierarchy A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1}; A_k = ∅.
	s.levels = make([][]graph.NodeID, k)
	s.inLevel = make([][]bool, k)
	cur := make([]graph.NodeID, n)
	for i := range cur {
		cur[i] = graph.NodeID(i)
	}
	for i := 0; i < k; i++ {
		s.levels[i] = cur
		s.inLevel[i] = make([]bool, n)
		for _, v := range cur {
			s.inLevel[i][v] = true
		}
		if i == k-1 {
			break
		}
		var next []graph.NodeID
		for _, v := range cur {
			if rng.Float64() < p {
				next = append(next, v)
			}
		}
		if len(next) == 0 {
			// Keep the hierarchy non-empty (w.h.p. unnecessary).
			next = []graph.NodeID{cur[rng.Intn(len(cur))]}
		}
		sort.Slice(next, func(a, b int) bool { return next[a] < next[b] })
		cur = next
	}

	// Witnesses and distances to each level: one multi-source Dijkstra per
	// level.
	sp := graph.NewSSSP(g)
	s.witness = make([][]graph.NodeID, k)
	s.distA = make([][]float64, k)
	for i := 0; i < k; i++ {
		sp.RunMulti(s.levels[i])
		s.witness[i] = make([]graph.NodeID, n)
		s.distA[i] = make([]float64, n)
		for v := 0; v < n; v++ {
			s.witness[i][v] = sp.Source(graph.NodeID(v))
			s.distA[i][v] = sp.Dist(graph.NodeID(v))
		}
	}

	// Bunches: B(v) = ∪_i { w ∈ A_i \ A_{i+1} : d(v,w) < d(v, A_{i+1}) }.
	// Computed from each w's side: w ∈ A_i \ A_{i+1} settles its cluster
	// {v : d(w,v) < d(v, A_{i+1})} with a pruned Dijkstra.
	s.bunch = make([]map[graph.NodeID]float64, n)
	for v := range s.bunch {
		s.bunch[v] = make(map[graph.NodeID]float64)
	}
	for i := 0; i < k; i++ {
		var bound []float64
		if i+1 < k {
			bound = s.distA[i+1]
		}
		for _, w := range s.levels[i] {
			if i+1 < k && s.inLevel[i+1][w] {
				continue // w ∈ A_{i+1}: not at this level's fringe
			}
			s.clusterFrom(w, bound)
		}
	}
	return s
}

// Fork returns a concurrency view of s for one worker of a parallel
// sweep: the converged hierarchy, witnesses and bunches are shared
// read-only; only the lazy tree cache (used to materialize routes) is
// private. Forks route concurrently and return exactly the routes the
// original would.
func (s *Scheme) Fork() *Scheme {
	return &Scheme{
		G:       s.G,
		K:       s.K,
		levels:  s.levels,
		inLevel: s.inLevel,
		witness: s.witness,
		distA:   s.distA,
		bunch:   s.bunch,
		trees:   pathtree.NewCache(s.G, s.trees.Cap()),
	}
}

// clusterFrom runs the pruned Dijkstra of [44]: from w, settle exactly the
// nodes v with d(w,v) < bound[v] (bound nil = no bound, top level) and add
// w to their bunches.
func (s *Scheme) clusterFrom(w graph.NodeID, bound []float64) {
	type item struct {
		d float64
		v graph.NodeID
	}
	dist := map[graph.NodeID]float64{w: 0}
	settled := map[graph.NodeID]bool{}
	heap := []item{{0, w}}
	push := func(it item) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].d < heap[i].d || (heap[p].d == heap[i].d && heap[p].v <= heap[i].v) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		n := len(heap) - 1
		heap[0] = heap[n]
		heap = heap[:n]
		i := 0
		for {
			l, r, m := 2*i+1, 2*i+2, i
			if l < n && (heap[l].d < heap[m].d || (heap[l].d == heap[m].d && heap[l].v < heap[m].v)) {
				m = l
			}
			if r < n && (heap[r].d < heap[m].d || (heap[r].d == heap[m].d && heap[r].v < heap[m].v)) {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
		return top
	}
	for len(heap) > 0 {
		it := pop()
		if settled[it.v] || it.d != dist[it.v] {
			continue
		}
		settled[it.v] = true
		s.bunch[it.v][w] = it.d
		for _, e := range s.G.Neighbors(it.v) {
			nd := it.d + e.Weight
			if bound != nil && nd >= bound[e.To] {
				continue // prune: w won't be in e.To's bunch via this path
			}
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				push(item{nd, e.To})
			}
		}
	}
}

// Dist returns the oracle's distance estimate and the intermediate node w
// the route passes through (the standard bunch-walk): guaranteed estimate
// <= (2k-1) · d(u,v).
func (s *Scheme) Dist(u, v graph.NodeID) (float64, graph.NodeID) {
	w := u
	for i := 0; ; i++ {
		if d, ok := s.bunch[v][w]; ok {
			return s.bunchDist(u, w) + d, w
		}
		i2 := i + 1
		if i2 >= s.K {
			// Top level: witness is in everyone's bunch by construction.
			w = s.witness[s.K-1][u]
			du := s.distA[s.K-1][u]
			dv, ok := s.bunch[v][w]
			if !ok {
				panic(fmt.Sprintf("tzk: top-level witness %d missing from bunch of %d", w, v))
			}
			return du + dv, w
		}
		u, v = v, u
		w = s.witness[i2][u]
	}
}

// bunchDist returns d(u,w) for w known to u (bunch member or witness).
func (s *Scheme) bunchDist(u, w graph.NodeID) float64 {
	if u == w {
		return 0
	}
	if d, ok := s.bunch[u][w]; ok {
		return d
	}
	for i := 0; i < s.K; i++ {
		if s.witness[i][u] == w {
			return s.distA[i][u]
		}
	}
	panic(fmt.Sprintf("tzk: node %d does not know %d", u, w))
}

// Route materializes the stretch-(2k-1) route u ⇝ w ⇝ v (each leg a
// shortest path, as the converged routing tables would forward).
func (s *Scheme) Route(u, v graph.NodeID) []graph.NodeID {
	_, w := s.Dist(u, v)
	head := s.trees.Tree(w).PathFrom(u) // u ⇝ w
	tail := s.trees.Tree(w).PathTo(v)   // w ⇝ v
	out := append([]graph.NodeID(nil), head...)
	for _, x := range tail[1:] {
		if len(out) >= 2 && out[len(out)-2] == x {
			out = out[:len(out)-1]
			continue
		}
		out = append(out, x)
	}
	return out
}

// TrueDist returns the exact shortest-path distance (for stretch
// accounting).
func (s *Scheme) TrueDist(u, v graph.NodeID) float64 {
	return s.trees.Tree(v).Dist(u)
}

// StateEntries returns per-node entry counts: bunch entries plus one
// witness per level.
func (s *Scheme) StateEntries() []int {
	out := make([]int, s.G.N())
	for v := range out {
		out[v] = len(s.bunch[v]) + s.K
	}
	return out
}

// LevelSizes returns |A_i| for each level.
func (s *Scheme) LevelSizes() []int {
	out := make([]int, s.K)
	for i, l := range s.levels {
		out[i] = len(l)
	}
	return out
}
