package tzk

import (
	"math"
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/topology"
)

func TestK1IsShortestPaths(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(1)), 100, 400)
	s := New(g, 1, rand.New(rand.NewSource(2)))
	for u := 0; u < 100; u += 7 {
		for v := 0; v < 100; v += 11 {
			d, _ := s.Dist(graph.NodeID(u), graph.NodeID(v))
			if d != s.TrueDist(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("k=1 estimate %v != true %v", d, s.TrueDist(graph.NodeID(u), graph.NodeID(v)))
			}
		}
	}
	// k=1 state is the full table.
	for _, e := range s.StateEntries() {
		if e < 100 {
			t.Fatalf("k=1 state %d below n", e)
		}
	}
}

func TestStretchBound2kMinus1(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		g := topology.Geometric(rand.New(rand.NewSource(3)), 400, 8)
		s := New(g, k, rand.New(rand.NewSource(4)))
		pairs := metrics.SamplePairs(rand.New(rand.NewSource(5)), 400, 300)
		bound := float64(2*k - 1)
		for _, p := range pairs {
			u, v := graph.NodeID(p.Src), graph.NodeID(p.Dst)
			true_ := s.TrueDist(u, v)
			est, _ := s.Dist(u, v)
			if est < true_-1e-9 {
				t.Fatalf("k=%d: estimate below true distance", k)
			}
			if est > bound*true_+1e-9 {
				t.Fatalf("k=%d: estimate stretch %v > %v", k, est/true_, bound)
			}
		}
	}
}

func TestRouteMatchesEstimate(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(6)), 300, 1200)
	s := New(g, 3, rand.New(rand.NewSource(7)))
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(8)), 300, 200)
	for _, p := range pairs {
		u, v := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		route := s.Route(u, v)
		if route[0] != u || route[len(route)-1] != v {
			t.Fatalf("route endpoints wrong")
		}
		est, _ := s.Dist(u, v)
		// The materialized route can only be shorter than the estimate
		// (backtrack trimming at w), never longer.
		if l := g.PathLength(route); l > est+1e-9 {
			t.Fatalf("route length %v exceeds estimate %v", l, est)
		}
	}
}

func TestBothDirectionsBounded(t *testing.T) {
	// The bunch-walk is not symmetric (u ∈ B(v) does not imply v ∈ B(u)),
	// but both query directions must satisfy the same 2k-1 bound against
	// the (symmetric) true distance.
	g := topology.Gnm(rand.New(rand.NewSource(9)), 200, 800)
	k := 3
	s := New(g, k, rand.New(rand.NewSource(10)))
	bound := float64(2*k - 1)
	for u := 0; u < 200; u += 17 {
		for v := 0; v < 200; v += 13 {
			if u == v {
				continue
			}
			true_ := s.TrueDist(graph.NodeID(u), graph.NodeID(v))
			du, _ := s.Dist(graph.NodeID(u), graph.NodeID(v))
			dv, _ := s.Dist(graph.NodeID(v), graph.NodeID(u))
			for _, d := range []float64{du, dv} {
				if d < true_-1e-9 || d > bound*true_+1e-9 {
					t.Fatalf("estimate %v outside [d, %v·d] for d=%v", d, bound, true_)
				}
			}
		}
	}
}

func TestStateShrinksWithK(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(11)), 1024, 4096)
	mean := func(k int) float64 {
		s := New(g, k, rand.New(rand.NewSource(12)))
		tot := 0
		for _, e := range s.StateEntries() {
			tot += e
		}
		return float64(tot) / 1024
	}
	m1, m2, m4 := mean(1), mean(2), mean(4)
	if !(m1 > m2 && m2 > m4) {
		t.Fatalf("state must shrink with k: %v %v %v", m1, m2, m4)
	}
	// k=2 mean should be in the O~(sqrt(n)) ballpark.
	if m2 > 40*math.Sqrt(1024) {
		t.Errorf("k=2 mean state %v far above sqrt(n) scale", m2)
	}
	t.Logf("mean state: k=1 %.0f, k=2 %.0f, k=4 %.0f", m1, m2, m4)
}

func TestLevelSizesDecrease(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(13)), 512, 2048)
	s := New(g, 4, rand.New(rand.NewSource(14)))
	sizes := s.LevelSizes()
	if sizes[0] != 512 {
		t.Fatalf("A_0 must be all nodes")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("levels must be nested: %v", sizes)
		}
		if sizes[i] == 0 {
			t.Fatalf("level %d empty", i)
		}
	}
}

func TestSelfDistance(t *testing.T) {
	g := topology.Ring(32)
	s := New(g, 2, rand.New(rand.NewSource(15)))
	for v := 0; v < 32; v++ {
		d, _ := s.Dist(graph.NodeID(v), graph.NodeID(v))
		if d != 0 {
			t.Fatalf("self distance %v", d)
		}
	}
}

func TestRejectsBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(topology.Ring(8), 0, rand.New(rand.NewSource(1)))
}
