package pathtree

import (
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/topology"
)

func TestTreeMatchesSSSP(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(1)), 120, 480)
	c := NewCache(g, 8)
	s := graph.NewSSSP(g)
	for root := 0; root < 120; root += 11 {
		tr := c.Tree(graph.NodeID(root))
		s.Run(graph.NodeID(root))
		for v := 0; v < 120; v++ {
			if tr.Dist(graph.NodeID(v)) != s.Dist(graph.NodeID(v)) {
				t.Fatalf("dist mismatch at root %d node %d", root, v)
			}
			if tr.Parent(graph.NodeID(v)) != s.Parent(graph.NodeID(v)) {
				t.Fatalf("parent mismatch at root %d node %d", root, v)
			}
		}
	}
}

func TestPathToAndFrom(t *testing.T) {
	g := topology.Line(8)
	c := NewCache(g, 2)
	tr := c.Tree(0)
	to := tr.PathTo(5)
	from := tr.PathFrom(5)
	if len(to) != 6 || to[0] != 0 || to[5] != 5 {
		t.Fatalf("PathTo %v", to)
	}
	if len(from) != 6 || from[0] != 5 || from[5] != 0 {
		t.Fatalf("PathFrom %v", from)
	}
	for i := range to {
		if to[i] != from[len(from)-1-i] {
			t.Fatal("PathTo and PathFrom must be reverses")
		}
	}
}

func TestCacheHitIdentity(t *testing.T) {
	g := topology.Ring(30)
	c := NewCache(g, 4)
	a := c.Tree(3)
	b := c.Tree(3)
	if a != b {
		t.Fatal("cache must return the same tree on a hit")
	}
}

func TestCacheEviction(t *testing.T) {
	g := topology.Ring(30)
	c := NewCache(g, 2)
	t0 := c.Tree(0)
	c.Tree(1)
	c.Tree(2) // evicts root 0 (FIFO)
	if got := c.Tree(0); got == t0 {
		t.Fatal("evicted tree must be recomputed")
	}
	// Still correct after recomputation.
	if c.Tree(0).Dist(15) != 15 {
		t.Fatal("recomputed tree wrong")
	}
}

func TestCacheReset(t *testing.T) {
	g := topology.Ring(10)
	c := NewCache(g, 4)
	t0 := c.Tree(0)
	c.Reset()
	if c.Tree(0) == t0 {
		t.Fatal("Reset must drop cached trees")
	}
}

func TestCapClamp(t *testing.T) {
	g := topology.Ring(10)
	c := NewCache(g, 0)
	if c.Cap() != 1 {
		t.Fatalf("cap %d want clamp to 1", c.Cap())
	}
	c.Tree(0)
	c.Tree(1)
}
