// Package pathtree provides cached full shortest-path trees. Every
// protocol's evaluation needs the same two primitives — the true distance
// d(s,t) as the stretch denominator, and materialized shortest paths to
// landmarks / resolution owners — and trees are O(n) memory each, so a
// shared capped cache keeps large-topology evaluations affordable.
package pathtree

import "disco/internal/graph"

// Tree is a full single-source shortest-path tree.
type Tree struct {
	Root   graph.NodeID
	dist   []float64
	parent []graph.NodeID
}

// Dist returns d(Root, v) (+Inf if unreachable).
func (t *Tree) Dist(v graph.NodeID) float64 { return t.dist[v] }

// Parent returns v's predecessor on the path Root ⇝ v, or graph.None.
func (t *Tree) Parent(v graph.NodeID) graph.NodeID { return t.parent[v] }

// PathTo returns Root ⇝ v (both endpoints included).
func (t *Tree) PathTo(v graph.NodeID) []graph.NodeID {
	var rev []graph.NodeID
	for u := v; u != graph.None; u = t.parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathFrom returns v ⇝ Root — the same tree path walked the other way,
// valid because graphs here are undirected (the paper's §6 route
// reversibility assumption).
func (t *Tree) PathFrom(v graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for u := v; u != graph.None; u = t.parent[u] {
		out = append(out, u)
	}
	return out
}

// Cache memoizes trees by root with FIFO eviction.
type Cache struct {
	g     *graph.Graph
	s     *graph.SSSP
	cap   int
	trees map[graph.NodeID]*Tree
	order []graph.NodeID
}

// NewCache returns a cache over g holding at most capacity trees.
func NewCache(g *graph.Graph, capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		g:     g,
		s:     graph.NewSSSP(g),
		cap:   capacity,
		trees: make(map[graph.NodeID]*Tree),
	}
}

// Tree returns the shortest-path tree rooted at root, computing it on a
// miss (one full Dijkstra).
func (c *Cache) Tree(root graph.NodeID) *Tree {
	if t, ok := c.trees[root]; ok {
		return t
	}
	c.s.Run(root)
	n := c.g.N()
	t := &Tree{Root: root, dist: make([]float64, n), parent: make([]graph.NodeID, n)}
	for v := 0; v < n; v++ {
		t.dist[v] = c.s.Dist(graph.NodeID(v))
		t.parent[v] = c.s.Parent(graph.NodeID(v))
	}
	if len(c.order) >= c.cap {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.trees, evict)
	}
	c.trees[root] = t
	c.order = append(c.order, root)
	return t
}

// Cap returns the cache capacity.
func (c *Cache) Cap() int { return c.cap }

// Reset drops all cached trees.
func (c *Cache) Reset() {
	c.trees = make(map[graph.NodeID]*Tree)
	c.order = nil
}
