// Package pathtree provides shortest-path tree views in three flavours:
// materialized full trees with a capped per-worker Cache (the historical
// path), a zero-materialization Lazy view over reusable Dijkstra scratch
// for roots that are queried once and never again (stretch denominators,
// per-pair destination trees), and a concurrency-safe Shared bank for
// rarely-needed roots that forks of one protocol instance want to compute
// at most once across all workers (VRR dead-end recovery).
package pathtree

import (
	"sync"

	"disco/internal/graph"
)

// Tree is a full single-source shortest-path tree.
type Tree struct {
	Root   graph.NodeID
	dist   []float64
	parent []graph.NodeID
}

// Dist returns d(Root, v) (+Inf if unreachable).
func (t *Tree) Dist(v graph.NodeID) float64 { return t.dist[v] }

// Parent returns v's predecessor on the path Root ⇝ v, or graph.None.
func (t *Tree) Parent(v graph.NodeID) graph.NodeID { return t.parent[v] }

// PathTo returns Root ⇝ v (both endpoints included).
func (t *Tree) PathTo(v graph.NodeID) []graph.NodeID {
	var rev []graph.NodeID
	for u := v; u != graph.None; u = t.parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathFrom returns v ⇝ Root — the same tree path walked the other way,
// valid because graphs here are undirected (the paper's §6 route
// reversibility assumption).
func (t *Tree) PathFrom(v graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for u := v; u != graph.None; u = t.parent[u] {
		out = append(out, u)
	}
	return out
}

// Cache memoizes trees by root with FIFO eviction.
type Cache struct {
	g     *graph.Graph
	s     *graph.SSSP
	cap   int
	trees map[graph.NodeID]*Tree
	order []graph.NodeID
}

// NewCache returns a cache over g holding at most capacity trees.
func NewCache(g *graph.Graph, capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		g:     g,
		s:     graph.NewSSSP(g),
		cap:   capacity,
		trees: make(map[graph.NodeID]*Tree),
	}
}

// Tree returns the shortest-path tree rooted at root, computing it on a
// miss (one full Dijkstra).
func (c *Cache) Tree(root graph.NodeID) *Tree {
	if t, ok := c.trees[root]; ok {
		return t
	}
	c.s.Run(root)
	n := c.g.N()
	t := &Tree{Root: root, dist: make([]float64, n), parent: make([]graph.NodeID, n)}
	for v := 0; v < n; v++ {
		t.dist[v] = c.s.Dist(graph.NodeID(v))
		t.parent[v] = c.s.Parent(graph.NodeID(v))
	}
	if len(c.order) >= c.cap {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.trees, evict)
	}
	c.trees[root] = t
	c.order = append(c.order, root)
	return t
}

// Cap returns the cache capacity.
func (c *Cache) Cap() int { return c.cap }

// Reset drops all cached trees.
func (c *Cache) Reset() {
	c.trees = make(map[graph.NodeID]*Tree)
	c.order = nil
}

// Lazy is a single-root shortest-path view backed by one reusable SSSP
// scratch: Bind(root) runs Dijkstra only when the root changes, and queries
// read the scratch directly, so no per-root Tree is ever materialized. It
// fits roots that are queried in runs (one destination per sampled pair)
// where a Cache would allocate O(n) per root for a single lookup. Not safe
// for concurrent use; one per worker, shareable between the protocol forks
// of that worker so they reuse each other's Dijkstra runs.
type Lazy struct {
	s     *graph.SSSP
	root  graph.NodeID
	bound bool
}

// NewLazy returns a lazy view over g with no root bound yet.
func NewLazy(g *graph.Graph) *Lazy {
	return &Lazy{s: graph.NewSSSP(g), root: graph.None}
}

// Bind makes root the current tree root, running one full Dijkstra if the
// root actually changed.
func (l *Lazy) Bind(root graph.NodeID) {
	if l.bound && l.root == root {
		return
	}
	l.s.Run(root)
	l.root = root
	l.bound = true
}

// Root returns the currently bound root (graph.None before the first Bind).
func (l *Lazy) Root() graph.NodeID {
	if !l.bound {
		return graph.None
	}
	return l.root
}

// Dist returns d(root, v) for the bound root (+Inf if unreachable).
func (l *Lazy) Dist(v graph.NodeID) float64 { return l.s.Dist(v) }

// Parent returns v's predecessor toward the bound root, or graph.None.
func (l *Lazy) Parent(v graph.NodeID) graph.NodeID { return l.s.Parent(v) }

// PathFrom returns v ⇝ root for the bound root (cf. Tree.PathFrom).
func (l *Lazy) PathFrom(v graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for u := v; u != graph.None; u = l.s.Parent(u) {
		out = append(out, u)
	}
	return out
}

// PathTo returns root ⇝ v for the bound root (cf. Tree.PathTo).
func (l *Lazy) PathTo(v graph.NodeID) []graph.NodeID {
	return l.s.PathTo(v)
}

// Shared is a concurrency-safe memoizing tree bank: the first caller to ask
// for a root computes the tree, every later caller (on any goroutine) gets
// the same materialized tree. Trees are pure functions of the graph, so a
// benign double-compute under contention yields identical values. Use it
// for rarely-hit roots that all forks of one instance should pay for at
// most once (e.g. VRR's greedy dead-end recovery); for per-pair roots use
// Lazy instead, since Shared retains every tree it ever built.
type Shared struct {
	g  *graph.Graph
	mu sync.RWMutex
	m  map[graph.NodeID]*Tree
}

// NewShared returns an empty bank over g.
func NewShared(g *graph.Graph) *Shared {
	return &Shared{g: g, m: make(map[graph.NodeID]*Tree)}
}

// Tree returns the shortest-path tree rooted at root, computing it at most
// once per bank (modulo benign races).
func (b *Shared) Tree(root graph.NodeID) *Tree {
	b.mu.RLock()
	t := b.m[root]
	b.mu.RUnlock()
	if t != nil {
		return t
	}
	// Compute outside the lock: misses are rare and a stall here would
	// serialize every worker behind one Dijkstra.
	s := graph.NewSSSP(b.g)
	s.Run(root)
	n := b.g.N()
	t = &Tree{Root: root, dist: make([]float64, n), parent: make([]graph.NodeID, n)}
	for v := 0; v < n; v++ {
		t.dist[v] = s.Dist(graph.NodeID(v))
		t.parent[v] = s.Parent(graph.NodeID(v))
	}
	b.mu.Lock()
	if prev, ok := b.m[root]; ok {
		t = prev // lost the race; keep the first tree so pointers stay stable
	} else {
		b.m[root] = t
	}
	b.mu.Unlock()
	return t
}

// Len returns the number of banked trees.
func (b *Shared) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.m)
}
