// Package sim is the discrete event engine behind the paper's "custom
// discrete event simulator" (§5.1): a deterministic time-ordered event
// queue over which the distributed protocols (path vector in
// internal/pathvector, overlay dissemination) run to measure control
// messaging until convergence (Fig. 8). Events at equal times fire in
// scheduling order (FIFO), so runs are exactly reproducible.
package sim

// Time is simulated time; link latencies are added as delays.
type Time = float64

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a hand-rolled binary min-heap over a typed event slice.
// container/heap's interface methods would box every event through
// interface{} on each Push and Pop — one allocation per scheduled event,
// which dominates the engine's cost on million-event convergence runs
// (see BenchmarkEngine). The (at, seq) key is a total order, so any
// correct heap pops events in exactly the same sequence.
type eventHeap []event

func (h eventHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(it event) {
	*h = append(*h, it)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.before(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the fn reference for the GC
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q.before(l, s) {
			s = l
		}
		if r < n && q.before(r, s) {
			s = r
		}
		if s == i {
			break
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
	return top
}

// Engine is a deterministic discrete event scheduler. The zero value is
// ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	steps  uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule enqueues fn to run delay time units from now (delay >= 0).
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.seq++
	e.events.push(event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run processes events until the queue drains (protocol quiescence — the
// convergence criterion for triggered-update protocols) or maxSteps events
// have fired (0 = no limit). It returns the number of events processed and
// whether the queue drained.
func (e *Engine) Run(maxSteps uint64) (steps uint64, quiesced bool) {
	var done uint64
	for len(e.events) > 0 {
		if maxSteps > 0 && done >= maxSteps {
			return done, false
		}
		it := e.events.pop()
		e.now = it.at
		e.steps++
		done++
		it.fn()
	}
	return done, true
}
