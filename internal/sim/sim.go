// Package sim is the discrete event engine behind the paper's "custom
// discrete event simulator" (§5.1): a deterministic time-ordered event
// queue over which the distributed protocols (path vector in
// internal/pathvector, overlay dissemination) run to measure control
// messaging until convergence (Fig. 8). Events at equal times fire in
// scheduling order (FIFO), so runs are exactly reproducible.
package sim

import "container/heap"

// Time is simulated time; link latencies are added as delays.
type Time = float64

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a deterministic discrete event scheduler. The zero value is
// ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	steps  uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule enqueues fn to run delay time units from now (delay >= 0).
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run processes events until the queue drains (protocol quiescence — the
// convergence criterion for triggered-update protocols) or maxSteps events
// have fired (0 = no limit). It returns the number of events processed and
// whether the queue drained.
func (e *Engine) Run(maxSteps uint64) (steps uint64, quiesced bool) {
	var done uint64
	for len(e.events) > 0 {
		if maxSteps > 0 && done >= maxSteps {
			return done, false
		}
		it := heap.Pop(&e.events).(event)
		e.now = it.at
		e.steps++
		done++
		it.fn()
	}
	return done, true
}
