package sim

import "testing"

func TestEventOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	steps, q := e.Run(0)
	if steps != 3 || !q {
		t.Fatalf("steps=%d quiesced=%v", steps, q)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order %v", got)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now=%v want 3", e.Now())
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events must fire in scheduling order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var got []string
	e.Schedule(1, func() {
		got = append(got, "a")
		e.Schedule(0, func() { got = append(got, "a0") })
		e.Schedule(2, func() { got = append(got, "a2") })
	})
	e.Schedule(2, func() { got = append(got, "b") })
	e.Run(0)
	want := []string{"a", "a0", "b", "a2"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestMaxSteps(t *testing.T) {
	var e Engine
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		e.Schedule(1, reschedule)
	}
	e.Schedule(0, reschedule)
	steps, q := e.Run(100)
	if q {
		t.Fatal("infinite chain should not quiesce")
	}
	if steps != 100 || count != 100 {
		t.Fatalf("steps=%d count=%d", steps, count)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var e Engine
	e.Schedule(-1, func() {})
}

func TestPendingAndSteps(t *testing.T) {
	var e Engine
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.Run(0)
	if e.Pending() != 0 || e.Steps() != 2 {
		t.Fatalf("pending %d steps %d", e.Pending(), e.Steps())
	}
}
