package sim

import "testing"

func TestEventOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	steps, q := e.Run(0)
	if steps != 3 || !q {
		t.Fatalf("steps=%d quiesced=%v", steps, q)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order %v", got)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now=%v want 3", e.Now())
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events must fire in scheduling order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var got []string
	e.Schedule(1, func() {
		got = append(got, "a")
		e.Schedule(0, func() { got = append(got, "a0") })
		e.Schedule(2, func() { got = append(got, "a2") })
	})
	e.Schedule(2, func() { got = append(got, "b") })
	e.Run(0)
	want := []string{"a", "a0", "b", "a2"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestMaxSteps(t *testing.T) {
	var e Engine
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		e.Schedule(1, reschedule)
	}
	e.Schedule(0, reschedule)
	steps, q := e.Run(100)
	if q {
		t.Fatal("infinite chain should not quiesce")
	}
	if steps != 100 || count != 100 {
		t.Fatalf("steps=%d count=%d", steps, count)
	}
}

// TestHeapOrderRandomized cross-checks the hand-rolled event heap against
// the (at, seq) total order on a large interleaved schedule-while-draining
// workload — the property container/heap used to provide.
func TestHeapOrderRandomized(t *testing.T) {
	var e Engine
	var fired []Time
	// A deterministic LCG stands in for math/rand to keep the test dep-free.
	state := uint64(12345)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % mod
	}
	var schedule func(depth int)
	schedule = func(depth int) {
		d := Time(next(1000)) / 10
		e.Schedule(d, func() {
			fired = append(fired, e.Now())
			if depth > 0 {
				schedule(depth - 1)
				schedule(depth - 2)
			}
		})
	}
	for i := 0; i < 50; i++ {
		schedule(3)
	}
	if _, q := e.Run(0); !q {
		t.Fatal("did not quiesce")
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("events fired out of time order at %d: %v then %v", i, fired[i-1], fired[i])
		}
	}
	if len(fired) < 50 {
		t.Fatalf("only %d events fired", len(fired))
	}
}

// BenchmarkEngine measures the scheduler's per-event cost on a cascading
// workload (every event schedules its successor, the shape of a triggered
// path-vector update storm). The typed event heap brings this to zero
// allocations per event once the slice is warm; the old container/heap
// implementation boxed every event on both Push and Pop.
func BenchmarkEngine(b *testing.B) {
	const chains, depth = 64, 256
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		remaining := make([]int, chains)
		ticks := make([]func(), chains)
		for c := range ticks {
			c := c
			ticks[c] = func() {
				if remaining[c] > 0 {
					remaining[c]--
					e.Schedule(1, ticks[c])
				}
			}
		}
		for c := 0; c < chains; c++ {
			remaining[c] = depth
			e.Schedule(Time(c%7), ticks[c])
		}
		if _, q := e.Run(0); !q {
			b.Fatal("did not quiesce")
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var e Engine
	e.Schedule(-1, func() {})
}

func TestPendingAndSteps(t *testing.T) {
	var e Engine
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.Run(0)
	if e.Pending() != 0 || e.Steps() != 2 {
		t.Fatalf("pending %d steps %d", e.Pending(), e.Steps())
	}
}
