package s4

import (
	"math"
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

const eps = 1e-9

func routeOK(t *testing.T, g *graph.Graph, route []graph.NodeID, s, dst graph.NodeID) float64 {
	t.Helper()
	if len(route) == 0 || route[0] != s || route[len(route)-1] != dst {
		t.Fatalf("route endpoints wrong: %v (want %d..%d)", route, s, dst)
	}
	return g.PathLength(route)
}

func TestS4LaterStretch3(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(1)), 400, 1600)
	env := static.NewEnv(g, 1)
	s := New(env, 1)
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(2)), 400, 300)
	for _, p := range pairs {
		src, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		short := s.ShortestDist(src, dst)
		later := routeOK(t, g, s.LaterRoute(src, dst), src, dst)
		if later > 3*short+eps {
			t.Fatalf("S4 later stretch %v > 3 (%d->%d)", later/short, src, dst)
		}
	}
}

func TestS4LaterStretch3Weighted(t *testing.T) {
	g := topology.Geometric(rand.New(rand.NewSource(3)), 500, 8)
	env := static.NewEnv(g, 3)
	s := New(env, 1)
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(4)), 500, 300)
	for _, p := range pairs {
		src, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		short := s.ShortestDist(src, dst)
		later := routeOK(t, g, s.LaterRoute(src, dst), src, dst)
		if later > 3*short+eps {
			t.Fatalf("S4 later stretch %v > 3 on weighted graph", later/short)
		}
	}
}

func TestS4FirstUnboundedVsLater(t *testing.T) {
	// First packets detour through the resolution landmark; their mean
	// stretch must exceed later packets' on a latency-weighted graph, and
	// individual first packets can blow well past stretch 3 (Fig. 3).
	g := topology.Geometric(rand.New(rand.NewSource(5)), 800, 8)
	env := static.NewEnv(g, 5)
	s := New(env, 1)
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(6)), 800, 400)
	sumF, sumL, maxF := 0.0, 0.0, 0.0
	n := 0
	for _, p := range pairs {
		src, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		short := s.ShortestDist(src, dst)
		if short == 0 {
			continue
		}
		f := routeOK(t, g, s.FirstRoute(src, dst), src, dst) / short
		l := routeOK(t, g, s.LaterRoute(src, dst), src, dst) / short
		sumF += f
		sumL += l
		if f > maxF {
			maxF = f
		}
		n++
	}
	if sumF/float64(n) <= sumL/float64(n) {
		t.Errorf("S4 first-packet mean stretch (%v) should exceed later (%v)",
			sumF/float64(n), sumL/float64(n))
	}
	if maxF <= 3 {
		t.Errorf("expected some S4 first packets above stretch 3, max %v", maxF)
	}
}

func TestClusterSizeConsistency(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(7)), 300, 1200)
	env := static.NewEnv(g, 7)
	s := New(env, 1)
	all := s.ClusterSizesAll()
	for v := 0; v < 300; v += 17 {
		if got := s.ClusterSize(graph.NodeID(v)); got != all[v] {
			t.Fatalf("ClusterSize(%d)=%d but ClusterSizesAll says %d", v, got, all[v])
		}
	}
}

func TestClusterDefinition(t *testing.T) {
	// Distances are compared destination-rooted (d computed by Dijkstra
	// from w), matching the protocol's own accounting — float sums depend
	// on association order, so the reference must use the same direction.
	g := topology.Geometric(rand.New(rand.NewSource(8)), 200, 8)
	env := static.NewEnv(g, 8)
	s := New(env, 1)
	ss := graph.NewSSSP(g)
	for w := 0; w < 200; w += 13 {
		ss.Run(graph.NodeID(w))
		for v := 0; v < 200; v++ {
			if v == w {
				continue
			}
			want := ss.Dist(graph.NodeID(v)) < env.LMDist[w]
			if got := s.InCluster(graph.NodeID(v), graph.NodeID(w)); got != want {
				t.Fatalf("InCluster(%d,%d)=%v want %v", v, w, got, want)
			}
		}
	}
}

func TestS4WorstCaseTreeState(t *testing.T) {
	// The paper's footnote 6: on the two-level tree, S4's root cluster is
	// Θ(n) while Disco's per-node state stays Θ(sqrt(n log n)).
	k := 32 // n = 1 + 32 + 1024 = 1057
	g := topology.S4WorstTree(k)
	n := g.N()
	env := static.NewEnv(g, 9)
	s := New(env, 1)
	sizes := s.ClusterSizesAll()
	root := sizes[0]
	if root < n/3 {
		t.Errorf("expected Θ(n) cluster at root, got %d of %d", root, n)
	}
	// Disco bound on the same topology (vicinities are capped at K).
	kVic := vicinity.DefaultK(n)
	if float64(root) < 2*float64(kVic) {
		t.Errorf("root cluster %d should dwarf Disco's vicinity %d", root, kVic)
	}
}

func TestS4StateEntries(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(10)), 256, 1024)
	env := static.NewEnv(g, 10)
	s := New(env, 1)
	sizes := s.ClusterSizesAll()
	entries := s.StateEntries(sizes)
	nLM := len(env.Landmarks)
	totalRes := 0
	for v := 0; v < 256; v++ {
		if entries[v] < nLM+sizes[v] {
			t.Fatalf("state at %d below landmarks+cluster", v)
		}
		if !env.IsLM[v] {
			// Non-landmarks hold no resolution entries: state is exactly
			// landmarks + cluster + labels.
			labels := g.Degree(graph.NodeID(v))
			if m := nLM + sizes[v]; labels > m {
				labels = m
			}
			if entries[v] != nLM+sizes[v]+labels {
				t.Fatalf("state accounting wrong at %d", v)
			}
		}
	}
	for _, lm := range env.Landmarks {
		labels := g.Degree(lm)
		if m := nLM + sizes[lm]; labels > m {
			labels = m
		}
		totalRes += entries[lm] - nLM - sizes[lm] - labels
	}
	if totalRes != 256 {
		t.Fatalf("resolution entries across landmarks %d want 256", totalRes)
	}
}

func TestS4MeanStateBelowDiscoOnRandomGraph(t *testing.T) {
	// §5.2: "Average state is slightly higher in NDDisco than S4" on
	// well-behaved topologies — S4 clusters can undercut fixed vicinities.
	g := topology.Gnm(rand.New(rand.NewSource(11)), 1024, 4096)
	env := static.NewEnv(g, 11)
	s := New(env, 1)
	sizes := s.ClusterSizesAll()
	mean := 0.0
	for _, c := range sizes {
		mean += float64(c)
	}
	mean /= float64(len(sizes))
	k := float64(vicinity.DefaultK(1024))
	if mean > 3*k {
		t.Errorf("mean cluster size %v should be comparable to vicinity size %v on a random graph", mean, k)
	}
	if math.IsNaN(mean) {
		t.Fatal("NaN")
	}
}
