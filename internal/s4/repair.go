package s4

import (
	"math"

	"disco/internal/dynamics"
	"disco/internal/graph"
	"disco/internal/pathtree"
	"disco/internal/snapshot"
)

// Routing over repaired route state (see the sibling core/repair.go for
// the model): after failures, S4's re-converged tables are the
// Thorup–Zwick definitions evaluated on the failed topology — landmark
// trees from the repaired snapshot, clusters C(v) = {w : d(w,v) < d(w,
// l_w)} under post-failure distances and the re-homed landmark
// assignment. The per-pair destination Dijkstra that already funds the
// stretch denominator supplies those distances, so cluster checks stay
// exact without any global recomputation. ok=false replaces the panics of
// the connected-world paths when a destination is undeliverable. The
// repaired view satisfies dynamics.Router, the protocol-agnostic
// interface the timeline engine and experiments route through.

var _ dynamics.Router = (*S4)(nil)

// ForkRepaired returns an S4 routing view over the repaired snapshot,
// with a destination scratch bound to the failed topology. A non-nil dest
// (shared with the other protocol forks of the same worker) must have
// been created over rep.Graph().
func (s *S4) ForkRepaired(rep *snapshot.Snapshot, dest *pathtree.Lazy) *S4 {
	if dest == nil {
		dest = pathtree.NewLazy(rep.Graph())
	}
	return &S4{Env: s.Env, DB: s.DB, snap: rep, dest: dest}
}

// repairedLandmarkOf returns t's post-failure landmark — the nearest
// landmark on the failed topology (ties to the lowest ID, the
// deterministic re-registration rule) — and t's distance to it. The
// destination scratch must already be bound to t. Returns graph.None and
// +Inf when t's component lost every landmark.
func (s *S4) repairedLandmarkOf() (graph.NodeID, float64) {
	best, bestD := graph.None, math.Inf(1)
	for _, lm := range s.Env.Landmarks {
		if d := s.dest.Dist(lm); d < bestD || (d == bestD && best != graph.None && lm < best) {
			best, bestD = lm, d
		}
	}
	if math.IsInf(bestD, 1) {
		return graph.None, bestD
	}
	return best, bestD
}

// RepairedLaterRoute routes a packet whose source already holds t's
// refreshed label: direct if t is in src's post-failure cluster (or
// either endpoint is a landmark), else toward l_t with To-Destination
// peel-off. ok=false when src and t are separated or t lost all
// landmarks.
func (s *S4) RepairedLaterRoute(src, t graph.NodeID) ([]graph.NodeID, bool) {
	if src == t {
		return []graph.NodeID{src}, true
	}
	s.dest.Bind(t)
	if math.IsInf(s.dest.Dist(src), 1) {
		return nil, false
	}
	lt, lmd := s.repairedLandmarkOf()
	if s.Env.IsLM[src] || s.Env.IsLM[t] || s.dest.Dist(src) < lmd {
		return s.dest.PathFrom(src), true
	}
	if lt == graph.None || !s.snap.Reaches(lt, src) {
		return nil, false
	}
	return s.repairedWalkToDest(s.snap.PathFrom(lt, src), lmd), true
}

// RepairedFirstRoute prepends the resolution detour: src ⇝ owner(h(t))
// (a landmark) ⇝ t. Both legs must survive the failures; a resolution
// owner stranded in another component means the name cannot be resolved
// and the packet is undeliverable — the partition cost Fig. 3's
// unbounded-first-stretch discussion prices in.
func (s *S4) RepairedFirstRoute(src, t graph.NodeID) ([]graph.NodeID, bool) {
	if src == t {
		return []graph.NodeID{src}, true
	}
	s.dest.Bind(t)
	if math.IsInf(s.dest.Dist(src), 1) {
		return nil, false
	}
	_, lmd := s.repairedLandmarkOf()
	if s.Env.IsLM[src] || s.Env.IsLM[t] || s.dest.Dist(src) < lmd {
		return s.dest.PathFrom(src), true
	}
	owner := s.DB.OwnerOf(s.Env.HashOf(t))
	if !s.snap.Reaches(owner, src) || math.IsInf(s.dest.Dist(owner), 1) {
		return nil, false
	}
	toOwner := s.snap.PathFrom(owner, src)
	rest := s.dest.PathFrom(owner) // owner is a landmark: direct to t
	return joinTrim(toOwner, rest), true
}

// repairedWalkToDest walks the packet along route (src ⇝ l_t) via the
// shared dynamics walk, diverting to the exact path at the first node
// whose post-failure cluster contains t; the landmark itself always
// diverts, so the walk never runs off the end. The destination scratch
// must be bound to t.
func (s *S4) repairedWalkToDest(route []graph.NodeID, lmd float64) []graph.NodeID {
	t := s.dest.Root()
	return dynamics.WalkToDest(route, t,
		func(u graph.NodeID) bool { return s.Env.IsLM[u] || s.dest.Dist(u) < lmd },
		func(u graph.NodeID) []graph.NodeID { return s.dest.PathFrom(u) })
}
