// Package s4 implements the S4 baseline [34] (§3, §4.2 "Comparison with
// S4", §5): a distributed adaptation of Thorup–Zwick's Sec. 3 scheme [44]
// with uniform-random landmarks. Unlike NDDisco's fixed-size vicinities, S4
// nodes store their *cluster* C(v) = {w : d(v,w) < d(w, l_w)} — all nodes
// strictly closer to v than to their own landmark — which has no per-node
// bound: on hub-centered topologies clusters explode to Θ(n) (the paper's
// footnote-6 tree and the Internet maps in Fig. 2). S4 is name-dependent;
// it resolves names through a consistent-hashing database on the landmarks,
// which is why its first packets can have unbounded stretch (Fig. 3).
package s4

import (
	"disco/internal/graph"
	"disco/internal/parallel"
	"disco/internal/pathtree"
	"disco/internal/resolve"
	"disco/internal/snapshot"
	"disco/internal/static"
)

// S4 is the converged S4 data plane over a shared environment (same
// landmark set and names as Disco, making comparisons direct). Like
// core.NDDisco it has two cache regimes: private lazy tree caches
// (legacy), or a shared immutable snapshot (UseSnapshot) whose landmark
// trees — the same trees Disco shares — serve every landmark-rooted read,
// with a per-fork Dijkstra scratch for destination-rooted queries.
type S4 struct {
	Env *static.Env
	DB  *resolve.DB

	snap *snapshot.Snapshot
	dest *pathtree.Lazy

	trees *pathtree.Cache // legacy regime only
}

// New builds the S4 instance. vnodes is the number of hash functions in the
// resolution database (1 matches [34]).
func New(env *static.Env, vnodes int) *S4 {
	return &S4{
		Env:   env,
		DB:    resolve.New(env.Landmarks, env.NameOf, vnodes),
		trees: pathtree.NewCache(env.G, 128),
	}
}

// UseSnapshot switches s (and every future fork) to the shared immutable
// snapshot for landmark-rooted tree reads.
func (s *S4) UseSnapshot(sn *snapshot.Snapshot) {
	s.snap = sn
	s.dest = pathtree.NewLazy(s.Env.G)
}

// Fork returns a concurrency view of s for one worker of a parallel
// sweep: the environment, resolution DB and (when installed) the snapshot
// are shared read-only; only the destination-tree scratch (snapshot
// regime) or the lazy tree cache (legacy) is private. Forked instances
// route concurrently and return exactly the routes the original would.
func (s *S4) Fork() *S4 { return s.ForkWith(nil) }

// ForkWith is Fork with a caller-supplied destination-tree scratch shared
// between the protocol forks of one worker (see core.NDDisco.ForkWith).
func (s *S4) ForkWith(dest *pathtree.Lazy) *S4 {
	if s.snap != nil {
		if dest == nil {
			dest = pathtree.NewLazy(s.Env.G)
		}
		return &S4{Env: s.Env, DB: s.DB, snap: s.snap, dest: dest}
	}
	return &S4{Env: s.Env, DB: s.DB, trees: pathtree.NewCache(s.Env.G, s.trees.Cap())}
}

// tree returns the fork's tree view (the shared regime-dispatch rule in
// internal/snapshot).
func (s *S4) tree() snapshot.TreeView {
	return snapshot.TreeView{Snap: s.snap, Dest: s.dest, Cache: s.trees}
}

// InCluster reports whether t is in v's cluster: d(v,t) < d(t, l_t).
// Landmarks know shortest paths to everything through the landmark flood,
// so for a landmark v this is treated as true by the routing logic
// separately; the cluster itself uses the strict Thorup–Zwick definition.
func (s *S4) InCluster(v, t graph.NodeID) bool {
	if v == t {
		return true
	}
	return s.tree().Dist(t, v) < s.Env.LMDist[t]
}

// ShortestDist returns d(s,t) for stretch computation.
func (s *S4) ShortestDist(a, b graph.NodeID) float64 { return s.tree().Dist(b, a) }

// RouteLen returns the weighted length of a node path.
func (s *S4) RouteLen(p []graph.NodeID) float64 { return s.Env.G.PathLength(p) }

// LaterRoute returns the packet route once the source knows t's label
// (l_t plus the first hop out of l_t): direct if t ∈ C(s) or t is a
// landmark, else toward l_t with To-Destination shortcutting — the packet
// peels off to a direct path at the first node whose cluster contains t,
// which provably happens at latest one hop past l_t. Worst-case stretch 3.
func (s *S4) LaterRoute(src, t graph.NodeID) []graph.NodeID {
	if direct := s.directRoute(src, t); direct != nil {
		return direct
	}
	return s.walkToDest(s.tree().PathFrom(s.Env.AddrOf(t).Landmark, src), t)
}

// FirstRoute returns the first packet's route: S4 must first resolve t's
// name through the consistent-hashing database on the landmarks, so the
// packet travels s ⇝ owner(h(t)) ⇝ (l_t ⇝) t. The resolution detour is why
// S4's first-packet stretch is unbounded (Fig. 3).
func (s *S4) FirstRoute(src, t graph.NodeID) []graph.NodeID {
	if direct := s.directRoute(src, t); direct != nil {
		return direct
	}
	owner := s.DB.OwnerOf(s.Env.HashOf(t))
	toOwner := s.tree().PathFrom(owner, src)
	rest := s.LaterRoute(owner, t)
	return joinTrim(toOwner, rest)
}

func (s *S4) directRoute(src, t graph.NodeID) []graph.NodeID {
	if src == t {
		return []graph.NodeID{src}
	}
	if s.Env.IsLM[src] || s.Env.IsLM[t] || s.InCluster(src, t) {
		// Landmarks reach everyone via the landmark flood's reverse tree;
		// every node reaches landmarks and its cluster directly.
		return s.tree().PathFrom(t, src)
	}
	return nil
}

// walkToDest walks the packet along route, diverting to the shortest path
// at the first node whose cluster contains t (To-Destination, S4's
// built-in shortcut).
func (s *S4) walkToDest(route []graph.NodeID, t graph.NodeID) []graph.NodeID {
	for i, u := range route {
		if u == t {
			return append([]graph.NodeID(nil), route[:i+1]...)
		}
		if s.InCluster(u, t) || s.Env.IsLM[u] {
			direct := s.tree().PathFrom(t, u) // u ⇝ t
			return append(append([]graph.NodeID(nil), route[:i]...), direct...)
		}
	}
	// Reached l_t without diverting: follow the label's first hop; the
	// next node's cluster must contain t (d(u1,t) < d(t,l_t)).
	last := route[len(route)-1]
	direct := s.tree().PathFrom(t, last)
	return append(append([]graph.NodeID(nil), route[:len(route)-1]...), direct...)
}

func joinTrim(p1, p2 []graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), p1...)
	for _, v := range p2[1:] {
		if len(out) >= 2 && out[len(out)-2] == v {
			out = out[:len(out)-1]
			continue
		}
		out = append(out, v)
	}
	return out
}

// ClusterSize returns |C(v)| exactly (one full Dijkstra from v): the count
// of nodes strictly closer to v than to their own landmark. Used for
// sampled state on large topologies.
func (s *S4) ClusterSize(v graph.NodeID) int {
	count := 0
	for w := 0; w < s.Env.N(); w++ {
		if graph.NodeID(w) == v {
			continue
		}
		if s.tree().Dist(v, graph.NodeID(w)) < s.Env.LMDist[w] {
			count++
		}
	}
	return count
}

// ClusterSizesAll returns |C(v)| for every node using the dual formulation:
// each node w settles its ball {v : d(w,v) < d(w, l_w)} with a
// radius-bounded Dijkstra and contributes to those clusters. Total work is
// proportional to total cluster state (what S4 actually stores). The
// per-source balls run on the parallel worker pool with per-worker tally
// arrays; integer merges are order-independent, so the result is identical
// at any worker count.
func (s *S4) ClusterSizesAll() []int {
	n := s.Env.N()
	g := s.Env.G
	g.Finalize()
	type tally struct {
		ss     *graph.SSSP
		counts []int
	}
	parts := parallel.RunGather(n,
		func() *tally { return &tally{ss: graph.NewSSSP(g), counts: make([]int, n)} },
		func(t *tally, w int) {
			t.ss.RunRadius(graph.NodeID(w), s.Env.LMDist[w])
			for _, v := range t.ss.Order() {
				if v != graph.NodeID(w) {
					t.counts[v]++
				}
			}
		})
	out := make([]int, n)
	for _, p := range parts {
		parallel.SumInto(out, p.counts)
	}
	return out
}

// StateEntries returns per-node S4 state entry counts, mirroring the §5.2
// accounting used for Disco: landmark routes + cluster routes + forwarding
// labels + resolution share. clusterSizes comes from ClusterSizesAll (or a
// sampled equivalent).
func (s *S4) StateEntries(clusterSizes []int) []int {
	n := s.Env.N()
	nLM := len(s.Env.Landmarks)
	keys := s.Env.Hashes
	resLoad := make([]int, n)
	for lm, c := range s.DB.Load(keys) {
		resLoad[lm] = c
	}
	out := make([]int, n)
	for v := 0; v < n; v++ {
		labels := s.Env.G.Degree(graph.NodeID(v))
		if m := nLM + clusterSizes[v]; labels > m {
			labels = m
		}
		out[v] = nLM + clusterSizes[v] + labels + resLoad[v]
	}
	return out
}
