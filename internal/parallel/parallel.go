// Package parallel is the deterministic fan-out engine for the experiment
// harness. Every per-source Dijkstra sweep, per-pair stretch sample and
// per-trial simulation in internal/eval runs through this package, which
// guarantees one property the whole evaluation leans on: results are
// bit-identical regardless of the worker count.
//
// The contract that makes that work:
//
//   - Tasks are indexed 0..n-1 and must write results only to task-indexed
//     storage (Map and MapScratch enforce this by construction). Merging
//     then happens in task order, so neither the schedule nor the worker
//     count can reorder a float reduction or an output row.
//   - Tasks never draw from a shared rand.Rand, whose draw order would
//     depend on the schedule. The existing experiments precompute their
//     draws serially before fanning out (reproducing the historical
//     serial sequences exactly); new randomized experiments should
//     instead derive a private stream per task from (baseSeed,
//     taskIndex) via TaskSeed/TaskRNG.
//   - Per-worker scratch (RunScratch/MapScratch) may carry caches between
//     tasks, but tasks must be pure functions of their inputs: scratch may
//     only affect speed, never values.
//
// Scheduling is dynamic (an atomic task counter), which balances skewed
// task costs — per-source Dijkstra time varies wildly on power-law
// graphs — without affecting results. With one worker (the default on a
// single-core machine) everything runs inline on the calling goroutine,
// so workers=1 is exactly the serial program.
package parallel

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker count used when a call site
// does not override it. 0 means "use runtime.GOMAXPROCS(0)".
var defaultWorkers atomic.Int64

// Workers returns the current default worker count: the value set by
// SetWorkers, or runtime.GOMAXPROCS(0) if unset.
func Workers() int {
	if w := defaultWorkers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the process-wide default worker count. n <= 0 resets to
// the GOMAXPROCS default. cmd/discosim and the bench harness wire their
// -workers flag here.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Run executes fn(task) for every task in 0..n-1 on up to Workers()
// goroutines. fn must confine its writes to task-indexed storage; tasks
// are claimed dynamically so per-task cost skew doesn't idle workers.
func Run(n int, fn func(task int)) {
	RunScratch(n, func() struct{} { return struct{}{} }, func(_ struct{}, task int) { fn(task) })
}

// RunScratch is Run with per-worker scratch: newScratch is called once per
// worker and the value is passed to every task that worker claims. Use it
// to reuse O(n) allocations (SSSP scratch, protocol forks, count arrays)
// across the tasks of one worker. Scratch must never change what a task
// computes — only how fast.
func RunScratch[S any](n int, newScratch func() S, fn func(scratch S, task int)) {
	RunGather(n, newScratch, fn)
}

// RunGather is RunScratch that additionally returns every worker's scratch
// after all tasks complete, in unspecified order. It exists for per-worker
// accumulators (edge-use counters, cluster tallies) whose reduction is
// order-independent; schedule-sensitive reductions (float sums) must use
// Map/MapScratch and reduce in task order instead.
func RunGather[S any](n int, newScratch func() S, fn func(scratch S, task int)) []S {
	if n <= 0 {
		return nil
	}
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := newScratch()
		for i := 0; i < n; i++ {
			fn(s, i)
		}
		return []S{s}
	}
	scratches := make([]S, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			s := newScratch()
			scratches[w] = s
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(s, i)
			}
		}(w)
	}
	wg.Wait()
	return scratches
}

// Map runs fn over 0..n-1 and returns the results in task order.
func Map[T any](n int, fn func(task int) T) []T {
	out := make([]T, n)
	Run(n, func(i int) { out[i] = fn(i) })
	return out
}

// MapScratch is Map with per-worker scratch (see RunScratch).
func MapScratch[S, T any](n int, newScratch func() S, fn func(scratch S, task int) T) []T {
	out := make([]T, n)
	RunScratch(n, newScratch, func(s S, i int) { out[i] = fn(s, i) })
	return out
}

// TaskSeed derives an independent PRNG seed from (base, task) with a
// splitmix64-style mix, so sibling tasks get uncorrelated streams and the
// same (base, task) always yields the same stream — the per-task seeding
// rule that keeps randomized experiments schedule-independent. Existing
// experiments precompute their draws serially instead (their sequences
// predate the pool); use this for randomness introduced in new ones.
func TaskSeed(base int64, task int) int64 {
	z := uint64(base)*0x9e3779b97f4a7c15 + uint64(task)*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// TaskRNG returns a rand.Rand seeded with TaskSeed(base, task).
func TaskRNG(base int64, task int) *rand.Rand {
	return rand.New(rand.NewSource(TaskSeed(base, task)))
}

// SumInto adds each slice of parts element-wise into dst (which defines
// the length) and returns dst. Integer merges are order-independent, so
// per-worker count arrays reduced this way are deterministic under any
// schedule.
func SumInto(dst []int, parts ...[]int) []int {
	for _, p := range parts {
		for i, v := range p {
			dst[i] += v
		}
	}
	return dst
}
