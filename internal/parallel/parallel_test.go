package parallel

import (
	"reflect"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	fn()
}

func TestRunCoversEveryTaskOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8, 33} {
		withWorkers(t, w, func() {
			const n = 1000
			hits := make([]int32, n)
			Run(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d: task %d ran %d times", w, i, h)
				}
			}
		})
	}
}

func TestRunZeroAndNegative(t *testing.T) {
	ran := false
	Run(0, func(int) { ran = true })
	Run(-3, func(int) { ran = true })
	if ran {
		t.Fatal("no tasks should run for n <= 0")
	}
}

func TestMapOrderedAcrossWorkerCounts(t *testing.T) {
	var want []int
	withWorkers(t, 1, func() {
		want = Map(257, func(i int) int { return i * i })
	})
	for _, w := range []int{2, 7, 16} {
		withWorkers(t, w, func() {
			got := Map(257, func(i int) int { return i * i })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d: Map results differ from serial", w)
			}
		})
	}
}

func TestMapScratchPerWorkerScratch(t *testing.T) {
	withWorkers(t, 4, func() {
		var created atomic.Int32
		type scratch struct{ buf []int }
		out := MapScratch(100,
			func() *scratch { created.Add(1); return &scratch{buf: make([]int, 8)} },
			func(s *scratch, i int) int {
				s.buf[i%8] = i // reuse without racing: scratch is worker-private
				return s.buf[i%8]
			})
		if int(created.Load()) > 4 {
			t.Fatalf("scratch created %d times for 4 workers", created.Load())
		}
		for i, v := range out {
			if v != i {
				t.Fatalf("out[%d] = %d", i, v)
			}
		}
	})
}

func TestTaskSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for task := 0; task < 1000; task++ {
		s := TaskSeed(42, task)
		if seen[s] {
			t.Fatalf("duplicate seed for task %d", task)
		}
		seen[s] = true
	}
	if TaskSeed(1, 0) == TaskSeed(2, 0) {
		t.Fatal("base seed must change the stream")
	}
	if TaskSeed(7, 3) != TaskSeed(7, 3) {
		t.Fatal("TaskSeed must be a pure function")
	}
}

func TestTaskRNGReproducible(t *testing.T) {
	a, b := TaskRNG(9, 4), TaskRNG(9, 4)
	for i := 0; i < 32; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (base, task) must yield identical streams")
		}
	}
}

func TestSumInto(t *testing.T) {
	dst := SumInto(make([]int, 4), []int{1, 2, 3, 4}, []int{10, 20, 30, 40})
	if !reflect.DeepEqual(dst, []int{11, 22, 33, 44}) {
		t.Fatalf("SumInto = %v", dst)
	}
}

func TestSetWorkersClamp(t *testing.T) {
	SetWorkers(-5)
	defer SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after negative SetWorkers", Workers())
	}
}

// TestRaceStress exercises the concurrent scheduling paths under -race in
// short mode: many small tasks, shared-but-indexed output, per-worker
// scratch reuse.
func TestRaceStress(t *testing.T) {
	withWorkers(t, 8, func() {
		for round := 0; round < 10; round++ {
			out := MapScratch(500,
				func() []int { return make([]int, 64) },
				func(s []int, i int) int {
					for j := range s {
						s[j] = i + j
					}
					return s[i%64]
				})
			for i, v := range out {
				if v != i+i%64 {
					t.Fatalf("round %d: out[%d] = %d", round, i, v)
				}
			}
		}
	})
}
