// Package resolve implements the landmark-based name-resolution database of
// §4.3: a consistent-hashing [22] database over the globally known set of
// landmarks. Every node inserts its own (name → address) binding at the
// landmark owning the key h(name); any node can query it. This guarantees
// reachability but not stretch — the paper uses it as the bootstrap for
// overlay fingers (§4.4) and as the fallback when the sloppy-group lookup
// misses. Multiple hash functions per landmark (virtual points) reduce
// consistent hashing's Θ(log n) load imbalance (§4.5 state proof).
package resolve

import (
	"fmt"
	"sort"

	"disco/internal/graph"
	"disco/internal/names"
)

// DB is a consistent-hashing ring over landmarks.
type DB struct {
	points []point
	vnodes int
}

type point struct {
	h  names.Hash
	lm graph.NodeID
}

// New builds the ring. lmName gives each landmark's flat name (virtual
// points are derived from it); vnodes is the number of hash functions
// (virtual points) per landmark, >= 1.
func New(landmarks []graph.NodeID, lmName func(graph.NodeID) names.Name, vnodes int) *DB {
	if len(landmarks) == 0 {
		panic("resolve: no landmarks")
	}
	if vnodes < 1 {
		panic("resolve: vnodes must be >= 1")
	}
	db := &DB{vnodes: vnodes}
	for _, lm := range landmarks {
		for i := 0; i < vnodes; i++ {
			h := names.HashOf(names.Name(fmt.Sprintf("resolve|%d|%s", i, lmName(lm))))
			db.points = append(db.points, point{h: h, lm: lm})
		}
	}
	sort.Slice(db.points, func(i, j int) bool {
		if db.points[i].h != db.points[j].h {
			return db.points[i].h < db.points[j].h
		}
		return db.points[i].lm < db.points[j].lm
	})
	return db
}

// OwnerOf returns the landmark that stores the binding for key: the first
// virtual point clockwise of the key on the ring.
func (db *DB) OwnerOf(key names.Hash) graph.NodeID {
	i := sort.Search(len(db.points), func(i int) bool { return db.points[i].h >= key })
	if i == len(db.points) {
		i = 0 // wrap
	}
	return db.points[i].lm
}

// OwnersOf returns the distinct landmarks owning any of an entire k-bit
// sloppy group's keyspace — the "predictable set of O(log n) landmarks"
// from which a node could download its group membership (§4.4 naive
// solution). groupID is the k-bit prefix.
func (db *DB) OwnersOf(groupID uint64, k int) []graph.NodeID {
	if k <= 0 || k > 64 {
		panic(fmt.Sprintf("resolve: bad group prefix width %d", k))
	}
	lo := names.Hash(groupID << (64 - uint(k)))
	hi := names.Hash((groupID + 1) << (64 - uint(k))) // 0 on wrap of the last group
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	add := func(lm graph.NodeID) {
		if !seen[lm] {
			seen[lm] = true
			out = append(out, lm)
		}
	}
	// All virtual points inside [lo, hi) own part of the range, plus the
	// successor of hi-boundary which owns the tail.
	i := sort.Search(len(db.points), func(i int) bool { return db.points[i].h >= lo })
	for ; i < len(db.points) && (hi == 0 || db.points[i].h < hi); i++ {
		add(db.points[i].lm)
	}
	add(db.OwnerOf(hi))
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Load returns how many of the given keys each landmark owns.
func (db *DB) Load(keys []names.Hash) map[graph.NodeID]int {
	load := map[graph.NodeID]int{}
	for _, k := range keys {
		load[db.OwnerOf(k)]++
	}
	return load
}

// Imbalance returns max/mean owned keys across all landmarks on the ring
// (landmarks owning zero keys included in the mean).
func (db *DB) Imbalance(keys []names.Hash) float64 {
	load := db.Load(keys)
	lms := map[graph.NodeID]bool{}
	for _, p := range db.points {
		lms[p.lm] = true
	}
	max := 0
	//disco:orderinvariant max-fold over ints; max is commutative
	for _, c := range load {
		if c > max {
			max = c
		}
	}
	if len(lms) == 0 || len(keys) == 0 {
		return 0
	}
	mean := float64(len(keys)) / float64(len(lms))
	return float64(max) / mean
}

// Landmarks returns the distinct landmarks on the ring, ascending.
func (db *DB) Landmarks() []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, p := range db.points {
		if !seen[p.lm] {
			seen[p.lm] = true
			out = append(out, p.lm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SoftEntry is one soft-state binding in a landmark's table.
type SoftEntry struct {
	Value  interface{}
	Expiry float64
}

// SoftTable models the paper's soft state (§4.3): bindings refreshed every
// t minutes and timed out after 2t+1 minutes, under simulated time.
type SoftTable struct {
	TTL     float64 // expiry horizon (the paper's 2t+1 minutes)
	entries map[names.Name]SoftEntry
}

// NewSoftTable returns a table whose entries live for ttl time units after
// each Put.
func NewSoftTable(ttl float64) *SoftTable {
	return &SoftTable{TTL: ttl, entries: make(map[names.Name]SoftEntry)}
}

// Put inserts or refreshes a binding at simulated time now.
func (t *SoftTable) Put(now float64, name names.Name, value interface{}) {
	t.entries[name] = SoftEntry{Value: value, Expiry: now + t.TTL}
}

// Get returns the binding if present and unexpired at time now.
func (t *SoftTable) Get(now float64, name names.Name) (interface{}, bool) {
	e, ok := t.entries[name]
	if !ok || e.Expiry < now {
		if ok {
			delete(t.entries, name)
		}
		return nil, false
	}
	return e.Value, true
}

// Len returns the number of stored (possibly expired) entries.
func (t *SoftTable) Len() int { return len(t.entries) }

// Expire removes all entries expired at time now and returns how many.
func (t *SoftTable) Expire(now float64) int {
	n := 0
	for k, e := range t.entries {
		if e.Expiry < now {
			delete(t.entries, k)
			n++
		}
	}
	return n
}
