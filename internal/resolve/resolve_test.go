package resolve

import (
	"fmt"
	"testing"

	"disco/internal/graph"
	"disco/internal/names"
)

func testName(v graph.NodeID) names.Name {
	return names.Name(fmt.Sprintf("lm-%d", v))
}

func TestOwnerDeterministicAndComplete(t *testing.T) {
	lms := []graph.NodeID{3, 17, 42, 99}
	db := New(lms, testName, 4)
	gen := names.NewGenerator(1)
	for i := 0; i < 500; i++ {
		k := names.HashOf(gen.Name(i))
		o1 := db.OwnerOf(k)
		o2 := db.OwnerOf(k)
		if o1 != o2 {
			t.Fatal("owner must be deterministic")
		}
		found := false
		for _, lm := range lms {
			if lm == o1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %d not a landmark", o1)
		}
	}
}

func TestConsistency(t *testing.T) {
	// Removing one landmark must only move keys owned by that landmark.
	lms := []graph.NodeID{1, 2, 3, 4, 5, 6, 7, 8}
	db1 := New(lms, testName, 8)
	db2 := New(lms[:7], testName, 8) // landmark 8 removed
	gen := names.NewGenerator(2)
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		k := names.HashOf(gen.Name(i))
		o1 := db1.OwnerOf(k)
		o2 := db2.OwnerOf(k)
		if o1 == 8 {
			continue // must move, fine
		}
		if o1 != o2 {
			moved++
		} else {
			kept++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys moved that were not owned by the removed landmark", moved)
	}
	if kept == 0 {
		t.Error("no keys at all?")
	}
}

func TestMultipleHashFunctionsReduceImbalance(t *testing.T) {
	lms := make([]graph.NodeID, 40)
	for i := range lms {
		lms[i] = graph.NodeID(i)
	}
	gen := names.NewGenerator(3)
	keys := make([]names.Hash, 20000)
	for i := range keys {
		keys[i] = names.HashOf(gen.Name(i))
	}
	imb1 := New(lms, testName, 1).Imbalance(keys)
	imb16 := New(lms, testName, 16).Imbalance(keys)
	if imb16 >= imb1 {
		t.Errorf("16 hash functions should reduce imbalance: %v vs %v", imb16, imb1)
	}
	if imb16 > 3 {
		t.Errorf("imbalance with 16 vnodes too high: %v", imb16)
	}
}

func TestLoadSumsToKeys(t *testing.T) {
	lms := []graph.NodeID{0, 1, 2}
	db := New(lms, testName, 2)
	gen := names.NewGenerator(4)
	keys := make([]names.Hash, 100)
	for i := range keys {
		keys[i] = names.HashOf(gen.Name(i))
	}
	load := db.Load(keys)
	total := 0
	for _, c := range load {
		total += c
	}
	if total != len(keys) {
		t.Errorf("load sums to %d want %d", total, len(keys))
	}
}

func TestOwnersOfGroupRange(t *testing.T) {
	lms := make([]graph.NodeID, 20)
	for i := range lms {
		lms[i] = graph.NodeID(i)
	}
	db := New(lms, testName, 4)
	// Every key with prefix groupID must be owned by one of OwnersOf.
	k := 4
	gen := names.NewGenerator(5)
	for g := uint64(0); g < 1<<uint(k); g++ {
		owners := db.OwnersOf(g, k)
		if len(owners) == 0 {
			t.Fatalf("group %d has no owners", g)
		}
		inOwners := map[graph.NodeID]bool{}
		for _, o := range owners {
			inOwners[o] = true
		}
		for i := 0; i < 200; i++ {
			h := names.HashOf(gen.Name(int(g)*1000 + i))
			if names.PrefixBits(h, k) != g {
				continue
			}
			if !inOwners[db.OwnerOf(h)] {
				t.Fatalf("key %x of group %d owned by %d, not in OwnersOf %v",
					h, g, db.OwnerOf(h), owners)
			}
		}
	}
}

func TestLandmarks(t *testing.T) {
	lms := []graph.NodeID{9, 4, 7}
	db := New(lms, testName, 3)
	got := db.Landmarks()
	want := []graph.NodeID{4, 7, 9}
	if len(got) != 3 {
		t.Fatalf("landmarks %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("landmarks %v want %v", got, want)
		}
	}
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil, testName, 1)
}

func TestSoftTable(t *testing.T) {
	st := NewSoftTable(21) // the paper's 2t+1 with t=10 minutes
	st.Put(0, "a", 1)
	if v, ok := st.Get(10, "a"); !ok || v.(int) != 1 {
		t.Fatal("entry should be alive at t=10")
	}
	// Refresh extends life.
	st.Put(10, "a", 2)
	if v, ok := st.Get(30, "a"); !ok || v.(int) != 2 {
		t.Fatal("refreshed entry should be alive at t=30")
	}
	if _, ok := st.Get(32, "a"); ok {
		t.Fatal("entry should expire at t=32")
	}
	if st.Len() != 0 {
		t.Error("expired entry should be evicted on Get")
	}
	st.Put(0, "x", 1)
	st.Put(0, "y", 2)
	if n := st.Expire(100); n != 2 {
		t.Errorf("Expire removed %d want 2", n)
	}
}
