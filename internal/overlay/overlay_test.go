package overlay

import (
	"math/rand"
	"testing"

	"disco/internal/estimate"
	"disco/internal/graph"
	"disco/internal/names"
	"disco/internal/sloppy"
)

func buildNet(t *testing.T, n, fingers int, seed int64) (*Net, []names.Hash, *sloppy.View) {
	t.Helper()
	gen := names.NewGenerator(seed)
	hashes := make([]names.Hash, n)
	for i := range hashes {
		hashes[i] = names.HashOf(gen.Name(i))
	}
	view := sloppy.BuildView(hashes, estimate.Exact(n))
	net := Build(hashes, view, fingers, rand.New(rand.NewSource(seed)))
	return net, hashes, view
}

func TestRingLinksPresent(t *testing.T) {
	net, hashes, _ := buildNet(t, 200, 1, 1)
	// Every node's out links include its ring successor and predecessor.
	for v := 0; v < 200; v++ {
		out := net.OutLinks(graph.NodeID(v))
		if len(out) < 2 {
			t.Fatalf("node %d has %d out links", v, len(out))
		}
	}
	_ = hashes
}

func TestAvgDegreeMatchesPaper(t *testing.T) {
	// §4.4: "an average of |N(v)| ≈ 4 or 8 overlay connections (for 1 or 3
	// fingers respectively) counting both outgoing and incoming".
	net1, _, _ := buildNet(t, 1024, 1, 2)
	net3, _, _ := buildNet(t, 1024, 3, 2)
	d1, d3 := net1.AvgDegree(), net3.AvgDegree()
	if d1 < 3 || d1 > 5 {
		t.Errorf("1-finger avg degree %v want ~4", d1)
	}
	if d3 < 6.5 || d3 > 9.5 {
		t.Errorf("3-finger avg degree %v want ~8", d3)
	}
}

func TestDisseminationCoversGroup(t *testing.T) {
	net, hashes, view := buildNet(t, 1024, 1, 3)
	k := view.KOf(0)
	for origin := 0; origin < 1024; origin += 97 {
		st := net.Disseminate(graph.NodeID(origin))
		// Count group members (excluding origin).
		want := 0
		for w := 0; w < 1024; w++ {
			if w != origin && sloppy.SameGroup(hashes[origin], hashes[w], k) {
				want++
			}
		}
		if st.Reached != want {
			t.Fatalf("origin %d reached %d of %d group members", origin, st.Reached, want)
		}
	}
}

func TestDisseminationTerminatesWithBoundedMessages(t *testing.T) {
	net, _, _ := buildNet(t, 512, 3, 4)
	for origin := 0; origin < 512; origin += 51 {
		st := net.Disseminate(graph.NodeID(origin))
		// No count-to-infinity: messages bounded by reach * max degree.
		maxDeg := 0
		for v := 0; v < 512; v++ {
			if d := net.Degree(graph.NodeID(v)); d > maxDeg {
				maxDeg = d
			}
		}
		if st.Messages > (st.Reached+1)*maxDeg {
			t.Fatalf("message count %d implausible for reach %d", st.Messages, st.Reached)
		}
	}
}

func TestFingersReduceTravelDistance(t *testing.T) {
	// The §5 finger experiment: 3 fingers must cut mean and max
	// announcement travel distance versus 1 finger, at some message cost.
	net1, _, _ := buildNet(t, 1024, 1, 5)
	net3, _, _ := buildNet(t, 1024, 3, 5)
	tot1, mean1 := net1.DisseminateAll()
	tot3, mean3 := net3.DisseminateAll()
	if mean3 >= mean1 {
		t.Errorf("3 fingers should reduce mean travel distance: %v vs %v", mean3, mean1)
	}
	if tot3.MaxHops >= tot1.MaxHops {
		t.Errorf("3 fingers should reduce max travel distance: %d vs %d", tot3.MaxHops, tot1.MaxHops)
	}
	if tot3.Messages <= tot1.Messages {
		t.Errorf("3 fingers should cost more messages: %d vs %d", tot3.Messages, tot1.Messages)
	}
	t.Logf("1 finger: mean=%.2f max=%d msgs=%d; 3 fingers: mean=%.2f max=%d msgs=%d",
		mean1, tot1.MaxHops, tot1.Messages, mean3, tot3.MaxHops, tot3.Messages)
}

func TestCoverageUnderEstimateError(t *testing.T) {
	// With ±40% estimate error, dissemination through mutual-agreement
	// links must still reach (at least) each origin's core group.
	n := 1024
	gen := names.NewGenerator(6)
	hashes := make([]names.Hash, n)
	for i := range hashes {
		hashes[i] = names.HashOf(gen.Name(i))
	}
	rng := rand.New(rand.NewSource(7))
	view := sloppy.BuildView(hashes, estimate.InjectError(rng, n, 0.4))
	net := Build(hashes, view, 1, rand.New(rand.NewSource(8)))
	for origin := 0; origin < n; origin += 119 {
		st := net.Disseminate(graph.NodeID(origin))
		core := view.CoreGroup(graph.NodeID(origin))
		// st.Reached counts nodes that received the announcement; the
		// core group (minus origin) must all be among them. Since
		// Disseminate only reports counts, verify via the stronger
		// condition reached >= |core|-1.
		if st.Reached < len(core)-1 {
			t.Fatalf("origin %d reached %d < core group %d", origin, st.Reached, len(core)-1)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	net1, _, _ := buildNet(t, 300, 2, 9)
	net2, _, _ := buildNet(t, 300, 2, 9)
	for v := 0; v < 300; v++ {
		a := net1.Neighbors(graph.NodeID(v))
		b := net2.Neighbors(graph.NodeID(v))
		if len(a) != len(b) {
			t.Fatal("overlay must be deterministic")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("overlay must be deterministic")
			}
		}
	}
}

func TestTinyNetwork(t *testing.T) {
	net, _, _ := buildNet(t, 3, 1, 10)
	st := net.Disseminate(0)
	if st.Reached != 2 {
		t.Errorf("3-node overlay should reach both others, got %d", st.Reached)
	}
}
