// Package overlay implements Disco's address-dissemination overlay (§4.4):
// a Symphony-style [32] structure where each node links to its successor
// and predecessor in the circular hash order plus a small number of
// long-distance "fingers" drawn from a harmonic distribution inside its own
// sloppy group. Address announcements propagate through the overlay with a
// directional distance-vector rule — a node forwards an announcement only
// to overlay neighbors that keep it moving in the same direction through
// hash space — which eliminates count-to-infinity because the distance from
// the origin strictly increases hop by hop.
package overlay

import (
	"math"
	"math/rand"
	"sort"

	"disco/internal/graph"
	"disco/internal/names"
	"disco/internal/sloppy"
)

// Net is the constructed overlay.
type Net struct {
	hashes  []names.Hash
	view    *sloppy.View
	fingers int

	byHash []graph.NodeID // all nodes sorted by (hash, id)
	rank   []int          // node -> index in byHash

	out  [][]graph.NodeID // outgoing links: succ, pred, fingers
	nbrs [][]graph.NodeID // undirected adjacency (out ∪ in), sorted
}

// Build constructs the overlay. Each node gets its ring successor and
// predecessor plus `fingers` outgoing finger links chosen by rng from the
// harmonic distribution over its own group's hash interval (§4.4, following
// [32]). Connections are bidirectional (TCP in the paper), so the
// dissemination adjacency is the undirected union.
func Build(hashes []names.Hash, view *sloppy.View, fingers int, rng *rand.Rand) *Net {
	n := len(hashes)
	net := &Net{hashes: hashes, view: view, fingers: fingers}
	net.byHash = make([]graph.NodeID, n)
	for i := range net.byHash {
		net.byHash[i] = graph.NodeID(i)
	}
	sort.Slice(net.byHash, func(i, j int) bool {
		a, b := net.byHash[i], net.byHash[j]
		if hashes[a] != hashes[b] {
			return hashes[a] < hashes[b]
		}
		return a < b
	})
	net.rank = make([]int, n)
	for i, v := range net.byHash {
		net.rank[v] = i
	}

	net.out = make([][]graph.NodeID, n)
	for v := 0; v < n; v++ {
		net.addRingLinks(graph.NodeID(v))
		net.addFingers(graph.NodeID(v), rng)
	}

	// Undirected union.
	set := make([]map[graph.NodeID]bool, n)
	for v := range set {
		set[v] = make(map[graph.NodeID]bool)
	}
	for v := 0; v < n; v++ {
		for _, w := range net.out[v] {
			set[v][w] = true
			set[int(w)][graph.NodeID(v)] = true
		}
	}
	net.nbrs = make([][]graph.NodeID, n)
	for v := 0; v < n; v++ {
		for w := range set[v] {
			net.nbrs[v] = append(net.nbrs[v], w)
		}
		sort.Slice(net.nbrs[v], func(i, j int) bool { return net.nbrs[v][i] < net.nbrs[v][j] })
	}
	return net
}

func (n *Net) addRingLinks(v graph.NodeID) {
	count := len(n.byHash)
	if count < 2 {
		return
	}
	r := n.rank[v]
	succ := n.byHash[(r+1)%count]
	pred := n.byHash[(r-1+count)%count]
	n.out[v] = append(n.out[v], succ)
	if pred != succ {
		n.out[v] = append(n.out[v], pred)
	}
}

// groupRange returns the [lo, hi) index range in byHash of v's group as v
// sees it (a prefix interval, hence contiguous in hash order).
func (n *Net) groupRange(v graph.NodeID) (int, int) {
	k := n.view.KOf(v)
	if k <= 0 {
		return 0, len(n.byHash)
	}
	gid := names.PrefixBits(n.hashes[v], k)
	lo := sort.Search(len(n.byHash), func(i int) bool {
		return names.PrefixBits(n.hashes[n.byHash[i]], k) >= gid
	})
	hi := sort.Search(len(n.byHash), func(i int) bool {
		return names.PrefixBits(n.hashes[n.byHash[i]], k) > gid
	})
	return lo, hi
}

func (n *Net) addFingers(v graph.NodeID, rng *rand.Rand) {
	lo, hi := n.groupRange(v)
	if hi-lo < 3 {
		return // group too small for useful fingers
	}
	k := n.view.KOf(v)
	var span float64
	if k <= 0 {
		span = math.Exp2(64)
	} else {
		span = math.Exp2(float64(64 - k))
	}
	hv := n.hashes[v]
	// Symphony's harmonic distribution spans [span/m, span) — distances
	// below the typical member gap would just re-select the ring
	// neighbors, so the lower cutoff scales with group size m as in [32].
	m := float64(hi - lo)
	dmin := span / m
	for f := 0; f < n.fingers; f++ {
		var target graph.NodeID = graph.None
		for try := 0; try < 32 && target == graph.None; try++ {
			// Harmonic distance: pdf ∝ 1/d over [dmin, span).
			d := dmin * math.Exp(rng.Float64()*math.Log(span/dmin))
			a := float64(hv)
			if rng.Intn(2) == 0 {
				a += d
			} else {
				a -= d
			}
			// Must stay within the group interval.
			loHash := float64(n.hashes[n.byHash[lo]])
			hiHash := float64(n.hashes[n.byHash[hi-1]])
			if a < loHash || a > hiHash {
				continue
			}
			cand := n.nearestInRange(names.Hash(a), lo, hi)
			if cand != v {
				target = cand
			}
		}
		if target == graph.None {
			// Fall back to a uniform group member.
			cand := n.byHash[lo+rng.Intn(hi-lo)]
			if cand == v {
				continue
			}
			target = cand
		}
		n.out[v] = append(n.out[v], target)
	}
}

// nearestInRange finds the node within byHash[lo:hi] whose hash is closest
// to a (ring distance, ties to lower index).
func (n *Net) nearestInRange(a names.Hash, lo, hi int) graph.NodeID {
	i := sort.Search(hi-lo, func(i int) bool { return n.hashes[n.byHash[lo+i]] >= a }) + lo
	best := graph.None
	var bestD uint64 = math.MaxUint64
	for _, j := range []int{i - 1, i} {
		if j < lo || j >= hi {
			continue
		}
		v := n.byHash[j]
		if d := names.RingDist(n.hashes[v], a); d < bestD {
			best, bestD = v, d
		}
	}
	return best
}

// Neighbors returns N(v): the undirected overlay adjacency of v.
func (n *Net) Neighbors(v graph.NodeID) []graph.NodeID { return n.nbrs[v] }

// Degree returns |N(v)| — the per-node overlay state (the paper expects an
// average of ~4 with 1 finger and ~8 with 3, counting both directions).
func (n *Net) Degree(v graph.NodeID) int { return len(n.nbrs[v]) }

// AvgDegree returns the mean overlay degree.
func (n *Net) AvgDegree() float64 {
	total := 0
	for _, nb := range n.nbrs {
		total += len(nb)
	}
	return float64(total) / float64(len(n.nbrs))
}

// OutLinks returns v's outgoing links (successor, predecessor, fingers).
func (n *Net) OutLinks(v graph.NodeID) []graph.NodeID { return n.out[v] }

// before reports whether a precedes b in (hash, id) order — the linear
// order used by the directional propagation rule.
func (n *Net) before(a, b graph.NodeID) bool {
	if n.hashes[a] != n.hashes[b] {
		return n.hashes[a] < n.hashes[b]
	}
	return a < b
}

// Stats summarizes one address dissemination.
type Stats struct {
	Messages int // overlay messages sent
	Reached  int // distinct group members that received the announcement
	MaxHops  int // maximum overlay hops traveled by any delivered copy
	SumHops  int // total hops over all first deliveries (for the mean)
}

// Disseminate floods origin's address announcement through origin's group
// under the directional DV rule and returns message/coverage statistics.
// A node forwards an announcement on first receipt only (incremental DV
// updates), to group members in the direction away from the sender; the
// origin sends both ways.
func (n *Net) Disseminate(origin graph.NodeID) Stats {
	type item struct {
		node graph.NodeID
		down bool // announcement moving toward lower (hash, id)
		hops int
	}
	var st Stats
	seen := map[graph.NodeID]bool{origin: true}
	var queue []item
	for _, w := range n.nbrs[origin] {
		if !n.view.InGroup(origin, w) {
			continue
		}
		st.Messages++
		queue = append(queue, item{node: w, down: n.before(w, origin), hops: 1})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if seen[it.node] {
			continue
		}
		seen[it.node] = true
		st.Reached++
		st.SumHops += it.hops
		if it.hops > st.MaxHops {
			st.MaxHops = it.hops
		}
		for _, w := range n.nbrs[it.node] {
			if !n.view.InGroup(it.node, w) {
				continue
			}
			// Continue in the same direction only.
			if it.down != n.before(w, it.node) {
				continue
			}
			st.Messages++
			if !seen[w] {
				queue = append(queue, item{node: w, down: it.down, hops: it.hops + 1})
			}
		}
	}
	return st
}

// DisseminateAll runs Disseminate from every node and aggregates, returning
// the totals plus the mean/max announcement travel distance (the §5
// "fingers" experiment: 5.77/24 with 1 finger vs 3.04/16 with 3 on the
// 1,024-node G(n,m) graph).
func (n *Net) DisseminateAll() (total Stats, meanHops float64) {
	for v := range n.hashes {
		s := n.Disseminate(graph.NodeID(v))
		total.Messages += s.Messages
		total.Reached += s.Reached
		total.SumHops += s.SumHops
		if s.MaxHops > total.MaxHops {
			total.MaxHops = s.MaxHops
		}
	}
	if total.Reached > 0 {
		meanHops = float64(total.SumHops) / float64(total.Reached)
	}
	return total, meanHops
}
