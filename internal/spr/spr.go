// Package spr is the shortest-path-routing baseline (the paper's "path
// vector" comparison protocol, §5.1): every node stores a route to every
// destination, Ω(n) state, stretch 1. It anchors the congestion comparison
// (Figs. 4, 5, 10) and the messaging curve of Fig. 8.
package spr

import (
	"disco/internal/graph"
	"disco/internal/pathtree"
	"disco/internal/static"
)

// SPR is the converged shortest-path data plane. Routes are read off a
// lazy single-root Dijkstra view rather than materialized trees:
// destination roots in the congestion sweeps are queried once each, so a
// tree cache would allocate O(n) per route for a single lookup.
type SPR struct {
	Env  *static.Env
	dest *pathtree.Lazy
}

// New builds the baseline over env.
func New(env *static.Env) *SPR {
	return &SPR{Env: env, dest: pathtree.NewLazy(env.G)}
}

// Fork returns a concurrency view of p for one worker of a parallel
// sweep: the environment is shared, the Dijkstra scratch is private.
func (p *SPR) Fork() *SPR {
	return &SPR{Env: p.Env, dest: pathtree.NewLazy(p.Env.G)}
}

// Route returns the (deterministically tie-broken) shortest path s ⇝ t.
func (p *SPR) Route(s, t graph.NodeID) []graph.NodeID {
	p.dest.Bind(t)
	return p.dest.PathFrom(s)
}

// Dist returns d(s,t).
func (p *SPR) Dist(s, t graph.NodeID) float64 {
	p.dest.Bind(t)
	return p.dest.Dist(s)
}

// StateEntries returns the per-node entry count: one route per destination
// (n-1) plus per-neighbor adjacency.
func (p *SPR) StateEntries() []int {
	n := p.Env.N()
	out := make([]int, n)
	for v := 0; v < n; v++ {
		out[v] = n - 1 + p.Env.G.Degree(graph.NodeID(v))
	}
	return out
}
