package spr

import (
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/static"
	"disco/internal/topology"
)

func TestRouteIsShortest(t *testing.T) {
	g := topology.Geometric(rand.New(rand.NewSource(1)), 150, 8)
	env := static.NewEnv(g, 1)
	p := New(env)
	s := graph.NewSSSP(g)
	for dst := 0; dst < 150; dst += 13 {
		s.Run(graph.NodeID(dst))
		for src := 0; src < 150; src += 7 {
			if src == dst {
				continue
			}
			route := p.Route(graph.NodeID(src), graph.NodeID(dst))
			if route[0] != graph.NodeID(src) || route[len(route)-1] != graph.NodeID(dst) {
				t.Fatalf("endpoints wrong: %v", route)
			}
			// Float sums depend on association order (the route is summed
			// src-outward, the reference dst-outward), so compare within
			// an ulp-scale tolerance.
			if d := g.PathLength(route) - s.Dist(graph.NodeID(src)); d > 1e-9 || d < -1e-9 {
				t.Fatalf("route not shortest: %v vs %v", g.PathLength(route), s.Dist(graph.NodeID(src)))
			}
			if d := p.Dist(graph.NodeID(src), graph.NodeID(dst)) - s.Dist(graph.NodeID(src)); d > 1e-9 || d < -1e-9 {
				t.Fatal("Dist mismatch")
			}
		}
	}
}

func TestStateEntriesLinear(t *testing.T) {
	g := topology.Gnm(rand.New(rand.NewSource(2)), 100, 400)
	env := static.NewEnv(g, 2)
	p := New(env)
	entries := p.StateEntries()
	for v, e := range entries {
		want := 99 + g.Degree(graph.NodeID(v))
		if e != want {
			t.Fatalf("state at %d = %d want %d", v, e, want)
		}
	}
}
