// Package metrics provides the measurement machinery of the evaluation
// (§5): CDFs over nodes / source-destination pairs / edges, deterministic
// sampling for large topologies ("we sample a fraction of nodes or
// source-destination pairs to compute state, stretch, and congestion"),
// stretch computation, and per-edge congestion counting.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// CDF is an empirical distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (the input slice is copied).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// Mean returns the sample mean (0 for an empty CDF).
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	t := 0.0
	for _, v := range c.sorted {
		t += v
	}
	return t / float64(len(c.sorted))
}

// Min returns the smallest sample (0 for an empty CDF).
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Max returns the largest sample (0 for an empty CDF).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Quantile returns the p-quantile for p in [0,1] using the nearest-rank
// method (Quantile(1) == Max).
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// FracAtOrBelow returns the fraction of samples <= x (the CDF value at x).
func (c *CDF) FracAtOrBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Points returns up to k (value, cumulative-fraction) pairs suitable for
// plotting or printing the CDF curve as in the paper's figures. For k >= 2
// the first point is always the minimum sample at fraction 1/n and the
// last is the maximum at fraction 1, with the remaining ranks spread
// evenly between them — the old scheme started at rank n/k and silently
// dropped the curve's left tail from every plot. k == 1 keeps the single
// most informative point, the maximum at fraction 1.
func (c *CDF) Points(k int) [](struct{ X, F float64 }) {
	n := len(c.sorted)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([]struct{ X, F float64 }, 0, k)
	if k == 1 {
		return append(out, struct{ X, F float64 }{X: c.sorted[n-1], F: 1})
	}
	out = append(out, struct{ X, F float64 }{X: c.sorted[0], F: 1 / float64(n)})
	for i := 1; i < k; i++ {
		idx := 1 + i*(n-1)/(k-1) // rank in [2, n], hitting n at i = k-1
		out = append(out, struct{ X, F float64 }{X: c.sorted[idx-1], F: float64(idx) / float64(n)})
	}
	return out
}

// String summarizes the distribution (mean / median / p95 / max), the four
// numbers the paper's tables report.
func (c *CDF) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f max=%.3f",
		c.N(), c.Mean(), c.Quantile(0.5), c.Quantile(0.95), c.Max())
}

// FormatSeries renders labeled CDFs as an aligned text table of summary
// rows, used by cmd/discosim and the benches to print figure data.
func FormatSeries(title string, labels []string, cdfs []*CDF) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-22s %10s %10s %10s %10s %10s\n", "series", "n", "mean", "p50", "p95", "max")
	for i, l := range labels {
		c := cdfs[i]
		fmt.Fprintf(&b, "  %-22s %10d %10.3f %10.3f %10.3f %10.3f\n",
			l, c.N(), c.Mean(), c.Quantile(0.5), c.Quantile(0.95), c.Max())
	}
	return b.String()
}

// SampleInts returns k distinct integers drawn uniformly from [0, n) in
// random order (all of [0,n) shuffled if k >= n), deterministically from rng.
func SampleInts(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := rng.Perm(n)
		return out
	}
	// Partial Fisher-Yates over a sparse permutation.
	swap := make(map[int]int, 2*k)
	get := func(i int) int {
		if v, ok := swap[i]; ok {
			return v
		}
		return i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		out[i] = get(j)
		swap[j] = get(i)
	}
	return out
}

// Pair is a sampled source-destination pair.
type Pair struct{ Src, Dst int }

// SamplePairs returns k source-destination pairs with distinct endpoints,
// uniformly at random.
func SamplePairs(rng *rand.Rand, n, k int) []Pair {
	out := make([]Pair, 0, k)
	for len(out) < k {
		s := rng.Intn(n)
		d := rng.Intn(n)
		if s == d {
			continue
		}
		out = append(out, Pair{Src: s, Dst: d})
	}
	return out
}

// Stretch returns routeLen/shortest, the paper's one-way stretch definition
// (§2). A zero shortest distance (identical endpoints) yields stretch 1 when
// the route is also zero, else +Inf; routes shorter than shortest (a
// protocol bug) panic.
func Stretch(routeLen, shortest float64) float64 {
	if shortest == 0 {
		if routeLen == 0 {
			return 1
		}
		return math.Inf(1)
	}
	s := routeLen / shortest
	if s < 1-1e-9 {
		panic(fmt.Sprintf("metrics: route (%v) shorter than shortest path (%v)", routeLen, shortest))
	}
	if s < 1 {
		return 1
	}
	return s
}

// Congestion counts, per undirected edge, how many routes traverse it
// (§5.2 Congestion: "we have each node route to a random destination and
// count the number of times each edge is used").
type Congestion struct {
	counts []int
}

// NewCongestion returns a counter for a graph with m edges.
func NewCongestion(m int) *Congestion { return &Congestion{counts: make([]int, m)} }

// AddEdgeUse records one traversal of edge eid.
func (c *Congestion) AddEdgeUse(eid int32) { c.counts[eid]++ }

// CDF returns the distribution of per-edge use counts over all edges.
func (c *Congestion) CDF() *CDF {
	s := make([]float64, len(c.counts))
	for i, v := range c.counts {
		s[i] = float64(v)
	}
	return NewCDF(s)
}

// Counts returns the raw per-edge counters (owned by the Congestion).
func (c *Congestion) Counts() []int { return c.counts }

// Merge adds other's per-edge counts into c — the reduction step for
// per-worker counters of a parallel congestion sweep. Integer sums are
// order-independent, so any merge order yields the same totals.
func (c *Congestion) Merge(other *Congestion) {
	if len(other.counts) != len(c.counts) {
		panic(fmt.Sprintf("metrics: merging congestion over %d edges into %d", len(other.counts), len(c.counts)))
	}
	for i, v := range other.counts {
		c.counts[i] += v
	}
}
