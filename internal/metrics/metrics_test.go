package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{3, 1, 2, 5, 4})
	if c.N() != 5 {
		t.Fatalf("N=%d", c.N())
	}
	if c.Mean() != 3 {
		t.Errorf("mean %v want 3", c.Mean())
	}
	if c.Min() != 1 || c.Max() != 5 {
		t.Errorf("min/max %v/%v", c.Min(), c.Max())
	}
	if q := c.Quantile(0.5); q != 3 {
		t.Errorf("median %v want 3", q)
	}
	if q := c.Quantile(1); q != 5 {
		t.Errorf("q100 %v want 5", q)
	}
	if q := c.Quantile(0); q != 1 {
		t.Errorf("q0 %v want 1", q)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.Mean() != 0 || c.Max() != 0 || c.Quantile(0.5) != 0 || c.N() != 0 {
		t.Error("empty CDF should report zeros")
	}
	if c.Points(5) != nil {
		t.Error("empty Points should be nil")
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []float64{2, 1}
	c := NewCDF(in)
	in[0] = 99
	if c.Max() != 2 {
		t.Error("CDF must copy its input")
	}
}

func TestFracAtOrBelow(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, cs := range cases {
		if got := c.FracAtOrBelow(cs.x); got != cs.want {
			t.Errorf("FracAtOrBelow(%v)=%v want %v", cs.x, got, cs.want)
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		c := NewCDF(vals)
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return c.Quantile(pa) <= c.Quantile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Points(2)
	if len(pts) != 2 {
		t.Fatalf("points %d want 2", len(pts))
	}
	// The curve must keep its left tail: first point is the minimum at
	// fraction 1/n, last is the maximum at fraction 1.
	if pts[0].X != 1 || pts[0].F != 0.25 {
		t.Errorf("pts[0]=%+v want {1 0.25}", pts[0])
	}
	if pts[1].X != 4 || pts[1].F != 1 {
		t.Errorf("pts[1]=%+v want {4 1}", pts[1])
	}
}

func TestPointsFullResolution(t *testing.T) {
	// k = n must emit every sample: ranks 1..n in order.
	c := NewCDF([]float64{3, 1, 2, 5, 4})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points %d want 5", len(pts))
	}
	for i, want := range []float64{1, 2, 3, 4, 5} {
		if pts[i].X != want || pts[i].F != float64(i+1)/5 {
			t.Errorf("pts[%d]=%+v want {%v %v}", i, pts[i], want, float64(i+1)/5)
		}
	}
	// k > n clamps to n.
	if got := c.Points(99); len(got) != 5 {
		t.Errorf("Points(99) emitted %d points, want 5", len(got))
	}
}

func TestPointsEdgeCases(t *testing.T) {
	// k = 1 keeps the distribution's endpoint (the max at fraction 1).
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Points(1)
	if len(pts) != 1 || pts[0].X != 4 || pts[0].F != 1 {
		t.Errorf("Points(1)=%+v want [{4 1}]", pts)
	}
	// Single sample: the one point is both min and max.
	one := NewCDF([]float64{7})
	pts = one.Points(3)
	if len(pts) != 1 || pts[0].X != 7 || pts[0].F != 1 {
		t.Errorf("single-sample Points(3)=%+v want [{7 1}]", pts)
	}
	// Fractions and values must be nondecreasing at any k.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i * i % 37)
	}
	cc := NewCDF(big)
	for _, k := range []int{2, 3, 7, 50, 100} {
		pts := cc.Points(k)
		if pts[0].X != cc.Min() || pts[0].F != 1.0/100 {
			t.Errorf("k=%d: first point %+v is not the minimum at 1/n", k, pts[0])
		}
		if last := pts[len(pts)-1]; last.X != cc.Max() || last.F != 1 {
			t.Errorf("k=%d: last point %+v is not the maximum at 1", k, last)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].F <= pts[i-1].F {
				t.Errorf("k=%d: points not monotone at %d: %+v -> %+v", k, i, pts[i-1], pts[i])
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Single sample: every quantile is that sample.
	one := NewCDF([]float64{42})
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		if q := one.Quantile(p); q != 42 {
			t.Errorf("Quantile(%v)=%v want 42", p, q)
		}
	}
	// Out-of-range p clamps to min/max.
	c := NewCDF([]float64{1, 2, 3, 4})
	if q := c.Quantile(-0.5); q != 1 {
		t.Errorf("Quantile(-0.5)=%v want 1", q)
	}
	if q := c.Quantile(1.5); q != 4 {
		t.Errorf("Quantile(1.5)=%v want 4", q)
	}
	// Nearest-rank boundaries: p just above i/n must step to the next rank.
	if q := c.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5)=%v want 2", q)
	}
	if q := c.Quantile(0.500001); q != 3 {
		t.Errorf("Quantile(0.500001)=%v want 3", q)
	}
}

func TestSampleIntsDistinctInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := SampleInts(rng, 1000, 100)
	if len(s) != 100 {
		t.Fatalf("len %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range %d", v)
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestSampleIntsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := SampleInts(rng, 10, 15)
	if len(s) != 10 {
		t.Fatalf("len %d want 10 when k>=n", len(s))
	}
	sort.Ints(s)
	for i, v := range s {
		if v != i {
			t.Fatalf("expected permutation of 0..9, got %v", s)
		}
	}
}

func TestSampleIntsUniformish(t *testing.T) {
	// Each element of [0,20) should appear roughly 1/2 the time when
	// sampling 10 of 20 many times.
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 20)
	const trials = 2000
	for i := 0; i < trials; i++ {
		for _, v := range SampleInts(rng, 20, 10) {
			counts[v]++
		}
	}
	for v, c := range counts {
		frac := float64(c) / trials
		if frac < 0.35 || frac > 0.65 {
			t.Errorf("element %d sampled with frequency %v (want ~0.5)", v, frac)
		}
	}
}

func TestSamplePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := SamplePairs(rng, 50, 200)
	if len(ps) != 200 {
		t.Fatalf("len %d", len(ps))
	}
	for _, p := range ps {
		if p.Src == p.Dst {
			t.Fatal("pair endpoints must differ")
		}
		if p.Src < 0 || p.Src >= 50 || p.Dst < 0 || p.Dst >= 50 {
			t.Fatal("pair out of range")
		}
	}
}

func TestStretch(t *testing.T) {
	if s := Stretch(6, 2); s != 3 {
		t.Errorf("stretch %v want 3", s)
	}
	if s := Stretch(2, 2); s != 1 {
		t.Errorf("stretch %v want 1", s)
	}
	if s := Stretch(0, 0); s != 1 {
		t.Errorf("stretch %v want 1", s)
	}
	if s := Stretch(1, 0); !math.IsInf(s, 1) {
		t.Errorf("stretch %v want +Inf", s)
	}
	// Tiny float noise below 1 is clamped.
	if s := Stretch(2-1e-12, 2); s != 1 {
		t.Errorf("stretch %v want 1", s)
	}
}

func TestStretchPanicsOnShorterThanShortest(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Stretch(1, 2)
}

func TestCongestion(t *testing.T) {
	c := NewCongestion(4)
	c.AddEdgeUse(0)
	c.AddEdgeUse(0)
	c.AddEdgeUse(3)
	cdf := c.CDF()
	if cdf.N() != 4 {
		t.Fatalf("N=%d", cdf.N())
	}
	if cdf.Max() != 2 {
		t.Errorf("max %v want 2", cdf.Max())
	}
	if got := c.Counts()[0]; got != 2 {
		t.Errorf("counts[0]=%d", got)
	}
}

func TestFormatSeries(t *testing.T) {
	out := FormatSeries("title", []string{"a"}, []*CDF{NewCDF([]float64{1, 2})})
	if out == "" || len(out) < 10 {
		t.Error("FormatSeries should produce a table")
	}
}
