// Package graph provides the weighted undirected graph substrate used by
// every routing protocol in this repository, together with the shortest-path
// machinery (full, truncated, radius-bounded and multi-source Dijkstra) that
// the static simulator is built on.
//
// Graphs are node-indexed (NodeID 0..n-1) with arbitrary non-negative link
// distances ("link latencies or costs" in the paper's terms, §4.1). All
// iteration orders are deterministic: adjacency lists are sorted by neighbor
// ID and ties in Dijkstra are broken by node ID, so every simulation result
// in this repository is exactly reproducible.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node in a Graph. IDs are dense: 0..N()-1.
type NodeID int32

// None is the sentinel "no node" value used in parent arrays.
const None NodeID = -1

// Edge is one directed half of an undirected link as seen from its owning
// adjacency list.
type Edge struct {
	To     NodeID  // neighbor
	EID    int32   // undirected edge index, 0..M()-1, shared by both halves
	Weight float64 // link distance (>= 0)
}

// Graph is a weighted undirected graph. The zero value is an empty graph;
// use New to create one with a fixed node count.
type Graph struct {
	adj    [][]Edge
	m      int
	sorted bool
}

// New returns a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{adj: make([][]Edge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// AddEdge adds an undirected edge between u and v with weight w and returns
// its edge index. It panics on self-loops, out-of-range endpoints, or
// negative weights. Duplicate edges are the caller's responsibility (the
// topology generators deduplicate); adding one creates a parallel edge.
func (g *Graph) AddEdge(u, v NodeID, w float64) int32 {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if int(u) < 0 || int(u) >= len(g.adj) || int(v) < 0 || int(v) >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, len(g.adj)))
	}
	if w < 0 {
		panic(fmt.Sprintf("graph: negative weight %v on edge (%d,%d)", w, u, v))
	}
	id := int32(g.m)
	g.adj[u] = append(g.adj[u], Edge{To: v, EID: id, Weight: w})
	g.adj[v] = append(g.adj[v], Edge{To: u, EID: id, Weight: w})
	g.m++
	g.sorted = false
	return id
}

// Neighbors returns the adjacency list of v. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(v NodeID) []Edge { return g.adj[v] }

// Degree returns the number of incident edges of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Finalize sorts every adjacency list by neighbor ID. It must be called
// after construction and before PortOf/NeighborAt or any shortest-path
// computation; the topology generators call it for you.
func (g *Graph) Finalize() {
	if g.sorted {
		return
	}
	for _, es := range g.adj {
		sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
	}
	g.sorted = true
}

// Finalized reports whether Finalize has been called since the last edge
// was added.
func (g *Graph) Finalized() bool { return g.sorted }

// PortOf returns the index ("port number") of neighbor `to` within u's
// sorted adjacency list, or -1 if the edge does not exist. Ports are the
// per-hop labels of the paper's explicit-route address format (§4.2): a hop
// at a node of degree d is encoded in ceil(log2 d) bits as this index.
func (g *Graph) PortOf(u, to NodeID) int {
	if !g.sorted {
		panic("graph: PortOf before Finalize")
	}
	es := g.adj[u]
	i := sort.Search(len(es), func(i int) bool { return es[i].To >= to })
	if i < len(es) && es[i].To == to {
		return i
	}
	return -1
}

// NeighborAt returns the edge behind port p of node u.
func (g *Graph) NeighborAt(u NodeID, p int) Edge {
	return g.adj[u][p]
}

// EdgeWeight returns the weight of the edge between u and v, or -1 if the
// nodes are not adjacent.
func (g *Graph) EdgeWeight(u, v NodeID) float64 {
	p := g.PortOf(u, v)
	if p < 0 {
		return -1
	}
	return g.adj[u][p].Weight
}

// EdgeID returns the undirected edge index between u and v, or -1 if the
// nodes are not adjacent.
func (g *Graph) EdgeID(u, v NodeID) int32 {
	p := g.PortOf(u, v)
	if p < 0 {
		return -1
	}
	return g.adj[u][p].EID
}

// PathLength returns the total weight of the node path (consecutive nodes
// must be adjacent; it panics otherwise, since a broken path is always a
// protocol bug in this codebase).
func (g *Graph) PathLength(path []NodeID) float64 {
	total := 0.0
	for i := 1; i < len(path); i++ {
		w := g.EdgeWeight(path[i-1], path[i])
		if w < 0 {
			panic(fmt.Sprintf("graph: path step %d: nodes %d,%d not adjacent", i, path[i-1], path[i]))
		}
		total += w
	}
	return total
}

// Components returns the connected component label of every node and the
// number of components. Labels are 0-based in order of first appearance.
func (g *Graph) Components() (label []int32, count int) {
	label = make([]int32, g.N())
	for i := range label {
		label[i] = -1
	}
	var queue []NodeID
	for s := 0; s < g.N(); s++ {
		if label[s] >= 0 {
			continue
		}
		c := int32(count)
		count++
		label[s] = c
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.adj[u] {
				if label[e.To] < 0 {
					label[e.To] = c
					queue = append(queue, e.To)
				}
			}
		}
	}
	return label, count
}

// Connected reports whether the graph has exactly one connected component
// (the paper assumes a connected network, §4.1).
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	_, c := g.Components()
	return c == 1
}

// EdgeKey names one undirected link by its endpoints. Use Norm to
// canonicalize before comparing or deduplicating: the (U,V) and (V,U)
// spellings denote the same link.
type EdgeKey struct{ U, V NodeID }

// Norm returns the canonical spelling with U <= V.
func (e EdgeKey) Norm() EdgeKey {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// Bridges reports, indexed by edge ID, whether each undirected edge is a
// bridge — an edge whose removal disconnects its component. Computed with
// one iterative lowpoint DFS (O(n+m), no recursion, so router-level graphs
// don't blow the goroutine stack). Parallel edges are handled: only the
// exact edge used to enter a node is excluded from its lowpoint, so a
// doubled link is correctly never a bridge. The dynamics experiments use
// this to fail "random non-bridge links" without silently partitioning the
// network.
func (g *Graph) Bridges() []bool {
	n := g.N()
	bridge := make([]bool, g.m)
	disc := make([]int32, n) // 0 = unvisited; else discovery time + 1
	low := make([]int32, n)
	// Explicit DFS stack: one frame per node on the current path, holding
	// the adjacency cursor and the edge used to enter.
	type frame struct {
		v      NodeID
		inEdge int32 // EID of the tree edge into v, -1 at a root
		next   int   // next adjacency index to scan
	}
	var stack []frame
	time := int32(0)
	for root := 0; root < n; root++ {
		if disc[root] != 0 {
			continue
		}
		time++
		disc[root], low[root] = time, time
		stack = append(stack[:0], frame{v: NodeID(root), inEdge: -1})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.v]) {
				e := g.adj[f.v][f.next]
				f.next++
				if e.EID == f.inEdge {
					continue // don't walk the entry edge back up
				}
				if disc[e.To] != 0 {
					if disc[e.To] < low[f.v] {
						low[f.v] = disc[e.To] // back edge
					}
					continue
				}
				time++
				disc[e.To], low[e.To] = time, time
				stack = append(stack, frame{v: e.To, inEdge: e.EID})
				continue
			}
			// f.v is fully explored: fold its lowpoint into the parent and
			// classify the tree edge.
			v := f.v
			in := f.inEdge
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := &stack[len(stack)-1]
			if low[v] < low[p.v] {
				low[p.v] = low[v]
			}
			if low[v] > disc[p.v] {
				bridge[in] = true
			}
		}
	}
	return bridge
}

// half is one undirected edge as seen from its lower endpoint — the
// canonical representative the EID-ordered copy loops iterate.
type half struct {
	u NodeID
	e Edge
}

// halvesByEID returns every undirected edge once, indexed by EID, each as
// its lower-endpoint half. Both graph-copy operations (WithoutEdges,
// WithEdges) rebuild from this so surviving edges keep their relative
// numbering — the determinism contract their doc comments promise.
func (g *Graph) halvesByEID() []half {
	byID := make([]half, g.m)
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if e.To > NodeID(u) {
				byID[e.EID] = half{u: NodeID(u), e: e}
			}
		}
	}
	return byID
}

// EdgeList returns every undirected link once, indexed by EID, in
// canonical (U < V) spelling — the uniform-draw table the dynamics
// experiments sample failures from.
func (g *Graph) EdgeList() []EdgeKey {
	byID := g.halvesByEID()
	out := make([]EdgeKey, len(byID))
	for id, h := range byID {
		out[id] = EdgeKey{U: h.u, V: h.e.To}
	}
	return out
}

// WithoutEdges returns a copy of g minus the edges whose IDs are marked in
// dead (indexed by EID, length M()). Node IDs are preserved; edge IDs are
// renumbered densely in the same deterministic order AddEdge assigned them.
// The copy is returned Finalized. This is the topology a failure scenario
// routes on: removed links simply no longer exist.
func (g *Graph) WithoutEdges(dead []bool) *Graph {
	if len(dead) != g.m {
		panic(fmt.Sprintf("graph: WithoutEdges mask has %d entries for %d edges", len(dead), g.m))
	}
	g2 := New(g.N())
	for id, h := range g.halvesByEID() {
		if dead[id] {
			continue
		}
		g2.AddEdge(h.u, h.e.To, h.e.Weight)
	}
	g2.Finalize()
	return g2
}

// WeightedLink names one undirected link together with its weight — the
// unit of link recovery: restoring a previously failed link needs the
// weight back, which the failed graph no longer records.
type WeightedLink struct {
	U, V NodeID
	W    float64
}

// WithEdges returns a copy of g plus the given additional links. Existing
// edges keep their relative EID order (renumbered densely, as WithoutEdges
// does); added links get the next IDs in the order given, so identical
// inputs always produce identical graphs. The copy is returned Finalized.
// This is the topology after a recovery event: restored links exist again.
func (g *Graph) WithEdges(adds []WeightedLink) *Graph {
	g2 := New(g.N())
	for _, h := range g.halvesByEID() {
		g2.AddEdge(h.u, h.e.To, h.e.Weight)
	}
	for _, a := range adds {
		g2.AddEdge(a.U, a.V, a.W)
	}
	g2.Finalize()
	return g2
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	t := 0.0
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if e.To > NodeID(u) {
				t += e.Weight
			}
		}
	}
	return t
}

// AvgDegree returns the average node degree 2M/N.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.N())
}

// MaxDegree returns the maximum node degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, es := range g.adj {
		if len(es) > max {
			max = len(es)
		}
	}
	return max
}
