package graph

import (
	"math"

	"disco/internal/parallel"
)

// Inf is the distance reported for unreached nodes.
var Inf = math.Inf(1)

// heapItem is a lazy-deletion priority queue entry: stale entries (node
// already settled) are skipped on pop. Ties are broken by node ID so every
// run is deterministic regardless of insertion order.
type heapItem struct {
	dist float64
	node NodeID
}

type minHeap []heapItem

func (h minHeap) less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}

func (h *minHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h).less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *minHeap) pop() heapItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && (*h).less(l, s) {
			s = l
		}
		if r < n && (*h).less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return top
}

// SSSP is a reusable single-source shortest-path scratch space over a fixed
// graph. Reuse across calls avoids reallocating O(n) arrays for the many
// thousands of (truncated) Dijkstra runs the static simulator performs.
// An SSSP is not safe for concurrent use; create one per goroutine.
type SSSP struct {
	g       *Graph
	dist    []float64
	parent  []NodeID
	nearest []NodeID // multi-source: which source settled this node
	stamp   []uint32
	settled []uint32 // stamp marking fully settled nodes
	epoch   uint32
	heap    minHeap
	order   []NodeID // settle order of the last run
}

// NewSSSP returns a shortest-path scratch bound to g. The graph must be
// Finalized and must not gain edges while the SSSP is in use.
func NewSSSP(g *Graph) *SSSP {
	if !g.Finalized() {
		g.Finalize()
	}
	n := g.N()
	return &SSSP{
		g:       g,
		dist:    make([]float64, n),
		parent:  make([]NodeID, n),
		nearest: make([]NodeID, n),
		stamp:   make([]uint32, n),
		settled: make([]uint32, n),
	}
}

// Graph returns the graph this scratch is bound to.
func (s *SSSP) Graph() *Graph { return s.g }

func (s *SSSP) begin() {
	s.epoch++
	if s.epoch == 0 { // wrapped: clear stamps and restart
		for i := range s.stamp {
			s.stamp[i] = 0
			s.settled[i] = 0
		}
		s.epoch = 1
	}
	s.heap = s.heap[:0]
	s.order = s.order[:0]
}

func (s *SSSP) relax(v NodeID, d float64, via NodeID, src NodeID) {
	if s.stamp[v] == s.epoch {
		if s.settled[v] == s.epoch || d >= s.dist[v] {
			if d == s.dist[v] && s.settled[v] != s.epoch && src < s.nearest[v] {
				// Deterministic multi-source tie-break: lowest source wins.
				s.nearest[v] = src
				s.parent[v] = via
			}
			return
		}
	}
	s.stamp[v] = s.epoch
	s.dist[v] = d
	s.parent[v] = via
	s.nearest[v] = src
	s.heap.push(heapItem{dist: d, node: v})
}

// run executes Dijkstra from the given sources, stopping when `limit` nodes
// have been settled (limit < 0 means no limit) or when the next settle
// distance would be >= radius (radius < 0 means no radius bound; strict:
// nodes at exactly radius are NOT settled).
func (s *SSSP) run(sources []NodeID, limit int, radius float64) {
	s.begin()
	for _, src := range sources {
		s.relax(src, 0, None, src)
	}
	for len(s.heap) > 0 {
		if limit >= 0 && len(s.order) >= limit {
			return
		}
		it := s.heap.pop()
		v := it.node
		if s.settled[v] == s.epoch || it.dist != s.dist[v] {
			continue // stale entry
		}
		if radius >= 0 && it.dist >= radius {
			return
		}
		s.settled[v] = s.epoch
		s.order = append(s.order, v)
		for _, e := range s.g.adj[v] {
			s.relax(e.To, it.dist+e.Weight, v, s.nearest[v])
		}
	}
}

// Run computes shortest paths from src to every reachable node.
func (s *SSSP) Run(src NodeID) { s.run([]NodeID{src}, -1, -1) }

// RunK computes shortest paths from src until k nodes (including src) are
// settled. The settle order (Order) then lists the k nodes closest to src in
// (distance, node ID) order — the paper's vicinity V(src) for k =
// Θ(sqrt(n log n)) (§4.2).
func (s *SSSP) RunK(src NodeID, k int) { s.run([]NodeID{src}, k, -1) }

// RunRadius computes shortest paths from src settling exactly the nodes at
// distance strictly less than radius. S4's cluster computation uses this:
// node w contributes itself to the cluster of every v with d(w,v) <
// d(w, l_w) (§4.2 "Comparison with S4").
func (s *SSSP) RunRadius(src NodeID, radius float64) { s.run([]NodeID{src}, -1, radius) }

// RunMulti computes a multi-source shortest-path forest: for every node, the
// distance and tree path to its nearest source (ties to the lowest source
// ID). This yields d(v, l_v) and the landmark trees in one pass.
func (s *SSSP) RunMulti(sources []NodeID) { s.run(sources, -1, -1) }

// Settled reports whether v was settled by the last run.
func (s *SSSP) Settled(v NodeID) bool { return s.settled[v] == s.epoch }

// Dist returns the shortest-path distance to v from the last run's
// source(s), or +Inf if v was not settled.
func (s *SSSP) Dist(v NodeID) float64 {
	if s.settled[v] != s.epoch {
		return Inf
	}
	return s.dist[v]
}

// Parent returns the predecessor of v on its shortest path, or None.
func (s *SSSP) Parent(v NodeID) NodeID {
	if s.settled[v] != s.epoch {
		return None
	}
	return s.parent[v]
}

// Source returns the source that settled v in a multi-source run (the
// nearest landmark, in the protocol's terms), or None if unsettled.
func (s *SSSP) Source(v NodeID) NodeID {
	if s.settled[v] != s.epoch {
		return None
	}
	return s.nearest[v]
}

// Order returns the settle order of the last run. The slice is reused by the
// next run; copy it if it must survive.
func (s *SSSP) Order() []NodeID { return s.order }

// PathTo returns the node path source⇝v from the last run (inclusive of
// both endpoints), or nil if v was not settled.
func (s *SSSP) PathTo(v NodeID) []NodeID {
	if s.settled[v] != s.epoch {
		return nil
	}
	var rev []NodeID
	for u := v; u != None; u = s.parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ForEachSource fans an all-sources Dijkstra sweep out over the parallel
// worker pool: visit(s, i, sources[i]) runs once per source with a
// worker-private SSSP scratch; visit calls whichever Run variant it needs
// (Run, RunK, RunRadius) and reads the results off s. The graph is
// finalized up front so workers only ever read it; visit must confine
// writes to source-indexed (or worker-private) storage.
func ForEachSource(g *Graph, sources []NodeID, visit func(s *SSSP, i int, src NodeID)) {
	if !g.Finalized() {
		g.Finalize()
	}
	parallel.RunScratch(len(sources),
		func() *SSSP { return NewSSSP(g) },
		func(s *SSSP, i int) { visit(s, i, sources[i]) })
}

// AllNodes returns the slice [0..g.N()) for full-graph sweeps.
func AllNodes(g *Graph) []NodeID {
	out := make([]NodeID, g.N())
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// FirstHopTo returns the first hop on the shortest path from the (single)
// source of the last run toward v, or None if v is the source or unsettled.
func (s *SSSP) FirstHopTo(v NodeID) NodeID {
	if s.settled[v] != s.epoch || s.parent[v] == None {
		return None
	}
	u := v
	for s.parent[u] != None && s.parent[s.parent[u]] != None {
		u = s.parent[u]
	}
	if s.parent[u] == None {
		return None
	}
	return u
}
