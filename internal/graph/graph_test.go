package graph

import (
	"math/rand"
	"testing"
)

func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	// 0 --1-- 1 --1-- 3
	//  \--3-- 2 --1--/
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(0, 2, 3)
	g.AddEdge(2, 3, 1)
	g.Finalize()
	return g
}

func TestAddEdgeAndDegrees(t *testing.T) {
	g := buildDiamond(t)
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("got N=%d M=%d, want 4,4", g.N(), g.M())
	}
	wantDeg := []int{2, 2, 2, 2}
	for v, w := range wantDeg {
		if g.Degree(NodeID(v)) != w {
			t.Errorf("degree(%d)=%d want %d", v, g.Degree(NodeID(v)), w)
		}
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	g := New(2)
	g.AddEdge(1, 1, 1)
}

func TestNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative weight")
		}
	}()
	g := New(2)
	g.AddEdge(0, 1, -0.5)
}

func TestPortsRoundTrip(t *testing.T) {
	g := buildDiamond(t)
	for u := NodeID(0); int(u) < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			p := g.PortOf(u, e.To)
			if p < 0 {
				t.Fatalf("PortOf(%d,%d) = -1", u, e.To)
			}
			if got := g.NeighborAt(u, p).To; got != e.To {
				t.Fatalf("NeighborAt(%d,%d)=%d want %d", u, p, got, e.To)
			}
		}
	}
	if g.PortOf(0, 3) != -1 {
		t.Error("PortOf for non-edge should be -1")
	}
}

func TestEdgeWeightAndID(t *testing.T) {
	g := buildDiamond(t)
	if w := g.EdgeWeight(0, 2); w != 3 {
		t.Errorf("EdgeWeight(0,2)=%v want 3", w)
	}
	if w := g.EdgeWeight(1, 2); w != -1 {
		t.Errorf("EdgeWeight(1,2)=%v want -1", w)
	}
	id01 := g.EdgeID(0, 1)
	id10 := g.EdgeID(1, 0)
	if id01 != id10 || id01 < 0 {
		t.Errorf("edge IDs should match across both directions: %d vs %d", id01, id10)
	}
}

func TestPathLength(t *testing.T) {
	g := buildDiamond(t)
	if l := g.PathLength([]NodeID{0, 1, 3}); l != 2 {
		t.Errorf("PathLength=%v want 2", l)
	}
	if l := g.PathLength([]NodeID{2}); l != 0 {
		t.Errorf("single-node path length=%v want 0", l)
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.Finalize()
	_, c := g.Components()
	if c != 3 {
		t.Fatalf("components=%d want 3", c)
	}
	if g.Connected() {
		t.Error("graph should not be connected")
	}
	g2 := buildDiamond(t)
	if !g2.Connected() {
		t.Error("diamond should be connected")
	}
}

func TestDijkstraDiamond(t *testing.T) {
	g := buildDiamond(t)
	s := NewSSSP(g)
	s.Run(0)
	want := map[NodeID]float64{0: 0, 1: 1, 2: 3, 3: 2}
	for v, d := range want {
		if got := s.Dist(v); got != d {
			t.Errorf("dist(0,%d)=%v want %v", v, got, d)
		}
	}
	// Shortest path to 2 goes direct (3) vs via 3 (also 3): tie broken
	// deterministically; path must have length equal to dist.
	p := s.PathTo(2)
	if g.PathLength(p) != 3 {
		t.Errorf("path length %v want 3 (path %v)", g.PathLength(p), p)
	}
	if p[0] != 0 || p[len(p)-1] != 2 {
		t.Errorf("path endpoints wrong: %v", p)
	}
}

func TestDijkstraVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := New(n)
		seen := map[[2]NodeID]bool{}
		for e := 0; e < n*2; e++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if seen[[2]NodeID{a, b}] {
				continue
			}
			seen[[2]NodeID{a, b}] = true
			g.AddEdge(u, v, float64(1+rng.Intn(9)))
		}
		g.Finalize()
		// Floyd-Warshall reference.
		const inf = 1e18
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
			for j := range d[i] {
				if i != j {
					d[i][j] = inf
				}
			}
		}
		for u := 0; u < n; u++ {
			for _, e := range g.Neighbors(NodeID(u)) {
				if e.Weight < d[u][e.To] {
					d[u][e.To] = e.Weight
				}
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d[i][k]+d[k][j] < d[i][j] {
						d[i][j] = d[i][k] + d[k][j]
					}
				}
			}
		}
		s := NewSSSP(g)
		for src := 0; src < n; src++ {
			s.Run(NodeID(src))
			for v := 0; v < n; v++ {
				want := d[src][v]
				got := s.Dist(NodeID(v))
				if want >= inf {
					if !wantInf(got) {
						t.Fatalf("trial %d: dist(%d,%d)=%v want inf", trial, src, v, got)
					}
					continue
				}
				if got != want {
					t.Fatalf("trial %d: dist(%d,%d)=%v want %v", trial, src, v, got, want)
				}
				// Path must exist, start/end right, and match distance.
				p := s.PathTo(NodeID(v))
				if p[0] != NodeID(src) || p[len(p)-1] != NodeID(v) {
					t.Fatalf("bad path endpoints %v", p)
				}
				if g.PathLength(p) != want {
					t.Fatalf("path length %v want %v", g.PathLength(p), want)
				}
			}
		}
	}
}

func wantInf(v float64) bool { return v > 1e17 }

func TestRunKSettlesKClosest(t *testing.T) {
	// Line graph: RunK(0, 3) must settle exactly 0,1,2.
	g := New(6)
	for i := 0; i < 5; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	g.Finalize()
	s := NewSSSP(g)
	s.RunK(0, 3)
	order := s.Order()
	if len(order) != 3 {
		t.Fatalf("settled %d nodes want 3", len(order))
	}
	for i, v := range []NodeID{0, 1, 2} {
		if order[i] != v {
			t.Errorf("order[%d]=%d want %d", i, order[i], v)
		}
	}
	if s.Settled(3) {
		t.Error("node 3 should not be settled")
	}
}

func TestRunKDeterministicTieBreak(t *testing.T) {
	// Star: all leaves at distance 1; k=3 must settle center + two
	// lowest-ID leaves.
	g := New(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, NodeID(i), 1)
	}
	g.Finalize()
	s := NewSSSP(g)
	s.RunK(0, 3)
	got := append([]NodeID(nil), s.Order()...)
	want := []NodeID{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v want %v", got, want)
		}
	}
}

func TestRunRadiusStrict(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.Finalize()
	s := NewSSSP(g)
	s.RunRadius(0, 2)
	// Settles nodes with dist < 2: nodes 0,1.
	if !s.Settled(0) || !s.Settled(1) || s.Settled(2) || s.Settled(3) {
		t.Errorf("radius settle set wrong: %v %v %v %v",
			s.Settled(0), s.Settled(1), s.Settled(2), s.Settled(3))
	}
	s.RunRadius(0, 0)
	if s.Settled(0) {
		t.Error("radius 0 must settle nothing (strict)")
	}
}

func TestRunMultiNearestSource(t *testing.T) {
	// Line 0-1-2-3-4, sources {0,4}: nearest of 1 is 0, of 3 is 4; node 2
	// ties -> lowest source 0.
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	g.Finalize()
	s := NewSSSP(g)
	s.RunMulti([]NodeID{0, 4})
	cases := map[NodeID]NodeID{0: 0, 1: 0, 2: 0, 3: 4, 4: 4}
	for v, src := range cases {
		if got := s.Source(v); got != src {
			t.Errorf("Source(%d)=%d want %d", v, got, src)
		}
	}
	if s.Dist(2) != 2 {
		t.Errorf("Dist(2)=%v want 2", s.Dist(2))
	}
	// Path from node 3 must lead back to source 4.
	p := s.PathTo(3)
	if p[0] != 4 || p[len(p)-1] != 3 {
		t.Errorf("multi-source path %v should start at source 4", p)
	}
}

func TestFirstHopTo(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.Finalize()
	s := NewSSSP(g)
	s.Run(0)
	if h := s.FirstHopTo(3); h != 1 {
		t.Errorf("FirstHopTo(3)=%d want 1", h)
	}
	if h := s.FirstHopTo(1); h != 1 {
		t.Errorf("FirstHopTo(1)=%d want 1", h)
	}
	if h := s.FirstHopTo(0); h != None {
		t.Errorf("FirstHopTo(source)=%d want None", h)
	}
}

func TestEpochReuse(t *testing.T) {
	g := buildDiamond(t)
	s := NewSSSP(g)
	for i := 0; i < 100; i++ {
		src := NodeID(i % 4)
		s.Run(src)
		if s.Dist(src) != 0 {
			t.Fatalf("iteration %d: Dist(src)=%v", i, s.Dist(src))
		}
	}
	// After a truncated run, unsettled nodes must read as Inf.
	s.RunK(0, 1)
	if !s.Settled(0) || s.Settled(1) {
		t.Fatal("RunK(0,1) should settle only the source")
	}
	if d := s.Dist(3); !wantInf(d) {
		t.Errorf("unsettled Dist=%v want Inf", d)
	}
}

func TestPortOfBeforeFinalizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.PortOf(0, 1)
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New(3)
	g.AddEdge(0, 5, 1)
}

func TestSingleNodeGraph(t *testing.T) {
	g := New(1)
	g.Finalize()
	if !g.Connected() {
		t.Fatal("single node is connected")
	}
	s := NewSSSP(g)
	s.Run(0)
	if s.Dist(0) != 0 {
		t.Fatal("self distance")
	}
	if p := s.PathTo(0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("self path %v", p)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if !g.Connected() {
		t.Fatal("empty graph is trivially connected")
	}
	if g.AvgDegree() != 0 || g.MaxDegree() != 0 || g.TotalWeight() != 0 {
		t.Fatal("empty graph stats")
	}
}

func TestParallelSSSPIndependence(t *testing.T) {
	// Two scratches over the same graph must not interfere.
	g := buildDiamond(t)
	a := NewSSSP(g)
	b := NewSSSP(g)
	a.Run(0)
	b.Run(3)
	if a.Dist(3) != 2 || b.Dist(0) != 2 {
		t.Fatal("scratches interfered")
	}
	if a.Dist(2) != 3 || b.Dist(2) != 1 {
		t.Fatalf("scratches interfered: %v %v", a.Dist(2), b.Dist(2))
	}
}

func TestRunKMoreThanN(t *testing.T) {
	g := buildDiamond(t)
	s := NewSSSP(g)
	s.RunK(0, 100)
	if len(s.Order()) != 4 {
		t.Fatalf("settled %d want all 4", len(s.Order()))
	}
}

func TestZeroWeightEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 1)
	g.Finalize()
	s := NewSSSP(g)
	s.Run(0)
	if s.Dist(1) != 0 || s.Dist(2) != 1 {
		t.Fatalf("zero-weight handling: %v %v", s.Dist(1), s.Dist(2))
	}
}

func TestTotalWeightAvgMaxDegree(t *testing.T) {
	g := buildDiamond(t)
	if tw := g.TotalWeight(); tw != 6 {
		t.Errorf("TotalWeight=%v want 6", tw)
	}
	if ad := g.AvgDegree(); ad != 2 {
		t.Errorf("AvgDegree=%v want 2", ad)
	}
	if md := g.MaxDegree(); md != 2 {
		t.Errorf("MaxDegree=%v want 2", md)
	}
}

// bridgesByRemoval is the O(m·(n+m)) reference: an edge is a bridge iff
// removing it raises the component count.
func bridgesByRemoval(g *Graph) []bool {
	_, base := g.Components()
	out := make([]bool, g.M())
	for id := range out {
		dead := make([]bool, g.M())
		dead[id] = true
		if _, c := g.WithoutEdges(dead).Components(); c > base {
			out[id] = true
		}
	}
	return out
}

func TestBridgesKnownTopology(t *testing.T) {
	// Two triangles joined by a bridge, plus a pendant edge (also a bridge).
	g := New(7)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	b1 := g.AddEdge(2, 3, 1) // bridge
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 3, 1)
	b2 := g.AddEdge(5, 6, 1) // pendant bridge
	g.Finalize()
	got := g.Bridges()
	for id := int32(0); int(id) < g.M(); id++ {
		want := id == b1 || id == b2
		if got[id] != want {
			t.Errorf("edge %d: bridge=%v want %v", id, got[id], want)
		}
	}
}

func TestBridgesParallelEdgeIsNotABridge(t *testing.T) {
	// A doubled link between 0 and 1 plus a pendant at 2: only the pendant
	// is a bridge, even though each parallel half looks like a tree edge.
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	pendant := g.AddEdge(1, 2, 1)
	g.Finalize()
	got := g.Bridges()
	for id := int32(0); int(id) < g.M(); id++ {
		if got[id] != (id == pendant) {
			t.Errorf("edge %d: bridge=%v want %v", id, got[id], id == pendant)
		}
	}
}

func TestBridgesMatchesRemovalReference(t *testing.T) {
	// Random sparse graphs (disconnected allowed) against the
	// removal-based reference definition.
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 40
		g := New(n)
		seen := map[EdgeKey]bool{}
		for i := 0; i < 55; i++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			k := (EdgeKey{U: u, V: v}).Norm()
			if u == v || seen[k] {
				continue
			}
			seen[k] = true
			g.AddEdge(u, v, 1)
		}
		g.Finalize()
		got := g.Bridges()
		want := bridgesByRemoval(g)
		for id := range want {
			if got[id] != want[id] {
				t.Fatalf("seed %d edge %d: bridge=%v want %v", seed, id, got[id], want[id])
			}
		}
	}
}

func TestWithoutEdges(t *testing.T) {
	g := buildDiamond(t)
	dead := make([]bool, g.M())
	dead[g.EdgeID(1, 3)] = true
	g2 := g.WithoutEdges(dead)
	if g2.N() != g.N() || g2.M() != g.M()-1 {
		t.Fatalf("got N=%d M=%d, want %d,%d", g2.N(), g2.M(), g.N(), g.M()-1)
	}
	if g2.EdgeWeight(1, 3) >= 0 {
		t.Fatal("removed edge still present")
	}
	// Surviving edges keep endpoints and weights.
	for _, e := range [][3]float64{{0, 1, 1}, {0, 2, 3}, {2, 3, 1}} {
		if w := g2.EdgeWeight(NodeID(e[0]), NodeID(e[1])); w != e[2] {
			t.Errorf("edge (%v,%v) weight %v want %v", e[0], e[1], w, e[2])
		}
	}
	if !g2.Finalized() {
		t.Fatal("WithoutEdges result not finalized")
	}
	// Edge IDs renumber densely: every ID 0..M-1 is present.
	for id := int32(0); int(id) < g2.M(); id++ {
		found := false
		for u := 0; u < g2.N() && !found; u++ {
			for _, e := range g2.Neighbors(NodeID(u)) {
				if e.EID == id {
					found = true
					break
				}
			}
		}
		if !found {
			t.Fatalf("edge ID %d missing after renumbering", id)
		}
	}
}
