package forward

import (
	"disco/internal/dynamics"
	"disco/internal/graph"
)

// Router is one goroutine's forwarding view over a Tables: the compiled
// state is shared, the scratch buffers are private. It answers exactly
// what core.NDDisco's repaired routing answers — same direct cases, same
// deterministic landmark rehoming, same joinPaths backtrack collapse,
// same To-Destination splice — byte for byte, because every decision
// reads the same shard contents through the compiled tables. The
// allocation-free entry point is AppendRoute; the dynamics.Router methods
// wrap it with one fresh-slice copy so existing callers (legs, the serve
// plane's generic path) keep their owned-route contract.
type Router struct {
	t     *Tables
	stack []int32        // vicinity parent-chain scratch (entry indices)
	chain []graph.NodeID // forest descent scratch (t ⇝ landmark)
	route []graph.NodeID // landmark-leg route under construction
	out   []graph.NodeID // backing buffer for the dynamics.Router methods
}

var _ dynamics.Router = (*Router)(nil)
var _ dynamics.AppendRouter = (*Router)(nil)

// NewRouter returns a forwarding view over t for exclusive use by one
// goroutine at a time (the serve plane pools these per epoch).
func (t *Tables) NewRouter() *Router { return &Router{t: t} }

// AppendRoute appends the route s ⇝ t to dst and reports deliverability —
// the zero-allocation fast path: with the touched shards compiled and
// dst, like the Router's scratch, at steady-state capacity, a call
// performs no heap allocation. later selects the post-handshake phase
// (the destination's reverse-path shortcut), mirroring
// RepairedLaterRoute vs RepairedFirstRoute. On ok=false dst is returned
// unextended.
func (r *Router) AppendRoute(dst []graph.NodeID, s, t graph.NodeID, later bool) ([]graph.NodeID, bool) {
	tb := r.t
	// Direct cases, in core.NDDisco.repairedDirect's order: self, live
	// landmark destination, destination inside s's vicinity.
	if s == t {
		return append(dst, s), true
	}
	if tb.isLM[t] {
		row := tb.row(tb.lmRowIdx[t])
		if row[s] == graph.None {
			return dst, false // cut off from the landmark (s != t here)
		}
		for u := s; u != graph.None; u = row[u] {
			dst = append(dst, u)
		}
		return dst, true
	}
	ns := tb.node(s)
	if i := ns.find(t); i >= 0 {
		return r.appendVicPath(dst, ns, i), true
	}
	// Later packets: t installed the exact reverse path when s is in t's
	// vicinity. The parent chain from s's entry up to owner t IS the
	// reversed PathTo(s) in forward order.
	if later {
		nt := tb.node(t)
		if j := nt.find(s); j >= 0 {
			for ; j >= 0; j = nt.parent[j] {
				dst = append(dst, nt.ids[j])
			}
			return dst, true
		}
	}
	return r.appendLandmarkRoute(dst, s, t)
}

// appendVicPath appends the in-vicinity path owner ⇝ ids[i] (both ends
// included) to dst: the parent chain from entry i collects into the index
// stack, then unwinds owner-first — vicinity.Set.PathTo without the
// searches or the allocation.
func (r *Router) appendVicPath(dst []graph.NodeID, nt *nodeTable, i int32) []graph.NodeID {
	st := r.stack[:0]
	for j := i; j >= 0; j = nt.parent[j] {
		st = append(st, j)
	}
	for k := len(st) - 1; k >= 0; k-- {
		dst = append(dst, nt.ids[st[k]])
	}
	r.stack = st[:0]
	return dst
}

// rehome returns the landmark the repaired control plane homes t to —
// core.NDDisco.rehomeLandmark's rule verbatim: t's original landmark
// while its tree reaches t, else the lowest-ID landmark whose tree does,
// else graph.None (t's component lost every landmark).
func (r *Router) rehome(t graph.NodeID) graph.NodeID {
	tb := r.t
	if lm := tb.lmOf[t]; r.reaches(lm, t) {
		return lm
	}
	best := graph.None
	for _, lm := range tb.landmarks {
		if (best == graph.None || lm < best) && r.reaches(lm, t) {
			best = lm
		}
	}
	return best
}

// reaches reports whether lm's tree still reaches v (snapshot.Reaches on
// the compiled row).
func (r *Router) reaches(lm, v graph.NodeID) bool {
	return v == lm || r.t.row(r.t.lmRowIdx[lm])[v] != graph.None
}

// appendLandmarkRoute is the landmark leg s ⇝ l_t ⇝ t with the
// To-Destination splice at the first en-route node whose vicinity knows
// t — core.NDDisco.repairedLandmarkRoute + repairedWalkToDest over the
// compiled tables. The route is assembled in the private scratch (the
// splice truncates and regrows it) and copied to dst once final.
func (r *Router) appendLandmarkRoute(dst []graph.NodeID, s, t graph.NodeID) ([]graph.NodeID, bool) {
	tb := r.t
	lm := r.rehome(t)
	if lm == graph.None {
		return dst, false
	}
	row := tb.row(tb.lmRowIdx[lm])
	if s != lm && row[s] == graph.None {
		return dst, false
	}
	// joinPaths(PathFrom(lm, s), PathTo(lm, t)): the up-chain from s,
	// then the reversed down-chain from t with the joint node deduplicated
	// and immediate backtracks across it collapsed (…x,lm,x… → …x…).
	route := r.route[:0]
	for u := s; u != graph.None; u = row[u] {
		route = append(route, u)
	}
	ch := r.chain[:0]
	for u := t; u != graph.None; u = row[u] {
		ch = append(ch, u)
	}
	r.chain = ch
	for k := len(ch) - 2; k >= 0; k-- {
		v := ch[k]
		if len(route) >= 2 && route[len(route)-2] == v {
			route = route[:len(route)-1]
			continue
		}
		route = append(route, v)
	}
	// To-Destination: divert to the direct vicinity path at the first
	// node that knows one; on a shortest sub-path toward t every later
	// node knows t too, so the first splice is final (dynamics.WalkToDest).
	for i := 0; i < len(route); i++ {
		u := route[i]
		if u == t {
			route = route[:i+1]
			break
		}
		nu := tb.node(u)
		if j := nu.find(t); j >= 0 {
			route = r.appendVicPath(route[:i], nu, j)
			break
		}
	}
	r.route = route[:0]
	return append(dst, route...), true
}

// RepairedFirstRoute implements dynamics.Router: AppendRoute into the
// reusable backing buffer, returned as a fresh copy the caller owns.
func (r *Router) RepairedFirstRoute(s, t graph.NodeID) ([]graph.NodeID, bool) {
	return r.routeCopy(s, t, false)
}

// RepairedLaterRoute implements dynamics.Router for post-handshake
// packets.
func (r *Router) RepairedLaterRoute(s, t graph.NodeID) ([]graph.NodeID, bool) {
	return r.routeCopy(s, t, true)
}

func (r *Router) routeCopy(s, t graph.NodeID, later bool) ([]graph.NodeID, bool) {
	out, ok := r.AppendRoute(r.out[:0], s, t, later)
	r.out = out[:0]
	if !ok {
		return nil, false
	}
	return append([]graph.NodeID(nil), out...), true
}
