package forward_test

import (
	"math/rand"
	"testing"

	"disco/internal/forward"
	"disco/internal/graph"
)

// BenchmarkForwardThroughput measures single-core route queries per
// second on the two query planes over the same n=1024 snapshot: the
// protocol fork walking the snapshot (PR 6's serve plane) versus the
// compiled interval tables. The routes/sec metric is what the README
// and ROADMAP quote; the tables sub-benchmark must also report 0
// allocs/op (the fast path's zero-allocation contract).
func BenchmarkForwardThroughput(b *testing.B) {
	const (
		n    = 1024
		seed = 1
	)
	env, base, nd := buildEnv(b, n, seed, false)
	pairs := samplePairs(rand.New(rand.NewSource(seed)), n, 4096)

	b.Run("fork-and-walk", func(b *testing.B) {
		r := nd.ForkRepaired(base)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			if i%2 == 0 {
				r.RepairedFirstRoute(pr[0], pr[1])
			} else {
				r.RepairedLaterRoute(pr[0], pr[1])
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "routes/s")
	})

	b.Run("tables", func(b *testing.B) {
		tbls := forward.Compile(base, env.Landmarks, env.LMOf)
		tbls.Precompile()
		r := tbls.NewRouter()
		buf := make([]graph.NodeID, 0, 256)
		for _, pr := range pairs { // steady-state the scratch buffers
			buf, _ = r.AppendRoute(buf[:0], pr[0], pr[1], true)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr := pairs[i%len(pairs)]
			buf, _ = r.AppendRoute(buf[:0], pr[0], pr[1], i%2 == 1)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "routes/s")
	})
}
