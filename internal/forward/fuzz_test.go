package forward

import (
	"sort"
	"testing"

	"disco/internal/graph"
)

// FuzzIntervalLookup drives findIntervals — the binary search at the
// bottom of every table lookup — against a linear-scan oracle over the
// raw member list. The fuzz input is decoded into an arbitrary sorted
// set of member IDs (each byte advances the next ID by 1..16, so runs
// of low bytes produce the consecutive-ID runs the intervals compress),
// the interval arrays are built from it, and every member, every
// just-outside neighbor, and the fuzzed probe itself must agree with
// the oracle's index.
func FuzzIntervalLookup(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0, 0, 0, 0}, uint16(3))
	f.Add([]byte{0, 7, 0, 0, 15, 0}, uint16(9))
	f.Add([]byte{15, 15, 15, 15}, uint16(31))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(20))
	f.Fuzz(func(t *testing.T, data []byte, probe uint16) {
		if len(data) > 1024 {
			data = data[:1024]
		}
		// Decode a strictly increasing member set.
		ids := make([]graph.NodeID, 0, len(data))
		next := graph.NodeID(0)
		for _, b := range data {
			next += graph.NodeID(b%16) + 1
			ids = append(ids, next-1)
		}
		// Build the interval arrays the way compileNode does: one entry
		// per maximal run of consecutive IDs.
		var lo, hi []graph.NodeID
		var start []int32
		for i := 0; i < len(ids); {
			j := i
			for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
				j++
			}
			lo, hi, start = append(lo, ids[i]), append(hi, ids[j]), append(start, int32(i))
			i = j + 1
		}
		// The oracle: a plain linear scan of the member list.
		oracle := func(t graph.NodeID) int32 {
			for i, id := range ids {
				if id == t {
					return int32(i)
				}
			}
			return -1
		}
		check := func(q graph.NodeID) {
			if got, want := findIntervals(lo, hi, start, q), oracle(q); got != want {
				t.Fatalf("findIntervals(%v) = %d, oracle says %d (members %v)", q, got, want, ids)
			}
		}
		check(graph.NodeID(probe))
		for _, id := range ids {
			check(id)
			if id > 0 {
				check(id - 1)
			}
			check(id + 1)
		}
		// The intervals must be sorted, disjoint, and cover len(ids)
		// entries exactly — the structural invariant compileNode promises.
		if !sort.SliceIsSorted(lo, func(a, b int) bool { return lo[a] < lo[b] }) {
			t.Fatalf("interval lows not sorted: %v", lo)
		}
		total := 0
		for i := range lo {
			total += int(hi[i]-lo[i]) + 1
		}
		if total != len(ids) {
			t.Fatalf("intervals cover %d entries, member list has %d", total, len(ids))
		}
	})
}
