// Package forward is the data plane's forwarding fast path: per-node
// next-hop tables compiled from a snapshot.Snapshot, flattened into
// sorted ID-interval arrays so answering a route query is a short walk of
// zero-allocation binary searches instead of the fork-and-walk the
// experiments use (fork a protocol view, run the vicinity/landmark checks
// through the Set and TreeView abstractions).
//
// The compiled state per node is its vicinity window as an interval
// table: the window's member IDs — sorted, and on real topologies heavily
// clustered — are grouped into maximal runs of consecutive IDs, stored as
// parallel (lo, hi, start) arrays. Membership and entry lookup is one
// binary search over the runs plus O(1) indexing within the hit run,
// touching two small cache-resident arrays. Next hops are parent *indices*
// into the same table, so path reconstruction is pointer-chasing within
// one node's table, never a search. Landmark forests stay what they
// already are in the snapshot — flat parent rows — shared by reference
// where the snapshot stores them flat and decoded once where it does not
// (compact regime).
//
// Tables integrate with the repair chain by blast-radius invalidation:
// Derive(rep, st) produces the tables of the repaired child snapshot by
// sharing every compiled shard the event did not touch and dropping
// exactly the windows and rows in the event's RepairStats touched lists
// (VicTouched/RowsTouched), which are recompiled lazily on first use.
// The sharing is sound for the same reason snapshot chaining is: an
// untouched shard is byte-identical between parent and child, folds
// included, and a compiled table is a pure function of its shard's
// content.
//
// Routes are byte-identical to core.NDDisco's repaired routing
// (RepairedFirstRoute/RepairedLaterRoute) by construction: Router mirrors
// that control flow exactly — direct cases, rehoming, joinPaths backtrack
// collapse, To-Destination splice — reading the same data from the
// compiled tables. The equivalence suite pins this on base and repaired
// snapshots in both storage regimes.
package forward

import (
	"sort"
	"sync/atomic"

	"disco/internal/graph"
	"disco/internal/parallel"
	"disco/internal/snapshot"
	"disco/internal/vicinity"
)

// nodeTable is one node's compiled vicinity window: the members' sorted
// IDs grouped into maximal consecutive runs (lo[j]..hi[j], with the run's
// first entry at index start[j]), plus per-entry member IDs and parent
// indices for in-table path reconstruction. parent[i] is the index of
// entry i's vicinity parent, or -1 for the owner (whose parent is None).
type nodeTable struct {
	owner  graph.NodeID
	lo, hi []graph.NodeID
	start  []int32
	ids    []graph.NodeID
	parent []int32
	// Membership pre-filter: bit (id & fmask) is set for every member, so
	// a clear bit rejects a non-member in two loads before the binary
	// search — the dominant case on the To-Destination walk, where every
	// hop's window is probed for the target and most don't hold it. Sized
	// to the ID space (exact, zero false positives) up to 8192 bits, a
	// residue filter beyond.
	filt  []uint64
	fmask uint32
}

// findIntervals is the core lookup shared by nodeTable.find and the fuzz
// oracle test: the entry index of t in the (lo, hi, start) interval table,
// or -1 when t lies in no run. lo must be sorted ascending with disjoint
// runs.
func findIntervals(lo, hi []graph.NodeID, start []int32, t graph.NodeID) int32 {
	i, j := 0, len(lo)
	for i < j {
		m := int(uint(i+j) >> 1)
		if lo[m] <= t {
			i = m + 1
		} else {
			j = m
		}
	}
	if i == 0 || t > hi[i-1] {
		return -1
	}
	return start[i-1] + int32(t-lo[i-1])
}

// find returns the entry index of member t, or -1 when t is not in the
// window. Zero allocations.
func (nt *nodeTable) find(t graph.NodeID) int32 {
	b := uint32(t) & nt.fmask
	if nt.filt[b>>6]&(1<<(b&63)) == 0 {
		return -1
	}
	return findIntervals(nt.lo, nt.hi, nt.start, t)
}

// compileNode flattens one vicinity set into its interval table. The
// result depends only on the set's contents, so concurrent compiles of the
// same window are identical and any one may win the install race.
func compileNode(set *vicinity.Set, n int) *nodeTable {
	es := set.Entries
	nt := &nodeTable{owner: set.Src}
	bitsN := 64
	for bitsN < n && bitsN < 8192 {
		bitsN <<= 1
	}
	nt.fmask = uint32(bitsN - 1)
	nt.filt = make([]uint64, bitsN/64)
	for i := range es {
		b := uint32(es[i].Node) & nt.fmask
		nt.filt[b>>6] |= 1 << (b & 63)
	}
	nt.ids = make([]graph.NodeID, len(es))
	nt.parent = make([]int32, len(es))
	for i := range es {
		nt.ids[i] = es[i].Node
	}
	for i := range es {
		p := es[i].Parent
		if p == graph.None {
			nt.parent[i] = -1
			continue
		}
		j := sort.Search(len(nt.ids), func(k int) bool { return nt.ids[k] >= p })
		nt.parent[i] = int32(j) // vicinity invariant: parents are members
	}
	for i := 0; i < len(es); {
		j := i
		for j+1 < len(es) && es[j+1].Node == es[j].Node+1 {
			j++
		}
		nt.lo = append(nt.lo, es[i].Node)
		nt.hi = append(nt.hi, es[j].Node)
		nt.start = append(nt.start, int32(i))
		i = j + 1
	}
	return nt
}

// Tables is the compiled forwarding state of one snapshot: lazily built,
// atomically installed per-shard tables (one nodeTable per node, one flat
// parent row per landmark). Immutable once compiled; the atomic pointers
// only ever go nil → compiled, and concurrent compiles of one shard
// produce identical tables, so readers need no locks. Safe for any number
// of concurrent Router forks.
type Tables struct {
	snap      *snapshot.Snapshot
	landmarks []graph.NodeID // home-registration order (static.Env.Landmarks)
	lmOf      []graph.NodeID // node -> home landmark (static.Env.LMOf)
	isLM      []bool
	lmRowIdx  []int32 // node -> index into rows, or -1
	nodes     []atomic.Pointer[nodeTable]
	rows      []atomic.Pointer[[]graph.NodeID]
}

// Compile prepares (empty) tables over snap. landmarks and lmOf are the
// converged environment's landmark list and home-landmark assignment —
// name-space state that is independent of topology and shared across
// repairs, exactly as core.NDDisco shares its Env across ForkRepaired.
// Shards compile lazily on first use; call Precompile to pay the whole
// cost up front.
func Compile(snap *snapshot.Snapshot, landmarks, lmOf []graph.NodeID) *Tables {
	n := snap.Graph().N()
	t := &Tables{
		snap:      snap,
		landmarks: landmarks,
		lmOf:      lmOf,
		isLM:      make([]bool, n),
		lmRowIdx:  make([]int32, n),
		nodes:     make([]atomic.Pointer[nodeTable], n),
		rows:      make([]atomic.Pointer[[]graph.NodeID], len(landmarks)),
	}
	for v := range t.lmRowIdx {
		t.lmRowIdx[v] = -1
	}
	for i, lm := range landmarks {
		t.isLM[lm] = true
		t.lmRowIdx[lm] = int32(i)
	}
	return t
}

// Snapshot returns the snapshot the tables were compiled from.
func (t *Tables) Snapshot() *snapshot.Snapshot { return t.snap }

// Precompile compiles every shard eagerly over the worker pool — the
// serving mode's warm-up, and what the zero-allocation guarantee on the
// query path assumes (a cold shard's first query pays its compile).
func (t *Tables) Precompile() {
	parallel.Run(len(t.nodes), func(v int) {
		t.node(graph.NodeID(v))
	})
	parallel.Run(len(t.rows), func(i int) {
		t.row(int32(i))
	})
}

// node returns v's compiled table, compiling and installing it on first
// use. The compare-and-swap keeps exactly one winner under concurrent
// first use; both candidates are identical by determinism of the compile.
func (t *Tables) node(v graph.NodeID) *nodeTable {
	if nt := t.nodes[v].Load(); nt != nil {
		return nt
	}
	nt := compileNode(t.snap.Vicinity(v), len(t.nodes))
	if !t.nodes[v].CompareAndSwap(nil, nt) {
		return t.nodes[v].Load()
	}
	return nt
}

// row returns landmark row i's flat parent array, compiling on first use.
// Where the snapshot already stores the row flat (exact regime, repair
// overlays) the array is shared by reference; the compact regime decodes
// it once here and every later read is a plain index.
func (t *Tables) row(i int32) []graph.NodeID {
	if pr := t.rows[i].Load(); pr != nil {
		return *pr
	}
	root := t.landmarks[i]
	prow := t.snap.ForestParents(root)
	if prow == nil {
		prow = t.snap.DecodeForestRow(root)
	}
	if !t.rows[i].CompareAndSwap(nil, &prow) {
		return *t.rows[i].Load()
	}
	return prow
}

// Derive returns the tables of rep — a snapshot produced by one
// ApplyFailures/ApplyRecoveries step on t's snapshot — invalidating
// exactly the event's blast radius: the vicinity windows in st.VicTouched
// and the forest rows in st.RowsTouched are dropped (recompiled lazily
// from rep on first use) and every other compiled shard is carried over.
// st must be the RepairStats of that step (rep.RepairStats()); passing a
// stats object from a different step breaks the sharing contract. t is
// unchanged and stays valid for its own snapshot.
func (t *Tables) Derive(rep *snapshot.Snapshot, st *snapshot.RepairStats) *Tables {
	d := &Tables{
		snap:      rep,
		landmarks: t.landmarks,
		lmOf:      t.lmOf,
		isLM:      t.isLM,
		lmRowIdx:  t.lmRowIdx,
		nodes:     make([]atomic.Pointer[nodeTable], len(t.nodes)),
		rows:      make([]atomic.Pointer[[]graph.NodeID], len(t.rows)),
	}
	for v := range d.nodes {
		d.nodes[v].Store(t.nodes[v].Load())
	}
	for i := range d.rows {
		d.rows[i].Store(t.rows[i].Load())
	}
	for _, v := range st.VicTouched {
		d.nodes[v].Store(nil)
	}
	for _, row := range st.RowsTouched {
		d.rows[row].Store(nil)
	}
	return d
}

// CompiledShards reports how many node tables and forest rows are
// currently compiled — the white-box observability the invalidation tests
// use to assert untouched shards were carried over, not recompiled.
func (t *Tables) CompiledShards() (nodes, rows int) {
	for v := range t.nodes {
		if t.nodes[v].Load() != nil {
			nodes++
		}
	}
	for i := range t.rows {
		if t.rows[i].Load() != nil {
			rows++
		}
	}
	return nodes, rows
}
