package forward_test

import (
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"fmt"
	"hash"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"disco/internal/core"
	"disco/internal/dynamics"
	"disco/internal/forward"
	"disco/internal/graph"
	"disco/internal/snapshot"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

var updateGoldens = flag.Bool("update", false, "rewrite the golden files under testdata/ with current output")

// buildEnv builds one converged environment plus its snapshot in the
// requested storage regime — the same shape the serve tests use.
func buildEnv(t testing.TB, n int, seed int64, compact bool) (*static.Env, *snapshot.Snapshot, *core.NDDisco) {
	t.Helper()
	g := topology.GnmAvgDeg(rand.New(rand.NewSource(seed)), n, 8)
	env := static.NewEnv(g, seed)
	build := snapshot.Build
	if compact {
		build = snapshot.BuildCompact
	}
	base, err := build(g, vicinity.DefaultK(n), env.Landmarks)
	if err != nil {
		t.Fatalf("snapshot build: %v", err)
	}
	return env, base, core.NewDisco(env, core.WithSeed(seed)).ND
}

// hashRoute folds one (ok, route) answer into the digest.
func hashRoute(h hash.Hash, route []graph.NodeID, ok bool) {
	var buf [4]byte
	if !ok {
		h.Write([]byte{0xff})
		return
	}
	h.Write([]byte{1})
	binary.LittleEndian.PutUint32(buf[:], uint32(len(route)))
	h.Write(buf[:])
	for _, v := range route {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		h.Write(buf[:])
	}
}

// checkPairs routes every given pair on both implementations, in both
// packet phases, asserting byte identity and folding the table answers
// into the digest.
func checkPairs(t *testing.T, label string, h hash.Hash, nd *core.NDDisco, fr *forward.Router, pairs [][2]graph.NodeID) {
	t.Helper()
	for _, pr := range pairs {
		s, d := pr[0], pr[1]
		for _, later := range []bool{false, true} {
			var want []graph.NodeID
			var wantOK bool
			if later {
				want, wantOK = nd.RepairedLaterRoute(s, d)
			} else {
				want, wantOK = nd.RepairedFirstRoute(s, d)
			}
			var got []graph.NodeID
			var gotOK bool
			if later {
				got, gotOK = fr.RepairedLaterRoute(s, d)
			} else {
				got, gotOK = fr.RepairedFirstRoute(s, d)
			}
			if wantOK != gotOK || fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("%s: pair %d->%d later=%v: tables (%v, %v) != fork-and-walk (%v, %v)",
					label, s, d, later, got, gotOK, want, wantOK)
			}
			hashRoute(h, got, gotOK)
		}
	}
}

// allPairs enumerates every ordered pair of an n-node graph.
func allPairs(n int) [][2]graph.NodeID {
	out := make([][2]graph.NodeID, 0, n*n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			out = append(out, [2]graph.NodeID{graph.NodeID(s), graph.NodeID(d)})
		}
	}
	return out
}

// samplePairs draws m pairs from rng.
func samplePairs(rng *rand.Rand, n, m int) [][2]graph.NodeID {
	out := make([][2]graph.NodeID, m)
	for i := range out {
		out[i] = [2]graph.NodeID{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
	}
	return out
}

// stormEvent drives one deterministic fail/recover event (the serve race
// suite's storm shape) and returns that event's repair stats.
func stormEvent(t *testing.T, tl *dynamics.Timeline, edges []graph.EdgeKey, erng *rand.Rand, ev int) *snapshot.RepairStats {
	t.Helper()
	var st *snapshot.RepairStats
	var err error
	if tl.DownCount() == 0 || erng.Intn(2) == 0 {
		var link graph.EdgeKey
		for {
			link = edges[erng.Intn(len(edges))]
			if !tl.IsDown(link) {
				break
			}
		}
		st, err = tl.Fail([]graph.EdgeKey{link})
	} else {
		down := tl.Down()
		st, err = tl.Recover(down[erng.Intn(len(down)):][:1])
	}
	if err != nil {
		t.Fatalf("storm event %d: %v", ev, err)
	}
	return st
}

// TestForwardEquivalence is the tentpole's correctness pin: every route
// the compiled tables answer must be byte-identical to core.NDDisco's
// repaired fork-and-walk — on the base snapshot (all pairs), and on every
// snapshot of a 24-event fail/recover storm with the tables Derive'd per
// event through blast-radius invalidation (sampled pairs per epoch) — in
// both storage regimes and both packet phases. A golden digest of the
// table answers at n=256 additionally pins the routes themselves, so the
// two implementations cannot drift in lockstep unnoticed.
func TestForwardEquivalence(t *testing.T) {
	const (
		n      = 256
		seed   = 1
		events = 24
		npairs = 2000
	)
	var goldenOut string
	for _, regime := range []struct {
		name    string
		compact bool
	}{{"exact", false}, {"compact", true}} {
		env, base, nd := buildEnv(t, n, seed, regime.compact)
		tbls := forward.Compile(base, env.Landmarks, env.LMOf)
		h := sha256.New()

		checkPairs(t, regime.name+"/base", h, nd.ForkRepaired(base), tbls.NewRouter(), allPairs(n))

		tl := dynamics.NewTimeline(base)
		edges := env.G.EdgeList()
		erng := rand.New(rand.NewSource(seed * 13))
		prng := rand.New(rand.NewSource(seed * 7))
		for ev := 0; ev < events; ev++ {
			st := stormEvent(t, tl, edges, erng, ev)
			tbls = tbls.Derive(tl.Snapshot(), st)
			label := fmt.Sprintf("%s/event%d(%d links down)", regime.name, ev, tl.DownCount())
			checkPairs(t, label, h, nd.ForkRepaired(tl.Snapshot()), tbls.NewRouter(), samplePairs(prng, n, npairs))
		}
		goldenOut += fmt.Sprintf("%s %x\n", regime.name, h.Sum(nil))
	}

	path := filepath.Join("testdata", "routes_gnm256.golden")
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(goldenOut), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/forward -update): %v", err)
	}
	if goldenOut != string(want) {
		t.Errorf("route digests drifted from %s.\n--- want ---\n%s--- got ---\n%s\n(if the change is intended, regenerate with -update)",
			path, want, goldenOut)
	}
}

// TestForwardDeriveInvalidation pins the invalidation contract from the
// outside: Derive drops exactly the event's touched shards — no fewer (a
// stale table would answer pre-event routes) and no more (recompiling
// untouched shards would defeat the blast-radius economics).
func TestForwardDeriveInvalidation(t *testing.T) {
	const (
		n    = 256
		seed = 3
	)
	env, base, _ := buildEnv(t, n, seed, false)
	tbls := forward.Compile(base, env.Landmarks, env.LMOf)
	tbls.Precompile()
	nodes, rows := tbls.CompiledShards()
	if nodes != n || rows != len(env.Landmarks) {
		t.Fatalf("precompiled %d/%d shards, want %d/%d", nodes, rows, n, len(env.Landmarks))
	}

	tl := dynamics.NewTimeline(base)
	st, err := tl.Fail(env.G.EdgeList()[:1])
	if err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if len(st.VicTouched) == 0 {
		t.Fatal("a failed link must touch at least its endpoints' windows")
	}
	der := tbls.Derive(tl.Snapshot(), st)
	dn, dr := der.CompiledShards()
	if want := n - len(st.VicTouched); dn != want {
		t.Errorf("derived tables hold %d node tables, want %d (%d invalidated)", dn, want, len(st.VicTouched))
	}
	if want := len(env.Landmarks) - len(st.RowsTouched); dr != want {
		t.Errorf("derived tables hold %d rows, want %d (%d invalidated)", dr, want, len(st.RowsTouched))
	}
	if tbls.Snapshot() != base || der.Snapshot() != tl.Snapshot() {
		t.Error("Derive must rebind the snapshot and leave the parent tables on theirs")
	}
	// The parent tables must stay fully compiled and valid.
	if pn, pr := tbls.CompiledShards(); pn != n || pr != len(env.Landmarks) {
		t.Errorf("Derive disturbed the parent tables: %d/%d shards", pn, pr)
	}
}

// TestForwardZeroAlloc pins the acceptance criterion "zero allocations
// per lookup": with every shard compiled, AppendRoute into a
// steady-state buffer allocates nothing on any pair/phase of the sample.
func TestForwardZeroAlloc(t *testing.T) {
	const (
		n    = 256
		seed = 1
	)
	env, base, _ := buildEnv(t, n, seed, false)
	tbls := forward.Compile(base, env.Landmarks, env.LMOf)
	tbls.Precompile()
	r := tbls.NewRouter()
	pairs := samplePairs(rand.New(rand.NewSource(seed)), n, 512)
	buf := make([]graph.NodeID, 0, 256)
	later := false
	// Warm the scratch buffers past their steady-state capacity first:
	// AllocsPerRun's own warm-up call covers only its first pair.
	for _, pr := range pairs {
		buf, _ = r.AppendRoute(buf[:0], pr[0], pr[1], later)
		later = !later
	}
	i := 0
	avg := testing.AllocsPerRun(2*len(pairs), func() {
		pr := pairs[i%len(pairs)]
		buf, _ = r.AppendRoute(buf[:0], pr[0], pr[1], i%2 == 1)
		i++
	})
	if avg != 0 {
		t.Errorf("AppendRoute allocates %.2f times per query on compiled tables, want 0", avg)
	}
}
