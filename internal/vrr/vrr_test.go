package vrr

import (
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/static"
	"disco/internal/topology"
)

func build(t *testing.T, seed int64, n, m int) (*static.Env, *VRR) {
	t.Helper()
	g := topology.Gnm(rand.New(rand.NewSource(seed)), n, m)
	env := static.NewEnv(g, seed)
	return env, New(env, 4, 0)
}

func TestAllNodesJoin(t *testing.T) {
	env, v := build(t, 1, 200, 800)
	if len(v.ring) != env.N() {
		t.Fatalf("ring has %d of %d nodes", len(v.ring), env.N())
	}
	// Every node ends with a full vset of r=4 (up to tiny rings).
	for u := 0; u < env.N(); u++ {
		if got := v.VSetSize(graph.NodeID(u)); got < 2 {
			t.Errorf("node %d has vset size %d (< 2)", u, got)
		}
	}
}

func TestRoutingDelivers(t *testing.T) {
	env, v := build(t, 2, 300, 1200)
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(3)), env.N(), 300)
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		route := v.Route(s, dst)
		if len(route) == 0 || route[0] != s || route[len(route)-1] != dst {
			t.Fatalf("VRR route endpoints wrong: %d->%d got %v", s, dst, route)
		}
		// Path validity: consecutive nodes adjacent.
		env.G.PathLength(route)
	}
}

func TestStretchAboveOne(t *testing.T) {
	env, v := build(t, 4, 400, 1600)
	pairs := metrics.SamplePairs(rand.New(rand.NewSource(5)), env.N(), 300)
	total, count, maxSt := 0.0, 0, 0.0
	for _, p := range pairs {
		s, dst := graph.NodeID(p.Src), graph.NodeID(p.Dst)
		short := v.ShortestDist(s, dst)
		if short == 0 {
			continue
		}
		l := v.RouteLen(v.Route(s, dst))
		st := l / short
		if st < 1-1e-9 {
			t.Fatalf("VRR stretch < 1")
		}
		total += st
		count++
		if st > maxSt {
			maxSt = st
		}
	}
	mean := total / float64(count)
	// The paper reports high VRR stretch (mean up to ~8 on realistic
	// topologies, max 39 on geometric). On a 400-node random graph it
	// should be noticeably above 1 and above Disco's typical mean.
	if mean < 1.05 {
		t.Errorf("VRR mean stretch %v suspiciously low", mean)
	}
	t.Logf("VRR mean stretch %.3f max %.3f (stuck=%d)", mean, maxSt, v.Stuck)
}

func TestStateConcentration(t *testing.T) {
	// VRR stores per-path state at intermediate nodes: max state should
	// far exceed the mean (the Fig. 4/5 signature).
	env, v := build(t, 6, 512, 2048)
	entries := v.StateEntries()
	mean, max := 0.0, 0
	for _, e := range entries {
		mean += float64(e)
		if e > max {
			max = e
		}
	}
	mean /= float64(len(entries))
	if float64(max) < 2*mean {
		t.Errorf("expected a heavy state tail: max %d vs mean %.1f", max, mean)
	}
	// Total vpaths ≈ n * r/2 (each of n joins sets up ~r/2 new paths net).
	if v.NumPaths() < env.N() {
		t.Errorf("too few vpaths: %d", v.NumPaths())
	}
}

func TestVsetPathsExistAndConnect(t *testing.T) {
	env, v := build(t, 7, 150, 600)
	for u := 0; u < env.N(); u++ {
		for peer, pid := range v.vsets[graph.NodeID(u)] {
			p, ok := v.paths[pid]
			if !ok {
				t.Fatalf("vset of %d references dead path %d", u, pid)
			}
			if (p.a != graph.NodeID(u) || p.b != peer) && (p.b != graph.NodeID(u) || p.a != peer) {
				t.Fatalf("path %d endpoints (%d,%d) do not match vset (%d,%d)", pid, p.a, p.b, u, peer)
			}
			env.G.PathLength(p.nodes) // adjacency check
			if p.nodes[0] != p.a || p.nodes[len(p.nodes)-1] != p.b {
				t.Fatalf("path nodes endpoints wrong")
			}
		}
	}
}

func TestTablesMatchPaths(t *testing.T) {
	_, v := build(t, 8, 100, 400)
	// Every table entry must reference a live path that passes through
	// the node.
	for u := range v.tables {
		for pid, e := range v.tables[u] {
			p, ok := v.paths[pid]
			if !ok {
				t.Fatalf("table of %d references dead path %d", u, pid)
			}
			found := false
			for i, x := range p.nodes {
				if x == graph.NodeID(u) {
					found = true
					if e.toward != graph.None && p.nodes[i+1] != e.toward {
						t.Fatalf("toward pointer broken")
					}
					if e.back != graph.None && p.nodes[i-1] != e.back {
						t.Fatalf("back pointer broken")
					}
					break
				}
			}
			if !found {
				t.Fatalf("node %d not on path %d it has an entry for", u, pid)
			}
		}
	}
}

func TestRejectsOddR(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd r")
		}
	}()
	g := topology.Ring(10)
	env := static.NewEnv(g, 1)
	New(env, 3, 0)
}

func TestDeterministic(t *testing.T) {
	_, v1 := build(t, 9, 120, 480)
	_, v2 := build(t, 9, 120, 480)
	e1 := v1.StateEntries()
	e2 := v2.StateEntries()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("VRR must be deterministic for a fixed seed")
		}
	}
}
