// Package vrr implements the Virtual Ring Routing baseline [9] (§3, §5):
// nodes form a virtual ring in identifier (hash) space; each node maintains
// virtual-neighbor set ("vset") paths to its r closest ring neighbors, set
// up hop-by-hop through the physical topology using whatever forwarding
// state already exists; every node on a vset path stores a forwarding entry
// for it. Packets are routed greedily toward the endpoint whose identifier
// is closest to the destination's. VRR needs no landmarks and no resolution
// step, but provides no bound on state (Θ(n^2) worst case — paths
// concentrate on central nodes) or stretch, which is what Figs. 4 and 5
// demonstrate.
//
// Converged VRR state depends on join order; per the paper we start with a
// seed node and grow the joined set outward over physical links (BFS
// order). When a later join displaces a node from a vset on both ends, the
// displaced path is torn down, as in VRR's repair.
package vrr

import (
	"fmt"
	"sort"

	"disco/internal/graph"
	"disco/internal/names"
	"disco/internal/pathtree"
	"disco/internal/static"
)

// VRR is the converged VRR network. During construction, forwarding state
// lives in per-node maps (joins mutate them); once every node has joined,
// seal() freezes the tables into flat, index-addressed arrays — one
// contiguous entry slice plus per-node offsets — which every Fork() shares
// read-only and iterates allocation-free in deterministic order.
type VRR struct {
	Env *static.Env
	R   int // vset size (r=4 in the paper's evaluation)

	order  []graph.NodeID // join order (BFS from seed)
	ring   []graph.NodeID // joined nodes sorted by (hash, id)
	tables []map[int]entry
	paths  map[int]*vpath
	vsets  []map[graph.NodeID]int // node -> (peer -> path id)
	nextID int

	// Sealed converged state: node u's forwarding entries are
	// flat[off[u]:off[u+1]] and its vset peers vflat[voff[u]:voff[u+1]].
	sealed bool
	flat   []entry
	off    []int32
	vflat  []graph.NodeID
	voff   []int32

	// bank memoizes dead-end-recovery trees once across all forks.
	bank *pathtree.Shared

	numPaths int // path count preserved across Compact

	Stuck int // greedy dead-ends resolved by a physical-hop fallback
}

type vpath struct {
	id    int
	a, b  graph.NodeID
	nodes []graph.NodeID // a ⇝ b through the physical network
}

type entry struct {
	a, b         graph.NodeID
	toward, back graph.NodeID // next hop toward b / toward a (None at ends)
}

// New builds the converged VRR network over env with vset size r.
func New(env *static.Env, r int, seed graph.NodeID) *VRR {
	if r < 2 || r%2 != 0 {
		panic(fmt.Sprintf("vrr: r must be a positive even number, got %d", r))
	}
	v := &VRR{
		Env:    env,
		R:      r,
		tables: make([]map[int]entry, env.N()),
		paths:  make(map[int]*vpath),
		vsets:  make([]map[graph.NodeID]int, env.N()),
		bank:   pathtree.NewShared(env.G),
	}
	for i := range v.tables {
		v.tables[i] = make(map[int]entry)
		v.vsets[i] = make(map[graph.NodeID]int)
	}
	v.order = bfsOrder(env.G, seed)
	for _, x := range v.order {
		v.join(x)
	}
	v.seal()
	return v
}

// seal freezes the converged per-node maps into the flat index-addressed
// arrays that forks share. Entries are sorted by (a, b, toward, back) —
// the order is deterministic by construction, and nextHop's tie-break
// makes forwarding independent of iteration order anyway.
func (v *VRR) seal() {
	n := v.Env.N()
	v.off = make([]int32, n+1)
	v.voff = make([]int32, n+1)
	total, vtotal := 0, 0
	for u := 0; u < n; u++ {
		v.off[u] = int32(total)
		v.voff[u] = int32(vtotal)
		total += len(v.tables[u])
		vtotal += len(v.vsets[u])
	}
	v.off[n] = int32(total)
	v.voff[n] = int32(vtotal)
	v.flat = make([]entry, 0, total)
	v.vflat = make([]graph.NodeID, 0, vtotal)
	for u := 0; u < n; u++ {
		start := len(v.flat)
		//disco:orderinvariant the per-node window of flat appended here is sorted immediately below
		for _, e := range v.tables[u] {
			v.flat = append(v.flat, e)
		}
		win := v.flat[start:]
		sort.Slice(win, func(i, j int) bool {
			a, b := win[i], win[j]
			if a.a != b.a {
				return a.a < b.a
			}
			if a.b != b.b {
				return a.b < b.b
			}
			if a.toward != b.toward {
				return a.toward < b.toward
			}
			return a.back < b.back
		})
		vstart := len(v.vflat)
		//disco:orderinvariant the per-node window of vflat appended here is sorted immediately below
		for peer := range v.vsets[u] {
			v.vflat = append(v.vflat, peer)
		}
		vw := v.vflat[vstart:]
		sort.Slice(vw, func(i, j int) bool { return vw[i] < vw[j] })
	}
	v.numPaths = len(v.paths)
	v.sealed = true
}

// Compact drops the construction-time per-node maps and path records,
// leaving only the sealed flat arrays — halving the converged footprint
// of a long-lived (memoized) instance. Irreversible: the ring is closed,
// so no further joins can happen. Tests that check construction
// invariants simply skip calling it.
func (v *VRR) Compact() {
	if !v.sealed {
		panic("vrr: Compact before seal")
	}
	v.tables, v.vsets, v.paths = nil, nil, nil
}

func bfsOrder(g *graph.Graph, seed graph.NodeID) []graph.NodeID {
	n := g.N()
	seen := make([]bool, n)
	order := make([]graph.NodeID, 0, n)
	queue := []graph.NodeID{seed}
	seen[seed] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range g.Neighbors(u) {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != n {
		panic("vrr: graph not connected")
	}
	return order
}

// ringLess orders nodes on the virtual ring.
func (v *VRR) ringLess(a, b graph.NodeID) bool {
	ha, hb := v.Env.HashOf(a), v.Env.HashOf(b)
	if ha != hb {
		return ha < hb
	}
	return a < b
}

// ringInsert adds x to the sorted joined ring.
func (v *VRR) ringInsert(x graph.NodeID) {
	i := sort.Search(len(v.ring), func(i int) bool { return !v.ringLess(v.ring[i], x) })
	v.ring = append(v.ring, 0)
	copy(v.ring[i+1:], v.ring[i:])
	v.ring[i] = x
}

// wantVSet returns x's ideal vset on the current ring: r/2 successors and
// r/2 predecessors.
func (v *VRR) wantVSet(x graph.NodeID) []graph.NodeID {
	m := len(v.ring)
	if m <= 1 {
		return nil
	}
	i := sort.Search(m, func(i int) bool { return !v.ringLess(v.ring[i], x) })
	if i >= m || v.ring[i] != x {
		panic("vrr: node not on ring")
	}
	half := v.R / 2
	seen := map[graph.NodeID]bool{x: true}
	var out []graph.NodeID
	for d := 1; d <= half; d++ {
		s := v.ring[(i+d)%m]
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
		p := v.ring[(i-d%m+m)%m]
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func (v *VRR) join(x graph.NodeID) {
	v.ringInsert(x)
	for _, y := range v.wantVSet(x) {
		if _, ok := v.vsets[x][y]; ok {
			continue
		}
		v.setupPath(x, y)
	}
	// Repair: ring neighbors of x may have had members displaced. A path
	// is torn down only when neither endpoint wants it anymore.
	m := len(v.ring)
	i := sort.Search(m, func(i int) bool { return !v.ringLess(v.ring[i], x) })
	for d := -v.R; d <= v.R; d++ {
		z := v.ring[((i+d)%m+m)%m]
		if z == x {
			continue
		}
		want := map[graph.NodeID]bool{}
		for _, w := range v.wantVSet(z) {
			want[w] = true
		}
		//disco:orderinvariant teardown removes only this iteration's (peer, pid) entry here; decisions read the ring, not vset state
		for peer, pid := range v.vsets[z] {
			if want[peer] {
				continue
			}
			// z no longer wants the path; tear down if peer agrees.
			peerWants := false
			for _, w := range v.wantVSet(peer) {
				if w == z {
					peerWants = true
					break
				}
			}
			if !peerWants {
				v.teardown(pid)
			}
		}
	}
}

// setupPath routes a setup message x ⇝ y greedily through existing state
// and installs forwarding entries along the traversed path.
func (v *VRR) setupPath(x, y graph.NodeID) {
	nodes, ok := v.greedyPath(x, y)
	if !ok {
		return
	}
	id := v.nextID
	v.nextID++
	p := &vpath{id: id, a: x, b: y, nodes: nodes}
	v.paths[id] = p
	for i, u := range nodes {
		e := entry{a: x, b: y, toward: graph.None, back: graph.None}
		if i+1 < len(nodes) {
			e.toward = nodes[i+1]
		}
		if i > 0 {
			e.back = nodes[i-1]
		}
		v.tables[u][id] = e
	}
	v.vsets[x][y] = id
	v.vsets[y][x] = id
}

func (v *VRR) teardown(id int) {
	p, ok := v.paths[id]
	if !ok {
		return
	}
	for _, u := range p.nodes {
		delete(v.tables[u], id)
	}
	delete(v.vsets[p.a], p.b)
	delete(v.vsets[p.b], p.a)
	delete(v.paths, id)
}

// joinedNeighbors returns u's physical neighbors that are on the ring.
// After sealing every node has joined, so this is the full adjacency list.
func (v *VRR) joinedNeighbors(u graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for _, e := range v.Env.G.Neighbors(u) {
		j := sort.Search(len(v.ring), func(i int) bool { return !v.ringLess(v.ring[i], e.To) })
		if j < len(v.ring) && v.ring[j] == e.To {
			out = append(out, e.To)
		}
	}
	return out
}

// nextHop implements VRR forwarding at u toward the identifier of t: pick
// the known endpoint (vpath endpoints through u, physical joined
// neighbors, or u itself) with the ring-closest identifier and take the
// recorded next hop toward it. Ties extend to the via node so the choice
// is independent of table-map iteration order (two vpaths through u can
// share an endpoint but differ in next hop).
func (v *VRR) nextHop(u, t graph.NodeID) (graph.NodeID, bool) {
	target := v.Env.HashOf(t)
	bestEp := u
	bestVia := graph.None
	bestD := names.RingDist(v.Env.HashOf(u), target)
	consider := func(ep, via graph.NodeID) {
		d := names.RingDist(v.Env.HashOf(ep), target)
		if d < bestD || (d == bestD && (ep < bestEp || (ep == bestEp && via < bestVia))) {
			bestEp, bestVia, bestD = ep, via, d
		}
	}
	if v.sealed {
		// Converged fast path: iterate the shared flat entry window and the
		// full adjacency list (every node has joined) — no map iteration,
		// no per-call allocation.
		for _, e := range v.flat[v.off[u]:v.off[u+1]] {
			if e.toward != graph.None {
				consider(e.b, e.toward)
			}
			if e.back != graph.None {
				consider(e.a, e.back)
			}
		}
		for _, e := range v.Env.G.Neighbors(u) {
			consider(e.To, e.To)
		}
	} else {
		//disco:orderinvariant consider is a min-fold with a total-order tie-break on (ep, via)
		for _, e := range v.tables[u] {
			if e.toward != graph.None {
				consider(e.b, e.toward)
			}
			if e.back != graph.None {
				consider(e.a, e.back)
			}
		}
		for _, nb := range v.joinedNeighbors(u) {
			consider(nb, nb)
		}
	}
	if bestVia == graph.None {
		return graph.None, false // u itself is closest: greedy dead-end
	}
	return bestVia, true
}

// greedyPath routes from x to y through current forwarding state. On a
// greedy dead-end, or if the walk fails to terminate within a step budget
// (possible only after a dead-end hop broke VRR's progress invariant), the
// remainder is completed along the true shortest path; both cases are
// counted in Stuck. Revisits trim the enclosed cycle so returned paths are
// simple.
func (v *VRR) greedyPath(x, y graph.NodeID) ([]graph.NodeID, bool) {
	limit := 4*v.Env.N() + 16
	nodes := []graph.NodeID{x}
	cur := x
	for steps := 0; cur != y; steps++ {
		nh, ok := v.nextHop(cur, y)
		if !ok || steps > limit {
			v.Stuck++
			rest := v.bank.Tree(y).PathFrom(cur) // cur ⇝ y
			for _, u := range rest[1:] {
				nodes = appendTrim(nodes, u)
			}
			return nodes, true
		}
		nodes = appendTrim(nodes, nh)
		cur = nh
	}
	return nodes, true
}

// appendTrim appends nh to the walk, cutting any cycle if nh was already
// visited.
func appendTrim(nodes []graph.NodeID, nh graph.NodeID) []graph.NodeID {
	for i, seen := range nodes {
		if seen == nh {
			return nodes[:i+1]
		}
	}
	return append(nodes, nh)
}

// Fork returns a concurrency view of v for one worker of a parallel
// sweep: the converged ring, the sealed flat forwarding/vset arrays and
// the shared recovery-tree bank are all shared read-only; only the Stuck
// counter is private. Sum fork Stuck counters to recover the serial total.
func (v *VRR) Fork() *VRR {
	return &VRR{
		Env:      v.Env,
		R:        v.R,
		order:    v.order,
		ring:     v.ring,
		tables:   v.tables,
		paths:    v.paths,
		vsets:    v.vsets,
		nextID:   v.nextID,
		sealed:   v.sealed,
		flat:     v.flat,
		off:      v.off,
		vflat:    v.vflat,
		voff:     v.voff,
		bank:     v.bank,
		numPaths: v.numPaths,
	}
}

// Route returns the packet route from s to t (VRR has no first/later
// distinction: every packet routes greedily on identifiers).
func (v *VRR) Route(s, t graph.NodeID) []graph.NodeID {
	p, _ := v.greedyPath(s, t)
	return p
}

// RouteLen returns the weighted length of a node path.
func (v *VRR) RouteLen(p []graph.NodeID) float64 { return v.Env.G.PathLength(p) }

// ShortestDist returns d(s,t).
func (v *VRR) ShortestDist(s, t graph.NodeID) float64 { return v.bank.Tree(t).Dist(s) }

// StateEntries returns per-node entry counts: one per vpath through the
// node plus physical adjacency.
func (v *VRR) StateEntries() []int {
	out := make([]int, v.Env.N())
	for u := range out {
		if v.sealed {
			out[u] = int(v.off[u+1]-v.off[u]) + v.Env.G.Degree(graph.NodeID(u))
		} else {
			out[u] = len(v.tables[u]) + v.Env.G.Degree(graph.NodeID(u))
		}
	}
	return out
}

// NumPaths returns the number of live vset paths.
func (v *VRR) NumPaths() int {
	if v.sealed {
		return v.numPaths
	}
	return len(v.paths)
}

// VSetSize returns |vset(u)|.
func (v *VRR) VSetSize(u graph.NodeID) int {
	if v.sealed {
		return int(v.voff[u+1] - v.voff[u])
	}
	return len(v.vsets[u])
}

// VSetMembers returns u's sealed vset peers in ascending order (a shared
// window of the flat array; do not modify).
func (v *VRR) VSetMembers(u graph.NodeID) []graph.NodeID {
	if !v.sealed {
		return nil
	}
	return v.vflat[v.voff[u]:v.voff[u+1]]
}
