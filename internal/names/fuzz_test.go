package names

import "testing"

// FuzzCommonPrefixLen checks the prefix-match primitive the sloppy-group
// lookup leans on (§4.4) against its defining properties for arbitrary
// hash pairs: reflexivity, symmetry, the prefix-bits consistency both
// directions (equal top-k bits iff the common prefix covers k), and the
// guarantee that bit CPL+1 differs.
func FuzzCommonPrefixLen(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0), ^uint64(0))
	f.Add(uint64(0x8000000000000000), uint64(0))
	f.Add(uint64(0xdeadbeefcafef00d), uint64(0xdeadbeefcafef00e))
	f.Fuzz(func(t *testing.T, ax, bx uint64) {
		a, b := Hash(ax), Hash(bx)
		p := CommonPrefixLen(a, b)
		if p < 0 || p > HashBits {
			t.Fatalf("CommonPrefixLen out of range: %d", p)
		}
		if a == b && p != HashBits {
			t.Fatalf("CPL(x,x) = %d, want %d", p, HashBits)
		}
		if got := CommonPrefixLen(b, a); got != p {
			t.Fatalf("asymmetric: CPL(a,b)=%d CPL(b,a)=%d", p, got)
		}
		for _, k := range []int{0, 1, p / 2, p, p + 1, HashBits} {
			if k < 0 || k > HashBits {
				continue
			}
			same := PrefixBits(a, k) == PrefixBits(b, k)
			if k <= p && !same {
				t.Fatalf("top %d bits differ though CPL=%d (a=%x b=%x)", k, p, ax, bx)
			}
			if k > p && same {
				t.Fatalf("top %d bits equal though CPL=%d (a=%x b=%x)", k, p, ax, bx)
			}
		}
	})
}

// FuzzRingDist checks the circular-distance primitive VRR forwards on:
// symmetry, the half-space bound, identity, and agreement with the
// clockwise distances it is the minimum of.
func FuzzRingDist(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), ^uint64(0))
	f.Add(uint64(1)<<63, uint64(0))
	f.Fuzz(func(t *testing.T, ax, bx uint64) {
		a, b := Hash(ax), Hash(bx)
		d := RingDist(a, b)
		if d != RingDist(b, a) {
			t.Fatalf("asymmetric: %d vs %d", d, RingDist(b, a))
		}
		if a == b && d != 0 {
			t.Fatalf("RingDist(x,x) = %d", d)
		}
		if a != b && d == 0 {
			t.Fatalf("RingDist = 0 for distinct points %x %x", ax, bx)
		}
		if d > 1<<63 {
			t.Fatalf("RingDist %d exceeds half the ring", d)
		}
		cw, ccw := Clockwise(a, b), Clockwise(b, a)
		if d != cw && d != ccw {
			t.Fatalf("RingDist %d is neither clockwise %d nor counter-clockwise %d", d, cw, ccw)
		}
		if d > cw || d > ccw {
			t.Fatalf("RingDist %d is not the minimum of %d and %d", d, cw, ccw)
		}
	})
}

// FuzzHashOf checks the name-hashing layer: determinism, and that the
// hash depends only on the name's bytes (two equal byte strings collide,
// which the protocol requires — names are the identity).
func FuzzHashOf(f *testing.F) {
	f.Add("", "")
	f.Add("node-a", "node-a")
	f.Add("node-a", "node-b")
	f.Add("scn-00ff", "\x00\xff")
	f.Fuzz(func(t *testing.T, sa, sb string) {
		a, b := Name(sa), Name(sb)
		if HashOf(a) != HashOf(a) {
			t.Fatal("HashOf not deterministic")
		}
		if sa == sb && HashOf(a) != HashOf(b) {
			t.Fatalf("equal names hash differently: %q", sa)
		}
		// Self-certifying names verify against exactly the key bytes they
		// were derived from.
		if !Verify(SelfCertifying([]byte(sa)), []byte(sa)) {
			t.Fatalf("self-certifying name fails to verify its own key: %q", sa)
		}
		if sa != sb && Verify(SelfCertifying([]byte(sa)), []byte(sb)) {
			t.Fatalf("self-certifying name verifies a different key: %q vs %q", sa, sb)
		}
	})
}
