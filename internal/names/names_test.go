package names

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := HashOf("alpha")
	b := HashOf("alpha")
	if a != b {
		t.Fatal("hash must be deterministic")
	}
	if HashOf("alpha") == HashOf("beta") {
		t.Fatal("distinct names should hash differently")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b Hash
		want int
	}{
		{0, 0, 64},
		{0, 1, 63},
		{0, 1 << 63, 0},
		{0xFF00000000000000, 0xFF80000000000000, 8},
	}
	for _, c := range cases {
		if got := CommonPrefixLen(c.a, c.b); got != c.want {
			t.Errorf("CommonPrefixLen(%x,%x)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonPrefixProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		l := CommonPrefixLen(Hash(a), Hash(b))
		if l < 0 || l > 64 {
			return false
		}
		// Symmetry.
		if l != CommonPrefixLen(Hash(b), Hash(a)) {
			return false
		}
		// The claimed prefix actually matches.
		if l > 0 && PrefixBits(Hash(a), l) != PrefixBits(Hash(b), l) {
			return false
		}
		// And the next bit differs (unless full match).
		if l < 64 && PrefixBits(Hash(a), l+1) == PrefixBits(Hash(b), l+1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixBits(t *testing.T) {
	h := Hash(0xABCD000000000000)
	if got := PrefixBits(h, 16); got != 0xABCD {
		t.Errorf("PrefixBits=%x want abcd", got)
	}
	if got := PrefixBits(h, 0); got != 0 {
		t.Errorf("PrefixBits(0)=%x want 0", got)
	}
}

func TestRingDistProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		d := RingDist(Hash(a), Hash(b))
		// Symmetric, zero iff equal, at most half the ring.
		if d != RingDist(Hash(b), Hash(a)) {
			return false
		}
		if (d == 0) != (a == b) {
			return false
		}
		return d <= 1<<63
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockwise(t *testing.T) {
	if Clockwise(10, 15) != 5 {
		t.Error("clockwise simple")
	}
	// Wrapping.
	if Clockwise(^Hash(0), 4) != 5 {
		t.Errorf("clockwise wrap = %d want 5", Clockwise(^Hash(0), 4))
	}
}

func TestGeneratorDistinctDeterministic(t *testing.T) {
	g := NewGenerator(99)
	ns := g.Names(1000)
	seen := map[Name]bool{}
	for _, n := range ns {
		if seen[n] {
			t.Fatalf("duplicate name %s", n)
		}
		seen[n] = true
	}
	g2 := NewGenerator(99)
	if g2.Name(123) != ns[123] {
		t.Fatal("generator must be deterministic")
	}
	g3 := NewGenerator(100)
	if g3.Name(123) == ns[123] {
		t.Fatal("different seeds must give different names")
	}
}

func TestHashUniformity(t *testing.T) {
	// Crude uniformity check: bucket 4096 name hashes into 16 bins; no bin
	// should be wildly off 256.
	g := NewGenerator(7)
	bins := make([]int, 16)
	for _, n := range g.Names(4096) {
		bins[PrefixBits(HashOf(n), 4)]++
	}
	for i, c := range bins {
		if c < 128 || c > 384 {
			t.Errorf("bin %d has %d of 4096 (expected ~256)", i, c)
		}
	}
}

func TestSelfCertifying(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	key := RandomKey(rng)
	n := SelfCertifying(key)
	if !Verify(n, key) {
		t.Fatal("self-certifying name must verify against its key")
	}
	other := RandomKey(rng)
	if Verify(n, other) {
		t.Fatal("wrong key must not verify")
	}
}
