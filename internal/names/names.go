// Package names implements the flat, location-independent name layer of the
// paper (§2, §4.1): a name is an arbitrary bit string — a DNS name, a MAC
// address, or a secure self-certifying identifier. The routing protocol
// never interprets names except through the well-known hash function h(v)
// (§4.4), implemented here as SHA-256 truncated to 64 bits, which maps names
// to roughly uniform points on a circular hash space.
package names

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
	"math/rand"
)

// Name is a flat, location-independent node name: an arbitrary string
// chosen by the application layer, never by the routing protocol.
type Name string

// HashBits is the width of the hash space in bits.
const HashBits = 64

// Hash is a point in the circular hash space [0, 2^64).
type Hash uint64

// HashOf returns h(v): the first 8 bytes (big-endian) of SHA-256 of the
// name. The paper's "well-known hash function h(v) (e.g., SHA-2) which maps
// the node name to a roughly uniformly-distributed string of Θ(log n) bits"
// (§4.4).
func HashOf(n Name) Hash {
	sum := sha256.Sum256([]byte(n))
	return Hash(binary.BigEndian.Uint64(sum[:8]))
}

// CommonPrefixLen returns the number of leading bits a and b share — the
// prefix-match length used to locate a sloppy-group member in a vicinity
// (§4.4 "finds the node w ∈ V(s) which has the longest prefix match between
// h(w) and h(t)").
func CommonPrefixLen(a, b Hash) int {
	return bits.LeadingZeros64(uint64(a ^ b))
}

// PrefixBits returns the top k bits of h as a group identifier (k <= 64).
func PrefixBits(h Hash, k int) uint64 {
	if k <= 0 {
		return 0
	}
	return uint64(h) >> (HashBits - uint(k))
}

// Clockwise returns the clockwise (increasing, wrapping) distance from a to
// b in the hash space.
func Clockwise(a, b Hash) uint64 { return uint64(b - a) }

// RingDist returns the circular distance between a and b: the minimum of
// the clockwise and counter-clockwise distances.
func RingDist(a, b Hash) uint64 {
	d := uint64(a - b)
	if r := uint64(b - a); r < d {
		return r
	}
	return d
}

// Generator deterministically produces distinct flat names. Names carry no
// structure the protocol could exploit — the index is scrambled through the
// seed so that name order is unrelated to topology order.
type Generator struct {
	seed int64
}

// NewGenerator returns a name generator for the given seed.
func NewGenerator(seed int64) *Generator { return &Generator{seed: seed} }

// Name returns the flat name of node index i.
func (g *Generator) Name(i int) Name {
	mix := uint64(g.seed) ^ uint64(i)*0x9e3779b97f4a7c15
	return Name(fmt.Sprintf("node-%016x-%06d", mix, i))
}

// Names returns names for indices 0..n-1.
func (g *Generator) Names(n int) []Name {
	out := make([]Name, n)
	for i := range out {
		out[i] = g.Name(i)
	}
	return out
}

// SelfCertifying returns a self-certifying name: the hex hash of the given
// public-key bytes (§2: names "can also be self-certifying, where the name
// is a public key or a hash of a public key"). Verify checks a claimed
// key against such a name.
func SelfCertifying(pubKey []byte) Name {
	sum := sha256.Sum256(pubKey)
	return Name(fmt.Sprintf("scn-%x", sum[:20]))
}

// Verify reports whether pubKey hashes to the self-certifying name n.
func Verify(n Name, pubKey []byte) bool {
	return SelfCertifying(pubKey) == n
}

// RandomKey returns a synthetic "public key" for examples and tests.
func RandomKey(rng *rand.Rand) []byte {
	k := make([]byte, 32)
	rng.Read(k)
	return k
}
