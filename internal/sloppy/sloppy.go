// Package sloppy implements the sloppy groups of §4.4: node v belongs to
// the group of nodes sharing the first k = floor(log2(sqrt(n/log2(n))))
// bits of h(v), so a group holds Θ(sqrt(n log n)) nodes w.h.p. (the number
// of groups is sqrt(n/log n); group size is n divided by that). The grouping
// is "sloppy" because k depends on each node's own estimate of n; the two
// properties the protocol relies on are (1) consistency — k changes only
// when n changes by a constant factor — and (2) graceful splits/merges —
// estimates within 2x of each other differ by at most one bit of k, so a
// "core group" G'(v) on which everyone agrees always exists.
package sloppy

import (
	"math"
	"sort"

	"disco/internal/graph"
	"disco/internal/names"
)

// K returns the group prefix width for a network-size estimate n:
// floor(log2(sqrt(n/log2(n)))), clamped to >= 0, so that the 2^k groups
// each hold Θ(sqrt(n log n)) nodes. (This matches the paper's Table 7
// accounting: on the 192,244-node router map Disco stores ~2973 more
// entries per node than NDDisco — one address per sloppy-group member,
// i.e. 64 groups, k = 6.)
func K(n float64) int {
	if n < 4 {
		return 0
	}
	v := math.Sqrt(n / math.Log2(n))
	if v < 1 {
		return 0
	}
	return int(math.Floor(math.Log2(v)))
}

// GroupID returns the k-bit group identifier of a hash (0 when k == 0, i.e.
// one global group).
func GroupID(h names.Hash, k int) uint64 { return names.PrefixBits(h, k) }

// SameGroup reports whether two hashes fall in the same k-bit group.
func SameGroup(a, b names.Hash, k int) bool { return GroupID(a, k) == GroupID(b, k) }

// Grouping is the global grouping under a single shared value of k, as used
// by the static simulator when all nodes know n exactly.
type Grouping struct {
	KBits  int
	hashes []names.Hash
	groups map[uint64][]graph.NodeID
}

// BuildGrouping groups nodes 0..len(hashes)-1 by the top KBits of their
// hashes. Member lists are sorted by node ID.
func BuildGrouping(hashes []names.Hash, kBits int) *Grouping {
	g := &Grouping{KBits: kBits, hashes: hashes, groups: make(map[uint64][]graph.NodeID)}
	for i, h := range hashes {
		id := GroupID(h, kBits)
		g.groups[id] = append(g.groups[id], graph.NodeID(i))
	}
	//disco:orderinvariant each group's member slice is sorted in place, independently of the others
	for _, m := range g.groups {
		sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
	}
	return g
}

// GroupOf returns the member list of v's group (including v). The slice is
// owned by the Grouping.
func (g *Grouping) GroupOf(v graph.NodeID) []graph.NodeID {
	return g.groups[GroupID(g.hashes[v], g.KBits)]
}

// Members returns the member list for a group ID.
func (g *Grouping) Members(id uint64) []graph.NodeID { return g.groups[id] }

// NumGroups returns the number of non-empty groups.
func (g *Grouping) NumGroups() int { return len(g.groups) }

// GroupIDs returns all non-empty group IDs, ascending.
func (g *Grouping) GroupIDs() []uint64 {
	out := make([]uint64, 0, len(g.groups))
	for id := range g.groups {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// View is one node's opinion of the grouping when nodes hold differing
// estimates of n (§4.4: "nodes will differ by at most one bit in the number
// of bits k"). Node v considers w a group-mate iff their hashes agree on
// v's own k_v bits.
type View struct {
	hashes []names.Hash
	kOf    []int
}

// BuildView constructs per-node views from per-node estimates of n.
func BuildView(hashes []names.Hash, nEst []float64) *View {
	kOf := make([]int, len(hashes))
	for i, n := range nEst {
		kOf[i] = K(n)
	}
	return &View{hashes: hashes, kOf: kOf}
}

// KOf returns node v's prefix width k_v.
func (v *View) KOf(n graph.NodeID) int { return v.kOf[n] }

// InGroup reports whether node v considers node w a member of G(v).
func (v *View) InGroup(n, w graph.NodeID) bool {
	return SameGroup(v.hashes[n], v.hashes[w], v.kOf[n])
}

// Mutual reports whether v and w both consider each other group-mates —
// the relation whose transitive closure around the hash ring forms the
// core group G'(v).
func (v *View) Mutual(n, w graph.NodeID) bool {
	return v.InGroup(n, w) && v.InGroup(w, n)
}

// CoreGroup returns the core group G'(x): the set of nodes w such that x
// and w mutually agree they share a group. Since estimates within 2x yield
// k values differing by at most 1 bit, the core group is those nodes
// agreeing with x on max(k_x, k_w) bits.
func (v *View) CoreGroup(x graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for w := range v.hashes {
		if v.Mutual(x, graph.NodeID(w)) {
			out = append(out, graph.NodeID(w))
		}
	}
	return out
}

// MaxKSpread returns the difference between the largest and smallest k in
// the view; the protocol's correctness argument requires spread <= 1 when
// estimates are within a factor 2 of truth.
func (v *View) MaxKSpread() int {
	if len(v.kOf) == 0 {
		return 0
	}
	mn, mx := v.kOf[0], v.kOf[0]
	for _, k := range v.kOf {
		if k < mn {
			mn = k
		}
		if k > mx {
			mx = k
		}
	}
	return mx - mn
}
