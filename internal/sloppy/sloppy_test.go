package sloppy

import (
	"math"
	"math/rand"
	"testing"

	"disco/internal/estimate"
	"disco/internal/graph"
	"disco/internal/names"
)

func TestK(t *testing.T) {
	if K(1) != 0 || K(4) != 0 {
		t.Error("tiny n must give k=0")
	}
	// n=16384: sqrt(16384/14)=34.2 -> k=5 (32 groups of ~512 ≈ sqrt(n log n)).
	if k := K(16384); k != 5 {
		t.Errorf("K(16384)=%d want 5", k)
	}
	// n=1024: sqrt(1024/10)=10.1 -> k=3 (8 groups of 128).
	if k := K(1024); k != 3 {
		t.Errorf("K(1024)=%d want 3", k)
	}
	// n=192244 (the paper's router map): k=6 per the Table 7 numbers.
	if k := K(192244); k != 6 {
		t.Errorf("K(192244)=%d want 6", k)
	}
	// Monotone non-decreasing over doublings.
	prev := 0
	for n := 4.0; n < 1e9; n *= 2 {
		k := K(n)
		if k < prev {
			t.Fatalf("K must be non-decreasing: K(%v)=%d after %d", n, k, prev)
		}
		prev = k
	}
}

func TestKChangesOnlyOnConstantFactor(t *testing.T) {
	// Consistency (§4.4): within any factor-2 window of n there is at most
	// one change of k.
	for base := 8.0; base < 1e7; base *= 1.5 {
		changes := 0
		prev := K(base)
		for f := 1.0; f <= 2.0; f += 0.01 {
			k := K(base * f)
			if k != prev {
				changes++
				prev = k
			}
		}
		if changes > 1 {
			t.Fatalf("k changed %d times within [%v,%v]", changes, base, 2*base)
		}
	}
}

func TestGroupSizes(t *testing.T) {
	// With n=4096 names and k=K(4096)=2, expect 4 groups of ~1024.
	n := 4096
	gen := names.NewGenerator(8)
	hashes := make([]names.Hash, n)
	for i := range hashes {
		hashes[i] = names.HashOf(gen.Name(i))
	}
	k := K(float64(n))
	g := BuildGrouping(hashes, k)
	if g.NumGroups() != 1<<uint(k) {
		t.Fatalf("groups %d want %d", g.NumGroups(), 1<<uint(k))
	}
	want := float64(n) / float64(int(1)<<uint(k))
	for _, id := range g.GroupIDs() {
		got := float64(len(g.Members(id)))
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("group %d size %v far from expected %v", id, got, want)
		}
	}
}

func TestGroupOfContainsSelf(t *testing.T) {
	gen := names.NewGenerator(9)
	hashes := make([]names.Hash, 100)
	for i := range hashes {
		hashes[i] = names.HashOf(gen.Name(i))
	}
	g := BuildGrouping(hashes, 3)
	for v := 0; v < 100; v++ {
		found := false
		for _, m := range g.GroupOf(graph.NodeID(v)) {
			if m == graph.NodeID(v) {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d missing from own group", v)
		}
	}
}

func TestSplitIsRefinement(t *testing.T) {
	// Groups at k+1 bits must partition groups at k bits (split in half /
	// merge property, §4.4).
	gen := names.NewGenerator(10)
	hashes := make([]names.Hash, 1000)
	for i := range hashes {
		hashes[i] = names.HashOf(gen.Name(i))
	}
	gk := BuildGrouping(hashes, 3)
	gk1 := BuildGrouping(hashes, 4)
	for v := 0; v < 1000; v++ {
		// Every member of v's (k+1)-group must be in v's k-group.
		coarse := map[graph.NodeID]bool{}
		for _, m := range gk.GroupOf(graph.NodeID(v)) {
			coarse[m] = true
		}
		for _, m := range gk1.GroupOf(graph.NodeID(v)) {
			if !coarse[m] {
				t.Fatalf("refinement violated for node %d", v)
			}
		}
	}
}

func TestViewSpreadUnderBoundedError(t *testing.T) {
	// Estimates within a factor 2 of truth must give k spread <= 1.
	n := 8192
	gen := names.NewGenerator(11)
	hashes := make([]names.Hash, n)
	for i := range hashes {
		hashes[i] = names.HashOf(gen.Name(i))
	}
	rng := rand.New(rand.NewSource(1))
	est := make([]float64, n)
	for i := range est {
		// uniform in [n/2, 2n]
		est[i] = float64(n) * math.Exp2(rng.Float64()*2-1)
	}
	v := BuildView(hashes, est)
	if s := v.MaxKSpread(); s > 1 {
		t.Errorf("k spread %d > 1 under 2x-bounded estimates", s)
	}
}

func TestMutualAndCoreGroup(t *testing.T) {
	n := 512
	gen := names.NewGenerator(12)
	hashes := make([]names.Hash, n)
	for i := range hashes {
		hashes[i] = names.HashOf(gen.Name(i))
	}
	rng := rand.New(rand.NewSource(2))
	est := estimate.InjectError(rng, n, 0.4)
	v := BuildView(hashes, est)
	for x := 0; x < n; x += 37 {
		core := v.CoreGroup(graph.NodeID(x))
		if len(core) == 0 {
			t.Fatalf("core group of %d empty (should contain self)", x)
		}
		selfIn := false
		for _, w := range core {
			if w == graph.NodeID(x) {
				selfIn = true
			}
			// Mutuality is symmetric by construction.
			if !v.Mutual(w, graph.NodeID(x)) {
				t.Fatalf("mutual not symmetric for %d,%d", x, w)
			}
		}
		if !selfIn {
			t.Fatalf("core group of %d misses self", x)
		}
	}
}

func TestSameGroupZeroK(t *testing.T) {
	if !SameGroup(0x1234, 0xFFFF, 0) {
		t.Error("k=0 means one global group")
	}
}
