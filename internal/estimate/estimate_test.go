package estimate

import (
	"math"
	"math/rand"
	"testing"

	"disco/internal/names"
	"disco/internal/topology"
)

func TestSketchEstimateAccuracy(t *testing.T) {
	// Union of n distinct node sketches should estimate n within ~35%
	// with m=64 bitmaps.
	gen := names.NewGenerator(20)
	for _, n := range []int{100, 1000, 5000} {
		s := NewSketch(gen.Name(0), 64)
		for i := 1; i < n; i++ {
			s.Merge(NewSketch(gen.Name(i), 64))
		}
		est := s.Estimate()
		if est < float64(n)*0.65 || est > float64(n)*1.55 {
			t.Errorf("n=%d estimated as %.0f", n, est)
		}
	}
}

func TestMergeIdempotentCommutative(t *testing.T) {
	gen := names.NewGenerator(21)
	a := NewSketch(gen.Name(1), 16)
	b := NewSketch(gen.Name(2), 16)
	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	for i := range ab.bitmaps {
		if ab.bitmaps[i] != ba.bitmaps[i] {
			t.Fatal("merge must be commutative")
		}
	}
	again := ab.Clone()
	if again.Merge(b) {
		t.Fatal("re-merging must report no change (idempotent)")
	}
}

func TestRunConvergesToCommonEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := topology.Gnm(rng, 300, 1200)
	gen := names.NewGenerator(22)
	res := Run(g, gen.Names(300), 32)
	if res.Rounds <= 0 || res.Messages <= 0 {
		t.Fatal("should take at least a round")
	}
	first := res.Estimates[0]
	for v, e := range res.Estimates {
		if e != first {
			t.Fatalf("node %d estimate %v differs from %v (gossip must converge)", v, e, first)
		}
	}
	if first < 300*0.5 || first > 300*2 {
		t.Errorf("converged estimate %v too far from 300", first)
	}
}

func TestRunRoundsBoundedByDiameterish(t *testing.T) {
	// On a line of 50 nodes, convergence needs ~diameter rounds and at
	// most diameter+1.
	g := topology.Line(50)
	gen := names.NewGenerator(23)
	res := Run(g, gen.Names(50), 8)
	if res.Rounds < 25 || res.Rounds > 52 {
		t.Errorf("rounds %d implausible for a 50-line", res.Rounds)
	}
}

func TestInjectErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, frac := range []float64{0.4, 0.6} {
		est := InjectError(rng, 1000, frac)
		if len(est) != 1000 {
			t.Fatal("wrong length")
		}
		for _, e := range est {
			if e < 1000*(1-frac)-1e-9 || e > 1000*(1+frac)+1e-9 {
				t.Fatalf("estimate %v outside ±%v band", e, frac)
			}
		}
		// Should not all be equal.
		if est[0] == est[1] && est[1] == est[2] {
			t.Error("expected random variation")
		}
	}
}

func TestExact(t *testing.T) {
	est := Exact(7)
	for _, e := range est {
		if e != 7 {
			t.Fatal("Exact must return the true n everywhere")
		}
	}
}

func TestTrailingZeros(t *testing.T) {
	if trailingZeros(0) != 63 {
		t.Error("tz(0)")
	}
	if trailingZeros(1) != 0 {
		t.Error("tz(1)")
	}
	if trailingZeros(8) != 3 {
		t.Error("tz(8)")
	}
}

func TestEstimateGeometricMeanBehaviour(t *testing.T) {
	// A sketch over a single element should estimate ~1/phi ≈ 1.3.
	gen := names.NewGenerator(24)
	s := NewSketch(gen.Name(0), 256)
	est := s.Estimate()
	if est < 0.8 || est > 3 {
		t.Errorf("singleton estimate %v", est)
	}
	if math.IsNaN(est) {
		t.Fatal("NaN")
	}
}
