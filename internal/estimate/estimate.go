// Package estimate implements the synopsis-diffusion estimate of the
// network size n (§4.1 [36]): every node seeds Flajolet–Martin sketches
// from its own name, then gossips them to neighbors with bitwise-OR merges.
// Because OR is order- and duplicate-insensitive, the sketches converge to
// the global union in diameter-many rounds, giving every node the same
// robust estimate (within the sketch's ~1/sqrt(m) relative error).
//
// The package also provides controlled error injection used by the §5
// "Error in Estimating Number of Nodes" experiment (uniform random error of
// up to ±40% / ±60% per node).
package estimate

import (
	"math"
	"math/rand"

	"disco/internal/graph"
	"disco/internal/names"
)

// phi is the Flajolet–Martin correction constant.
const phi = 0.77351

// Sketch is a set of m FM bitmaps.
type Sketch struct {
	bitmaps []uint64
}

// NewSketch seeds a sketch for one node: for each of m bitmaps, set bit
// rho(h(name, i)) where rho is the number of trailing zeros.
func NewSketch(name names.Name, m int) Sketch {
	s := Sketch{bitmaps: make([]uint64, m)}
	for i := range s.bitmaps {
		h := names.HashOf(names.Name(string(name) + "|fm|" + string(rune('0'+i%10)) + itoa(i)))
		r := trailingZeros(uint64(h))
		s.bitmaps[i] = 1 << uint(r)
	}
	return s
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func trailingZeros(v uint64) int {
	if v == 0 {
		return 63
	}
	n := 0
	for v&1 == 0 {
		n++
		v >>= 1
	}
	if n > 63 {
		n = 63
	}
	return n
}

// Merge ORs other into s (synopsis fusion — duplicate-insensitive).
func (s *Sketch) Merge(other Sketch) bool {
	changed := false
	for i := range s.bitmaps {
		nv := s.bitmaps[i] | other.bitmaps[i]
		if nv != s.bitmaps[i] {
			s.bitmaps[i] = nv
			changed = true
		}
	}
	return changed
}

// Clone returns an independent copy.
func (s Sketch) Clone() Sketch {
	return Sketch{bitmaps: append([]uint64(nil), s.bitmaps...)}
}

// Estimate returns the FM cardinality estimate: 2^(mean lowest-zero index)
// / phi.
func (s Sketch) Estimate() float64 {
	if len(s.bitmaps) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range s.bitmaps {
		r := 0
		for b&(1<<uint(r)) != 0 {
			r++
		}
		sum += float64(r)
	}
	return math.Exp2(sum/float64(len(s.bitmaps))) / phi
}

// Result reports the outcome of a gossip run.
type Result struct {
	Estimates []float64 // per-node estimate of n (all equal after convergence)
	Rounds    int       // synchronous gossip rounds until quiescence
	Messages  int       // total sketch transmissions (one per directed edge per active round)
}

// Run executes synchronous gossip rounds (each node ORs all neighbors'
// sketches from the previous round) until no sketch changes, then returns
// every node's estimate. m is the number of FM bitmaps per sketch (the
// paper's 256-byte synopses correspond to m = 32 64-bit bitmaps).
func Run(g *graph.Graph, nodeNames []names.Name, m int) Result {
	n := g.N()
	cur := make([]Sketch, n)
	for i := range cur {
		cur[i] = NewSketch(nodeNames[i], m)
	}
	res := Result{}
	for {
		changedAny := false
		prev := make([]Sketch, n)
		for i := range cur {
			prev[i] = cur[i].Clone()
		}
		for v := 0; v < n; v++ {
			for _, e := range g.Neighbors(graph.NodeID(v)) {
				res.Messages++
				if cur[v].Merge(prev[e.To]) {
					changedAny = true
				}
			}
		}
		res.Rounds++
		if !changedAny {
			break
		}
	}
	res.Estimates = make([]float64, n)
	for i := range cur {
		res.Estimates[i] = cur[i].Estimate()
	}
	return res
}

// InjectError returns per-node estimates n*(1+u) with u uniform in
// [-frac, +frac] — the paper's robustness experiment ("we inject random
// errors of up to 60% in this estimation", §5).
func InjectError(rng *rand.Rand, n int, frac float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := (rng.Float64()*2 - 1) * frac
		out[i] = float64(n) * (1 + u)
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// Exact returns per-node estimates all equal to the true n.
func Exact(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(n)
	}
	return out
}
