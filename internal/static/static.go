// Package static implements the shared post-convergence environment of the
// paper's "static simulator" (§5.1): for topologies too large for full
// event-driven simulation, it "calculates the post-convergence state of the
// network" directly. Env holds everything all protocols agree on — the
// graph, flat names and their hashes, per-node estimates of n, the landmark
// set, the landmark shortest-path forest (every node's nearest landmark and
// distance), and every node's address (nearest landmark + explicit route).
// The protocol packages (core, s4, vrr, spr) build their routing state on
// top of an Env, which also makes cross-protocol comparisons use identical
// landmarks and names.
package static

import (
	"sort"

	"disco/internal/addr"
	"disco/internal/estimate"
	"disco/internal/graph"
	"disco/internal/landmark"
	"disco/internal/names"
)

// Env is the converged global environment shared by all protocols.
type Env struct {
	G      *graph.Graph
	Names  []names.Name
	Hashes []names.Hash
	NEst   []float64 // per-node estimate of n (§4.1); Exact by default

	Landmarks []graph.NodeID
	IsLM      []bool
	LMOf      []graph.NodeID // nearest landmark l_v (ties to lowest landmark ID)
	LMDist    []float64      // d(v, l_v)
	lmParent  []graph.NodeID // predecessor on the path l_v ⇝ v

	Addrs []addr.Address // per-node address (l_v, explicit route l_v⇝v)
}

// Option customizes NewEnv.
type Option func(*options)

type options struct {
	nEst      []float64
	landmarks []graph.NodeID
}

// WithNEst supplies per-node estimates of n (e.g. from estimate.Run or
// estimate.InjectError). Defaults to the exact n at every node.
func WithNEst(nEst []float64) Option {
	return func(o *options) { o.nEst = nEst }
}

// WithLandmarks overrides landmark selection with an explicit set — the §6
// discussion notes operators may choose landmarks non-randomly; tests use
// this for adversarial placements.
func WithLandmarks(lms []graph.NodeID) Option {
	return func(o *options) { o.landmarks = lms }
}

// NewEnv builds the environment: names from nameSeed, landmark
// self-selection under each node's estimate of n, the landmark forest, and
// all addresses. The graph must be connected and Finalized.
func NewEnv(g *graph.Graph, nameSeed int64, opts ...Option) *Env {
	gen := names.NewGenerator(nameSeed)
	return NewEnvWithNames(g, gen.Names(g.N()), opts...)
}

// NewEnvWithNames is NewEnv with caller-supplied flat names (one per
// node) — the public API path, where applications pick the names.
func NewEnvWithNames(g *graph.Graph, nodeNames []names.Name, opts ...Option) *Env {
	var o options
	for _, f := range opts {
		f(&o)
	}
	n := g.N()
	e := &Env{G: g}
	e.Names = nodeNames
	e.Hashes = make([]names.Hash, n)
	for i, nm := range e.Names {
		e.Hashes[i] = names.HashOf(nm)
	}
	if o.nEst != nil {
		e.NEst = o.nEst
	} else {
		e.NEst = estimate.Exact(n)
	}
	if o.landmarks != nil {
		e.Landmarks = o.landmarks
	} else {
		e.Landmarks = landmark.SelectPerNode(e.Names, e.NEst)
	}
	e.IsLM = make([]bool, n)
	for _, lm := range e.Landmarks {
		e.IsLM[lm] = true
	}

	// Landmark forest: one multi-source Dijkstra.
	s := graph.NewSSSP(g)
	s.RunMulti(e.Landmarks)
	e.LMOf = make([]graph.NodeID, n)
	e.LMDist = make([]float64, n)
	e.lmParent = make([]graph.NodeID, n)
	for v := 0; v < n; v++ {
		e.LMOf[v] = s.Source(graph.NodeID(v))
		e.LMDist[v] = s.Dist(graph.NodeID(v))
		e.lmParent[v] = s.Parent(graph.NodeID(v))
	}

	// Addresses: explicit route l_v ⇝ v from the forest.
	e.Addrs = make([]addr.Address, n)
	for v := 0; v < n; v++ {
		e.Addrs[v] = addr.Make(g, e.LandmarkPath(graph.NodeID(v)))
	}
	return e
}

// LandmarkPath returns the node path l_v ⇝ v from the landmark forest.
func (e *Env) LandmarkPath(v graph.NodeID) []graph.NodeID {
	var rev []graph.NodeID
	for u := v; u != graph.None; u = e.lmParent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AddrOf returns v's address.
func (e *Env) AddrOf(v graph.NodeID) addr.Address { return e.Addrs[v] }

// N returns the network size.
func (e *Env) N() int { return e.G.N() }

// NameOf returns v's flat name.
func (e *Env) NameOf(v graph.NodeID) names.Name { return e.Names[v] }

// HashOf returns h(name(v)).
func (e *Env) HashOf(v graph.NodeID) names.Hash { return e.Hashes[v] }

// AddrSizeStats returns the distribution of explicit-route sizes in bytes
// over all node addresses — the §4.2 measurement (on the paper's
// router-level map: mean 2.93 B, 95th percentile 5 B, max 10.625 B).
func (e *Env) AddrSizeStats() (mean, p95, max float64) {
	if len(e.Addrs) == 0 {
		return 0, 0, 0
	}
	sizes := make([]float64, len(e.Addrs))
	total := 0.0
	for i, a := range e.Addrs {
		sizes[i] = float64(a.Bits()) / 8
		total += sizes[i]
	}
	mean = total / float64(len(sizes))
	// Nearest-rank p95 and max without pulling in metrics (avoids a cycle).
	cp := append([]float64(nil), sizes...)
	sort.Float64s(cp)
	idx := int(float64(len(cp))*0.95+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return mean, cp[idx], cp[len(cp)-1]
}
