package static

import (
	"math/rand"
	"testing"

	"disco/internal/addr"
	"disco/internal/estimate"
	"disco/internal/graph"
	"disco/internal/topology"
)

func TestEnvLandmarkForest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := topology.Gnm(rng, 300, 1200)
	e := NewEnv(g, 7)
	if len(e.Landmarks) == 0 {
		t.Fatal("no landmarks")
	}
	// Brute-force nearest landmark per node.
	s := graph.NewSSSP(g)
	for v := 0; v < g.N(); v++ {
		s.Run(graph.NodeID(v))
		bestD := -1.0
		var best graph.NodeID = graph.None
		for _, lm := range e.Landmarks {
			d := s.Dist(lm)
			if bestD < 0 || d < bestD || (d == bestD && lm < best) {
				bestD, best = d, lm
			}
		}
		if e.LMDist[v] != bestD {
			t.Fatalf("node %d LMDist %v want %v", v, e.LMDist[v], bestD)
		}
		if e.LMOf[v] != best {
			t.Fatalf("node %d LMOf %d want %d", v, e.LMOf[v], best)
		}
	}
}

func TestEnvAddresses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := topology.Geometric(rng, 200, 8)
	e := NewEnv(g, 8)
	for v := 0; v < g.N(); v++ {
		a := e.AddrOf(graph.NodeID(v))
		if a.Dest != graph.NodeID(v) {
			t.Fatalf("address dest mismatch at %d", v)
		}
		if a.Landmark != e.LMOf[v] {
			t.Fatalf("address landmark mismatch at %d", v)
		}
		// Path length equals landmark distance.
		if got := g.PathLength(a.Path); got != e.LMDist[v] {
			t.Fatalf("address path length %v want %v", got, e.LMDist[v])
		}
		// Wire format round-trips.
		buf, nbit := a.Encode(g)
		dec, err := addr.Decode(g, a.Landmark, buf, nbit)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(dec) != len(a.Path) || dec[len(dec)-1] != graph.NodeID(v) {
			t.Fatalf("decoded path wrong at %d", v)
		}
	}
}

func TestEnvLandmarksAreAddressRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := topology.Gnm(rng, 150, 600)
	e := NewEnv(g, 9)
	for _, lm := range e.Landmarks {
		if !e.IsLM[lm] {
			t.Fatal("IsLM inconsistent")
		}
		if e.LMOf[lm] != lm || e.LMDist[lm] != 0 {
			t.Fatalf("landmark %d should be its own landmark", lm)
		}
		if e.AddrOf(lm).Hops() != 0 {
			t.Fatalf("landmark %d address should be empty route", lm)
		}
	}
}

func TestWithLandmarks(t *testing.T) {
	g := topology.Ring(20)
	e := NewEnv(g, 1, WithLandmarks([]graph.NodeID{0, 10}))
	if len(e.Landmarks) != 2 {
		t.Fatal("override ignored")
	}
	if e.LMOf[5] != 0 && e.LMOf[5] != 10 {
		t.Fatal("nearest landmark must be one of the overrides")
	}
	if e.LMDist[5] != 5 {
		t.Fatalf("LMDist[5]=%v want 5", e.LMDist[5])
	}
}

func TestWithNEst(t *testing.T) {
	g := topology.Ring(50)
	rng := rand.New(rand.NewSource(4))
	est := estimate.InjectError(rng, 50, 0.4)
	e := NewEnv(g, 2, WithNEst(est))
	if len(e.NEst) != 50 || e.NEst[0] == e.NEst[1] && e.NEst[1] == e.NEst[2] && e.NEst[2] == e.NEst[3] {
		t.Error("per-node estimates not applied")
	}
}

func TestAddrSizeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := topology.RouterLike(rng, 2000)
	e := NewEnv(g, 11)
	mean, p95, max := e.AddrSizeStats()
	if mean <= 0 || p95 < mean || max < p95 {
		t.Fatalf("stats not ordered: mean=%v p95=%v max=%v", mean, p95, max)
	}
	if mean > 8 {
		t.Errorf("mean address size %v bytes implausible for router-like map", mean)
	}
}

func TestEnvDeterministic(t *testing.T) {
	g1 := topology.Gnm(rand.New(rand.NewSource(6)), 100, 400)
	g2 := topology.Gnm(rand.New(rand.NewSource(6)), 100, 400)
	e1 := NewEnv(g1, 3)
	e2 := NewEnv(g2, 3)
	if len(e1.Landmarks) != len(e2.Landmarks) {
		t.Fatal("same seed must give same landmarks")
	}
	for i := range e1.Landmarks {
		if e1.Landmarks[i] != e2.Landmarks[i] {
			t.Fatal("landmark mismatch")
		}
	}
	for v := 0; v < 100; v++ {
		if e1.Names[v] != e2.Names[v] || e1.LMOf[v] != e2.LMOf[v] {
			t.Fatal("env mismatch")
		}
	}
}
