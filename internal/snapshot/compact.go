// Compact storage regime: the snapshot's route state bit-packed via
// internal/bits. The constant factor is the whole ballgame for paper-scale
// runs — the exact table prices a 192,244-node -full run at several
// gigabytes, and shrinking the encoding is what turns the Θ(√(n log n))
// bound into a runnable experiment.
//
// Wire format, vicinity window of node v (k entries sorted by member ID,
// byte-aligned per node so windows are sliceable from one shared blob):
//
//	ids:     first member ID in Width(n) bits, then k-1 Elias-gamma deltas
//	         (member IDs are strictly increasing, so every delta is >= 1)
//	parents: k window indices in Width(k+1) bits each — the position of the
//	         entry's parent within this window (parents are always members),
//	         with index k encoding graph.None (the owner)
//	dists:   k IEEE-754 float32 values, 32 bits each (quantized from the
//	         exact float64; lossless whenever distances are small integers,
//	         i.e. on every unit-weight topology)
//
// Landmark forest rows: one row per landmark, byte-aligned, with node v's
// parent stored as the port index of the parent within v's sorted adjacency
// list in Width(deg(v)+1) bits — value deg(v) encodes graph.None. Ports
// round-trip exactly, so compact tree reads are byte-identical to exact
// ones.
package snapshot

import (
	"fmt"
	"math"
	"sort"

	"disco/internal/bits"
	"disco/internal/graph"
	"disco/internal/parallel"
	"disco/internal/vicinity"
)

// vicinityShard bounds how many per-node encoded buffers exist at once
// during BuildCompact: windows are computed and encoded in parallel within
// a shard, then appended to the blob and released, so peak transient memory
// tracks the encoded size, not the 16-byte-per-entry exact table.
const vicinityShard = 8192

// encScratch is one worker's private state for the compact vicinity sweep.
type encScratch struct {
	sp  *graph.SSSP
	win []vicinity.Entry
	w   bits.Writer
}

// fillWindow materializes one vicinity window from a finished truncated
// Dijkstra run and sorts it by member ID (the Set order). Shared by both
// regimes.
func fillWindow(win []vicinity.Entry, sp *graph.SSSP, order []graph.NodeID) {
	for j, w := range order {
		win[j] = vicinity.Entry{Node: w, Parent: sp.Parent(w), Dist: sp.Dist(w)}
	}
	sort.Slice(win, func(a, b int) bool { return win[a].Node < win[b].Node })
}

// buildCompactVicinities runs the same per-node truncated Dijkstra sweep as
// the exact build, but encodes each window straight into a bit-packed
// buffer, shard by shard.
func (s *Snapshot) buildCompactVicinities() error {
	n, k := s.g.N(), s.k
	s.idWidth = bits.Width(n)
	s.pWidth = bits.Width(k + 1)
	s.vicOff = make([]int64, n+1)
	settled := make([]int32, n)
	radii := make([]float64, n)
	var blob []byte
	bufs := make([][]byte, min(vicinityShard, n))
	for base := 0; base < n; base += vicinityShard {
		m := vicinityShard
		if base+m > n {
			m = n - base
		}
		parallel.RunScratch(m,
			func() *encScratch {
				return &encScratch{sp: graph.NewSSSP(s.g), win: make([]vicinity.Entry, k)}
			},
			func(sc *encScratch, i int) {
				src := graph.NodeID(base + i)
				sc.sp.RunK(src, k)
				order := sc.sp.Order()
				settled[base+i] = int32(len(order))
				if len(order) != k {
					bufs[i] = nil
					return
				}
				fillWindow(sc.win, sc.sp, order)
				radii[base+i] = windowBound(sc.win)
				sc.w.Reset()
				encodeWindow(&sc.w, s.idWidth, s.pWidth, sc.win)
				bufs[i] = append([]byte(nil), sc.w.Bytes()...)
			})
		for i := 0; i < m; i++ {
			s.vicOff[base+i] = int64(len(blob))
			blob = append(blob, bufs[i]...)
			bufs[i] = nil
		}
	}
	s.vicOff[n] = int64(len(blob))
	s.vicBlob = blob
	for _, r := range radii {
		if r > s.maxRadius {
			s.maxRadius = r
		}
	}
	return firstShortfall(settled, k)
}

// windowBound returns an upper bound on the window's radius that covers
// both the raw float64 distances and their float32-quantized decode (the
// two can land on either side of each other), so maxRadius stays a valid
// candidate-search bound in the compact regime.
func windowBound(win []vicinity.Entry) float64 {
	b := 0.0
	for _, e := range win {
		if e.Dist > b {
			b = e.Dist
		}
		if q := float64(float32(e.Dist)); q > b {
			b = q
		}
	}
	return b
}

// encodeWindow appends one window in the wire format above. The window must
// be sorted by member ID; every parent must be a window member (guaranteed
// by truncated Dijkstra: a parent settles before its child). An empty
// window (k=0) encodes to zero bits.
func encodeWindow(w *bits.Writer, idWidth, pWidth int, win []vicinity.Entry) {
	if len(win) == 0 {
		return
	}
	w.WriteBits(uint64(win[0].Node), idWidth)
	for i := 1; i < len(win); i++ {
		w.WriteGamma(uint64(win[i].Node - win[i-1].Node))
	}
	for _, e := range win {
		idx := len(win) // graph.None sentinel
		if e.Parent != graph.None {
			idx = sort.Search(len(win), func(i int) bool { return win[i].Node >= e.Parent })
			if idx == len(win) || win[idx].Node != e.Parent {
				// Unreachable on any Dijkstra-built window; a hit means the
				// window itself is corrupt, not that the input was bad.
				panic(fmt.Sprintf("snapshot: parent %d of member %d is outside the vicinity window", e.Parent, e.Node))
			}
		}
		w.WriteBits(uint64(idx), pWidth)
	}
	for _, e := range win {
		w.WriteBits(uint64(math.Float32bits(float32(e.Dist))), 32)
	}
}

// decodeWindow materializes node v's vicinity window from the shared blob.
// The window holds winLen(v) entries: k on from-scratch builds, possibly
// fewer on a folded repair chain whose failures disconnected v's region.
func (s *Snapshot) decodeWindow(v graph.NodeID) []vicinity.Entry {
	ln := s.winLen(v)
	if ln == 0 {
		return nil
	}
	a, b := s.vicOff[v], s.vicOff[v+1]
	r := bits.NewReader(s.vicBlob[a:b], int(b-a)*8)
	entries := make([]vicinity.Entry, ln)
	id := graph.NodeID(r.ReadBits(s.idWidth))
	entries[0].Node = id
	for i := 1; i < ln; i++ {
		id += graph.NodeID(r.ReadGamma())
		entries[i].Node = id
	}
	for i := 0; i < ln; i++ {
		idx := int(r.ReadBits(s.pWidth))
		if idx == ln {
			entries[i].Parent = graph.None
		} else {
			entries[i].Parent = entries[idx].Node
		}
	}
	for i := 0; i < ln; i++ {
		entries[i].Dist = float64(math.Float32frombits(uint32(r.ReadBits(32))))
	}
	return entries
}

// compactContains answers w ∈ V(v) straight off the encoded ID stream:
// member IDs are ascending, so the scan stops at the first ID >= w and
// never touches the parent/distance sections or materializes the window.
// This keeps the per-hop membership probes of the forwarding loops cheap
// in the compact regime.
func (s *Snapshot) compactContains(v, w graph.NodeID) bool {
	ln := s.winLen(v)
	if ln == 0 {
		return false
	}
	a, b := s.vicOff[v], s.vicOff[v+1]
	r := bits.NewReader(s.vicBlob[a:b], int(b-a)*8)
	id := graph.NodeID(r.ReadBits(s.idWidth))
	for i := 1; ; i++ {
		if id >= w {
			return id == w
		}
		if i == ln {
			return false
		}
		id += graph.NodeID(r.ReadGamma())
	}
}

// buildCompactForest writes one bit-packed port-index parent row per
// landmark. Rows are byte-aligned so parallel row writers touch disjoint
// bytes.
func (s *Snapshot) buildCompactForest() error {
	n := s.g.N()
	s.degOff = make([]int64, n+1)
	var pos int64
	for v := 0; v < n; v++ {
		s.degOff[v] = pos
		pos += int64(bits.Width(s.g.Degree(graph.NodeID(v)) + 1))
	}
	s.degOff[n] = pos
	s.rowBytes = int((pos + 7) / 8)
	s.forest = make([]byte, len(s.landmarks)*s.rowBytes)
	settled := make([]int32, len(s.landmarks))
	graph.ForEachSource(s.g, s.landmarks, func(sp *graph.SSSP, row int, lm graph.NodeID) {
		sp.Run(lm)
		settled[row] = int32(len(sp.Order()))
		var w bits.Writer
		for v := 0; v < n; v++ {
			deg := s.g.Degree(graph.NodeID(v))
			port := deg // graph.None sentinel
			if p := sp.Parent(graph.NodeID(v)); p != graph.None {
				port = s.g.PortOf(graph.NodeID(v), p)
			}
			w.WriteBits(uint64(port), int(s.degOff[v+1]-s.degOff[v]))
		}
		copy(s.forest[row*s.rowBytes:(row+1)*s.rowBytes], w.Bytes())
	})
	return forestShortfall(settled, s.landmarks, n)
}

// compactParent decodes one parent field of forest row `row`: the port of
// v's tree predecessor within v's adjacency list, or deg(v) for None. The
// ports index the adjacency of the graph the row was encoded over
// (portGraph), which on a repaired snapshot is the parent's graph — the
// resolved edge is nonetheless alive, because a shared row's tree crosses
// no failed link.
func (s *Snapshot) compactParent(row int, v graph.NodeID) graph.NodeID {
	pg := s.portGraph()
	width := int(s.degOff[v+1] - s.degOff[v])
	prow := s.forest[row*s.rowBytes : (row+1)*s.rowBytes]
	port := bits.At(prow, int(s.degOff[v]), width)
	if port == uint64(pg.Degree(v)) {
		return graph.None
	}
	return pg.NeighborAt(v, int(port)).To
}
