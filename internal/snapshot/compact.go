// Compact storage regime: the shard store's route state bit-packed via
// internal/bits. The constant factor is the whole ballgame for paper-scale
// runs — the exact table prices a 192,244-node -full run at several
// gigabytes, and shrinking the encoding is what turns the Θ(√(n log n))
// bound into a runnable experiment.
//
// Wire format, vicinity window of node v (k entries sorted by member ID,
// byte-aligned per node so windows are sliceable from one shared blob):
//
//	ids:     first member ID in Width(n) bits, then k-1 Elias-gamma deltas
//	         (member IDs are strictly increasing, so every delta is >= 1)
//	parents: k window indices in Width(k+1) bits each — the position of the
//	         entry's parent within this window (parents are always members),
//	         with index k encoding graph.None (the owner)
//	dists:   k IEEE-754 float32 values, 32 bits each (quantized from the
//	         exact float64; lossless whenever distances are small integers,
//	         i.e. on every unit-weight topology)
//
// Landmark forest rows: one row per landmark, byte-aligned, with node v's
// parent stored as the port index of the parent within v's sorted adjacency
// list in Width(deg(v)+1) bits — value deg(v) encodes graph.None. Ports
// round-trip exactly, so compact tree reads are byte-identical to exact
// ones.
//
// Beside the blobs the store keeps one float32 per window: its quantized
// radius, exactly the Radius() a decode would report. The recovery
// pipeline's per-candidate radius probes read it directly, so the hot
// classification loop never decodes a window.
package snapshot

import (
	"fmt"
	"math"
	"sort"

	"disco/internal/bits"
	"disco/internal/graph"
	"disco/internal/parallel"
	"disco/internal/vicinity"
)

// vicinityShard bounds how many per-node encoded buffers exist at once
// during BuildCompact: windows are computed and encoded in parallel within
// a shard, then appended to the blob and released, so peak transient memory
// tracks the encoded size, not the 16-byte-per-entry exact table.
const vicinityShard = 8192

// compactStore is the compact regime's shard store. pg is the graph whose
// sorted adjacency lists the forest ports index — the graph the rows were
// encoded over, which on a folded chain is that fold's graph. sp is
// non-nil when vicBlob and forest live in a spill mapping instead of the
// heap.
type compactStore struct {
	n, k     int
	pg       *graph.Graph
	idWidth  int // bits of the first (absolute) member ID: Width(n)
	pWidth   int // bits of one parent window index: Width(k+1)
	vicBlob  []byte
	vicOff   []int64
	vicLen   []int32   // per-node window member count; nil = every window has k
	radii    []float32 // per-node quantized window radius
	forest   []byte
	degOff   []int64
	rowBytes int
	sp       *spillFile
}

func (cs *compactStore) windowLen(v graph.NodeID) int {
	if cs.vicLen != nil {
		return int(cs.vicLen[v])
	}
	return cs.k
}

func (cs *compactStore) windowRadius(v graph.NodeID) float64 { return float64(cs.radii[v]) }

func (cs *compactStore) windowSet(v graph.NodeID) *vicinity.Set {
	set := vicinity.MakeSet(v, cs.decodeWindow(v))
	return &set
}

func (cs *compactStore) spillFile() *spillFile { return cs.sp }

// encScratch is one worker's private state for the compact encode sweeps.
type encScratch struct {
	sp  *graph.SSSP
	win []vicinity.Entry
	w   bits.Writer
}

// fillWindow materializes one vicinity window from a finished truncated
// Dijkstra run and sorts it by member ID (the Set order). Shared by both
// regimes.
func fillWindow(win []vicinity.Entry, sp *graph.SSSP, order []graph.NodeID) {
	for j, w := range order {
		win[j] = vicinity.Entry{Node: w, Parent: sp.Parent(w), Dist: sp.Dist(w)}
	}
	sort.Slice(win, func(a, b int) bool { return win[a].Node < win[b].Node })
}

// buildCompactVicinities runs the same per-node truncated Dijkstra sweep as
// the exact build, but encodes each window straight into a bit-packed
// buffer, shard by shard.
func (s *Snapshot) buildCompactVicinities(cs *compactStore) error {
	n, k := s.g.N(), s.k
	cs.idWidth = bits.Width(n)
	cs.pWidth = bits.Width(k + 1)
	cs.vicOff = make([]int64, n+1)
	cs.radii = make([]float32, n)
	settled := make([]int32, n)
	bounds := make([]float64, n)
	var blob []byte
	bufs := make([][]byte, min(vicinityShard, n))
	for base := 0; base < n; base += vicinityShard {
		m := vicinityShard
		if base+m > n {
			m = n - base
		}
		parallel.RunScratch(m,
			func() *encScratch {
				return &encScratch{sp: graph.NewSSSP(s.g), win: make([]vicinity.Entry, k)}
			},
			func(sc *encScratch, i int) {
				src := graph.NodeID(base + i)
				sc.sp.RunK(src, k)
				order := sc.sp.Order()
				settled[base+i] = int32(len(order))
				if len(order) != k {
					bufs[i] = nil
					return
				}
				fillWindow(sc.win, sc.sp, order)
				bounds[base+i] = windowBound(sc.win)
				cs.radii[base+i] = quantizedRadius(sc.win)
				sc.w.Reset()
				encodeWindow(&sc.w, cs.idWidth, cs.pWidth, sc.win)
				bufs[i] = append([]byte(nil), sc.w.Bytes()...)
			})
		for i := 0; i < m; i++ {
			cs.vicOff[base+i] = int64(len(blob))
			blob = append(blob, bufs[i]...)
			bufs[i] = nil
		}
	}
	cs.vicOff[n] = int64(len(blob))
	cs.vicBlob = blob
	for _, r := range bounds {
		if r > s.maxRadius {
			s.maxRadius = r
		}
	}
	return firstShortfall(settled, k)
}

// windowBound returns an upper bound on the window's radius that covers
// both the raw float64 distances and their float32-quantized decode (the
// two can land on either side of each other), so maxRadius stays a valid
// candidate-search bound in the compact regime.
func windowBound(win []vicinity.Entry) float64 {
	b := 0.0
	for _, e := range win {
		if e.Dist > b {
			b = e.Dist
		}
		if q := float64(float32(e.Dist)); q > b {
			b = q
		}
	}
	return b
}

// quantizedRadius returns the radius a decode of this window will report:
// the maximum of the float32-quantized distances. Stored per window so
// radius probes skip the decode.
func quantizedRadius(win []vicinity.Entry) float32 {
	var r float32
	for _, e := range win {
		if q := float32(e.Dist); q > r {
			r = q
		}
	}
	return r
}

// encodeWindow appends one window in the wire format above. The window must
// be sorted by member ID; every parent must be a window member (guaranteed
// by truncated Dijkstra: a parent settles before its child). An empty
// window (k=0) encodes to zero bits.
func encodeWindow(w *bits.Writer, idWidth, pWidth int, win []vicinity.Entry) {
	if len(win) == 0 {
		return
	}
	w.WriteBits(uint64(win[0].Node), idWidth)
	for i := 1; i < len(win); i++ {
		w.WriteGamma(uint64(win[i].Node - win[i-1].Node))
	}
	for _, e := range win {
		idx := len(win) // graph.None sentinel
		if e.Parent != graph.None {
			idx = sort.Search(len(win), func(i int) bool { return win[i].Node >= e.Parent })
			if idx == len(win) || win[idx].Node != e.Parent {
				// Unreachable on any Dijkstra-built window; a hit means the
				// window itself is corrupt, not that the input was bad.
				panic(fmt.Sprintf("snapshot: parent %d of member %d is outside the vicinity window", e.Parent, e.Node))
			}
		}
		w.WriteBits(uint64(idx), pWidth)
	}
	for _, e := range win {
		w.WriteBits(uint64(math.Float32bits(float32(e.Dist))), 32)
	}
}

// encodedWindowBytes returns the byte length encodeWindow would produce
// for win without writing a bit — the analytic size pass of the two-pass
// compact fold, so every shard's destination slice is known before any
// shard encodes.
func encodedWindowBytes(idWidth, pWidth int, win []vicinity.Entry) int64 {
	if len(win) == 0 {
		return 0
	}
	nbits := idWidth + len(win)*(pWidth+32)
	for i := 1; i < len(win); i++ {
		nbits += bits.GammaLen(uint64(win[i].Node - win[i-1].Node))
	}
	return int64((nbits + 7) / 8)
}

// decodeWindow materializes node v's vicinity window from the shared blob.
// The window holds windowLen(v) entries: k on from-scratch builds, possibly
// fewer on a folded repair chain whose failures disconnected v's region.
func (cs *compactStore) decodeWindow(v graph.NodeID) []vicinity.Entry {
	ln := cs.windowLen(v)
	if ln == 0 {
		return nil
	}
	a, b := cs.vicOff[v], cs.vicOff[v+1]
	r := bits.NewReader(cs.vicBlob[a:b], int(b-a)*8)
	entries := make([]vicinity.Entry, ln)
	id := graph.NodeID(r.ReadBits(cs.idWidth))
	entries[0].Node = id
	for i := 1; i < ln; i++ {
		id += graph.NodeID(r.ReadGamma())
		entries[i].Node = id
	}
	for i := 0; i < ln; i++ {
		idx := int(r.ReadBits(cs.pWidth))
		if idx == ln {
			entries[i].Parent = graph.None
		} else {
			entries[i].Parent = entries[idx].Node
		}
	}
	for i := 0; i < ln; i++ {
		entries[i].Dist = float64(math.Float32frombits(uint32(r.ReadBits(32))))
	}
	return entries
}

// windowContains answers w ∈ V(v) straight off the encoded ID stream:
// member IDs are ascending, so the scan stops at the first ID >= w and
// never touches the parent/distance sections or materializes the window.
// This keeps the per-hop membership probes of the forwarding loops cheap
// in the compact regime.
func (cs *compactStore) windowContains(v, w graph.NodeID) bool {
	ln := cs.windowLen(v)
	if ln == 0 {
		return false
	}
	a, b := cs.vicOff[v], cs.vicOff[v+1]
	r := bits.NewReader(cs.vicBlob[a:b], int(b-a)*8)
	id := graph.NodeID(r.ReadBits(cs.idWidth))
	for i := 1; ; i++ {
		if id >= w {
			return id == w
		}
		if i == ln {
			return false
		}
		id += graph.NodeID(r.ReadGamma())
	}
}

// buildCompactForest writes one bit-packed port-index parent row per
// landmark. Rows are byte-aligned so parallel row writers touch disjoint
// bytes.
func (s *Snapshot) buildCompactForest(cs *compactStore) error {
	n := s.g.N()
	cs.degOff = make([]int64, n+1)
	var pos int64
	for v := 0; v < n; v++ {
		cs.degOff[v] = pos
		pos += int64(bits.Width(s.g.Degree(graph.NodeID(v)) + 1))
	}
	cs.degOff[n] = pos
	cs.rowBytes = int((pos + 7) / 8)
	cs.forest = make([]byte, len(s.landmarks)*cs.rowBytes)
	settled := make([]int32, len(s.landmarks))
	graph.ForEachSource(s.g, s.landmarks, func(sp *graph.SSSP, row int, lm graph.NodeID) {
		sp.Run(lm)
		settled[row] = int32(len(sp.Order()))
		var w bits.Writer
		for v := 0; v < n; v++ {
			deg := s.g.Degree(graph.NodeID(v))
			port := deg // graph.None sentinel
			if p := sp.Parent(graph.NodeID(v)); p != graph.None {
				port = s.g.PortOf(graph.NodeID(v), p)
			}
			w.WriteBits(uint64(port), int(cs.degOff[v+1]-cs.degOff[v]))
		}
		copy(cs.forest[row*cs.rowBytes:(row+1)*cs.rowBytes], w.Bytes())
	})
	return forestShortfall(settled, s.landmarks, n)
}

// rowParent decodes one parent field of forest row `row`: the port of v's
// tree predecessor within v's adjacency list, or deg(v) for None. The
// ports index the adjacency of the graph the row was encoded over (pg);
// on a chained snapshot that graph can predate failures, but the resolved
// edge is nonetheless alive — a shared row's tree crosses no failed link.
func (cs *compactStore) rowParent(row int, v graph.NodeID) graph.NodeID {
	width := int(cs.degOff[v+1] - cs.degOff[v])
	prow := cs.forest[row*cs.rowBytes : (row+1)*cs.rowBytes]
	port := bits.At(prow, int(cs.degOff[v]), width)
	if port == uint64(cs.pg.Degree(v)) {
		return graph.None
	}
	return cs.pg.NeighborAt(v, int(port)).To
}

// rowFlat: compact rows are never stored flat.
func (cs *compactStore) rowFlat(row int) []graph.NodeID { return nil }

// decodeRow materializes forest row `row` as a flat parent array in one
// sequential pass over the bit stream — what table compiles and folds
// read, instead of n random At probes.
func (cs *compactStore) decodeRow(row int) []graph.NodeID {
	prow := make([]graph.NodeID, cs.n)
	r := bits.NewReader(cs.forest[row*cs.rowBytes:(row+1)*cs.rowBytes], cs.rowBytes*8)
	for v := 0; v < cs.n; v++ {
		port := r.ReadBits(int(cs.degOff[v+1] - cs.degOff[v]))
		if port == uint64(cs.pg.Degree(graph.NodeID(v))) {
			prow[v] = graph.None
		} else {
			prow[v] = cs.pg.NeighborAt(graph.NodeID(v), int(port)).To
		}
	}
	return prow
}

func (cs *compactStore) storeBytes() int64 {
	return int64(len(cs.vicBlob)) +
		int64(len(cs.vicOff))*off64Bytes +
		int64(len(cs.vicLen))*int32Bytes +
		int64(len(cs.radii))*f32Bytes +
		int64(len(cs.forest)) +
		int64(len(cs.degOff))*off64Bytes
}

// foldCompactInto re-encodes the chain's logical state in the compact wire
// format as a fresh compactStore, in two passes so shards encode
// independently over the worker pool: pass 1 computes every window's
// encoded size — analytically for overlaid windows, and by carrying the
// old byte range for untouched ones, which re-encode byte-identically
// because the widths never change across folds — pass 2 writes each
// window into its disjoint blob slice, raw-copying the untouched ranges
// (valid even when the old blob is a read-only mmap). Forest rows always
// re-encode: their port indices rebuild against the current graph. When a
// spill directory is configured the fresh store is written out and served
// via mmap, and the heap copy dropped.
func (s *Snapshot) foldCompactInto(f *Snapshot) {
	old := s.store.(*compactStore)
	n := s.g.N()
	cs := &compactStore{
		n: n, k: s.k, pg: s.g,
		idWidth: old.idWidth, pWidth: old.pWidth,
		vicLen: make([]int32, n),
		radii:  make([]float32, n),
	}
	vicOff := make([]int64, n+1)
	sizes := parallel.Map(n, func(v int) int64 {
		if set, ok := s.ov.findVic(graph.NodeID(v)); ok {
			cs.vicLen[v] = int32(set.Size())
			cs.radii[v] = float32(set.Radius())
			return encodedWindowBytes(cs.idWidth, cs.pWidth, set.Entries)
		}
		cs.vicLen[v] = int32(old.windowLen(graph.NodeID(v)))
		cs.radii[v] = old.radii[v]
		return old.vicOff[v+1] - old.vicOff[v]
	})
	for v := 0; v < n; v++ {
		vicOff[v+1] = vicOff[v] + sizes[v]
	}
	cs.vicOff = vicOff
	cs.vicBlob = make([]byte, vicOff[n])
	parallel.RunScratch(n,
		func() *encScratch { return &encScratch{} },
		func(sc *encScratch, v int) {
			dst := cs.vicBlob[vicOff[v]:vicOff[v+1]]
			if set, ok := s.ov.findVic(graph.NodeID(v)); ok {
				sc.w.Reset()
				encodeWindow(&sc.w, cs.idWidth, cs.pWidth, set.Entries)
				copy(dst, sc.w.Bytes())
				return
			}
			copy(dst, old.vicBlob[old.vicOff[v]:old.vicOff[v+1]])
		})
	uniform := true
	for _, ln := range cs.vicLen {
		if int(ln) != s.k {
			uniform = false
			break
		}
	}
	if uniform {
		cs.vicLen = nil
	}

	cs.degOff = make([]int64, n+1)
	var pos int64
	for v := 0; v < n; v++ {
		cs.degOff[v] = pos
		pos += int64(bits.Width(s.g.Degree(graph.NodeID(v)) + 1))
	}
	cs.degOff[n] = pos
	cs.rowBytes = int((pos + 7) / 8)
	cs.forest = make([]byte, len(s.landmarks)*cs.rowBytes)
	parallel.RunScratch(len(s.landmarks),
		func() *encScratch { return &encScratch{} },
		func(sc *encScratch, row int) {
			prow, ok := s.ov.findRow(row)
			if !ok {
				prow = old.decodeRow(row)
			}
			sc.w.Reset()
			for v := 0; v < n; v++ {
				deg := s.g.Degree(graph.NodeID(v))
				port := deg // graph.None sentinel
				if p := prow[v]; p != graph.None {
					port = s.g.PortOf(graph.NodeID(v), p)
				}
				sc.w.WriteBits(uint64(port), int(cs.degOff[v+1]-cs.degOff[v]))
			}
			copy(cs.forest[row*cs.rowBytes:(row+1)*cs.rowBytes], sc.w.Bytes())
		})

	if dir := SpillDir(); dir != "" {
		// A failed fold-time spill (disk full, bad dir) falls back to the
		// heap: the fold's correctness never depends on the file.
		if err := cs.spillTo(dir); err == nil && cs.sp != nil {
			f.sref = newStoreRef(cs.sp)
		}
	}
	f.store = cs
}
