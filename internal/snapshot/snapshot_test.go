package snapshot

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"disco/internal/graph"
	"disco/internal/pathtree"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

func buildEnv(t testing.TB, n int, seed int64) *static.Env {
	t.Helper()
	g := topology.GnmAvgDeg(rand.New(rand.NewSource(seed)), n, 8)
	return static.NewEnv(g, seed)
}

func mustBuild(t testing.TB, env *static.Env, k int, compact bool) *Snapshot {
	t.Helper()
	build := Build
	if compact {
		build = BuildCompact
	}
	s, err := build(env.G, k, env.Landmarks)
	if err != nil {
		t.Fatalf("snapshot build (compact=%v): %v", compact, err)
	}
	return s
}

// TestSnapshotMatchesLegacy pins the snapshot to the lazily computed
// state it replaces: every vicinity set and every landmark-tree path must
// be identical to what the per-instance caches produce.
func TestSnapshotMatchesLegacy(t *testing.T) {
	env := buildEnv(t, 192, 7)
	k := vicinity.DefaultK(env.N())
	s := mustBuild(t, env, k, false)

	if s.K() != k {
		t.Fatalf("K: got %d want %d", s.K(), k)
	}
	for v := 0; v < env.N(); v++ {
		want := vicinity.BuildOne(env.G, graph.NodeID(v), k)
		got := s.Vicinity(graph.NodeID(v))
		if got.Src != want.Src || got.Size() != want.Size() || got.Radius() != want.Radius() {
			t.Fatalf("vicinity %d: header mismatch", v)
		}
		for i, e := range want.Entries {
			if got.Entries[i] != e {
				t.Fatalf("vicinity %d entry %d: got %+v want %+v", v, i, got.Entries[i], e)
			}
		}
	}

	trees := pathtree.NewCache(env.G, len(env.Landmarks))
	for _, lm := range env.Landmarks {
		if !s.HasTree(lm) {
			t.Fatalf("missing tree for landmark %d", lm)
		}
		want := trees.Tree(lm)
		for v := 0; v < env.N(); v += 7 {
			gotFrom := s.PathFrom(lm, graph.NodeID(v))
			wantFrom := want.PathFrom(graph.NodeID(v))
			if len(gotFrom) != len(wantFrom) {
				t.Fatalf("PathFrom(%d,%d): len %d want %d", lm, v, len(gotFrom), len(wantFrom))
			}
			for i := range gotFrom {
				if gotFrom[i] != wantFrom[i] {
					t.Fatalf("PathFrom(%d,%d)[%d]: got %d want %d", lm, v, i, gotFrom[i], wantFrom[i])
				}
			}
			gotTo := s.PathTo(lm, graph.NodeID(v))
			wantTo := want.PathTo(graph.NodeID(v))
			for i := range gotTo {
				if gotTo[i] != wantTo[i] {
					t.Fatalf("PathTo(%d,%d)[%d]: got %d want %d", lm, v, i, gotTo[i], wantTo[i])
				}
			}
		}
	}
	for v := 0; v < env.N(); v++ {
		if s.HasTree(graph.NodeID(v)) != env.IsLM[v] {
			t.Fatalf("HasTree(%d) = %v, IsLM = %v", v, s.HasTree(graph.NodeID(v)), env.IsLM[v])
		}
	}
}

// TestCompactMatchesExact pins the compact encoding to the exact regime:
// member IDs, parents and every landmark-tree path round-trip exactly;
// distances round-trip through float32 (lossless here — the test topology
// has unit weights, so distances are small integers).
func TestCompactMatchesExact(t *testing.T) {
	env := buildEnv(t, 192, 7)
	k := vicinity.DefaultK(env.N())
	exact := mustBuild(t, env, k, false)
	compact := mustBuild(t, env, k, true)
	if !compact.Compact() || exact.Compact() {
		t.Fatal("Compact() regime flags wrong")
	}

	for v := 0; v < env.N(); v++ {
		want := exact.Vicinity(graph.NodeID(v))
		got := compact.Vicinity(graph.NodeID(v))
		if got.Src != want.Src || got.Size() != want.Size() {
			t.Fatalf("vicinity %d: header mismatch", v)
		}
		for i, e := range want.Entries {
			ge := got.Entries[i]
			if ge.Node != e.Node || ge.Parent != e.Parent {
				t.Fatalf("vicinity %d entry %d: got %+v want %+v", v, i, ge, e)
			}
			if ge.Dist != float64(float32(e.Dist)) {
				t.Fatalf("vicinity %d entry %d: dist %v is not float32(%v)", v, i, ge.Dist, e.Dist)
			}
		}
		if got.Radius() != float64(float32(want.Radius())) {
			t.Fatalf("vicinity %d: radius %v want float32(%v)", v, got.Radius(), want.Radius())
		}
	}

	// The materialization-free membership probe must agree with the full
	// set in both regimes, including the just-outside-the-window IDs a
	// sequential delta scan is most likely to misjudge.
	for v := 0; v < env.N(); v += 3 {
		set := exact.Vicinity(graph.NodeID(v))
		for w := -1; w <= env.N(); w++ {
			want := set.Contains(graph.NodeID(w))
			if got := compact.VicinityContains(graph.NodeID(v), graph.NodeID(w)); got != want {
				t.Fatalf("compact VicinityContains(%d,%d)=%v want %v", v, w, got, want)
			}
			if got := exact.VicinityContains(graph.NodeID(v), graph.NodeID(w)); got != want {
				t.Fatalf("exact VicinityContains(%d,%d)=%v want %v", v, w, got, want)
			}
		}
	}

	for _, lm := range env.Landmarks {
		for v := 0; v < env.N(); v++ {
			if gp, wp := compact.Parent(lm, graph.NodeID(v)), exact.Parent(lm, graph.NodeID(v)); gp != wp {
				t.Fatalf("Parent(%d,%d): got %d want %d", lm, v, gp, wp)
			}
		}
		for v := 0; v < env.N(); v += 5 {
			got := compact.PathFrom(lm, graph.NodeID(v))
			want := exact.PathFrom(lm, graph.NodeID(v))
			if len(got) != len(want) {
				t.Fatalf("PathFrom(%d,%d): len %d want %d", lm, v, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("PathFrom(%d,%d)[%d]: got %d want %d", lm, v, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBuildDisconnected is the error path the old Build hid behind a panic
// inside a worker goroutine: both regimes must reject a disconnected graph
// with a diagnosable error before any fan-out crashes the process.
func TestBuildDisconnected(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.Finalize()
	for _, build := range []struct {
		name string
		fn   func(*graph.Graph, int, []graph.NodeID) (*Snapshot, error)
	}{{"exact", Build}, {"compact", BuildCompact}} {
		t.Run(build.name, func(t *testing.T) {
			s, err := build.fn(g, 3, []graph.NodeID{0})
			if err == nil {
				t.Fatal("Build on a disconnected graph must return an error")
			}
			if s != nil {
				t.Fatal("failed Build must return a nil snapshot")
			}
			if !strings.Contains(err.Error(), "components") {
				t.Errorf("error should name the component count: %v", err)
			}
		})
	}
}

// TestBuildSingleNode exercises the degenerate boundary (n=1, k=1, the
// node its own landmark) in both regimes.
func TestBuildSingleNode(t *testing.T) {
	g := graph.New(1)
	g.Finalize()
	for _, compact := range []bool{false, true} {
		build := Build
		if compact {
			build = BuildCompact
		}
		s, err := build(g, 1, []graph.NodeID{0})
		if err != nil {
			t.Fatalf("compact=%v: %v", compact, err)
		}
		set := s.Vicinity(0)
		if set.Size() != 1 || !set.Contains(0) || set.Dist(0) != 0 {
			t.Fatalf("compact=%v: vicinity of the only node wrong: %+v", compact, set.Entries)
		}
		if p := s.Parent(0, 0); p != graph.None {
			t.Fatalf("compact=%v: root parent = %d, want None", compact, p)
		}
	}
}

// TestBuildZeroK pins the k=0 boundary: both regimes must return a
// snapshot with empty vicinities (no worker panic on the empty window).
func TestBuildZeroK(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.Finalize()
	for _, compact := range []bool{false, true} {
		build := Build
		if compact {
			build = BuildCompact
		}
		s, err := build(g, 0, []graph.NodeID{0})
		if err != nil {
			t.Fatalf("compact=%v: %v", compact, err)
		}
		if got := s.Vicinity(1); got.Size() != 0 || got.Contains(1) {
			t.Errorf("compact=%v: k=0 vicinity should be empty, got %d entries", compact, got.Size())
		}
	}
}

// bytesPerNode builds the snapshot for a G(n,m) environment and returns
// its shared footprint per node.
func bytesPerNode(t testing.TB, n int, seed int64, compact bool) float64 {
	env := buildEnv(t, n, seed)
	s := mustBuild(t, env, vicinity.DefaultK(n), compact)
	return float64(s.Bytes()) / float64(n)
}

// TestSnapshotBytesSublinear is the memory-regression guard: snapshot
// bytes per node must grow like the paper's Θ(√(n log n)) state bound,
// not Θ(n), in both storage regimes. A linear-state regression (e.g.
// accidentally storing full trees per node) multiplies bytes/node by
// n2/n1 = 16 between the probed sizes; the √(n log n) law predicts ~4.9x.
// The test rejects anything past halfway to linear.
func TestSnapshotBytesSublinear(t *testing.T) {
	const n1, n2 = 256, 4096
	for _, regime := range []struct {
		name    string
		compact bool
	}{{"exact", false}, {"compact", true}} {
		t.Run(regime.name, func(t *testing.T) {
			b1 := bytesPerNode(t, n1, 1, regime.compact)
			b2 := bytesPerNode(t, n2, 1, regime.compact)
			ratio := b2 / b1
			sqrtLaw := math.Sqrt(float64(n2) * math.Log2(float64(n2)) / (float64(n1) * math.Log2(float64(n1))))
			linear := float64(n2) / float64(n1)
			t.Logf("bytes/node: n=%d %.0f, n=%d %.0f, ratio %.2f (√(n log n) law %.2f, linear %.0f)", n1, b1, n2, b2, ratio, sqrtLaw, linear)
			if ratio > sqrtLaw*1.75 {
				t.Errorf("bytes/node grew %.2fx from n=%d to n=%d; √(n log n) predicts %.2fx — snapshot state is no longer compact", ratio, n1, n2, sqrtLaw)
			}
			if ratio > linear/2 {
				t.Errorf("bytes/node growth %.2fx is within 2x of linear (%.0fx) — Θ(n) state regression", ratio, linear)
			}
		})
	}
}

// TestCompactReduction is the tentpole's acceptance bar: at the standard
// n=4096 probe the compact encoding must undercut the exact footprint by
// at least 40%.
func TestCompactReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: builds two n=4096 snapshots")
	}
	const n = 4096
	env := buildEnv(t, n, 1)
	k := vicinity.DefaultK(n)
	exact := mustBuild(t, env, k, false)
	compact := mustBuild(t, env, k, true)
	eb, cb := exact.Bytes(), compact.Bytes()
	reduction := 1 - float64(cb)/float64(eb)
	t.Logf("n=%d: exact %.0f bytes/node, compact %.0f bytes/node (%.1f%% reduction)",
		n, float64(eb)/n, float64(cb)/n, 100*reduction)
	if reduction < 0.40 {
		t.Errorf("compact encoding saves only %.1f%% at n=%d; the regime promises >= 40%%", 100*reduction, n)
	}
}

// BenchmarkSnapshotMemory records the snapshot's shared bytes/node and
// build cost at the standard probe sizes in both storage regimes. The
// bytes/node metric is the number the ROADMAP's -full feasibility estimate
// scales up from.
func BenchmarkSnapshotMemory(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		env := buildEnv(b, n, 1)
		k := vicinity.DefaultK(n)
		for _, regime := range []struct {
			name    string
			compact bool
		}{{"exact", false}, {"compact", true}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, regime.name), func(b *testing.B) {
				var s *Snapshot
				for i := 0; i < b.N; i++ {
					s = mustBuild(b, env, k, regime.compact)
				}
				b.ReportMetric(float64(s.Bytes())/float64(n), "bytes/node")
			})
		}
	}
}
