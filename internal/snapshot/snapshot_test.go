package snapshot

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/pathtree"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

func buildEnv(t testing.TB, n int, seed int64) *static.Env {
	t.Helper()
	g := topology.GnmAvgDeg(rand.New(rand.NewSource(seed)), n, 8)
	return static.NewEnv(g, seed)
}

// TestSnapshotMatchesLegacy pins the snapshot to the lazily computed
// state it replaces: every vicinity set and every landmark-tree path must
// be identical to what the per-instance caches produce.
func TestSnapshotMatchesLegacy(t *testing.T) {
	env := buildEnv(t, 192, 7)
	k := vicinity.DefaultK(env.N())
	s := Build(env.G, k, env.Landmarks)

	if s.K() != k {
		t.Fatalf("K: got %d want %d", s.K(), k)
	}
	for v := 0; v < env.N(); v++ {
		want := vicinity.BuildOne(env.G, graph.NodeID(v), k)
		got := s.Vicinity(graph.NodeID(v))
		if got.Src != want.Src || got.Size() != want.Size() || got.Radius() != want.Radius() {
			t.Fatalf("vicinity %d: header mismatch", v)
		}
		for i, e := range want.Entries {
			if got.Entries[i] != e {
				t.Fatalf("vicinity %d entry %d: got %+v want %+v", v, i, got.Entries[i], e)
			}
		}
	}

	trees := pathtree.NewCache(env.G, len(env.Landmarks))
	for _, lm := range env.Landmarks {
		if !s.HasTree(lm) {
			t.Fatalf("missing tree for landmark %d", lm)
		}
		want := trees.Tree(lm)
		for v := 0; v < env.N(); v += 7 {
			gotFrom := s.PathFrom(lm, graph.NodeID(v))
			wantFrom := want.PathFrom(graph.NodeID(v))
			if len(gotFrom) != len(wantFrom) {
				t.Fatalf("PathFrom(%d,%d): len %d want %d", lm, v, len(gotFrom), len(wantFrom))
			}
			for i := range gotFrom {
				if gotFrom[i] != wantFrom[i] {
					t.Fatalf("PathFrom(%d,%d)[%d]: got %d want %d", lm, v, i, gotFrom[i], wantFrom[i])
				}
			}
			gotTo := s.PathTo(lm, graph.NodeID(v))
			wantTo := want.PathTo(graph.NodeID(v))
			for i := range gotTo {
				if gotTo[i] != wantTo[i] {
					t.Fatalf("PathTo(%d,%d)[%d]: got %d want %d", lm, v, i, gotTo[i], wantTo[i])
				}
			}
		}
	}
	for v := 0; v < env.N(); v++ {
		if s.HasTree(graph.NodeID(v)) != env.IsLM[v] {
			t.Fatalf("HasTree(%d) = %v, IsLM = %v", v, s.HasTree(graph.NodeID(v)), env.IsLM[v])
		}
	}
}

// bytesPerNode builds the snapshot for a G(n,m) environment and returns
// its shared footprint per node.
func bytesPerNode(t testing.TB, n int, seed int64) float64 {
	env := buildEnv(t, n, seed)
	s := Build(env.G, vicinity.DefaultK(n), env.Landmarks)
	return float64(s.Bytes()) / float64(n)
}

// TestSnapshotBytesSublinear is the memory-regression guard: snapshot
// bytes per node must grow like the paper's Θ(√(n log n)) state bound,
// not Θ(n). A linear-state regression (e.g. accidentally storing full
// trees per node) multiplies bytes/node by n2/n1 = 16 between the probed
// sizes; the √(n log n) law predicts ~4.9x. The test rejects anything
// past halfway to linear.
func TestSnapshotBytesSublinear(t *testing.T) {
	const n1, n2 = 256, 4096
	b1 := bytesPerNode(t, n1, 1)
	b2 := bytesPerNode(t, n2, 1)
	ratio := b2 / b1
	sqrtLaw := math.Sqrt(float64(n2) * math.Log2(float64(n2)) / (float64(n1) * math.Log2(float64(n1))))
	linear := float64(n2) / float64(n1)
	t.Logf("bytes/node: n=%d %.0f, n=%d %.0f, ratio %.2f (√(n log n) law %.2f, linear %.0f)", n1, b1, n2, b2, ratio, sqrtLaw, linear)
	if ratio > sqrtLaw*1.75 {
		t.Errorf("bytes/node grew %.2fx from n=%d to n=%d; √(n log n) predicts %.2fx — snapshot state is no longer compact", ratio, n1, n2, sqrtLaw)
	}
	if ratio > linear/2 {
		t.Errorf("bytes/node growth %.2fx is within 2x of linear (%.0fx) — Θ(n) state regression", ratio, linear)
	}
}

// BenchmarkSnapshotMemory records the snapshot's shared bytes/node and
// build cost at the standard probe sizes. The bytes/node metric is the
// number the ROADMAP's -full feasibility estimate scales up from.
func BenchmarkSnapshotMemory(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			env := buildEnv(b, n, 1)
			k := vicinity.DefaultK(n)
			b.ResetTimer()
			var s *Snapshot
			for i := 0; i < b.N; i++ {
				s = Build(env.G, k, env.Landmarks)
			}
			b.ReportMetric(float64(s.Bytes())/float64(n), "bytes/node")
		})
	}
}
