// The shard store: the uniform storage layer beneath a Snapshot. Every
// unit of route state the repair pipeline, the fold threshold, and the
// forwarding tables' invalidation already reason about — one vicinity
// window per node, one forest parent row per landmark — is a *shard*, and
// a shardStore is the thing that holds one full generation of shards in
// some physical layout. Two implementations exist: exactStore (flat
// slices, see snapshot.go) and compactStore (bit-packed blobs, see
// compact.go, optionally mmapped from a spill file, see spill.go).
//
// A Snapshot is then always the same sandwich regardless of regime:
//
//	reads -> overlay chain (this chain segment's repaired shards)
//	      -> shardStore    (the shared base generation)
//
// The overlay is a linked chain of per-event deltas instead of one flat
// map so that chaining an event costs O(its blast radius), not O(the
// accumulated overlay): finishRepair pushes a new link holding only the
// event's recomputed shards and never copies the older links (they are
// shared, immutable, with the previous snapshots that still read them).
// To keep reads O(log) and retained duplicates bounded, pushOverlay
// greedily absorbs older links into the new one while they are no larger
// than twice the growing new link — the classic LSM merge shape. The
// invariant after every push is that adjacent links grow by more than 2x
// going older, so the chain depth is logarithmic in the overlay size and
// the total retained entries stay under twice the distinct-shard count.
// When the distinct count crosses foldOverlayFraction of the store's
// shards, the whole sandwich is folded into a fresh store (repair.go).
package snapshot

import (
	"disco/internal/graph"
	"disco/internal/vicinity"
)

// shardStore is one generation of base route state addressed by shard:
// vicinity windows keyed by owner node, forest rows keyed by row index.
// Implementations are immutable after construction and safe for
// concurrent readers; everything a store returns is shared and read-only.
type shardStore interface {
	// windowSet returns V(v) as a Set — a shared view where the layout
	// allows (exact), a freshly decoded private copy where it does not
	// (compact).
	windowSet(v graph.NodeID) *vicinity.Set
	// windowLen returns the member count of V(v) without materializing it.
	windowLen(v graph.NodeID) int
	// windowRadius returns V(v)'s stored radius — exactly the value
	// windowSet(v).Radius() would report — without materializing the
	// window. The recovery probe loop rides on this.
	windowRadius(v graph.NodeID) float64
	// windowContains reports w ∈ V(v) without materializing the window.
	windowContains(v, w graph.NodeID) bool
	// rowParent reads one parent field of forest row `row`.
	rowParent(row int, v graph.NodeID) graph.NodeID
	// rowFlat returns row `row` as a flat n-length parent array when the
	// layout already stores it that way, nil otherwise.
	rowFlat(row int) []graph.NodeID
	// decodeRow returns row `row` as a flat n-length parent array
	// unconditionally — shared where possible, decoded in one sequential
	// pass otherwise.
	decodeRow(row int) []graph.NodeID
	// storeBytes is the store's backing footprint for Snapshot.Bytes
	// (mmapped bytes included: a spilled blob is still address space the
	// snapshot owns, just not heap).
	storeBytes() int64
	// spillFile returns the mmapped spill backing this store, nil when the
	// storage lives on the heap.
	spillFile() *spillFile
}

// exactStore is the exact regime's shard store: all vicinity entries in
// one contiguous slice with per-node offsets, landmark trees as flat
// parent rows. Reads allocate nothing.
type exactStore struct {
	n       int
	entries []vicinity.Entry
	off     []int
	sets    []vicinity.Set
	parents []graph.NodeID
}

func (st *exactStore) windowSet(v graph.NodeID) *vicinity.Set { return &st.sets[v] }
func (st *exactStore) windowLen(v graph.NodeID) int           { return st.off[v+1] - st.off[v] }
func (st *exactStore) windowRadius(v graph.NodeID) float64    { return st.sets[v].Radius() }
func (st *exactStore) windowContains(v, w graph.NodeID) bool  { return st.sets[v].Contains(w) }

func (st *exactStore) rowParent(row int, v graph.NodeID) graph.NodeID {
	return st.parents[row*st.n+int(v)]
}

func (st *exactStore) rowFlat(row int) []graph.NodeID {
	return st.parents[row*st.n : (row+1)*st.n : (row+1)*st.n]
}

func (st *exactStore) decodeRow(row int) []graph.NodeID { return st.rowFlat(row) }

func (st *exactStore) storeBytes() int64 {
	return int64(len(st.entries))*entryBytes +
		int64(len(st.off))*offBytes +
		int64(len(st.sets))*setBytes +
		int64(len(st.parents))*nodeBytes
}

func (st *exactStore) spillFile() *spillFile { return nil }

// overlay is one link of a snapshot's repaired-shard chain: the vicinity
// windows and forest rows some event (or a merge of adjacent events)
// recomputed. Links are immutable once a snapshot holds them — a chained
// child may absorb a link it is about to shadow only inside pushOverlay,
// before the new link is published. Reads walk newest to oldest; first
// hit wins.
type overlay struct {
	prev *overlay
	vic  map[graph.NodeID]*vicinity.Set
	rows map[int][]graph.NodeID
	// shards counts the DISTINCT shards across this link and every older
	// one — the union, i.e. the logical overlay size the fold threshold
	// and OverlayShards speak. Retained entries may exceed it (a newer
	// link shadowing an older one), bounded under 2x by the merge
	// invariant.
	shards int
}

// size returns the entries held by this single link.
func (o *overlay) size() int { return len(o.vic) + len(o.rows) }

// findVic returns the newest overlaid window for v, walking the chain.
// Nil-receiver safe: a snapshot with no overlay just misses.
func (o *overlay) findVic(v graph.NodeID) (*vicinity.Set, bool) {
	for ; o != nil; o = o.prev {
		if set, ok := o.vic[v]; ok {
			return set, true
		}
	}
	return nil, false
}

// findRow returns the newest overlaid parent row for `row`.
func (o *overlay) findRow(row int) ([]graph.NodeID, bool) {
	for ; o != nil; o = o.prev {
		if prow, ok := o.rows[row]; ok {
			return prow, true
		}
	}
	return nil, false
}

// pushOverlay chains one event's recomputed shards (vic, rows — ownership
// transfers to the overlay) onto prev, which is left untouched and stays
// valid for the snapshots already holding it. Older links no larger than
// twice the growing new link are absorbed into it (newest entry wins), so
// per-event work is O(blast radius) amortized, chain depth stays
// logarithmic, and retained duplicates stay under one extra copy of the
// distinct-shard union.
func pushOverlay(prev *overlay, vic map[graph.NodeID]*vicinity.Set, rows map[int][]graph.NodeID) *overlay {
	o := &overlay{prev: prev, vic: vic, rows: rows}
	for o.prev != nil && o.prev.size() <= 2*o.size() {
		p := o.prev
		for v, set := range p.vic {
			if _, ok := o.vic[v]; !ok {
				o.vic[v] = set
			}
		}
		for row, prow := range p.rows {
			if _, ok := o.rows[row]; !ok {
				o.rows[row] = prow
			}
		}
		o.prev = p.prev
	}
	o.shards = o.size()
	if o.prev != nil {
		o.shards = o.prev.shards
		//disco:orderinvariant findVic is a pure chain lookup; the loop only counts members
		for v := range o.vic {
			if _, ok := o.prev.findVic(v); !ok {
				o.shards++
			}
		}
		//disco:orderinvariant findRow is a pure chain lookup; the loop only counts members
		for row := range o.rows {
			if _, ok := o.prev.findRow(row); !ok {
				o.shards++
			}
		}
	}
	return o
}
