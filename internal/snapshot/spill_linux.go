//go:build linux

package snapshot

import (
	"os"
	"syscall"
)

// mapFile writes the given byte parts back to back into a fresh temp file
// under dir and returns a shared read-only mapping of the whole file. The
// file is unlinked before returning: the mapping is the only thing
// keeping the inode alive, so teardown is munmap and nothing else.
func mapFile(dir string, parts ...[]byte) ([]byte, error) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	tmp, err := os.CreateTemp(dir, "snap-*.shards")
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp.Name())
	defer tmp.Close()
	for _, p := range parts {
		if _, err := tmp.Write(p); err != nil {
			return nil, err
		}
	}
	return syscall.Mmap(int(tmp.Fd()), 0, total, syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile tears down a mapFile mapping.
func unmapFile(data []byte) {
	if len(data) > 0 {
		_ = syscall.Munmap(data)
	}
}
