package snapshot

import (
	"unsafe"

	"disco/internal/graph"
	"disco/internal/vicinity"
)

// Element sizes derived from the live struct layouts with unsafe.Sizeof,
// so the footprint report cannot silently drift when an encoding change
// reshapes an entry — the accounting bug the old hardcoded 16/40-byte
// constants invited.
const (
	entryBytes = int64(unsafe.Sizeof(vicinity.Entry{}))
	setBytes   = int64(unsafe.Sizeof(vicinity.Set{}))
	nodeBytes  = int64(unsafe.Sizeof(graph.NodeID(0)))
	int32Bytes = int64(unsafe.Sizeof(int32(0)))
	offBytes   = int64(unsafe.Sizeof(int(0)))
	off64Bytes = int64(unsafe.Sizeof(int64(0)))
	f32Bytes   = int64(unsafe.Sizeof(float32(0)))
)

// Bytes returns the snapshot's backing-array footprint in bytes — the
// shared cost that replaces every worker's private caches, in whichever
// storage regime the snapshot was built, plus every overlay link this
// chained snapshot reaches (recomputed windows as exact entry slices,
// recomputed forest rows as plain parent arrays). Links are summed as
// held, duplicates across links included — this is the retained-heap
// measure the chain-bound test caps, and the geometric overlay merge is
// what keeps it within a constant factor of the distinct-shard union.
// Spilled base storage still counts: the mapping consumes address space
// and, once touched, page cache; what -spill buys is reclaimability under
// memory pressure, not a smaller Bytes. Used by the memory-regression
// benchmark, the chain-bound test and the -memprofile report.
func (s *Snapshot) Bytes() int64 {
	total := int64(len(s.landmarks))*nodeBytes + int64(len(s.lmRow))*int32Bytes +
		int64(len(s.short))*nodeBytes
	rowBytes := int64(s.g.N()) * nodeBytes
	for o := s.ov; o != nil; o = o.prev {
		for _, set := range o.vic {
			total += setBytes + int64(len(set.Entries))*entryBytes
		}
		total += int64(len(o.rows)) * rowBytes
	}
	return total + s.store.storeBytes()
}
