package snapshot

import (
	"unsafe"

	"disco/internal/graph"
	"disco/internal/vicinity"
)

// Element sizes derived from the live struct layouts with unsafe.Sizeof,
// so the footprint report cannot silently drift when an encoding change
// reshapes an entry — the accounting bug the old hardcoded 16/40-byte
// constants invited.
const (
	entryBytes = int64(unsafe.Sizeof(vicinity.Entry{}))
	setBytes   = int64(unsafe.Sizeof(vicinity.Set{}))
	nodeBytes  = int64(unsafe.Sizeof(graph.NodeID(0)))
	int32Bytes = int64(unsafe.Sizeof(int32(0)))
	offBytes   = int64(unsafe.Sizeof(int(0)))
	off64Bytes = int64(unsafe.Sizeof(int64(0)))
)

// Bytes returns the snapshot's backing-array footprint in bytes — the
// shared cost that replaces every worker's private caches, in whichever
// storage regime the snapshot was built, plus the repair overlay a
// chained snapshot privately owns (recomputed windows as exact entry
// slices, recomputed forest rows as plain parent arrays). Used by the
// memory-regression benchmark, the chain-bound test and the -memprofile
// report.
func (s *Snapshot) Bytes() int64 {
	common := int64(len(s.landmarks))*nodeBytes + int64(len(s.lmRow))*int32Bytes +
		int64(len(s.short))*nodeBytes
	if s.rep != nil {
		for _, set := range s.rep.vic {
			common += setBytes + int64(len(set.Entries))*entryBytes
		}
		common += int64(len(s.rep.rows)) * int64(s.g.N()) * nodeBytes
	}
	if s.compact {
		return common +
			int64(len(s.vicBlob)) +
			int64(len(s.vicOff))*off64Bytes +
			int64(len(s.vicLen))*int32Bytes +
			int64(len(s.forest)) +
			int64(len(s.degOff))*off64Bytes
	}
	return common +
		int64(len(s.entries))*entryBytes +
		int64(len(s.off))*offBytes +
		int64(len(s.sets))*setBytes +
		int64(len(s.parents))*nodeBytes
}
