// Package snapshot precomputes, once and in parallel, the immutable
// read-only route state that every experiment used to re-derive per worker:
// vicinity sets and landmark-rooted shortest-path trees (which also serve
// the resolution owners — owners are landmarks). A Snapshot is built after
// the environment converges and never mutated; protocol Fork() views share
// it by pointer, so worker-private state shrinks to counters and small
// scratch buffers instead of private vicinity maps and tree caches.
//
// Layout is flat and index-addressed: all vicinity entries live in one
// contiguous []vicinity.Entry with per-node offsets (replacing
// map[graph.NodeID]*vicinity.Set), and landmark trees are parent rows in
// one contiguous []graph.NodeID (PathFrom/PathTo need only parents; exact
// distances for arbitrary roots stay with the callers' Dijkstra scratch,
// keeping the snapshot at Θ(√(n log n)) bytes per node). Reads allocate
// nothing beyond the returned path slices.
//
// Immutability contract: everything reachable from a Snapshot is read-only
// after Build returns. Callers must not modify returned sets, entries or
// paths-backing arrays; Vicinity returns pointers into shared storage.
package snapshot

import (
	"fmt"
	"sort"

	"disco/internal/graph"
	"disco/internal/pathtree"
	"disco/internal/vicinity"
)

// Snapshot is the shared immutable route state of one converged
// environment: the vicinity table of every node and the shortest-path
// forest rooted at every landmark.
type Snapshot struct {
	g *graph.Graph
	k int // vicinity size actually built (clamped to n)

	// Flat vicinity table: node v's entries are entries[off[v]:off[v+1]],
	// sorted by member ID. sets[v] is the ready-made Set view over that
	// window.
	entries []vicinity.Entry
	off     []int
	sets    []vicinity.Set

	// Landmark forest: parents[row*n : (row+1)*n] is the parent array of
	// the tree rooted at landmarks[row]; lmRow maps a node to its row, or
	// -1 when the node is not a landmark.
	landmarks []graph.NodeID
	lmRow     []int32
	parents   []graph.NodeID
}

// Build computes the snapshot for graph g with vicinity size k and the
// given landmark set, fanning both sweeps out over the parallel worker
// pool. Each task writes only its own entry window / tree row, so the
// result is identical at any worker count. The graph must be connected.
func Build(g *graph.Graph, k int, landmarks []graph.NodeID) *Snapshot {
	g.Finalize()
	n := g.N()
	if k > n {
		k = n
	}
	s := &Snapshot{
		g:         g,
		k:         k,
		entries:   make([]vicinity.Entry, n*k),
		off:       make([]int, n+1),
		sets:      make([]vicinity.Set, n),
		landmarks: landmarks,
		lmRow:     make([]int32, n),
		parents:   make([]graph.NodeID, len(landmarks)*n),
	}
	for v := 0; v <= n; v++ {
		s.off[v] = v * k
	}

	// Vicinities: one truncated Dijkstra per node into its own window of
	// the flat table, then sort the window by member ID (the Set order).
	graph.ForEachSource(g, graph.AllNodes(g), func(sp *graph.SSSP, i int, src graph.NodeID) {
		sp.RunK(src, k)
		order := sp.Order()
		if len(order) != k {
			panic(fmt.Sprintf("snapshot: vicinity of %d settled %d of %d nodes (graph disconnected?)", src, len(order), k))
		}
		win := s.entries[s.off[i]:s.off[i+1]]
		for j, w := range order {
			win[j] = vicinity.Entry{Node: w, Parent: sp.Parent(w), Dist: sp.Dist(w)}
		}
		sort.Slice(win, func(a, b int) bool { return win[a].Node < win[b].Node })
		s.sets[i] = vicinity.MakeSet(src, win)
	})

	// Landmark forest: one full Dijkstra per landmark into its parent row.
	for v := range s.lmRow {
		s.lmRow[v] = -1
	}
	for row, lm := range landmarks {
		s.lmRow[lm] = int32(row)
	}
	graph.ForEachSource(g, landmarks, func(sp *graph.SSSP, row int, lm graph.NodeID) {
		sp.Run(lm)
		prow := s.parents[row*n : (row+1)*n]
		for v := 0; v < n; v++ {
			prow[v] = sp.Parent(graph.NodeID(v))
		}
	})
	return s
}

// K returns the vicinity size the table was built with (clamped to n).
func (s *Snapshot) K() int { return s.k }

// Graph returns the graph the snapshot was built over.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Landmarks returns the landmark set (shared slice; do not modify).
func (s *Snapshot) Landmarks() []graph.NodeID { return s.landmarks }

// Vicinity returns V(v) as a view into the shared flat table. The returned
// set is immutable and safe for concurrent readers.
func (s *Snapshot) Vicinity(v graph.NodeID) *vicinity.Set { return &s.sets[v] }

// HasTree reports whether root is a landmark, i.e. whether the snapshot
// holds its shortest-path tree.
func (s *Snapshot) HasTree(root graph.NodeID) bool { return s.lmRow[root] >= 0 }

// parentRow returns the parent array of root's tree; root must be a
// landmark (check HasTree).
func (s *Snapshot) parentRow(root graph.NodeID) []graph.NodeID {
	row := s.lmRow[root]
	if row < 0 {
		panic(fmt.Sprintf("snapshot: node %d is not a landmark", root))
	}
	n := s.g.N()
	return s.parents[int(row)*n : (int(row)+1)*n]
}

// Parent returns v's predecessor on root's shortest-path tree
// (graph.None for the root itself) — the data plane's first hop from v
// toward root; root must be a landmark.
func (s *Snapshot) Parent(root, v graph.NodeID) graph.NodeID {
	return s.parentRow(root)[v]
}

// PathFrom returns v ⇝ root on root's shortest-path tree (both endpoints
// included); root must be a landmark.
func (s *Snapshot) PathFrom(root, v graph.NodeID) []graph.NodeID {
	parent := s.parentRow(root)
	var out []graph.NodeID
	for u := v; u != graph.None; u = parent[u] {
		out = append(out, u)
	}
	return out
}

// PathTo returns root ⇝ v on root's shortest-path tree; root must be a
// landmark.
func (s *Snapshot) PathTo(root, v graph.NodeID) []graph.NodeID {
	out := s.PathFrom(root, v)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TreeView dispatches one protocol fork's shortest-path-tree reads
// between the two cache regimes, so core.NDDisco and s4.S4 share a single
// copy of the regime-selection rule. In the snapshot regime (Snap != nil)
// landmark-rooted paths come from the shared parent rows and everything
// else runs on the fork's reusable Dijkstra scratch; in the legacy regime
// all reads go through the fork's materializing tree cache.
type TreeView struct {
	Snap  *Snapshot       // shared immutable state; nil in the legacy regime
	Dest  *pathtree.Lazy  // per-fork destination scratch (snapshot regime)
	Cache *pathtree.Cache // per-fork materializing cache (legacy regime)
}

// Dist returns d(root, v) from root's shortest-path tree.
func (t TreeView) Dist(root, v graph.NodeID) float64 {
	if t.Snap != nil {
		t.Dest.Bind(root)
		return t.Dest.Dist(v)
	}
	return t.Cache.Tree(root).Dist(v)
}

// PathFrom returns v ⇝ root on root's shortest-path tree.
func (t TreeView) PathFrom(root, v graph.NodeID) []graph.NodeID {
	if t.Snap != nil {
		if t.Snap.HasTree(root) {
			return t.Snap.PathFrom(root, v)
		}
		t.Dest.Bind(root)
		return t.Dest.PathFrom(v)
	}
	return t.Cache.Tree(root).PathFrom(v)
}

// Parent returns v's predecessor on root's shortest-path tree.
func (t TreeView) Parent(root, v graph.NodeID) graph.NodeID {
	if t.Snap != nil {
		if t.Snap.HasTree(root) {
			return t.Snap.Parent(root, v)
		}
		t.Dest.Bind(root)
		return t.Dest.Parent(v)
	}
	return t.Cache.Tree(root).Parent(v)
}

// PathTo returns root ⇝ v on root's shortest-path tree.
func (t TreeView) PathTo(root, v graph.NodeID) []graph.NodeID {
	if t.Snap != nil {
		if t.Snap.HasTree(root) {
			return t.Snap.PathTo(root, v)
		}
		t.Dest.Bind(root)
		return t.Dest.PathTo(v)
	}
	return t.Cache.Tree(root).PathTo(v)
}

// Bytes returns the snapshot's backing-array footprint in bytes — the
// shared cost that replaces every worker's private caches. Used by the
// memory-regression benchmark and the -memprofile report.
func (s *Snapshot) Bytes() int64 {
	const (
		entryBytes = 16 // vicinity.Entry: int32 + int32 + float64
		nodeBytes  = 4  // graph.NodeID
		setBytes   = 40 // vicinity.Set header: id + slice + radius
		offBytes   = 8
	)
	return int64(len(s.entries))*entryBytes +
		int64(len(s.off))*offBytes +
		int64(len(s.sets))*setBytes +
		int64(len(s.parents))*nodeBytes +
		int64(len(s.lmRow))*4
}
