// Package snapshot precomputes, once and in parallel, the immutable
// read-only route state that every experiment used to re-derive per worker:
// vicinity sets and landmark-rooted shortest-path trees (which also serve
// the resolution owners — owners are landmarks). A Snapshot is built after
// the environment converges and never mutated; protocol Fork() views share
// it by pointer, so worker-private state shrinks to counters and small
// scratch buffers instead of private vicinity maps and tree caches.
//
// Storage is organized as a shard store (store.go): every vicinity window
// and forest row is a shard, a shardStore holds one base generation of
// shards, and a Snapshot reads through an overlay chain of repaired
// shards (repair.go) down into that store. Two store implementations
// exist behind one API:
//
//   - Exact (Build): all vicinity entries live in one contiguous
//     []vicinity.Entry with per-node offsets, and landmark trees are parent
//     rows in one contiguous []graph.NodeID. Reads allocate nothing beyond
//     the returned path slices; Vicinity returns pointers into shared
//     storage.
//   - Compact (BuildCompact): the same state bit-packed (see compact.go) at
//     a fraction of the bytes — member IDs delta-coded, parents as window
//     indices, distances quantized to float32, forest parents as port
//     indices. Vicinity reads decode the window into a fresh Set; tree
//     reads decode single parent fields in place. Distances round-trip
//     through float32, so figure output is byte-identical on integer-weight
//     topologies and shifts at most at float32 precision elsewhere; the
//     exact regime remains the escape hatch (and the default) for any
//     figure whose output would move. With a spill directory configured
//     (SetSpillDir), the store's blobs live in an unlinked mmapped file
//     instead of the heap (spill.go), so resident memory tracks the hot
//     shards, not the generation.
//
// Immutability contract: everything reachable from a Snapshot is read-only
// after Build returns. Callers must not modify returned sets, entries or
// paths-backing arrays.
package snapshot

import (
	"fmt"

	"disco/internal/graph"
	"disco/internal/pathtree"
	"disco/internal/vicinity"
)

// Snapshot is the shared immutable route state of one converged
// environment: the vicinity table of every node and the shortest-path
// forest rooted at every landmark. Reads check the repair overlay chain
// (nil on snapshots built from scratch), then fall through to the shard
// store — the base generation shared across a repair chain.
type Snapshot struct {
	g       *graph.Graph
	k       int  // vicinity size actually built (clamped to n)
	compact bool // which store regime the snapshot was built in

	store shardStore
	// sref is this snapshot's counted reference to the store's spill
	// mapping; nil for heap-backed stores. Every snapshot sharing a
	// spilled store holds its own (see spill.go).
	sref *storeRef

	// ov is the repair overlay chain: nil on snapshots built from scratch
	// and on freshly folded chains, newest link first otherwise. All base
	// storage of a repaired snapshot is shared with the chain's base;
	// reads check the chain first.
	ov *overlay

	// Landmark bookkeeping (both regimes): lmRow maps a node to its forest
	// row, or -1 when the node is not a landmark.
	landmarks []graph.NodeID
	lmRow     []int32

	// maxRadius upper-bounds every vicinity window's true (unquantized)
	// radius. ApplyFailures uses it to bound the blast-radius candidate
	// search: u ∈ V(x) implies d(x,u) <= maxRadius.
	maxRadius float64

	// repaired marks snapshots produced by ApplyFailures/ApplyRecoveries
	// (possibly folded); stats is that repair's accounting.
	repaired bool
	stats    RepairStats

	// short lists, ascending, the nodes whose vicinity windows hold fewer
	// than k entries — only possible after repairs of a disconnecting
	// failure. Recovery candidate searches need it: a shortfall window can
	// regain members at any distance, so the maxRadius ball bound does not
	// apply to it. nil on snapshots built from scratch (builds require a
	// connected graph, so every window is full).
	short []graph.NodeID
}

// Build computes the exact-regime snapshot for graph g with vicinity size k
// and the given landmark set, fanning both sweeps out over the parallel
// worker pool. Each task writes only its own entry window / tree row, so
// the result is identical at any worker count. The graph must be connected;
// a disconnected graph returns an error (no worker ever panics mid-pool).
func Build(g *graph.Graph, k int, landmarks []graph.NodeID) (*Snapshot, error) {
	return build(g, k, landmarks, false)
}

// BuildCompact is Build in the compact storage regime: the same route
// state bit-packed to a fraction of the exact footprint (the regime that
// makes paper-scale -full runs fit in memory). Vicinity windows are built
// and encoded shard by shard, so peak transient memory tracks the encoded
// size instead of the 16-byte-per-entry exact table. When a spill
// directory is configured the encoded store is written to an unlinked
// file and mmapped; a failing spill is an error (the caller asked for it
// explicitly).
func BuildCompact(g *graph.Graph, k int, landmarks []graph.NodeID) (*Snapshot, error) {
	return build(g, k, landmarks, true)
}

func build(g *graph.Graph, k int, landmarks []graph.NodeID, compact bool) (*Snapshot, error) {
	g.Finalize()
	n := g.N()
	if k > n {
		k = n
	}
	// Validate connectivity before the fan-out: a disconnected graph must
	// surface as a caller-visible error, never as a panic inside a worker
	// goroutine. The BFS is O(n+m) — noise next to n Dijkstra runs.
	if n > 0 {
		if _, comps := g.Components(); comps != 1 {
			return nil, fmt.Errorf("snapshot: graph has %d connected components; vicinities and landmark trees need a connected graph", comps)
		}
	}
	s := &Snapshot{g: g, k: k, compact: compact, landmarks: landmarks, lmRow: make([]int32, n)}
	for v := range s.lmRow {
		s.lmRow[v] = -1
	}
	for row, lm := range landmarks {
		s.lmRow[lm] = int32(row)
	}
	if compact {
		cs := &compactStore{n: n, k: k, pg: g}
		if err := s.buildCompactVicinities(cs); err != nil {
			return nil, err
		}
		if err := s.buildCompactForest(cs); err != nil {
			return nil, err
		}
		if dir := SpillDir(); dir != "" {
			if err := cs.spillTo(dir); err != nil {
				return nil, err
			}
			if cs.sp != nil {
				s.sref = newStoreRef(cs.sp)
			}
		}
		s.store = cs
	} else {
		st := &exactStore{n: n}
		if err := s.buildExactVicinities(st); err != nil {
			return nil, err
		}
		if err := s.buildExactForest(st); err != nil {
			return nil, err
		}
		s.store = st
	}
	return s, nil
}

// buildExactVicinities fills the flat entry table: one truncated Dijkstra
// per node into its own window, then sort the window by member ID (the Set
// order). Shortfalls (a vicinity that could not settle k nodes) are
// collected per task and reported after the sweep.
func (s *Snapshot) buildExactVicinities(st *exactStore) error {
	n, k := s.g.N(), s.k
	st.entries = make([]vicinity.Entry, n*k)
	st.off = make([]int, n+1)
	st.sets = make([]vicinity.Set, n)
	for v := 0; v <= n; v++ {
		st.off[v] = v * k
	}
	settled := make([]int32, n)
	graph.ForEachSource(s.g, graph.AllNodes(s.g), func(sp *graph.SSSP, i int, src graph.NodeID) {
		sp.RunK(src, k)
		order := sp.Order()
		settled[i] = int32(len(order))
		if len(order) != k {
			return
		}
		win := st.entries[st.off[i]:st.off[i+1]]
		fillWindow(win, sp, order)
		st.sets[i] = vicinity.MakeSet(src, win)
	})
	for i := range st.sets {
		if r := st.sets[i].Radius(); r > s.maxRadius {
			s.maxRadius = r
		}
	}
	return firstShortfall(settled, k)
}

// buildExactForest computes one full Dijkstra per landmark into its parent
// row.
func (s *Snapshot) buildExactForest(st *exactStore) error {
	n := s.g.N()
	st.parents = make([]graph.NodeID, len(s.landmarks)*n)
	settled := make([]int32, len(s.landmarks))
	graph.ForEachSource(s.g, s.landmarks, func(sp *graph.SSSP, row int, lm graph.NodeID) {
		sp.Run(lm)
		settled[row] = int32(len(sp.Order()))
		prow := st.parents[row*n : (row+1)*n]
		for v := 0; v < n; v++ {
			prow[v] = sp.Parent(graph.NodeID(v))
		}
	})
	return forestShortfall(settled, s.landmarks, n)
}

// firstShortfall reports the lowest-indexed vicinity that settled fewer
// than k nodes, or nil. With connectivity pre-validated this is an internal
// invariant check, but it stays an error — never a worker panic.
func firstShortfall(settled []int32, k int) error {
	for v, got := range settled {
		if int(got) != k {
			return fmt.Errorf("snapshot: vicinity of node %d settled %d of %d nodes (graph disconnected?)", v, got, k)
		}
	}
	return nil
}

// forestShortfall is firstShortfall for landmark trees, which must reach
// every node.
func forestShortfall(settled []int32, landmarks []graph.NodeID, n int) error {
	for row, got := range settled {
		if int(got) != n {
			return fmt.Errorf("snapshot: landmark %d reaches %d of %d nodes (graph disconnected?)", landmarks[row], got, n)
		}
	}
	return nil
}

// K returns the vicinity size the table was built with (clamped to n).
func (s *Snapshot) K() int { return s.k }

// Graph returns the graph the snapshot was built over.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Compact reports whether the snapshot uses the compact storage regime.
func (s *Snapshot) Compact() bool { return s.compact }

// Landmarks returns the landmark set (shared slice; do not modify).
func (s *Snapshot) Landmarks() []graph.NodeID { return s.landmarks }

// Vicinity returns V(v). In the exact regime the returned set is a view
// into the shared flat table (allocation-free, safe for concurrent
// readers); in the compact regime it is decoded into a fresh private Set,
// so the call allocates one window but stays safe for concurrent readers.
// Callers that only need membership should prefer VicinityContains, which
// never materializes the window.
func (s *Snapshot) Vicinity(v graph.NodeID) *vicinity.Set {
	if set, ok := s.ov.findVic(v); ok {
		return set
	}
	return s.store.windowSet(v)
}

// VicinityContains reports w ∈ V(v) without materializing the window in
// either regime — the cheap probe the per-hop forwarding checks use, where
// the common answer is "no".
func (s *Snapshot) VicinityContains(v, w graph.NodeID) bool {
	if set, ok := s.ov.findVic(v); ok {
		return set.Contains(w)
	}
	return s.store.windowContains(v, w)
}

// windowMeta returns V(v)'s member count and radius without materializing
// the window in either regime — what the recovery pipeline's per-candidate
// probes run on. The radius is exactly Vicinity(v).Radius().
func (s *Snapshot) windowMeta(v graph.NodeID) (size int, radius float64) {
	if set, ok := s.ov.findVic(v); ok {
		return set.Size(), set.Radius()
	}
	return s.store.windowLen(v), s.store.windowRadius(v)
}

// HasTree reports whether root is a landmark, i.e. whether the snapshot
// holds its shortest-path tree.
func (s *Snapshot) HasTree(root graph.NodeID) bool { return s.lmRow[root] >= 0 }

// row returns root's forest row; root must be a landmark (check HasTree).
func (s *Snapshot) row(root graph.NodeID) int {
	row := s.lmRow[root]
	if row < 0 {
		panic(fmt.Sprintf("snapshot: node %d is not a landmark", root))
	}
	return int(row)
}

// parentAt reads one field of forest row `row`, dispatching between the
// repair overlay (recomputed rows own plain parent arrays) and the shared
// base store. graph.None means v is the root — or, on a repaired row,
// that the failures cut v off from the root entirely (check Reaches).
func (s *Snapshot) parentAt(row int, v graph.NodeID) graph.NodeID {
	if prow, ok := s.ov.findRow(row); ok {
		return prow[v]
	}
	return s.store.rowParent(row, v)
}

// ForestParents returns the parent array of root's shortest-path tree as
// one flat n-length row indexed by node — when the snapshot already stores
// it that way: exact-regime base rows and every repaired-overlay row. In
// the compact regime (no overlay row) it returns nil and callers either
// decode per node via Parent or materialize the row once via
// DecodeForestRow. root must be a landmark. Shared immutable storage;
// do not modify.
func (s *Snapshot) ForestParents(root graph.NodeID) []graph.NodeID {
	row := s.row(root)
	if prow, ok := s.ov.findRow(row); ok {
		return prow
	}
	return s.store.rowFlat(row)
}

// DecodeForestRow returns the full parent row of root's shortest-path
// tree as a flat n-length array unconditionally — shared by reference
// where the snapshot already stores it flat (see ForestParents), decoded
// in one sequential pass over the bit stream otherwise (compact regime).
// root must be a landmark. Treat the result as read-only.
func (s *Snapshot) DecodeForestRow(root graph.NodeID) []graph.NodeID {
	row := s.row(root)
	if prow, ok := s.ov.findRow(row); ok {
		return prow
	}
	return s.store.decodeRow(row)
}

// Parent returns v's predecessor on root's shortest-path tree
// (graph.None for the root itself) — the data plane's first hop from v
// toward root; root must be a landmark. On a repaired snapshot, None is
// also returned when the failures disconnected v from root (Reaches
// distinguishes the two).
func (s *Snapshot) Parent(root, v graph.NodeID) graph.NodeID {
	return s.parentAt(s.row(root), v)
}

// Reaches reports whether root's shortest-path tree still reaches v. On a
// snapshot built from scratch this is always true (builds require a
// connected graph); on a repaired snapshot it is the deliverability check
// forwarding performs before committing to a landmark leg.
func (s *Snapshot) Reaches(root, v graph.NodeID) bool {
	row := s.row(root)
	return v == root || s.parentAt(row, v) != graph.None
}

// PathFrom returns v ⇝ root on root's shortest-path tree (both endpoints
// included); root must be a landmark. On a repaired snapshot callers must
// check Reaches(root, v) first: an unreachable v yields a meaningless
// single-node path.
func (s *Snapshot) PathFrom(root, v graph.NodeID) []graph.NodeID {
	row := s.row(root)
	var out []graph.NodeID
	for u := v; u != graph.None; u = s.parentAt(row, u) {
		out = append(out, u)
	}
	return out
}

// PathTo returns root ⇝ v on root's shortest-path tree; root must be a
// landmark.
func (s *Snapshot) PathTo(root, v graph.NodeID) []graph.NodeID {
	out := s.PathFrom(root, v)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TreeView dispatches one protocol fork's shortest-path-tree reads
// between the two cache regimes, so core.NDDisco and s4.S4 share a single
// copy of the regime-selection rule. In the snapshot regime (Snap != nil)
// landmark-rooted paths come from the shared parent rows and everything
// else runs on the fork's reusable Dijkstra scratch; in the legacy regime
// all reads go through the fork's materializing tree cache.
type TreeView struct {
	Snap  *Snapshot       // shared immutable state; nil in the legacy regime
	Dest  *pathtree.Lazy  // per-fork destination scratch (snapshot regime)
	Cache *pathtree.Cache // per-fork materializing cache (legacy regime)
}

// Dist returns d(root, v) from root's shortest-path tree.
func (t TreeView) Dist(root, v graph.NodeID) float64 {
	if t.Snap != nil {
		t.Dest.Bind(root)
		return t.Dest.Dist(v)
	}
	return t.Cache.Tree(root).Dist(v)
}

// PathFrom returns v ⇝ root on root's shortest-path tree.
func (t TreeView) PathFrom(root, v graph.NodeID) []graph.NodeID {
	if t.Snap != nil {
		if t.Snap.HasTree(root) {
			return t.Snap.PathFrom(root, v)
		}
		t.Dest.Bind(root)
		return t.Dest.PathFrom(v)
	}
	return t.Cache.Tree(root).PathFrom(v)
}

// Parent returns v's predecessor on root's shortest-path tree.
func (t TreeView) Parent(root, v graph.NodeID) graph.NodeID {
	if t.Snap != nil {
		if t.Snap.HasTree(root) {
			return t.Snap.Parent(root, v)
		}
		t.Dest.Bind(root)
		return t.Dest.Parent(v)
	}
	return t.Cache.Tree(root).Parent(v)
}

// PathTo returns root ⇝ v on root's shortest-path tree.
func (t TreeView) PathTo(root, v graph.NodeID) []graph.NodeID {
	if t.Snap != nil {
		if t.Snap.HasTree(root) {
			return t.Snap.PathTo(root, v)
		}
		t.Dest.Bind(root)
		return t.Dest.PathTo(v)
	}
	return t.Cache.Tree(root).PathTo(v)
}
