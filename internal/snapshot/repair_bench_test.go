package snapshot

import (
	"fmt"
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/vicinity"
)

// benchRegimes runs fn once per storage regime under a b.Run group.
func benchRegimes(b *testing.B, fn func(b *testing.B, compact bool)) {
	for _, regime := range []struct {
		name    string
		compact bool
	}{{"exact", false}, {"compact", true}} {
		b.Run(regime.name, func(b *testing.B) { fn(b, regime.compact) })
	}
}

// drawFailable returns count distinct non-bridge links of s's topology,
// deterministically — each one can fail alone without disconnecting, so a
// benchmark can fail any one of them per iteration against the same base.
func drawFailable(b *testing.B, s *Snapshot, count int, seed int64) []graph.EdgeKey {
	b.Helper()
	g := s.Graph()
	bridges := g.Bridges()
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[graph.EdgeKey]bool)
	var keys []graph.EdgeKey
	for try := 0; len(keys) < count && try < 100000; try++ {
		u := graph.NodeID(rng.Intn(g.N()))
		es := g.Neighbors(u)
		if len(es) == 0 {
			continue
		}
		e := es[rng.Intn(len(es))]
		if bridges[e.EID] {
			continue
		}
		key := (graph.EdgeKey{U: u, V: e.To}).Norm()
		if seen[key] {
			continue
		}
		seen[key] = true
		keys = append(keys, key)
	}
	if len(keys) < count {
		b.Fatalf("only drew %d of %d failable links", len(keys), count)
	}
	return keys
}

// BenchmarkApplyFailures measures one single-link failure repair on a
// built n=4096 snapshot — the per-event cost the continuous-dynamics
// engine pays — in both regimes, cycling through pre-drawn links so no
// two consecutive iterations repair the identical blast radius.
func BenchmarkApplyFailures(b *testing.B) {
	const n = 4096
	env := buildEnv(b, n, 1)
	k := vicinity.DefaultK(n)
	benchRegimes(b, func(b *testing.B, compact bool) {
		base := mustBuild(b, env, k, compact)
		keys := drawFailable(b, base, 64, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := base.ApplyFailures([]graph.EdgeKey{keys[i%len(keys)]})
			if err != nil {
				b.Fatal(err)
			}
			_ = rep
		}
	})
}

// BenchmarkApplyRecoveries measures the dual: restoring a failed link
// into an n=4096 snapshot. Each iteration recovers on the same one-link-
// down snapshot, so the measured work is one recovery's blast radius.
func BenchmarkApplyRecoveries(b *testing.B) {
	const n = 4096
	env := buildEnv(b, n, 1)
	k := vicinity.DefaultK(n)
	benchRegimes(b, func(b *testing.B, compact bool) {
		base := mustBuild(b, env, k, compact)
		key := drawFailable(b, base, 1, 3)[0]
		w := env.G.EdgeWeight(key.U, key.V)
		failed, err := base.ApplyFailures([]graph.EdgeKey{key})
		if err != nil {
			b.Fatal(err)
		}
		restore := []graph.WeightedLink{{U: key.U, V: key.V, W: w}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := failed.ApplyRecoveries(restore)
			if err != nil {
				b.Fatal(err)
			}
			_ = rep
		}
	})
}

// BenchmarkChainFold measures folding a chained n=4096 snapshot's overlay
// into fresh base storage — the compaction cost a long timeline amortizes
// over foldOverlayFraction×shards worth of events. The overlay being
// folded is a real accumulated chain (driven until just under the
// threshold), not a synthetic one.
func BenchmarkChainFold(b *testing.B) {
	const n = 4096
	env := buildEnv(b, n, 1)
	k := vicinity.DefaultK(n)
	benchRegimes(b, func(b *testing.B, compact bool) {
		base := mustBuild(b, env, k, compact)
		keys := drawFailable(b, base, 64, 4)
		cur := base
		total := n + len(env.Landmarks)
		for i := 0; i < len(keys); i++ {
			next, err := cur.ApplyFailures([]graph.EdgeKey{keys[i]})
			if err != nil {
				b.Fatal(err)
			}
			if next.RepairStats().Folded {
				break // keep cur: the largest pre-fold overlay we can get
			}
			cur = next
			if float64(cur.OverlayShards()) > 0.8*foldOverlayFraction*float64(total) {
				break
			}
		}
		if cur.OverlayShards() == 0 {
			b.Fatal("chain accumulated no overlay to fold")
		}
		b.ReportMetric(float64(cur.OverlayShards()), "overlay-shards")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := cur.fold()
			f.ReleaseStorage()
		}
	})
}

// BenchmarkRepairChainAge is the regression guard for the incremental
// overlay refactor: per-event repair cost (time and allocations) must
// track the event's blast radius, not how much overlay the chain has
// accumulated. Before the refactor, finishRepair re-copied the whole
// accumulated overlay map into every child, so an event on an aged chain
// allocated O(chain age); now it pushes an O(blast radius) link. Compare
// age=0 vs age=48 lines: allocs/op should be of the same order, not
// monotonically growing with age.
func BenchmarkRepairChainAge(b *testing.B) {
	const n = 1024
	env := buildEnv(b, n, 1)
	k := vicinity.DefaultK(n)
	for _, age := range []int{0, 48} {
		b.Run(fmt.Sprintf("age=%d", age), func(b *testing.B) {
			base := mustBuild(b, env, k, false)
			keys := drawFailable(b, base, age+64, 5)
			cur := base
			for i := 0; i < age; i++ {
				next, err := cur.ApplyFailures([]graph.EdgeKey{keys[i]})
				if err != nil {
					b.Fatal(err)
				}
				cur = next
			}
			// Keep a fold out of the measured loop: probes chain one event
			// onto cur, so leave margin below the compaction threshold.
			total := float64(env.N() + len(env.Landmarks))
			if float64(cur.OverlayShards()) > 0.6*foldOverlayFraction*total {
				cur = cur.fold()
			}
			b.ReportMetric(float64(cur.OverlayShards()), "overlay-shards")
			probe := keys[age:]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := cur.ApplyFailures([]graph.EdgeKey{probe[i%len(probe)]})
				if err != nil {
					b.Fatal(err)
				}
				_ = rep
			}
		})
	}
}
