package snapshot

import (
	"bytes"
	"math/rand"
	"testing"

	"disco/internal/parallel"
	"disco/internal/vicinity"
)

// TestRepairWorkerInvariance is the determinism half of the shard-parallel
// repair contract: the same interleaved fail/recover sequence must produce
// CanonicalBytes-identical snapshots at every step regardless of worker
// count — every fan-out in the pipeline (ball searches, window recomputes,
// row classification, fold encoders) merges in task order, so workers only
// change wall-clock, never bytes. Runs both storage regimes across enough
// steps to cross at least one chain fold.
func TestRepairWorkerInvariance(t *testing.T) {
	workerCounts := []int{1, 4, 16}
	for _, compact := range []bool{false, true} {
		name := "exact"
		if compact {
			name = "compact"
		}
		t.Run(name, func(t *testing.T) {
			env := buildEnv(t, 256, 23)
			k := vicinity.DefaultK(env.N())
			t.Cleanup(func() { parallel.SetWorkers(0) })

			const steps = 30
			// canon[w][step] is the post-step CanonicalBytes under worker
			// count workerCounts[w]; the whole drive (including the base
			// build) runs under that count.
			canon := make([][][]byte, len(workerCounts))
			folds := make([]int, len(workerCounts))
			for w, workers := range workerCounts {
				parallel.SetWorkers(workers)
				base := mustBuild(t, env, k, compact)
				d := newChainDriver(base)
				rng := rand.New(rand.NewSource(97))
				canon[w] = make([][]byte, steps)
				for step := 0; step < steps; step++ {
					if step%3 == 2 && len(d.down) > 0 {
						d.recoverOne(t, rng)
					} else {
						d.failOne(t, rng, true)
					}
					canon[w][step] = d.cur.CanonicalBytes()
					if d.cur.RepairStats().Folded {
						folds[w]++
					}
				}
			}
			for w := 1; w < len(workerCounts); w++ {
				if folds[w] != folds[0] {
					t.Errorf("workers=%d folded %d times, workers=%d folded %d times",
						workerCounts[w], folds[w], workerCounts[0], folds[0])
				}
				for step := 0; step < steps; step++ {
					if !bytes.Equal(canon[w][step], canon[0][step]) {
						t.Fatalf("step %d: CanonicalBytes differ between workers=%d and workers=%d",
							step, workerCounts[w], workerCounts[0])
					}
				}
			}
			if folds[0] == 0 {
				t.Error("sequence never folded; lengthen it so invariance covers the fold path")
			}
		})
	}
}
