package snapshot

import (
	"sync"
	"testing"
)

// handleSnap builds a tiny placeholder snapshot for handle lifetime tests
// (the handle never dereferences it, identity is all that matters).
func handleSnap() *Snapshot { return &Snapshot{} }

func TestHandleLifetime(t *testing.T) {
	s := handleSnap()
	retired := 0
	h := NewHandle(s, 7, func() { retired++ })
	if h.Epoch() != 7 {
		t.Fatalf("Epoch = %d, want 7", h.Epoch())
	}
	if h.Snapshot() != s {
		t.Fatal("Snapshot does not return the wrapped snapshot")
	}
	if h.Refs() != 1 {
		t.Fatalf("initial refs = %d, want 1", h.Refs())
	}
	if !h.TryRetain() {
		t.Fatal("TryRetain on a live handle must succeed")
	}
	h.Retain()
	if h.Refs() != 3 {
		t.Fatalf("refs = %d, want 3", h.Refs())
	}
	h.Release()
	h.Release()
	if retired != 0 {
		t.Fatal("onZero fired while references remain")
	}
	h.Release() // the publisher's reference: count hits zero
	if retired != 1 {
		t.Fatalf("onZero fired %d times, want exactly once", retired)
	}
	//disco:retained probe: success here is itself the test failure, t.Fatal does not return
	if h.TryRetain() {
		t.Fatal("TryRetain on a reclaimed handle must fail")
	}
}

func TestHandleReclaimSeversSnapshot(t *testing.T) {
	h := NewHandle(handleSnap(), 0, nil)
	h.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot on a reclaimed handle must panic")
		}
	}()
	h.Snapshot()
}

func TestHandleReleaseBelowZeroPanics(t *testing.T) {
	h := NewHandle(handleSnap(), 0, nil)
	h.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Release below zero must panic")
		}
	}()
	h.Release()
}

// TestHandleConcurrentRetainRelease hammers TryRetain/Release from many
// goroutines against a publisher-style final release, asserting the hook
// fires exactly once and no retain succeeds afterwards. Run under -race
// in CI.
func TestHandleConcurrentRetainRelease(t *testing.T) {
	var mu sync.Mutex
	retired := 0
	h := NewHandle(handleSnap(), 3, func() {
		mu.Lock()
		retired++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if h.TryRetain() {
					_ = h.Snapshot() // must stay valid inside the critical section
					h.Release()
				}
			}
		}()
	}
	h.Release() // publisher retires the epoch concurrently
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if retired != 1 {
		t.Fatalf("onZero fired %d times, want exactly once", retired)
	}
	//disco:retained probe: success here is itself the test failure, t.Fatal does not return
	if h.TryRetain() {
		t.Fatal("TryRetain after reclamation must fail")
	}
}
