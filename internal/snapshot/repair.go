// Incremental snapshot repair: ApplyFailures turns an immutable snapshot
// plus a set of failed links into a new snapshot of the failed topology by
// recomputing only the affected region, sharing everything else with the
// parent copy-on-write; ApplyRecoveries is its dual, restoring links and
// repairing the same blast radius in reverse. Repair cost then tracks the
// event's blast radius instead of n — the property that makes continuous
// churn affordable at the paper-scale sizes the compact encoding unlocked.
//
// What "affected" means is exact, not heuristic, and rests on facts about
// the deterministic Dijkstra in internal/graph (strict-improvement parent
// updates, ties broken by node ID):
//
//   - Failures: a vicinity window V(x) changes only if some failed link has
//     BOTH endpoints inside the window (a link with one endpoint settled was
//     only ever relaxed toward an unsettled node; with both outside it was
//     never relaxed). A forest row changes only if some failed link is a
//     TREE edge of that row — a removed non-tree link never supplied a final
//     parent, and removing relaxations cannot steal a tie.
//   - Recoveries: a full window V(x) changes only if the new state routes
//     through the restored link, which puts BOTH endpoints within the
//     window's radius of x on the recovered topology — so a maxRadius
//     Dijkstra ball around each endpoint, intersected per link, encloses
//     every candidate. A shortfall window (fewer than k members, i.e. a
//     disconnected region) can regain members at any distance, so every
//     shortfall window in a component containing a restored endpoint is a
//     candidate too. A forest row needs a full recompute only if the link
//     reconnects the tree (one endpoint reachable, one not) or strictly
//     shortens one endpoint's distance; the remaining case — an exact
//     distance tie, ubiquitous on unit-weight topologies — can steal at
//     most the tie node's parent, which is patched in place using the
//     settle-order rule (first-settled candidate wins).
//
// The pipeline is shard-parallel end to end over internal/parallel with
// task-ordered merges — ball searches, window recomputes, per-row
// classification, diff accounting, and both fold encoders all fan out, and
// every merge happens in task index order — so the result is bit-identical
// at any worker count.
//
// Chains compose: a repaired snapshot can be repaired or recovered again.
// Two mechanisms keep a long repair-of-repair chain from leaking history:
//
//   - Incremental overlays: a chained snapshot holds the chain base's
//     shard store plus a linked overlay chain (store.go) whose newest link
//     is this event's blast radius — never a full copy of the accumulated
//     overlay, and never a pointer to the previous snapshot — so chaining
//     an event costs O(blast radius) and dropping intermediate snapshots
//     really frees their uniquely-held links.
//   - Compaction: when the overlay's distinct-shard count exceeds
//     foldOverlayFraction of the snapshot's shards, the chain is folded
//     into a fresh base-format store (both regimes), an O(state) re-encode
//     with no Dijkstra. CanonicalBytes is invariant under folding, so
//     chained equivalence with a from-scratch build holds at every step.
//
// Unlike Build/BuildCompact, ApplyFailures does NOT require the failed
// topology to stay connected — that is the point of failure scenarios.
// Repaired vicinity windows may hold fewer than k entries and repaired
// forest rows mark cut-off nodes with graph.None (see Reaches); on a
// still-connected topology the repaired snapshot is byte-identical (in
// CanonicalBytes form) to a from-scratch rebuild.
package snapshot

import (
	"fmt"
	"math"
	"sort"

	"disco/internal/graph"
	"disco/internal/parallel"
	"disco/internal/vicinity"
)

// foldOverlayFraction is the compaction threshold: once a chained repair's
// overlay holds distinct shards exceeding this fraction of the snapshot's
// shard count, the chain is folded into fresh base storage. One-shot
// repairs of a built snapshot never fold (their overlay dies with them);
// only chains pay the fold.
const foldOverlayFraction = 0.25

// RepairStats reports what one ApplyFailures/ApplyRecoveries call
// recomputed versus shared. "Shards" are the snapshot's repair units:
// per-node vicinity windows and per-landmark forest rows.
type RepairStats struct {
	FailedLinks   int  // deduplicated links removed by this repair
	RestoredLinks int  // deduplicated links restored by this recovery
	VicRebuilt    int  // vicinity windows recomputed
	VicTotal      int  // = n
	RowsRebuilt   int  // landmark forest rows fully recomputed
	RowsPatched   int  // forest rows fixed by a single-parent tie patch
	RowsTotal     int  // = number of landmarks
	Candidates    int  // nodes scanned by the blast-radius candidate search
	Folded        bool // the chain overlay hit the compaction threshold

	// The changed-state measure the message model prices: recomputing a
	// shard is this layer's cost, but a distributed protocol only pays
	// messages for routes that actually changed. VicChanged counts
	// recomputed windows that differ from the pre-event state,
	// VicEntriesChanged the per-entry symmetric difference (withdrawn +
	// announced routes), and RowNodesChanged the forest parent fields that
	// moved (tie patches included).
	VicChanged        int
	VicEntriesChanged int
	RowNodesChanged   int

	// The event's touched-shard lists — the exact invalidation set a
	// derived structure compiled from the parent snapshot (forwarding
	// tables, caches) must recompile; every shard not listed here is
	// byte-identical between the parent and this snapshot, folds included.
	// VicTouched lists, ascending, the nodes whose vicinity windows this
	// event recomputed; RowsTouched the forest rows recomputed or
	// tie-patched. Shared slices; do not modify.
	VicTouched  []graph.NodeID
	RowsTouched []int
}

// ShardsRebuilt returns the fraction of shards this repair fully
// recomputed — the blast-radius cost measure the repair-equivalence test
// bounds. A zero-shard snapshot (no nodes, no landmarks) reports 0, not
// NaN. Tie-patched rows are not counted: a patch rewrites one parent
// field, not a shard.
func (st *RepairStats) ShardsRebuilt() float64 {
	total := st.VicTotal + st.RowsTotal
	if total == 0 {
		return 0
	}
	return float64(st.VicRebuilt+st.RowsRebuilt) / float64(total)
}

// Repaired reports whether this snapshot was produced by ApplyFailures or
// ApplyRecoveries (possibly folded).
func (s *Snapshot) Repaired() bool { return s.repaired }

// RepairStats returns the statistics of the repair that produced this
// snapshot, or nil for snapshots built from scratch.
func (s *Snapshot) RepairStats() *RepairStats {
	if !s.repaired {
		return nil
	}
	return &s.stats
}

// OverlayShards returns the number of distinct shards (vicinity windows
// plus forest rows) held by this snapshot's repair overlay chain — the
// working-set cost of the chain beyond its shared base. 0 for snapshots
// built from scratch and for freshly folded chains. The compaction
// contract bounds it below foldOverlayFraction of the shard count plus one
// event's blast radius, which the long-chain test asserts.
func (s *Snapshot) OverlayShards() int {
	if s.ov == nil {
		return 0
	}
	return s.ov.shards
}

// Shortfalls returns, ascending, the nodes whose vicinity windows hold
// fewer than k entries (shared slice; do not modify). Non-empty only after
// a disconnecting failure whose regions have not all recovered.
func (s *Snapshot) Shortfalls() []graph.NodeID { return s.short }

// ApplyFailures returns a snapshot of this snapshot's topology minus the
// given links, recomputing only the vicinity windows and forest rows the
// failures can affect and sharing every untouched shard with s (which
// stays valid and immutable — restoring a flapped link is free: route on
// the parent again). Links are deduplicated; a link that does not exist is
// an error. The result may describe a disconnected topology: windows
// shrink below k and forest rows lose nodes (Reaches reports which), so
// delivery ratio — not an error — is how experiments observe partitions.
// Chains compose: a repaired snapshot can be repaired again.
func (s *Snapshot) ApplyFailures(fails []graph.EdgeKey) (*Snapshot, error) {
	n := s.g.N()
	dead := make([]bool, s.g.M())
	uniq := make([]graph.EdgeKey, 0, len(fails))
	for _, f := range fails {
		f = f.Norm()
		if f.U == f.V || f.U < 0 || int(f.V) >= n {
			return nil, fmt.Errorf("snapshot: invalid link %d-%d", f.U, f.V)
		}
		id := s.g.EdgeID(f.U, f.V)
		if id < 0 {
			return nil, fmt.Errorf("snapshot: no link %d-%d to fail", f.U, f.V)
		}
		if dead[id] {
			continue
		}
		dead[id] = true
		uniq = append(uniq, f)
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("snapshot: ApplyFailures needs at least one link")
	}
	fg := s.g.WithoutEdges(dead)

	affVic, scanned := s.affectedVicinities(uniq)
	wins := recomputeWindows(fg, affVic, s.k, s.compact)

	// Row classification: a row is affected iff some failed link is one of
	// its tree edges. Task-ordered merge keeps affRows ascending.
	rowHit := parallel.Map(len(s.landmarks), func(row int) bool {
		for _, f := range uniq {
			if s.parentAt(row, f.U) == f.V || s.parentAt(row, f.V) == f.U {
				return true
			}
		}
		return false
	})
	var affRows []int
	for row, hit := range rowHit {
		if hit {
			affRows = append(affRows, row)
		}
	}
	affLms := make([]graph.NodeID, len(affRows))
	for i, row := range affRows {
		affLms[i] = s.landmarks[row]
	}
	prows := make([][]graph.NodeID, len(affRows))
	graph.ForEachSource(fg, affLms, func(sp *graph.SSSP, i int, lm graph.NodeID) {
		sp.Run(lm)
		prow := make([]graph.NodeID, n)
		for v := 0; v < n; v++ {
			prow[v] = sp.Parent(graph.NodeID(v))
		}
		prows[i] = prow
	})
	newRows := make(map[int][]graph.NodeID, len(affRows))
	for i, row := range affRows {
		newRows[row] = prows[i]
	}

	return s.finishRepair(fg, affVic, wins, newRows, RepairStats{
		FailedLinks: len(uniq),
		VicRebuilt:  len(affVic),
		VicTotal:    n,
		RowsRebuilt: len(affRows),
		RowsTotal:   len(s.landmarks),
		Candidates:  scanned,
	}), nil
}

// ApplyRecoveries returns a snapshot of this snapshot's topology plus the
// given restored links — the dual of ApplyFailures, repairing the same
// blast radius in reverse. Each restored link must not currently exist
// (restore what failed, with the weight the failed graph no longer
// records); links are deduplicated and a negative weight is an error. On a
// connected result the recovered snapshot is byte-identical (in
// CanonicalBytes form) to a from-scratch build of the recovered topology.
func (s *Snapshot) ApplyRecoveries(restores []graph.WeightedLink) (*Snapshot, error) {
	n := s.g.N()
	seen := make(map[graph.EdgeKey]bool, len(restores))
	uniq := make([]graph.WeightedLink, 0, len(restores))
	for _, r := range restores {
		key := (graph.EdgeKey{U: r.U, V: r.V}).Norm()
		if key.U == key.V || key.U < 0 || int(key.V) >= n {
			return nil, fmt.Errorf("snapshot: invalid link %d-%d", r.U, r.V)
		}
		if r.W < 0 {
			return nil, fmt.Errorf("snapshot: negative weight %v on restored link %d-%d", r.W, r.U, r.V)
		}
		if s.g.EdgeID(key.U, key.V) >= 0 {
			return nil, fmt.Errorf("snapshot: link %d-%d is already alive", key.U, key.V)
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, graph.WeightedLink{U: key.U, V: key.V, W: r.W})
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("snapshot: ApplyRecoveries needs at least one link")
	}
	// Canonical restore order, so identical link sets produce identical
	// graphs (and so identical snapshots) regardless of caller ordering.
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].U != uniq[j].U {
			return uniq[i].U < uniq[j].U
		}
		return uniq[i].V < uniq[j].V
	})
	ng := s.g.WithEdges(uniq)

	affVic, scanned := s.recoveryVicinities(uniq, ng)
	wins := recomputeWindows(ng, affVic, s.k, s.compact)
	newRows, full, patched := s.recoveryRows(uniq, ng)

	return s.finishRepair(ng, affVic, wins, newRows, RepairStats{
		RestoredLinks: len(uniq),
		VicRebuilt:    len(affVic),
		VicTotal:      n,
		RowsRebuilt:   full,
		RowsPatched:   patched,
		RowsTotal:     len(s.landmarks),
		Candidates:    scanned,
	}), nil
}

// diffWindows returns the symmetric difference between two vicinity
// windows (both sorted by member ID), counting removed members, added
// members, and members whose parent or distance moved — the withdrawals
// plus announcements a triggered protocol would send for this window.
func diffWindows(old, new []vicinity.Entry) int {
	d, i, j := 0, 0, 0
	for i < len(old) && j < len(new) {
		switch {
		case old[i].Node < new[j].Node:
			d++ // withdrawn
			i++
		case old[i].Node > new[j].Node:
			d++ // announced
			j++
		default:
			if old[i].Parent != new[j].Parent || old[i].Dist != new[j].Dist {
				d++
			}
			i++
			j++
		}
	}
	return d + (len(old) - i) + (len(new) - j)
}

// repairedWindow is one recomputed vicinity window plus its unquantized
// radius bound (kept so maxRadius stays a valid candidate-search bound for
// future repairs even in the compact regime).
type repairedWindow struct {
	set   *vicinity.Set
	bound float64
}

// recomputeWindows rebuilds the given vicinity windows on graph g with one
// truncated Dijkstra each, over the worker pool. In the compact regime the
// distances round through float32, mirroring what a fresh BuildCompact
// would store.
func recomputeWindows(g *graph.Graph, affVic []graph.NodeID, k int, compact bool) []repairedWindow {
	return parallel.MapScratch(len(affVic),
		func() *graph.SSSP { return graph.NewSSSP(g) },
		func(sp *graph.SSSP, i int) repairedWindow {
			src := affVic[i]
			sp.RunK(src, k)
			order := sp.Order()
			win := make([]vicinity.Entry, len(order))
			fillWindow(win, sp, order)
			bound := windowBound(win)
			if compact {
				for j := range win {
					win[j].Dist = float64(float32(win[j].Dist))
				}
			}
			set := vicinity.MakeSet(src, win)
			return repairedWindow{set: &set, bound: bound}
		})
}

// finishRepair assembles the repaired snapshot: the base shard store
// shared by reference, this event's recomputed shards pushed as a new
// overlay link onto the (shared, untouched) previous chain, maxRadius and
// the shortfall list updated, and the chain folded into a fresh store
// when the overlay's distinct-shard count crosses the compaction
// threshold. Per-event cost is O(blast radius), amortized, regardless of
// how much overlay the chain has accumulated.
func (s *Snapshot) finishRepair(ng *graph.Graph, affVic []graph.NodeID, wins []repairedWindow, newRows map[int][]graph.NodeID, stats RepairStats) *Snapshot {
	// Changed-state accounting against the pre-event snapshot, fanned out
	// over the worker pool (order-independent integer sums).
	n := ng.N()
	vicDiffs := parallel.Map(len(affVic), func(i int) int {
		return diffWindows(s.Vicinity(affVic[i]).Entries, wins[i].set.Entries)
	})
	for _, d := range vicDiffs {
		if d > 0 {
			stats.VicChanged++
			stats.VicEntriesChanged += d
		}
	}
	changedRowKeys := make([]int, 0, len(newRows))
	for row := range newRows {
		changedRowKeys = append(changedRowKeys, row)
	}
	sort.Ints(changedRowKeys)
	rowDiffs := parallel.Map(len(changedRowKeys), func(i int) int {
		row, prow := changedRowKeys[i], newRows[changedRowKeys[i]]
		d := 0
		for v := 0; v < n; v++ {
			if s.parentAt(row, graph.NodeID(v)) != prow[v] {
				d++
			}
		}
		return d
	})
	for _, d := range rowDiffs {
		stats.RowNodesChanged += d
	}
	stats.VicTouched = affVic
	stats.RowsTouched = changedRowKeys

	c := &Snapshot{
		g: ng, k: s.k, compact: s.compact,
		store:     s.store,
		landmarks: s.landmarks, lmRow: s.lmRow,
		maxRadius: s.maxRadius,
		repaired:  true, stats: stats,
		short: s.short,
	}
	if s.sref != nil {
		c.sref = newStoreRef(s.sref.f)
	}
	vic := make(map[graph.NodeID]*vicinity.Set, len(affVic))
	for i, v := range affVic {
		vic[v] = wins[i].set
		if wins[i].bound > c.maxRadius {
			c.maxRadius = wins[i].bound
		}
	}
	c.ov = pushOverlay(s.ov, vic, newRows)

	// Shortfall bookkeeping: a recomputed window leaves or (re)enters the
	// list according to its new size.
	if len(s.short) > 0 || len(affVic) > 0 {
		shortSet := make(map[graph.NodeID]bool, len(s.short))
		for _, v := range s.short {
			shortSet[v] = true
		}
		for i, v := range affVic {
			if wins[i].set.Size() < c.k {
				shortSet[v] = true
			} else {
				delete(shortSet, v)
			}
		}
		c.short = make([]graph.NodeID, 0, len(shortSet))
		for v := range shortSet {
			c.short = append(c.short, v)
		}
		sort.Slice(c.short, func(i, j int) bool { return c.short[i] < c.short[j] })
	}

	// Compaction: only chains fold (s already repaired). A one-shot repair
	// of a built snapshot keeps its overlay — it dies with the snapshot.
	if s.repaired {
		total := ng.N() + len(s.landmarks)
		if float64(c.ov.shards) > foldOverlayFraction*float64(total) {
			f := c.fold()
			// c never escapes: drop its spill reference now instead of
			// waiting for the GC safety net.
			c.ReleaseStorage()
			return f
		}
	}
	return c
}

// affectedVicinities returns, sorted, every node whose vicinity window can
// change when the given (deduplicated, existing) links fail, plus how many
// candidate nodes the ball search scanned. A window qualifies iff some
// failed link has both endpoints inside it; candidates are enumerated by a
// bounded Dijkstra ball around each distinct lower endpoint (a superset,
// since u ∈ V(x) forces d(x,u) <= maxRadius), then probed exactly —
// probes run inside the per-ball tasks, and the merge is task-ordered plus
// a final sort, so the result is worker-count invariant.
func (s *Snapshot) affectedVicinities(uniq []graph.EdgeKey) ([]graph.NodeID, int) {
	byU := make(map[graph.NodeID][]graph.NodeID)
	var us []graph.NodeID
	for _, f := range uniq {
		if byU[f.U] == nil {
			us = append(us, f.U)
		}
		byU[f.U] = append(byU[f.U], f.V)
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	// RunRadius settles strictly below its bound, so nudge past maxRadius
	// to include windows whose farthest member sits exactly on it.
	bound := math.Nextafter(s.maxRadius, math.Inf(1))
	type ballResult struct {
		aff     []graph.NodeID
		scanned int
	}
	balls := parallel.MapScratch(len(us),
		func() *graph.SSSP { return graph.NewSSSP(s.g) },
		func(sp *graph.SSSP, i int) ballResult {
			u := us[i]
			sp.RunRadius(u, bound)
			res := ballResult{scanned: len(sp.Order())}
			for _, x := range sp.Order() {
				if !s.VicinityContains(x, u) {
					continue
				}
				for _, v := range byU[u] {
					if s.VicinityContains(x, v) {
						res.aff = append(res.aff, x)
						break
					}
				}
			}
			return res
		})
	seen := make(map[graph.NodeID]bool)
	var aff []graph.NodeID
	scanned := 0
	for _, b := range balls {
		scanned += b.scanned
		for _, x := range b.aff {
			if !seen[x] {
				seen[x] = true
				aff = append(aff, x)
			}
		}
	}
	sort.Slice(aff, func(i, j int) bool { return aff[i] < aff[j] })
	return aff, scanned
}

// recoveryVicinities returns, sorted, every node whose vicinity window can
// change when the given (deduplicated, sorted, nonexistent) links are
// restored, plus the candidate count scanned. A full window V(x) changes
// only if the new state routes through a restored link, which places BOTH
// endpoints within V(x)'s own radius of x on the recovered graph ng — so
// a maxRadius Dijkstra ball around each endpoint encloses all candidates,
// and the per-window radius probe prunes the enclosure down to windows the
// link can actually reach (the probe that keeps a recovery's recompute set
// blast-radius-sized instead of ball-sized). Both the ball searches and
// the per-link probe sweeps fan out over the worker pool; the probes read
// per-window size and radius off the store (windowMeta) without decoding,
// and the merge dedups in task order then sorts, so the result is
// worker-count invariant. Shortfall windows instead qualify whenever any
// restored endpoint sits in their component: reconnection admits new
// members at any distance.
func (s *Snapshot) recoveryVicinities(uniq []graph.WeightedLink, ng *graph.Graph) ([]graph.NodeID, int) {
	epSet := make(map[graph.NodeID]bool, 2*len(uniq))
	var eps []graph.NodeID
	for _, r := range uniq {
		for _, x := range [2]graph.NodeID{r.U, r.V} {
			if !epSet[x] {
				epSet[x] = true
				eps = append(eps, x)
			}
		}
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
	bound := math.Nextafter(s.maxRadius, math.Inf(1))
	balls := parallel.MapScratch(len(eps),
		func() *graph.SSSP { return graph.NewSSSP(ng) },
		func(sp *graph.SSSP, i int) map[graph.NodeID]float64 {
			sp.RunRadius(eps[i], bound)
			m := make(map[graph.NodeID]float64, len(sp.Order()))
			for _, x := range sp.Order() {
				m[x] = sp.Dist(x)
			}
			return m
		})
	ballOf := make(map[graph.NodeID]map[graph.NodeID]float64, len(eps))
	scanned := 0
	for i, b := range balls {
		ballOf[eps[i]] = b
		scanned += len(b)
	}
	k := s.k
	cands := parallel.Map(len(uniq), func(i int) []graph.NodeID {
		r := uniq[i]
		bu, bv := ballOf[r.U], ballOf[r.V]
		if len(bv) < len(bu) {
			bu, bv = bv, bu
		}
		var out []graph.NodeID
		//disco:orderinvariant per-candidate order is absorbed: the merged affected set is sorted before return
		for x, du := range bu {
			dv, ok := bv[x]
			if !ok {
				continue
			}
			size, rad := s.windowMeta(x)
			if size < k {
				continue // shortfall windows: component rule below
			}
			if s.compact {
				rad = float64(math.Nextafter32(float32(rad), float32(math.Inf(1))))
			}
			if du <= rad && dv <= rad {
				out = append(out, x)
			}
		}
		return out
	})
	seen := make(map[graph.NodeID]bool)
	var aff []graph.NodeID
	add := func(x graph.NodeID) {
		if !seen[x] {
			seen[x] = true
			aff = append(aff, x)
		}
	}
	for _, c := range cands {
		for _, x := range c {
			add(x)
		}
	}
	if len(s.short) > 0 {
		labels, _ := s.g.Components()
		epLabels := make(map[int32]bool, len(eps))
		for _, x := range eps {
			epLabels[labels[x]] = true
		}
		for _, v := range s.short {
			if epLabels[labels[v]] {
				add(v)
			}
		}
	}
	sort.Slice(aff, func(i, j int) bool { return aff[i] < aff[j] })
	return aff, scanned
}

// settlesBefore reports whether a node at Dijkstra distance d1 settles
// before one at d2 — the (distance, node ID) pop order every tree in this
// repository is built with.
func settlesBefore(d1 float64, n1 graph.NodeID, d2 float64, n2 graph.NodeID) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return n1 < n2
}

// rowDist returns v's Dijkstra distance from forest row `row`'s landmark,
// re-accumulated root→leaf along the tree path in exactly the addition
// order the Dijkstra used (d[child] = d[parent] + w), so comparisons
// against it reproduce the original float results bit for bit. v must be
// reachable on the row.
func (s *Snapshot) rowDist(row int, v graph.NodeID) float64 {
	var chain []graph.NodeID
	for u := v; u != graph.None; u = s.parentAt(row, u) {
		chain = append(chain, u)
	}
	d := 0.0
	for i := len(chain) - 1; i > 0; i-- {
		w := s.g.EdgeWeight(chain[i], chain[i-1])
		if w < 0 {
			panic(fmt.Sprintf("snapshot: forest row %d holds dead tree edge %d-%d", row, chain[i], chain[i-1]))
		}
		d += w
	}
	return d
}

// rowPatch is one tie-patch candidate: v's parent may change to p, whose
// Dijkstra distance from the row's landmark is d.
type rowPatch struct {
	v graph.NodeID
	p graph.NodeID
	d float64
}

// rowClass is one forest row's classification against a recovery's
// restored links: full recompute, tie patches, or untouched.
type rowClass struct {
	isFull  bool
	patches []rowPatch
}

// recoveryRows computes the forest-row updates for a recovery: rows the
// restored links reconnect or strictly shorten are fully recomputed on ng;
// rows where a restored link only ties an existing distance get the tie
// node's parent patched to the first-settled candidate (the deterministic
// Dijkstra's choice) without any recomputation. Per-row classification
// fans out over the worker pool (each row's verdict is independent) and
// merges in row order. Returns the new rows plus the full-recompute and
// patched-row counts.
func (s *Snapshot) recoveryRows(uniq []graph.WeightedLink, ng *graph.Graph) (rows map[int][]graph.NodeID, full, patched int) {
	n := s.g.N()
	classes := parallel.Map(len(s.landmarks), func(row int) rowClass {
		lm := s.landmarks[row]
		var cl rowClass
		for _, r := range uniq {
			u, v, w := r.U, r.V, r.W
			ru := u == lm || s.parentAt(row, u) != graph.None
			rv := v == lm || s.parentAt(row, v) != graph.None
			if ru != rv {
				return rowClass{isFull: true} // the link reconnects part of the tree
			}
			if !ru {
				continue // both endpoints cut off: the link can't reach lm
			}
			du, dv := s.rowDist(row, u), s.rowDist(row, v)
			if du+w < dv || dv+w < du {
				return rowClass{isFull: true} // strict improvement: distances shift
			}
			if du+w == dv && v != lm && settlesBefore(du, u, dv, v) {
				cl.patches = append(cl.patches, rowPatch{v: v, p: u, d: du})
			} else if dv+w == du && u != lm && settlesBefore(dv, v, du, u) {
				cl.patches = append(cl.patches, rowPatch{v: u, p: v, d: dv})
			}
		}
		return cl
	})
	var fullRows []int
	patchesByRow := make(map[int][]rowPatch)
	for row, cl := range classes {
		if cl.isFull {
			fullRows = append(fullRows, row)
		} else if len(cl.patches) > 0 {
			patchesByRow[row] = cl.patches
		}
	}

	rows = make(map[int][]graph.NodeID, len(fullRows)+len(patchesByRow))
	affLms := make([]graph.NodeID, len(fullRows))
	for i, row := range fullRows {
		affLms[i] = s.landmarks[row]
	}
	prows := make([][]graph.NodeID, len(fullRows))
	graph.ForEachSource(ng, affLms, func(sp *graph.SSSP, i int, lm graph.NodeID) {
		sp.Run(lm)
		prow := make([]graph.NodeID, n)
		for v := 0; v < n; v++ {
			prow[v] = sp.Parent(graph.NodeID(v))
		}
		prows[i] = prow
	})
	for i, row := range fullRows {
		rows[row] = prows[i]
	}

	//disco:orderinvariant rows are independent; each iteration writes only rows[row] and a count
	for row, ps := range patchesByRow {
		// Fold multiple candidates per node to the earliest-settling one,
		// then let it contest the row's current parent.
		best := make(map[graph.NodeID]rowPatch, len(ps))
		for _, pc := range ps {
			cur, ok := best[pc.v]
			if !ok || settlesBefore(pc.d, pc.p, cur.d, cur.p) {
				best[pc.v] = pc
			}
		}
		var prow []graph.NodeID
		//disco:orderinvariant patches write prow[v] only; the fold to best already picked the first-settler per node
		for v, pc := range best {
			p0 := s.parentAt(row, v)
			if !settlesBefore(pc.d, pc.p, s.rowDist(row, p0), p0) {
				continue // the incumbent parent settles first: no change
			}
			if prow == nil {
				prow = make([]graph.NodeID, n)
				for x := 0; x < n; x++ {
					prow[x] = s.parentAt(row, graph.NodeID(x))
				}
			}
			prow[v] = pc.p
		}
		if prow != nil {
			rows[row] = prow
			patched++
		}
	}
	return rows, len(fullRows), patched
}

// fold materializes the chain's logical route state into a fresh
// base-format shard store in the snapshot's own regime — an O(state)
// re-encode with no shortest-path work — and drops the overlay chain. The
// folded snapshot reads and serializes identically (CanonicalBytes is
// computed from logical state), keeps the repair stats of the step that
// triggered the fold, and its compact forest rows re-index the current
// graph's adjacency.
func (s *Snapshot) fold() *Snapshot {
	f := &Snapshot{
		g: s.g, k: s.k, compact: s.compact,
		landmarks: s.landmarks, lmRow: s.lmRow,
		maxRadius: s.maxRadius, short: s.short,
		repaired: true, stats: s.stats,
	}
	f.stats.Folded = true
	if s.compact {
		s.foldCompactInto(f)
	} else {
		s.foldExactInto(f)
	}
	return f
}

// foldExactInto rebuilds the exact regime's flat arrays from the chain's
// logical state. Offsets are variable-width: shortfall windows keep their
// reduced size.
func (s *Snapshot) foldExactInto(f *Snapshot) {
	n := s.g.N()
	st := &exactStore{n: n}
	off := make([]int, n+1)
	for v := 0; v < n; v++ {
		size, _ := s.windowMeta(graph.NodeID(v))
		off[v+1] = off[v] + size
	}
	entries := make([]vicinity.Entry, off[n])
	sets := make([]vicinity.Set, n)
	parallel.Run(n, func(v int) {
		src := graph.NodeID(v)
		win := entries[off[v]:off[v+1]]
		copy(win, s.Vicinity(src).Entries)
		sets[v] = vicinity.MakeSet(src, win)
	})
	parents := make([]graph.NodeID, len(s.landmarks)*n)
	parallel.Run(len(s.landmarks), func(row int) {
		prow := parents[row*n : (row+1)*n]
		src, ok := s.ov.findRow(row)
		if !ok {
			src = s.store.rowFlat(row)
		}
		copy(prow, src)
	})
	st.entries, st.off, st.sets, st.parents = entries, off, sets, parents
	f.store = st
}

// CanonicalBytes serializes the snapshot's logical route state — every
// vicinity window entry and every forest parent, as node IDs and float64
// distance bits — in a storage-independent canonical form. Two snapshots
// agree here iff they hold identical route state, regardless of how it is
// laid out (exact flat arrays, compact bit-packing, spilled or in-heap, a
// repair overlay chain, or a folded one); this is the byte-identity the
// repair- and chain-equivalence tests assert against a from-scratch build
// of the current topology.
func (s *Snapshot) CanonicalBytes() []byte {
	n := s.g.N()
	var buf []byte
	put32 := func(x uint32) {
		buf = append(buf, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	put64 := func(x uint64) {
		put32(uint32(x))
		put32(uint32(x >> 32))
	}
	put32(uint32(n))
	put32(uint32(s.k))
	put32(uint32(len(s.landmarks)))
	for _, lm := range s.landmarks {
		put32(uint32(lm))
	}
	for v := 0; v < n; v++ {
		set := s.Vicinity(graph.NodeID(v))
		put32(uint32(len(set.Entries)))
		for _, e := range set.Entries {
			put32(uint32(e.Node))
			put32(uint32(e.Parent))
			put64(math.Float64bits(e.Dist))
		}
	}
	for row := range s.landmarks {
		for v := 0; v < n; v++ {
			put32(uint32(s.parentAt(row, graph.NodeID(v))))
		}
	}
	return buf
}
