// Incremental snapshot repair: ApplyFailures turns an immutable snapshot
// plus a set of failed links into a new snapshot of the failed topology by
// recomputing only the affected region, sharing everything else with the
// parent copy-on-write. Repair cost then tracks the failure's blast radius
// instead of n — the property that makes failure-scenario experiments
// affordable at the paper-scale sizes the compact encoding unlocked.
//
// What "affected" means is exact, not heuristic, and rests on two facts
// about the deterministic Dijkstra in internal/graph (strict-improvement
// parent updates, ties broken by node ID):
//
//   - A vicinity window V(x) changes only if some failed link has BOTH
//     endpoints inside the window. With one endpoint settled, the link was
//     only ever relaxed toward an unsettled node, which cannot alter the
//     first k settles or their parents; with both endpoints outside, the
//     link was never relaxed at all.
//   - A landmark forest row changes only if some failed link is a TREE
//     edge of that row (parent[u] = v or parent[v] = u). A non-tree link
//     never supplied a final parent, and its absence perturbs neither
//     distances nor the settle order.
//
// Candidate windows for the first criterion are found without scanning all
// n windows: u ∈ V(x) implies d(x,u) <= radius(V(x)) <= maxRadius, so a
// Dijkstra ball of radius maxRadius around each failed endpoint encloses
// every window that could contain it; exact membership is then probed per
// candidate.
//
// Unlike Build/BuildCompact, ApplyFailures does NOT require the failed
// topology to stay connected — that is the point of failure scenarios.
// Repaired vicinity windows may hold fewer than k entries and repaired
// forest rows mark cut-off nodes with graph.None (see Reaches); on a
// still-connected topology the repaired snapshot is byte-identical (in
// CanonicalBytes form) to a from-scratch rebuild.
package snapshot

import (
	"fmt"
	"math"
	"sort"

	"disco/internal/graph"
	"disco/internal/parallel"
	"disco/internal/vicinity"
)

// RepairStats reports what one ApplyFailures call recomputed versus
// shared. "Shards" are the snapshot's repair units: per-node vicinity
// windows and per-landmark forest rows.
type RepairStats struct {
	FailedLinks int // deduplicated links applied by this repair
	VicRebuilt  int // vicinity windows recomputed
	VicTotal    int // = n
	RowsRebuilt int // landmark forest rows recomputed
	RowsTotal   int // = number of landmarks
	Candidates  int // nodes scanned by the blast-radius candidate search
}

// ShardsRebuilt returns the fraction of shards this repair recomputed —
// the blast-radius cost measure the repair-equivalence test bounds.
func (st *RepairStats) ShardsRebuilt() float64 {
	total := st.VicTotal + st.RowsTotal
	if total == 0 {
		return 0
	}
	return float64(st.VicRebuilt+st.RowsRebuilt) / float64(total)
}

// repairState is the copy-on-write overlay of a repaired snapshot: the
// recomputed shards, keyed so reads check here first and fall through to
// the parent's shared storage. Read-only after ApplyFailures returns, like
// everything else reachable from a Snapshot.
type repairState struct {
	parent *Snapshot
	portG  *graph.Graph // graph whose adjacency the shared compact rows index
	vic    map[graph.NodeID]*vicinity.Set
	rows   map[int][]graph.NodeID
	stats  RepairStats
}

// Repaired reports whether this snapshot was produced by ApplyFailures.
func (s *Snapshot) Repaired() bool { return s.rep != nil }

// RepairStats returns the statistics of the repair that produced this
// snapshot, or nil for snapshots built from scratch.
func (s *Snapshot) RepairStats() *RepairStats {
	if s.rep == nil {
		return nil
	}
	return &s.rep.stats
}

// ApplyFailures returns a snapshot of this snapshot's topology minus the
// given links, recomputing only the vicinity windows and forest rows the
// failures can affect and sharing every untouched shard with s (which
// stays valid and immutable — restoring a flapped link is free: route on
// the parent again). Links are deduplicated; a link that does not exist is
// an error. The result may describe a disconnected topology: windows
// shrink below k and forest rows lose nodes (Reaches reports which), so
// delivery ratio — not an error — is how experiments observe partitions.
// Chains compose: a repaired snapshot can be repaired again.
func (s *Snapshot) ApplyFailures(fails []graph.EdgeKey) (*Snapshot, error) {
	n := s.g.N()
	dead := make([]bool, s.g.M())
	uniq := make([]graph.EdgeKey, 0, len(fails))
	for _, f := range fails {
		f = f.Norm()
		if f.U == f.V || f.U < 0 || int(f.V) >= n {
			return nil, fmt.Errorf("snapshot: invalid link %d-%d", f.U, f.V)
		}
		id := s.g.EdgeID(f.U, f.V)
		if id < 0 {
			return nil, fmt.Errorf("snapshot: no link %d-%d to fail", f.U, f.V)
		}
		if dead[id] {
			continue
		}
		dead[id] = true
		uniq = append(uniq, f)
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("snapshot: ApplyFailures needs at least one link")
	}
	fg := s.g.WithoutEdges(dead)

	affVic, scanned := s.affectedVicinities(uniq)
	type repairedWindow struct {
		set   *vicinity.Set
		bound float64 // unquantized radius bound for future repairs
	}
	wins := parallel.MapScratch(len(affVic),
		func() *graph.SSSP { return graph.NewSSSP(fg) },
		func(sp *graph.SSSP, i int) repairedWindow {
			src := affVic[i]
			sp.RunK(src, s.k)
			order := sp.Order()
			win := make([]vicinity.Entry, len(order))
			fillWindow(win, sp, order)
			bound := windowBound(win)
			if s.compact {
				// Mirror the compact decode: a fresh BuildCompact would
				// round distances through float32.
				for j := range win {
					win[j].Dist = float64(float32(win[j].Dist))
				}
			}
			set := vicinity.MakeSet(src, win)
			return repairedWindow{set: &set, bound: bound}
		})

	var affRows []int
	for row := range s.landmarks {
		for _, f := range uniq {
			if s.parentAt(row, f.U) == f.V || s.parentAt(row, f.V) == f.U {
				affRows = append(affRows, row)
				break
			}
		}
	}
	affLms := make([]graph.NodeID, len(affRows))
	for i, row := range affRows {
		affLms[i] = s.landmarks[row]
	}
	newRows := make([][]graph.NodeID, len(affRows))
	graph.ForEachSource(fg, affLms, func(sp *graph.SSSP, i int, lm graph.NodeID) {
		sp.Run(lm)
		prow := make([]graph.NodeID, n)
		for v := 0; v < n; v++ {
			prow[v] = sp.Parent(graph.NodeID(v))
		}
		newRows[i] = prow
	})

	c := &Snapshot{}
	*c = *s // share all built storage by slice header / pointer
	c.g = fg
	rep := &repairState{
		parent: s,
		portG:  s.portGraph(),
		vic:    make(map[graph.NodeID]*vicinity.Set, len(affVic)),
		rows:   make(map[int][]graph.NodeID, len(affRows)),
		stats: RepairStats{
			FailedLinks: len(uniq),
			VicRebuilt:  len(affVic),
			VicTotal:    n,
			RowsRebuilt: len(affRows),
			RowsTotal:   len(s.landmarks),
			Candidates:  scanned,
		},
	}
	// A chained repair extends the parent overlay: older patches stay
	// valid unless recomputed again below.
	if s.rep != nil {
		for v, set := range s.rep.vic {
			rep.vic[v] = set
		}
		for row, prow := range s.rep.rows {
			rep.rows[row] = prow
		}
	}
	for i, v := range affVic {
		rep.vic[v] = wins[i].set
		if wins[i].bound > c.maxRadius {
			c.maxRadius = wins[i].bound
		}
	}
	for i, row := range affRows {
		rep.rows[row] = newRows[i]
	}
	c.rep = rep
	return c, nil
}

// affectedVicinities returns, sorted, every node whose vicinity window can
// change when the given (deduplicated, existing) links fail, plus how many
// candidate nodes the ball search scanned. A window qualifies iff some
// failed link has both endpoints inside it; candidates are enumerated by a
// bounded Dijkstra ball around each distinct lower endpoint (a superset,
// since u ∈ V(x) forces d(x,u) <= maxRadius), then probed exactly.
func (s *Snapshot) affectedVicinities(uniq []graph.EdgeKey) ([]graph.NodeID, int) {
	byU := make(map[graph.NodeID][]graph.NodeID)
	var us []graph.NodeID
	for _, f := range uniq {
		if byU[f.U] == nil {
			us = append(us, f.U)
		}
		byU[f.U] = append(byU[f.U], f.V)
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	// RunRadius settles strictly below its bound, so nudge past maxRadius
	// to include windows whose farthest member sits exactly on it.
	bound := math.Nextafter(s.maxRadius, math.Inf(1))
	type ballResult struct {
		aff     []graph.NodeID
		scanned int
	}
	balls := parallel.MapScratch(len(us),
		func() *graph.SSSP { return graph.NewSSSP(s.g) },
		func(sp *graph.SSSP, i int) ballResult {
			u := us[i]
			sp.RunRadius(u, bound)
			res := ballResult{scanned: len(sp.Order())}
			for _, x := range sp.Order() {
				if !s.VicinityContains(x, u) {
					continue
				}
				for _, v := range byU[u] {
					if s.VicinityContains(x, v) {
						res.aff = append(res.aff, x)
						break
					}
				}
			}
			return res
		})
	seen := make(map[graph.NodeID]bool)
	var aff []graph.NodeID
	scanned := 0
	for _, b := range balls {
		scanned += b.scanned
		for _, x := range b.aff {
			if !seen[x] {
				seen[x] = true
				aff = append(aff, x)
			}
		}
	}
	sort.Slice(aff, func(i, j int) bool { return aff[i] < aff[j] })
	return aff, scanned
}

// CanonicalBytes serializes the snapshot's logical route state — every
// vicinity window entry and every forest parent, as node IDs and float64
// distance bits — in a storage-independent canonical form. Two snapshots
// agree here iff they hold identical route state, regardless of how it is
// laid out (exact flat arrays, compact bit-packing, or a repair overlay);
// this is the byte-identity the repair-equivalence test asserts between
// ApplyFailures and a from-scratch rebuild of the failed topology.
func (s *Snapshot) CanonicalBytes() []byte {
	n := s.g.N()
	var buf []byte
	put32 := func(x uint32) {
		buf = append(buf, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	put64 := func(x uint64) {
		put32(uint32(x))
		put32(uint32(x >> 32))
	}
	put32(uint32(n))
	put32(uint32(s.k))
	put32(uint32(len(s.landmarks)))
	for _, lm := range s.landmarks {
		put32(uint32(lm))
	}
	for v := 0; v < n; v++ {
		set := s.Vicinity(graph.NodeID(v))
		put32(uint32(len(set.Entries)))
		for _, e := range set.Entries {
			put32(uint32(e.Node))
			put32(uint32(e.Parent))
			put64(math.Float64bits(e.Dist))
		}
	}
	for row := range s.landmarks {
		for v := 0; v < n; v++ {
			put32(uint32(s.parentAt(row, graph.NodeID(v))))
		}
	}
	return buf
}
