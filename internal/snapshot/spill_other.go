//go:build !linux

package snapshot

import "errors"

// mapFile is the non-linux stub: cold-shard spill needs mmap, so builds
// and folds on other platforms report the error and the caller keeps the
// storage on the heap (folds) or surfaces it (builds).
func mapFile(dir string, parts ...[]byte) ([]byte, error) {
	return nil, errors.New("cold-shard spill is only supported on linux")
}

func unmapFile(data []byte) {}
