//go:build linux

package snapshot

import (
	"bytes"
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/vicinity"
)

func withSpillDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	SetSpillDir(dir)
	t.Cleanup(func() { SetSpillDir("") })
	return dir
}

// TestSpillEquivalence: spilling is a storage decision, not a semantic
// one — a spilled compact snapshot must read and serialize identically to
// the in-heap build, through repairs and across a chain fold (whose fresh
// generation spills again).
func TestSpillEquivalence(t *testing.T) {
	env := buildEnv(t, 256, 29)
	k := vicinity.DefaultK(env.N())
	heap := mustBuild(t, env, k, true)
	heapBytes := heap.CanonicalBytes()

	withSpillDir(t)
	sp, err := BuildCompact(env.G, k, env.Landmarks)
	if err != nil {
		t.Fatalf("BuildCompact with spill: %v", err)
	}
	if sp.sref == nil {
		t.Fatal("spill-dir build produced no spill reference")
	}
	if !bytes.Equal(sp.CanonicalBytes(), heapBytes) {
		t.Fatal("spilled snapshot's CanonicalBytes differ from the in-heap build")
	}

	// Drive a chain far enough to fold; every step must stay equivalent to
	// a from-scratch (in-heap path irrelevant: CanonicalBytes is
	// storage-independent) build of the current topology.
	d := newChainDriver(sp)
	rng := rand.New(rand.NewSource(41))
	folded := false
	for step := 0; step < 24; step++ {
		if step%3 == 2 && len(d.down) > 0 {
			d.recoverOne(t, rng)
		} else {
			d.failOne(t, rng, true)
		}
		if d.cur.RepairStats().Folded {
			folded = true
			if d.cur.sref == nil {
				t.Fatal("fold under an active spill dir kept storage on the heap")
			}
		}
		fresh, err := BuildCompact(d.cur.Graph(), k, env.Landmarks)
		if err != nil {
			t.Fatalf("step %d: fresh build: %v", step, err)
		}
		if !bytes.Equal(d.cur.CanonicalBytes(), fresh.CanonicalBytes()) {
			t.Fatalf("step %d: spilled chain diverged from fresh build", step)
		}
	}
	if !folded {
		t.Error("sequence never folded; lengthen it so spill covers the fold path")
	}
}

// TestSpillRefcount pins the mapping lifetime protocol: one reference per
// snapshot over the generation, one more per published handle, unmap
// exactly at zero.
func TestSpillRefcount(t *testing.T) {
	env := buildEnv(t, 128, 5)
	k := vicinity.DefaultK(env.N())
	withSpillDir(t)
	s, err := BuildCompact(env.G, k, env.Landmarks)
	if err != nil {
		t.Fatal(err)
	}
	f := s.sref.f
	if got := f.refs.Load(); got != 1 {
		t.Fatalf("refs after build = %d, want 1", got)
	}
	h := NewHandle(s, 1, nil)
	if got := f.refs.Load(); got != 2 {
		t.Fatalf("refs after NewHandle = %d, want 2", got)
	}
	s.ReleaseStorage()
	s.ReleaseStorage() // idempotent
	if got := f.refs.Load(); got != 1 {
		t.Fatalf("refs after ReleaseStorage = %d, want 1", got)
	}
	if f.data == nil {
		t.Fatal("mapping torn down while the handle still references it")
	}
	// The handle's reference keeps reads valid until its epoch retires.
	if h.Snapshot().Vicinity(graph.NodeID(0)).Size() == 0 {
		t.Fatal("empty vicinity window through a live handle")
	}
	h.Release()
	if got := f.refs.Load(); got != 0 {
		t.Fatalf("refs after handle release = %d, want 0", got)
	}
	if f.data != nil {
		t.Fatal("mapping not torn down at refcount zero")
	}
}

// TestSpillExactUnaffected: the exact regime has no file encoding; a
// configured spill dir must leave exact builds heap-backed rather than
// failing them.
func TestSpillExactUnaffected(t *testing.T) {
	env := buildEnv(t, 128, 5)
	k := vicinity.DefaultK(env.N())
	withSpillDir(t)
	s, err := Build(env.G, k, env.Landmarks)
	if err != nil {
		t.Fatal(err)
	}
	if s.sref != nil {
		t.Fatal("exact build acquired a spill reference")
	}
}
