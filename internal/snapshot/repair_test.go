package snapshot

import (
	"bytes"
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

// drawNonBridgeLinks picks `count` distinct non-bridge links of g,
// deterministically from seed, so removing them keeps g connected and a
// from-scratch rebuild of the failed topology stays possible.
func drawNonBridgeLinks(t *testing.T, g *graph.Graph, seed int64, count int) []graph.EdgeKey {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bridges := g.Bridges()
	seen := map[graph.EdgeKey]bool{}
	var out []graph.EdgeKey
	for len(out) < count {
		u := graph.NodeID(rng.Intn(g.N()))
		es := g.Neighbors(u)
		if len(es) == 0 {
			continue
		}
		e := es[rng.Intn(len(es))]
		k := (graph.EdgeKey{U: u, V: e.To}).Norm()
		if bridges[e.EID] || seen[k] {
			continue
		}
		// The links must be jointly non-disconnecting, not just
		// individually non-bridge: verify the running removal set.
		dead := make([]bool, g.M())
		for s := range seen {
			dead[g.EdgeID(s.U, s.V)] = true
		}
		dead[e.EID] = true
		if !g.WithoutEdges(dead).Connected() {
			continue
		}
		seen[k] = true
		out = append(out, k)
	}
	return out
}

// TestSnapshotRepairEquivalence is the tentpole's contract: a snapshot
// repaired via ApplyFailures must hold route state byte-identical (in
// CanonicalBytes form) to a from-scratch rebuild of the failed topology,
// in both storage regimes, for single links, multi-link failures, and a
// chained repair-of-a-repair.
func TestSnapshotRepairEquivalence(t *testing.T) {
	for _, compact := range []bool{false, true} {
		name := "exact"
		if compact {
			name = "compact"
		}
		t.Run(name, func(t *testing.T) {
			env := buildEnv(t, 768, 11)
			k := vicinity.DefaultK(env.N())
			base := mustBuild(t, env, k, compact)

			fails := drawNonBridgeLinks(t, env.G, 41, 4)
			for _, tc := range []struct {
				name  string
				fails []graph.EdgeKey
			}{
				{"single-link", fails[:1]},
				{"multi-link", fails},
			} {
				t.Run(tc.name, func(t *testing.T) {
					rep, err := base.ApplyFailures(tc.fails)
					if err != nil {
						t.Fatalf("ApplyFailures: %v", err)
					}
					build := Build
					if compact {
						build = BuildCompact
					}
					fresh, err := build(rep.Graph(), k, env.Landmarks)
					if err != nil {
						t.Fatalf("from-scratch rebuild: %v", err)
					}
					if !bytes.Equal(rep.CanonicalBytes(), fresh.CanonicalBytes()) {
						t.Fatal("repaired snapshot differs from a from-scratch rebuild of the failed topology")
					}
					st := rep.RepairStats()
					if st == nil || st.VicRebuilt == 0 {
						t.Fatalf("repair stats missing or empty: %+v", st)
					}
				})
			}

			// Chain: repair the repaired snapshot with further links and
			// compare against a rebuild with all links removed.
			rep1, err := base.ApplyFailures(fails[:2])
			if err != nil {
				t.Fatalf("ApplyFailures (first): %v", err)
			}
			rep2, err := rep1.ApplyFailures(fails[2:])
			if err != nil {
				t.Fatalf("ApplyFailures (chained): %v", err)
			}
			build := Build
			if compact {
				build = BuildCompact
			}
			fresh, err := build(rep2.Graph(), k, env.Landmarks)
			if err != nil {
				t.Fatalf("rebuild of chained topology: %v", err)
			}
			if !bytes.Equal(rep2.CanonicalBytes(), fresh.CanonicalBytes()) {
				t.Fatal("chained repair differs from a from-scratch rebuild")
			}
		})
	}
}

// TestSnapshotRepairBlastRadius asserts the cost contract at n=4096: a
// single random link failure must rebuild well under 20% of the shards
// (per-node vicinity windows + per-landmark forest rows) — blast-radius
// cost, not O(n).
func TestSnapshotRepairBlastRadius(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: n=4096 build")
	}
	n := 4096
	g := topology.GnmAvgDeg(rand.New(rand.NewSource(3)), n, 8)
	k := vicinity.DefaultK(n)
	// A modest explicit landmark set keeps the build quick; repair cost is
	// measured relative to whatever set is installed.
	lms := make([]graph.NodeID, 64)
	rng := rand.New(rand.NewSource(5))
	seen := map[graph.NodeID]bool{}
	for i := range lms {
		for {
			v := graph.NodeID(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				lms[i] = v
				break
			}
		}
	}
	base, err := Build(g, k, lms)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	fails := drawNonBridgeLinks(t, g, 17, 1)
	rep, err := base.ApplyFailures(fails)
	if err != nil {
		t.Fatalf("ApplyFailures: %v", err)
	}
	st := rep.RepairStats()
	if frac := st.ShardsRebuilt(); frac >= 0.20 {
		t.Fatalf("single link failure rebuilt %.1f%% of shards (%d/%d windows, %d/%d rows); want < 20%%",
			100*frac, st.VicRebuilt, st.VicTotal, st.RowsRebuilt, st.RowsTotal)
	}
	// The cheap repair must still be the correct one.
	fresh, err := Build(rep.Graph(), k, lms)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if !bytes.Equal(rep.CanonicalBytes(), fresh.CanonicalBytes()) {
		t.Fatal("repaired snapshot differs from a from-scratch rebuild")
	}
	t.Logf("blast radius: %d/%d windows, %d/%d rows (%.1f%% of shards), %d candidates scanned",
		st.VicRebuilt, st.VicTotal, st.RowsRebuilt, st.RowsTotal, 100*st.ShardsRebuilt(), st.Candidates)
}

// TestSnapshotRepairDisconnection: failing a bridge must not error — the
// repaired snapshot reports the partition through shrunken windows and
// Reaches, which is how failure experiments measure delivery ratio.
func TestSnapshotRepairDisconnection(t *testing.T) {
	// Two cliques joined by one bridge; landmark in the left clique.
	g := graph.New(8)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.AddEdge(graph.NodeID(a), graph.NodeID(b), 1)
			g.AddEdge(graph.NodeID(a+4), graph.NodeID(b+4), 1)
		}
	}
	g.AddEdge(0, 4, 1)
	g.Finalize()
	k := 5
	base, err := Build(g, k, []graph.NodeID{1})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rep, err := base.ApplyFailures([]graph.EdgeKey{{U: 0, V: 4}})
	if err != nil {
		t.Fatalf("ApplyFailures on a bridge: %v", err)
	}
	// Right-clique nodes lose the landmark tree…
	for v := graph.NodeID(4); v < 8; v++ {
		if rep.Reaches(1, v) {
			t.Errorf("node %d still reaches landmark 1 across the failed bridge", v)
		}
	}
	// …and their windows shrink to their own side.
	for v := graph.NodeID(4); v < 8; v++ {
		set := rep.Vicinity(v)
		if set.Size() != 4 {
			t.Errorf("node %d window has %d members, want its 4-node component", v, set.Size())
		}
		for _, e := range set.Entries {
			if e.Node < 4 {
				t.Errorf("node %d window contains cross-partition member %d", v, e.Node)
			}
		}
	}
	// Left-clique state is intact and the parent snapshot is untouched.
	for v := graph.NodeID(0); v < 4; v++ {
		if !rep.Reaches(1, v) {
			t.Errorf("node %d lost the landmark on the surviving side", v)
		}
	}
	if base.Vicinity(5).Size() != k {
		t.Error("parent snapshot mutated by repair")
	}
}

// TestApplyFailuresErrors pins the error cases: unknown links, self-loops
// and empty failure sets are caller mistakes, not panics.
func TestApplyFailuresErrors(t *testing.T) {
	env := buildEnv(t, 96, 2)
	base := mustBuild(t, env, vicinity.DefaultK(env.N()), false)
	if _, err := base.ApplyFailures(nil); err == nil {
		t.Error("empty failure set should error")
	}
	if _, err := base.ApplyFailures([]graph.EdgeKey{{U: 3, V: 3}}); err == nil {
		t.Error("self-loop should error")
	}
	// Find a non-adjacent pair.
	var u, v graph.NodeID = 0, 0
	for w := graph.NodeID(1); int(w) < env.N(); w++ {
		if env.G.EdgeID(0, w) < 0 {
			v = w
			break
		}
	}
	if v == 0 {
		t.Skip("node 0 adjacent to everyone")
	}
	if _, err := base.ApplyFailures([]graph.EdgeKey{{U: u, V: v}}); err == nil {
		t.Error("nonexistent link should error")
	}
}
