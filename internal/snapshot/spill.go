// Cold-shard spill: the compact regime's base storage is two contiguous
// byte slices (the vicinity blob and the forest rows), so a store can be
// written to a file once at build/fold time and served through a
// read-only mmap from then on. The heap copy is dropped, and resident
// memory tracks the shards actually touched — the hot blast radius plus
// the overlay — instead of the whole generation; cold pages are clean and
// file-backed, so the kernel evicts them under pressure for free.
//
// Lifetime is counted, not garbage-collected, because an mmap read after
// munmap is a fault, not a nil deref. One spillFile backs one store
// generation; every Snapshot over that generation holds its own storeRef
// (finishRepair clones one per chained child), and the serve plane's
// Handle takes an additional reference per published epoch, released when
// the epoch retires. The mapping is unmapped exactly when the last
// reference drops. A storeRef carries a GC finalizer as the safety net
// for snapshots that are simply dropped (the timeline's superseded heads)
// rather than explicitly released.
//
// The spill file itself is unlinked immediately after mapping: the inode
// lives exactly as long as the mapping, and no cleanup pass is ever
// needed, even on a crash.
package snapshot

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// spillDir holds the package-level spill configuration (set from the
// -spill flag through eval.SetSnapshotSpill). Empty means all storage
// stays on the heap.
var spillDir atomic.Value // string

// SetSpillDir sets the directory compact-regime builds and folds write
// their cold-shard spill files to. The empty string (the default)
// disables spilling. Takes effect for snapshots built or folded after the
// call.
func SetSpillDir(dir string) { spillDir.Store(dir) }

// SpillDir returns the configured spill directory, or "".
func SpillDir() string {
	if v := spillDir.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// spillFile is one mmapped, unlinked storage file with a reference count.
// The mapping is torn down when the count drops to zero; retaining a
// torn-down file is a lifetime bug.
type spillFile struct {
	data []byte
	refs atomic.Int64
}

func (f *spillFile) retain() {
	if f.refs.Add(1) <= 0 {
		panic("snapshot: retain of an unmapped spill file")
	}
}

func (f *spillFile) release() {
	r := f.refs.Add(-1)
	if r < 0 {
		panic("snapshot: spill file released below zero")
	}
	if r == 0 {
		data := f.data
		f.data = nil
		unmapFile(data)
	}
}

// storeRef is one snapshot's counted reference to its store's spill
// mapping: released at most once, explicitly (ReleaseStorage, the fold
// path) or by the GC finalizer when the snapshot is dropped without one.
type storeRef struct {
	f        *spillFile
	released atomic.Bool
}

func newStoreRef(f *spillFile) *storeRef {
	f.retain()
	r := &storeRef{f: f}
	runtime.SetFinalizer(r, (*storeRef).release)
	return r
}

func (r *storeRef) release() {
	if !r.released.Swap(true) {
		r.f.release()
	}
}

// ReleaseStorage drops this snapshot's reference to its spilled (mmapped)
// base storage, if any; idempotent, and a no-op for heap-backed
// snapshots. Once every snapshot and published handle sharing the mapping
// has released it, the storage is unmapped and further reads through any
// of them fault — callers release only when they are done reading. The GC
// releases dropped snapshots automatically; the explicit call is for
// callers that want the address space back promptly.
func (s *Snapshot) ReleaseStorage() {
	if s.sref != nil {
		s.sref.release()
	}
}

// spillTo writes the store's two blobs into one unlinked file under dir
// and swaps the slices over to a shared read-only mapping. On error the
// store is unchanged (still heap-backed). A store with no bytes to spill
// is left alone.
func (cs *compactStore) spillTo(dir string) error {
	nb := len(cs.vicBlob)
	if nb+len(cs.forest) == 0 {
		return nil
	}
	data, err := mapFile(dir, cs.vicBlob, cs.forest)
	if err != nil {
		return fmt.Errorf("snapshot: spill to %s: %w", dir, err)
	}
	cs.sp = &spillFile{data: data}
	cs.vicBlob = data[:nb:nb]
	cs.forest = data[nb:]
	return nil
}
