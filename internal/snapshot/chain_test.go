package snapshot

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"disco/internal/graph"
	"disco/internal/vicinity"
)

// chainDriver drives an interleaved fail/recover sequence against a
// snapshot chain, tracking which base-topology links are currently down so
// recoveries restore real weights. Draws are deterministic from the rng.
type chainDriver struct {
	baseG *graph.Graph
	cur   *Snapshot
	down  []graph.EdgeKey // sorted
}

func newChainDriver(base *Snapshot) *chainDriver {
	return &chainDriver{baseG: base.Graph(), cur: base}
}

// failOne fails one random currently-alive link, redrawing (and giving up
// after enough tries) if connected is set and the draw would disconnect
// the current topology.
func (d *chainDriver) failOne(t *testing.T, rng *rand.Rand, connected bool) {
	t.Helper()
	g := d.cur.Graph()
	var bridges []bool
	if connected {
		bridges = g.Bridges()
	}
	for try := 0; try < 1000; try++ {
		u := graph.NodeID(rng.Intn(g.N()))
		es := g.Neighbors(u)
		if len(es) == 0 {
			continue
		}
		e := es[rng.Intn(len(es))]
		if connected && bridges[e.EID] {
			continue
		}
		key := (graph.EdgeKey{U: u, V: e.To}).Norm()
		rep, err := d.cur.ApplyFailures([]graph.EdgeKey{key})
		if err != nil {
			t.Fatalf("ApplyFailures(%v): %v", key, err)
		}
		d.cur = rep
		i := sort.Search(len(d.down), func(i int) bool {
			return d.down[i].U > key.U || (d.down[i].U == key.U && d.down[i].V >= key.V)
		})
		d.down = append(d.down, graph.EdgeKey{})
		copy(d.down[i+1:], d.down[i:])
		d.down[i] = key
		return
	}
	t.Fatal("could not draw a failable link")
}

// recoverOne restores one random currently-down link with its base weight.
func (d *chainDriver) recoverOne(t *testing.T, rng *rand.Rand) {
	t.Helper()
	if len(d.down) == 0 {
		t.Fatal("recoverOne with no down links")
	}
	i := rng.Intn(len(d.down))
	key := d.down[i]
	w := d.baseG.EdgeWeight(key.U, key.V)
	if w < 0 {
		t.Fatalf("down link %v not in the base graph", key)
	}
	rep, err := d.cur.ApplyRecoveries([]graph.WeightedLink{{U: key.U, V: key.V, W: w}})
	if err != nil {
		t.Fatalf("ApplyRecoveries(%v): %v", key, err)
	}
	d.cur = rep
	d.down = append(d.down[:i], d.down[i+1:]...)
}

// TestSnapshotChainEquivalence is the continuous-dynamics contract: after
// ANY interleaved fail/recover sequence, the chained snapshot must hold
// route state byte-identical (CanonicalBytes) to a from-scratch build of
// the current topology, in both storage regimes — including across
// automatic chain folds. Failures are drawn non-disconnecting so the
// from-scratch comparison build stays possible at every step.
func TestSnapshotChainEquivalence(t *testing.T) {
	for _, compact := range []bool{false, true} {
		name := "exact"
		if compact {
			name = "compact"
		}
		t.Run(name, func(t *testing.T) {
			env := buildEnv(t, 384, 11)
			k := vicinity.DefaultK(env.N())
			base := mustBuild(t, env, k, compact)
			build := Build
			if compact {
				build = BuildCompact
			}

			d := newChainDriver(base)
			rng := rand.New(rand.NewSource(31))
			folded := false
			for step := 0; step < 28; step++ {
				// Bias toward failures early so recoveries have stock, and
				// interleave so repair-of-repair and recover-of-repair chains
				// both occur.
				if len(d.down) == 0 || (len(d.down) < 10 && rng.Intn(3) != 0) {
					d.failOne(t, rng, true)
				} else {
					d.recoverOne(t, rng)
				}
				if st := d.cur.RepairStats(); st != nil && st.Folded {
					folded = true
				}
				fresh, err := build(d.cur.Graph(), k, env.Landmarks)
				if err != nil {
					t.Fatalf("step %d: from-scratch rebuild: %v", step, err)
				}
				if !bytes.Equal(d.cur.CanonicalBytes(), fresh.CanonicalBytes()) {
					t.Fatalf("step %d (down=%d): chained snapshot differs from a from-scratch build", step, len(d.down))
				}
			}
			if len(d.down) == 0 {
				t.Error("sequence never held a failed link — not an interleaved chain")
			}
			_ = folded // folding is asserted by TestSnapshotChainBounded
		})
	}
}

// TestSnapshotChainRecoveryRestoresBase: failing links and recovering all
// of them must land back, byte for byte, on the original snapshot's route
// state — the strongest form of "recovery repairs the blast radius in
// reverse".
func TestSnapshotChainRecoveryRestoresBase(t *testing.T) {
	for _, compact := range []bool{false, true} {
		env := buildEnv(t, 256, 7)
		k := vicinity.DefaultK(env.N())
		base := mustBuild(t, env, k, compact)

		d := newChainDriver(base)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 6; i++ {
			d.failOne(t, rng, false) // disconnections allowed: recovery must undo them too
		}
		for len(d.down) > 0 {
			d.recoverOne(t, rng)
		}
		if !bytes.Equal(d.cur.CanonicalBytes(), base.CanonicalBytes()) {
			t.Fatalf("compact=%v: recovering every failed link did not restore the base route state", compact)
		}
		if d.cur.Graph().M() != env.G.M() {
			t.Fatalf("compact=%v: recovered graph has %d edges, base has %d", compact, d.cur.Graph().M(), env.G.M())
		}
	}
}

// TestSnapshotChainBounded is the compaction contract: over a 100-step
// interleaved fail/recover sequence, the chain must not leak history — the
// private overlay stays below the fold threshold plus one event's blast
// radius, folds actually happen, and the live snapshot's backing storage
// stays within a constant factor of the base build, in both storage
// regimes. (Peak RSS in a unit test is scheduler noise; OverlayShards and
// Bytes are the deterministic proxies the contract is stated in.)
func TestSnapshotChainBounded(t *testing.T) {
	for _, compact := range []bool{false, true} {
		name := "exact"
		if compact {
			name = "compact"
		}
		t.Run(name, func(t *testing.T) {
			env := buildEnv(t, 256, 17)
			n := env.N()
			k := vicinity.DefaultK(n)
			base := mustBuild(t, env, k, compact)
			totalShards := n + len(env.Landmarks)
			baseBytes := base.Bytes()

			d := newChainDriver(base)
			rng := rand.New(rand.NewSource(23))
			folds, peakOverlay := 0, 0
			var peakBytes int64
			for step := 0; step < 100; step++ {
				if len(d.down) == 0 || (len(d.down) < 8 && rng.Intn(2) == 0) {
					d.failOne(t, rng, false)
				} else {
					d.recoverOne(t, rng)
				}
				if st := d.cur.RepairStats(); st.Folded {
					folds++
				}
				if ov := d.cur.OverlayShards(); ov > peakOverlay {
					peakOverlay = ov
				}
				if b := d.cur.Bytes(); b > peakBytes {
					peakBytes = b
				}
			}
			// One event's blast radius on top of the threshold is the most
			// the overlay can hold before the fold fires.
			limit := int(foldOverlayFraction*float64(totalShards)) + totalShards/2
			if peakOverlay > limit {
				t.Errorf("peak overlay %d shards exceeds the compaction bound %d (total %d)", peakOverlay, limit, totalShards)
			}
			if folds == 0 {
				t.Error("100-step chain never folded: the compaction path is untested dead code")
			}
			// Folded storage re-encodes the same state (same order of
			// magnitude as the base build), and the private overlay — which
			// Bytes() counts at its exact in-memory representation — is
			// bounded by `limit` shards of at worst one full window or one
			// plain parent row each.
			overlaySlack := int64(limit)*(setBytes+int64(k)*entryBytes) +
				int64(len(env.Landmarks))*int64(n)*nodeBytes
			if peakBytes > 2*baseBytes+overlaySlack {
				t.Errorf("peak snapshot bytes %d exceed 2x the base build's %d plus the overlay bound %d", peakBytes, baseBytes, overlaySlack)
			}
			t.Logf("100 steps: %d folds, peak overlay %d/%d shards, peak bytes %d (base %d)",
				folds, peakOverlay, totalShards, peakBytes, baseBytes)
		})
	}
}

// TestShardsRebuiltZeroShards pins the zero-shard guard: a RepairStats
// over an empty snapshot (no windows, no rows) must report 0, never NaN.
func TestShardsRebuiltZeroShards(t *testing.T) {
	st := &RepairStats{}
	if got := st.ShardsRebuilt(); got != 0 || math.IsNaN(got) {
		t.Fatalf("ShardsRebuilt on zero shards = %v, want 0", got)
	}
	st = &RepairStats{VicRebuilt: 3, VicTotal: 10, RowsRebuilt: 1, RowsTotal: 10}
	if got := st.ShardsRebuilt(); got != 0.2 {
		t.Fatalf("ShardsRebuilt = %v, want 0.2", got)
	}
}

// TestApplyRecoveriesErrors pins the error cases: already-alive links,
// negative weights, self-loops and empty sets are caller mistakes.
func TestApplyRecoveriesErrors(t *testing.T) {
	env := buildEnv(t, 96, 2)
	base := mustBuild(t, env, vicinity.DefaultK(env.N()), false)
	if _, err := base.ApplyRecoveries(nil); err == nil {
		t.Error("empty restore set should error")
	}
	if _, err := base.ApplyRecoveries([]graph.WeightedLink{{U: 3, V: 3, W: 1}}); err == nil {
		t.Error("self-loop should error")
	}
	// An edge that exists cannot be restored.
	u := graph.NodeID(0)
	e := env.G.Neighbors(u)[0]
	if _, err := base.ApplyRecoveries([]graph.WeightedLink{{U: u, V: e.To, W: e.Weight}}); err == nil {
		t.Error("already-alive link should error")
	}
	// Fail a link, then try restoring it with a negative weight.
	key := (graph.EdgeKey{U: u, V: e.To}).Norm()
	rep, err := base.ApplyFailures([]graph.EdgeKey{key})
	if err != nil {
		t.Fatalf("ApplyFailures: %v", err)
	}
	if _, err := rep.ApplyRecoveries([]graph.WeightedLink{{U: key.U, V: key.V, W: -1}}); err == nil {
		t.Error("negative weight should error")
	}
	// And the round trip works with the true weight.
	back, err := rep.ApplyRecoveries([]graph.WeightedLink{{U: key.U, V: key.V, W: e.Weight}})
	if err != nil {
		t.Fatalf("ApplyRecoveries: %v", err)
	}
	if !bytes.Equal(back.CanonicalBytes(), base.CanonicalBytes()) {
		t.Error("fail+recover round trip did not restore the base route state")
	}
}
