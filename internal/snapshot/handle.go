// Epoch-stamped, refcounted snapshot handles — the reclamation primitive
// the serving query plane publishes through. A repair chain rebases: every
// chained snapshot shares the chain base's storage arrays, and a fold
// replaces that base with fresh storage, leaving the old base reachable
// only through whoever still reads it. A Handle makes that lifetime
// explicit: the publisher creates one per published epoch (holding its
// reference), readers pin the epoch with TryRetain around each query, and
// when the last reference drops — publisher superseded the epoch AND every
// in-flight reader left — the handle severs its snapshot pointer and fires
// the reclamation hook, so a folded-away base really becomes collectable
// the moment nobody can read it, and never a moment earlier.
//
// The retain protocol is the classic epoch-reclamation shape: a reader
// loads the published handle and calls TryRetain, which only succeeds
// while the count is still positive. If the publisher retired the epoch in
// the window between load and retain (count hit zero), TryRetain fails and
// the reader re-loads — the publication pointer has necessarily moved on,
// so the loop terminates. A successful TryRetain therefore guarantees the
// snapshot stays valid for the whole read-side critical section, with no
// lock anywhere on the path.
package snapshot

import "sync/atomic"

// Handle is one published epoch's refcounted reference to a (possibly
// chained) snapshot. The zero Handle is invalid; use NewHandle.
type Handle struct {
	epoch  uint64
	refs   atomic.Int64
	snap   atomic.Pointer[Snapshot]
	onZero func()
	unmap  func()
}

// NewHandle wraps s as epoch `epoch` with an initial reference count of 1
// (the publisher's reference). onZero, if non-nil, runs exactly once, when
// the count first reaches zero — the reclamation hook the serving plane
// counts retired epochs with. If the snapshot's base storage is a spilled
// mapping, the handle acquires its own reference on the mapping and drops
// it when the count reaches zero, so the epoch lifecycle — not the GC —
// decides when a retired base's pages are unmapped.
func NewHandle(s *Snapshot, epoch uint64, onZero func()) *Handle {
	h := &Handle{epoch: epoch, onZero: onZero}
	if s.sref != nil {
		f := s.sref.f
		f.retain()
		h.unmap = f.release
	}
	h.snap.Store(s)
	h.refs.Store(1)
	return h
}

// Epoch returns the epoch sequence number the handle was published as.
func (h *Handle) Epoch() uint64 { return h.epoch }

// Snapshot returns the pinned snapshot. Callers must hold a reference
// (NewHandle's initial one, or a successful TryRetain); reading a
// reclaimed handle is a lifetime bug and panics.
func (h *Handle) Snapshot() *Snapshot {
	s := h.snap.Load()
	if s == nil {
		panic("snapshot: Handle.Snapshot on a reclaimed handle")
	}
	return s
}

// TryRetain acquires one reference unless the handle was already
// reclaimed (count at zero), in which case it reports false and the
// caller must re-load the publication pointer. Never blocks.
func (h *Handle) TryRetain() bool {
	for {
		r := h.refs.Load()
		if r <= 0 {
			return false
		}
		if h.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Retain acquires one reference on a handle the caller already knows is
// live (it holds another reference). Retaining a reclaimed handle panics.
func (h *Handle) Retain() {
	//disco:retained Retain's contract is handing the acquired reference to the caller
	if !h.TryRetain() {
		panic("snapshot: Retain on a reclaimed handle")
	}
}

// Release drops one reference. When the count reaches zero the handle
// severs its snapshot pointer (making a folded-away chain base
// collectable) and fires the onZero hook. Releasing below zero panics —
// it means a reader released a reference it never acquired.
func (h *Handle) Release() {
	r := h.refs.Add(-1)
	if r < 0 {
		panic("snapshot: Handle released below zero")
	}
	if r == 0 {
		h.snap.Store(nil)
		if h.unmap != nil {
			h.unmap()
		}
		if h.onZero != nil {
			h.onZero()
		}
	}
}

// Refs returns the current reference count (diagnostics and tests).
func (h *Handle) Refs() int64 { return h.refs.Load() }
