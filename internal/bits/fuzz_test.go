package bits

import (
	"math/bits"
	"testing"
)

// FuzzWriteReadBits round-trips arbitrary (value, width) pairs through the
// bit writer/reader, interleaved with a second field, asserting exact
// recovery and exact stream length. Run with `go test -fuzz FuzzWriteReadBits`;
// the checked-in corpus under testdata/fuzz/ runs on every plain `go test`.
func FuzzWriteReadBits(f *testing.F) {
	f.Add(uint64(0), uint(1), uint64(5), uint(3))
	f.Add(uint64(1), uint(64), uint64(0), uint(0))
	f.Add(uint64(0xdeadbeef), uint(32), uint64(0x7fffffffffffffff), uint(63))
	f.Add(uint64(1)<<63, uint(64), uint64(1), uint(1))
	f.Fuzz(func(t *testing.T, a uint64, wa uint, b uint64, wb uint) {
		wa %= 65
		wb %= 65
		ma, mb := mask(wa), mask(wb)
		var w Writer
		w.WriteBits(a, int(wa))
		w.WriteBits(b, int(wb))
		if got, want := w.Len(), int(wa+wb); got != want {
			t.Fatalf("Len = %d, want %d", got, want)
		}
		if got, want := len(w.Bytes()), (int(wa+wb)+7)/8; got != want {
			t.Fatalf("byte len = %d, want %d", got, want)
		}
		r := NewReader(w.Bytes(), w.Len())
		if got := r.ReadBits(int(wa)); got != a&ma {
			t.Fatalf("field a: got %x want %x (width %d)", got, a&ma, wa)
		}
		if got := r.ReadBits(int(wb)); got != b&mb {
			t.Fatalf("field b: got %x want %x (width %d)", got, b&mb, wb)
		}
		if r.Remaining() != 0 {
			t.Fatalf("remaining = %d, want 0", r.Remaining())
		}
	})
}

func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// FuzzGammaRoundTrip round-trips Elias-gamma-coded values mixed with
// fixed-width fields — the exact interleaving the §4.2 address codec uses
// (gamma hop count, then per-hop port labels).
func FuzzGammaRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(1))
	f.Add(uint64(2), uint64(0xffffffffffffffff))
	f.Add(uint64(1)<<63, uint64(3))
	f.Add(uint64(12345), uint64(678910))
	f.Fuzz(func(t *testing.T, v1, v2 uint64) {
		if v1 == 0 {
			v1 = 1 // gamma coding is defined for v >= 1
		}
		if v2 == 0 {
			v2 = 1
		}
		var w Writer
		w.WriteGamma(v1)
		w.WriteBits(v2, 64)
		w.WriteGamma(v2)
		wantLen := 2*bits.Len64(v1) - 1 + 64 + 2*bits.Len64(v2) - 1
		if w.Len() != wantLen {
			t.Fatalf("Len = %d, want %d (gamma of %d and %d)", w.Len(), wantLen, v1, v2)
		}
		r := NewReader(w.Bytes(), w.Len())
		if got := r.ReadGamma(); got != v1 {
			t.Fatalf("gamma 1: got %d want %d", got, v1)
		}
		if got := r.ReadBits(64); got != v2 {
			t.Fatalf("fixed field: got %x want %x", got, v2)
		}
		if got := r.ReadGamma(); got != v2 {
			t.Fatalf("gamma 2: got %d want %d", got, v2)
		}
		if r.Remaining() != 0 {
			t.Fatalf("remaining = %d, want 0", r.Remaining())
		}
	})
}

// FuzzWidth cross-checks Width (ceil(log2 n), the per-hop label width)
// against the stdlib bit-length identity and the codec invariant that any
// port in [0, n) survives a Width(n)-bit round trip.
func FuzzWidth(f *testing.F) {
	f.Add(0, uint64(0))
	f.Add(1, uint64(0))
	f.Add(2, uint64(1))
	f.Add(257, uint64(255))
	f.Fuzz(func(t *testing.T, n int, port uint64) {
		if n < 0 {
			n = -n
		}
		if n > 1<<30 {
			n %= 1 << 30
		}
		w := Width(n)
		if n <= 1 {
			if w != 0 {
				t.Fatalf("Width(%d) = %d, want 0", n, w)
			}
			return
		}
		if want := bits.Len64(uint64(n - 1)); w != want {
			t.Fatalf("Width(%d) = %d, want %d", n, w, want)
		}
		port %= uint64(n)
		var bw Writer
		bw.WriteBits(port, w)
		r := NewReader(bw.Bytes(), bw.Len())
		if got := r.ReadBits(w); got != port {
			t.Fatalf("port %d (n=%d) round-tripped to %d", port, n, got)
		}
	})
}
