package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 1)
	w.WriteBits(0x3FF, 10)
	r := NewReader(w.Bytes(), w.Len())
	if v := r.ReadBits(3); v != 0b101 {
		t.Errorf("got %b", v)
	}
	if v := r.ReadBits(8); v != 0xFF {
		t.Errorf("got %x", v)
	}
	if v := r.ReadBits(1); v != 0 {
		t.Errorf("got %d", v)
	}
	if v := r.ReadBits(10); v != 0x3FF {
		t.Errorf("got %x", v)
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining %d", r.Remaining())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals []uint16, widthsSeed int64) bool {
		rng := rand.New(rand.NewSource(widthsSeed))
		var w Writer
		widths := make([]int, len(vals))
		masked := make([]uint64, len(vals))
		for i, v := range vals {
			widths[i] = rng.Intn(17) // 0..16 bits
			masked[i] = uint64(v) & (1<<uint(widths[i]) - 1)
			w.WriteBits(uint64(v), widths[i])
		}
		r := NewReader(w.Bytes(), w.Len())
		for i := range vals {
			if r.ReadBits(widths[i]) != masked[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaRoundTrip(t *testing.T) {
	var w Writer
	vals := []uint64{1, 2, 3, 4, 7, 8, 100, 1023, 1024, 123456789}
	for _, v := range vals {
		w.WriteGamma(v)
	}
	r := NewReader(w.Bytes(), w.Len())
	for _, v := range vals {
		if got := r.ReadGamma(); got != v {
			t.Errorf("gamma roundtrip got %d want %d", got, v)
		}
	}
}

func TestGammaProperty(t *testing.T) {
	f := func(v uint64) bool {
		if v == 0 {
			v = 1
		}
		var w Writer
		w.WriteGamma(v)
		r := NewReader(w.Bytes(), w.Len())
		return r.ReadGamma() == v && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var w Writer
	w.WriteGamma(0)
}

func TestReadPastEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var w Writer
	w.WriteBits(1, 1)
	r := NewReader(w.Bytes(), w.Len())
	r.ReadBits(2)
}

func TestWidth(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := Width(n); got != want {
			t.Errorf("Width(%d)=%d want %d", n, got, want)
		}
	}
}

func TestWidthCoversPorts(t *testing.T) {
	// Any port index p < d must fit in Width(d) bits.
	f := func(d uint16) bool {
		deg := int(d%1000) + 1
		w := Width(deg)
		return deg-1 < 1<<uint(w) || w == 0 && deg == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLenCounting(t *testing.T) {
	var w Writer
	if w.Len() != 0 {
		t.Error("empty writer len")
	}
	w.WriteBits(0, 5)
	w.WriteBits(0, 4)
	if w.Len() != 9 {
		t.Errorf("len %d want 9", w.Len())
	}
	if len(w.Bytes()) != 2 {
		t.Errorf("bytes %d want 2", len(w.Bytes()))
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xFF, 8)
	w.WriteBits(0xFF, 8)
	w.Reset()
	if w.Len() != 0 {
		t.Errorf("len after Reset = %d", w.Len())
	}
	// Reused buffer bytes must come back zeroed: stale set bits from the
	// previous window would corrupt ORed-in values.
	w.WriteBits(0, 8)
	if w.Bytes()[0] != 0 {
		t.Errorf("stale bits survived Reset: %08b", w.Bytes()[0])
	}
	w.Reset()
	w.WriteBits(0xA5, 8)
	r := NewReader(w.Bytes(), w.Len())
	if got := r.ReadBits(8); got != 0xA5 {
		t.Errorf("after Reset read %#x want 0xA5", got)
	}
}

func TestAtMatchesReader(t *testing.T) {
	// At(buf, pos, width) must agree with a Reader that seeks to pos by
	// consuming bits, at every offset and width.
	var w Writer
	vals := []uint64{0, 1, 0x2A, 0x155, 0x7FF, 3, 0}
	widths := []int{1, 3, 6, 9, 11, 2, 4}
	for i, v := range vals {
		w.WriteBits(v, widths[i])
	}
	pos := 0
	for i, want := range vals {
		if got := At(w.Bytes(), pos, widths[i]); got != want {
			t.Errorf("At(pos=%d, width=%d) = %#x want %#x", pos, widths[i], got, want)
		}
		pos += widths[i]
	}
	if got := At(w.Bytes(), 0, 0); got != 0 {
		t.Errorf("zero-width At = %d want 0", got)
	}
}
