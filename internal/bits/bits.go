// Package bits provides bit-granular writers and readers for the compact
// explicit-route address format of §4.2: each hop at a node of degree d is
// encoded in ceil(log2 d) bits, so address sizes are measured in bits, not
// bytes. (Named after its purpose; the stdlib math/bits package is unrelated
// and used via alias where needed.)
package bits

import "fmt"

// Writer accumulates a bit string most-significant-bit first.
type Writer struct {
	buf  []byte
	nbit int
}

// WriteBits appends the low `width` bits of v (0 <= width <= 64),
// most-significant first.
func (w *Writer) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bits: invalid width %d", width))
	}
	for i := width - 1; i >= 0; i-- {
		bit := (v >> uint(i)) & 1
		byteIdx := w.nbit / 8
		if byteIdx == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if bit == 1 {
			w.buf[byteIdx] |= 1 << uint(7-w.nbit%8)
		}
		w.nbit++
	}
}

// WriteGamma appends v >= 1 in Elias gamma coding: floor(log2 v) zero bits,
// then the binary representation of v. Used for hop counts, which have no
// a-priori width bound (O~(sqrt(n)) hops on a ring, §4.2).
func (w *Writer) WriteGamma(v uint64) {
	if v == 0 {
		panic("bits: gamma coding needs v >= 1")
	}
	n := 0
	for t := v; t > 1; t >>= 1 {
		n++
	}
	w.WriteBits(0, n)
	w.WriteBits(v, n+1)
}

// Len returns the number of bits written.
func (w *Writer) Len() int { return w.nbit }

// Reset truncates the writer to zero bits, retaining the buffer for reuse.
// The compact snapshot encoder resets one writer per window instead of
// allocating a fresh one per node.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Bytes returns the accumulated bit string padded with zero bits to a byte
// boundary. The slice is owned by the writer.
func (w *Writer) Bytes() []byte { return w.buf }

// Reader consumes a bit string produced by Writer.
type Reader struct {
	buf  []byte
	pos  int
	nbit int
}

// NewReader returns a reader over buf limited to nbit valid bits.
func NewReader(buf []byte, nbit int) *Reader {
	return &Reader{buf: buf, nbit: nbit}
}

// ReadBits consumes `width` bits and returns them as the low bits of the
// result. It panics past the end of the stream (always a codec bug here).
func (r *Reader) ReadBits(width int) uint64 {
	if r.pos+width > r.nbit {
		panic(fmt.Sprintf("bits: read %d bits past end (%d/%d)", width, r.pos, r.nbit))
	}
	v := At(r.buf, r.pos, width)
	r.pos += width
	return v
}

// ReadGamma consumes one Elias-gamma-coded value.
func (r *Reader) ReadGamma() uint64 {
	n := 0
	for r.ReadBits(1) == 0 {
		n++
	}
	if n == 0 {
		return 1
	}
	rest := r.ReadBits(n)
	return 1<<uint(n) | rest
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// At returns the `width` bits starting at bit position pos of buf (MSB-first,
// the Writer's layout) without constructing a Reader — random access into a
// shared bit-packed array, e.g. one parent field of a compact snapshot row.
// The caller guarantees pos+width bits exist; reads past len(buf)*8 panic via
// the slice bound.
func At(buf []byte, pos, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		b := (buf[pos/8] >> uint(7-pos%8)) & 1
		v = v<<1 | uint64(b)
		pos++
	}
	return v
}

// Width returns the number of bits needed to encode values in [0, n), i.e.
// ceil(log2 n), with Width(0) = Width(1) = 0 (a degree-1 node needs no label
// bits: there is only one port).
func Width(n int) int {
	if n <= 1 {
		return 0
	}
	w := 0
	for v := n - 1; v > 0; v >>= 1 {
		w++
	}
	return w
}
