// Package bits provides bit-granular writers and readers for the compact
// explicit-route address format of §4.2: each hop at a node of degree d is
// encoded in ceil(log2 d) bits, so address sizes are measured in bits, not
// bytes. (Named after its purpose; the stdlib math/bits package is unrelated
// and used via alias where needed.)
//
// The same codec carries the compact snapshot regime's bit-packed route
// state, whose fold/decode sweeps touch every window of a paper-scale
// snapshot — so WriteBits, At and ReadGamma work a byte or a word at a
// time, never a bit at a time. The bit layout (MSB-first within each byte)
// is pinned by the fuzz roundtrip suite and by the compact-snapshot
// goldens; these are implementation fast paths, not format changes.
package bits

import (
	"fmt"
	mbits "math/bits"
)

// Writer accumulates a bit string most-significant-bit first.
type Writer struct {
	buf  []byte
	nbit int
}

// WriteBits appends the low `width` bits of v (0 <= width <= 64),
// most-significant first. Byte-at-a-time: the first partial byte is
// or-merged, whole bytes are appended directly.
func (w *Writer) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bits: invalid width %d", width))
	}
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	rem := width
	// Fill the tail of the current partial byte, if any.
	if used := w.nbit & 7; used != 0 {
		free := 8 - used
		take := free
		if take > rem {
			take = rem
		}
		chunk := byte(v>>uint(rem-take)) & (0xff >> uint(8-take))
		w.buf[len(w.buf)-1] |= chunk << uint(free-take)
		w.nbit += take
		rem -= take
	}
	// Whole bytes.
	for rem >= 8 {
		rem -= 8
		w.buf = append(w.buf, byte(v>>uint(rem)))
		w.nbit += 8
	}
	// Leading bits of a fresh byte.
	if rem > 0 {
		chunk := byte(v) & (0xff >> uint(8-rem))
		w.buf = append(w.buf, chunk<<uint(8-rem))
		w.nbit += rem
	}
}

// WriteGamma appends v >= 1 in Elias gamma coding: floor(log2 v) zero bits,
// then the binary representation of v. Used for hop counts, which have no
// a-priori width bound (O~(sqrt(n)) hops on a ring, §4.2), and for the
// compact snapshot's member-ID deltas.
func (w *Writer) WriteGamma(v uint64) {
	if v == 0 {
		panic("bits: gamma coding needs v >= 1")
	}
	n := mbits.Len64(v) - 1
	w.WriteBits(0, n)
	w.WriteBits(v, n+1)
}

// GammaLen returns the encoded length of WriteGamma(v) in bits without
// writing: 2*floor(log2 v) + 1. The compact fold's size pass uses it to
// compute every shard's encoded size analytically before any shard is
// written.
func GammaLen(v uint64) int {
	if v == 0 {
		panic("bits: gamma coding needs v >= 1")
	}
	return 2*mbits.Len64(v) - 1
}

// Len returns the number of bits written.
func (w *Writer) Len() int { return w.nbit }

// Reset truncates the writer to zero bits, retaining the buffer for reuse.
// The compact snapshot encoder resets one writer per window instead of
// allocating a fresh one per node.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Bytes returns the accumulated bit string padded with zero bits to a byte
// boundary. The slice is owned by the writer.
func (w *Writer) Bytes() []byte { return w.buf }

// Reader consumes a bit string produced by Writer.
type Reader struct {
	buf  []byte
	pos  int
	nbit int
}

// NewReader returns a reader over buf limited to nbit valid bits.
func NewReader(buf []byte, nbit int) *Reader {
	return &Reader{buf: buf, nbit: nbit}
}

// ReadBits consumes `width` bits and returns them as the low bits of the
// result. It panics past the end of the stream (always a codec bug here).
func (r *Reader) ReadBits(width int) uint64 {
	if r.pos+width > r.nbit {
		panic(fmt.Sprintf("bits: read %d bits past end (%d/%d)", width, r.pos, r.nbit))
	}
	v := At(r.buf, r.pos, width)
	r.pos += width
	return v
}

// ReadGamma consumes one Elias-gamma-coded value. The unary zero run is
// counted a chunk at a time with math/bits.Len, not bit by bit.
func (r *Reader) ReadGamma() uint64 {
	n := 0 // leading zeros consumed
	for {
		peek := r.nbit - r.pos
		if peek > 32 {
			peek = 32
		}
		if peek == 0 {
			panic(fmt.Sprintf("bits: gamma read past end (%d/%d)", r.pos, r.nbit))
		}
		v := At(r.buf, r.pos, peek)
		lz := peek - mbits.Len64(v)
		if lz < peek {
			n += lz
			r.pos += lz
			break
		}
		n += peek
		r.pos += peek
	}
	// The next bit is the leading 1 of the value: read it plus n more.
	return r.ReadBits(n + 1)
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// At returns the `width` bits starting at bit position pos of buf (MSB-first,
// the Writer's layout) without constructing a Reader — random access into a
// shared bit-packed array, e.g. one parent field of a compact snapshot row.
// The caller guarantees pos+width bits exist; reads past len(buf)*8 panic via
// the slice bound. Byte-at-a-time accumulation: at most 9 byte loads for a
// 64-bit read, instead of one shift per bit.
func At(buf []byte, pos, width int) uint64 {
	if width == 0 {
		return 0
	}
	first := pos >> 3
	last := (pos + width - 1) >> 3
	v := uint64(buf[first] & (0xff >> uint(pos&7)))
	if last == first {
		return v >> uint(7-(pos+width-1)&7)
	}
	for i := first + 1; i < last; i++ {
		v = v<<8 | uint64(buf[i])
	}
	lb := uint((pos+width-1)&7) + 1 // bits used in the last byte
	return v<<lb | uint64(buf[last])>>(8-lb)
}

// Width returns the number of bits needed to encode values in [0, n), i.e.
// ceil(log2 n), with Width(0) = Width(1) = 0 (a degree-1 node needs no label
// bits: there is only one port).
func Width(n int) int {
	if n <= 1 {
		return 0
	}
	return mbits.Len64(uint64(n - 1))
}
