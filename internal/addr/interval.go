package addr

import (
	"fmt"
	"math/bits"
	"sort"

	"disco/internal/graph"
)

// IntervalTree implements the fixed-size address variant sketched in §4.2:
// "an address would be fixed at O(log n) bits; each landmark l would
// dynamically partition this block of addresses among its neighbors in
// proportion to their number of descendants, and this would continue
// recursively down the shortest-path tree rooted at l, analogous to a
// hierarchical assignment of IP addresses."
//
// Concretely each landmark tree gets a DFS interval labeling: a node's
// label is its preorder index, its subtree owns the contiguous interval
// [label, label+descendants), and forwarding from the landmark follows the
// unique child whose interval contains the destination label. Labels are
// fixed at ceil(log2(max tree size)) bits — O(log n) — trading the
// variable-length explicit route for a fixed-width label plus per-node
// child-interval state. The paper chose explicit routes because they are
// smaller in practice; BitsPerLabel vs the explicit-route mean makes that
// comparison measurable (see the AblationAddressing bench).
type IntervalTree struct {
	bitsPerLabel int
	label        []uint64       // preorder index within the node's tree
	desc         []uint64       // subtree size (including self)
	parent       []graph.NodeID // tree parent (None at landmarks)
	children     [][]graph.NodeID
	lmOf         []graph.NodeID
}

// BuildIntervals computes the interval labeling over a landmark
// shortest-path forest: parent[v] is v's predecessor on the path l_v ⇝ v
// (graph.None at landmarks), lmOf[v] the tree root.
func BuildIntervals(parent, lmOf []graph.NodeID) *IntervalTree {
	n := len(parent)
	t := &IntervalTree{
		bitsPerLabel: 1,
		label:        make([]uint64, n),
		desc:         make([]uint64, n),
		parent:       append([]graph.NodeID(nil), parent...),
		children:     make([][]graph.NodeID, n),
		lmOf:         append([]graph.NodeID(nil), lmOf...),
	}
	roots := make([]graph.NodeID, 0)
	for v := 0; v < n; v++ {
		if parent[v] == graph.None {
			roots = append(roots, graph.NodeID(v))
			continue
		}
		t.children[parent[v]] = append(t.children[parent[v]], graph.NodeID(v))
	}
	for v := range t.children {
		c := t.children[v]
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	maxTree := uint64(1)
	for _, r := range roots {
		size := t.dfsLabel(r, 0)
		if size > maxTree {
			maxTree = size
		}
	}
	t.bitsPerLabel = bits.Len64(maxTree - 1)
	if t.bitsPerLabel == 0 {
		t.bitsPerLabel = 1
	}
	return t
}

// dfsLabel assigns preorder labels below v starting at next; returns v's
// subtree size. Iterative to survive deep trees (a ring's landmark tree is
// a path of length n/2).
func (t *IntervalTree) dfsLabel(root graph.NodeID, start uint64) uint64 {
	// First pass: subtree sizes, children processed after all theirs
	// (post-order via explicit stack).
	type frame struct {
		v    graph.NodeID
		next int
	}
	stack := []frame{{v: root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(t.children[f.v]) {
			c := t.children[f.v][f.next]
			f.next++
			stack = append(stack, frame{v: c})
			continue
		}
		t.desc[f.v] = 1
		for _, c := range t.children[f.v] {
			t.desc[f.v] += t.desc[c]
		}
		stack = stack[:len(stack)-1]
	}
	// Second pass: preorder labels.
	t.label[root] = start
	order := []graph.NodeID{root}
	for len(order) > 0 {
		v := order[len(order)-1]
		order = order[:len(order)-1]
		next := t.label[v] + 1
		for _, c := range t.children[v] {
			t.label[c] = next
			next += t.desc[c]
			order = append(order, c)
		}
	}
	return t.desc[root]
}

// BitsPerLabel returns the fixed label width: ceil(log2(max tree size)).
func (t *IntervalTree) BitsPerLabel() int { return t.bitsPerLabel }

// LabelOf returns v's fixed-size label within its landmark's tree.
func (t *IntervalTree) LabelOf(v graph.NodeID) uint64 { return t.label[v] }

// LandmarkOf returns the tree root owning v.
func (t *IntervalTree) LandmarkOf(v graph.NodeID) graph.NodeID { return t.lmOf[v] }

// ChildIntervals returns v's forwarding table in this scheme: each child
// with the label interval it owns. This is the per-node state the variant
// trades the explicit route for.
func (t *IntervalTree) ChildIntervals(v graph.NodeID) []struct {
	Child  graph.NodeID
	Lo, Hi uint64
} {
	out := make([]struct {
		Child  graph.NodeID
		Lo, Hi uint64
	}, 0, len(t.children[v]))
	for _, c := range t.children[v] {
		out = append(out, struct {
			Child  graph.NodeID
			Lo, Hi uint64
		}{Child: c, Lo: t.label[c], Hi: t.label[c] + t.desc[c]})
	}
	return out
}

// Route walks from the landmark down to the node labeled `label`, at each
// hop following the unique child whose interval contains the label.
func (t *IntervalTree) Route(lm graph.NodeID, label uint64) ([]graph.NodeID, error) {
	if t.parent[lm] != graph.None {
		return nil, fmt.Errorf("addr: %d is not a landmark/tree root", lm)
	}
	if label >= t.desc[lm] {
		return nil, fmt.Errorf("addr: label %d outside tree of %d (size %d)", label, lm, t.desc[lm])
	}
	path := []graph.NodeID{lm}
	cur := lm
	for t.label[cur] != label {
		next := graph.None
		for _, c := range t.children[cur] {
			if label >= t.label[c] && label < t.label[c]+t.desc[c] {
				next = c
				break
			}
		}
		if next == graph.None {
			return nil, fmt.Errorf("addr: label %d unroutable at node %d", label, cur)
		}
		path = append(path, next)
		cur = next
	}
	return path, nil
}
