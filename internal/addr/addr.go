// Package addr implements Disco addresses (§4.2): the identifier of a
// node's closest landmark l_v paired with an explicit route l_v⇝v, encoded
// compactly — each hop at a node of degree d costs ceil(log2 d) bits (the
// per-hop label is the next-hop's index, "port", in the node's sorted
// neighbor list, following the format of Pathlet routing [19]). Addresses
// are variable-length and location-dependent, but are used only internally
// by the protocol and updated as the topology changes; names stay flat.
package addr

import (
	"fmt"

	"disco/internal/bits"
	"disco/internal/graph"
)

// Address is a node's routable locator: its nearest landmark plus the
// explicit route from that landmark to the node.
type Address struct {
	Landmark graph.NodeID   // the node's closest landmark l_v
	Dest     graph.NodeID   // the node itself (for simulator bookkeeping)
	Ports    []uint16       // per-hop ports along l_v⇝v ([] if Dest == Landmark)
	Path     []graph.NodeID // the full node path l_v⇝v (len = len(Ports)+1)
	bitLen   int            // encoded explicit-route size in bits
}

// Make builds the address for the node at the end of path, where path is
// the shortest path from its nearest landmark (path[0]) to the node
// (path[len-1]). The graph must be Finalized.
func Make(g *graph.Graph, path []graph.NodeID) Address {
	if len(path) == 0 {
		panic("addr: empty path")
	}
	a := Address{
		Landmark: path[0],
		Dest:     path[len(path)-1],
		Path:     append([]graph.NodeID(nil), path...),
	}
	var w bits.Writer
	w.WriteGamma(uint64(len(path))) // hop count + 1, >= 1
	for i := 0; i+1 < len(path); i++ {
		p := g.PortOf(path[i], path[i+1])
		if p < 0 {
			panic(fmt.Sprintf("addr: path step %d: %d-%d not adjacent", i, path[i], path[i+1]))
		}
		a.Ports = append(a.Ports, uint16(p))
		w.WriteBits(uint64(p), bits.Width(g.Degree(path[i])))
	}
	a.bitLen = w.Len()
	return a
}

// Bits returns the encoded size of the explicit route in bits (including
// the hop-count prefix). This is the quantity behind the paper's
// address-size measurements ("maximum size of our addresses is just 10.625
// bytes", §4.2).
func (a Address) Bits() int { return a.bitLen }

// Bytes returns the explicit-route size rounded up to whole bytes.
func (a Address) Bytes() float64 { return float64((a.bitLen + 7) / 8) }

// Hops returns the number of hops on the explicit route.
func (a Address) Hops() int { return len(a.Ports) }

// Encode serializes the explicit route to a bit string; Decode re-walks it
// over the graph from the landmark. Encode/Decode exist to prove the wire
// format is self-contained — the simulator uses the cached Path.
func (a Address) Encode(g *graph.Graph) ([]byte, int) {
	var w bits.Writer
	w.WriteGamma(uint64(len(a.Path)))
	for i, p := range a.Ports {
		w.WriteBits(uint64(p), bits.Width(g.Degree(a.Path[i])))
	}
	return w.Bytes(), w.Len()
}

// Decode reconstructs the node path from an encoded explicit route starting
// at the given landmark.
func Decode(g *graph.Graph, lm graph.NodeID, buf []byte, nbit int) ([]graph.NodeID, error) {
	r := bits.NewReader(buf, nbit)
	pathLen := r.ReadGamma()
	if pathLen == 0 || pathLen > uint64(g.N()) {
		return nil, fmt.Errorf("addr: bad path length %d", pathLen)
	}
	path := make([]graph.NodeID, 1, pathLen)
	path[0] = lm
	cur := lm
	for i := uint64(1); i < pathLen; i++ {
		w := bits.Width(g.Degree(cur))
		if r.Remaining() < w {
			return nil, fmt.Errorf("addr: truncated route (%d bits left, need %d)", r.Remaining(), w)
		}
		port := r.ReadBits(w)
		if int(port) >= g.Degree(cur) {
			return nil, fmt.Errorf("addr: port %d out of range at node %d (degree %d)", port, cur, g.Degree(cur))
		}
		cur = g.NeighborAt(cur, int(port)).To
		path = append(path, cur)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("addr: %d trailing bits after route", r.Remaining())
	}
	return path, nil
}

// Reverse returns the reversed node path v⇝l_v. The paper's protocol
// assumes routes are usable in both directions (§6 policy discussion);
// the simulator uses this for the "reverse route" shortcutting heuristics.
func (a Address) Reverse() []graph.NodeID {
	out := make([]graph.NodeID, len(a.Path))
	for i, v := range a.Path {
		out[len(out)-1-i] = v
	}
	return out
}

// SizeModel converts routing-table entries to bytes for the Fig. 7 style
// accounting: every stored entry carries a destination name and an address
// (landmark name + explicit route). NameBytes is 4 to model IPv4-sized
// names and 16 for IPv6-sized names.
type SizeModel struct {
	NameBytes int
}

// EntryBytes returns the size of a full name→address table entry.
func (m SizeModel) EntryBytes(a Address) float64 {
	return float64(2*m.NameBytes) + a.Bytes()
}

// PlainEntryBytes returns the size of a table entry that stores only a
// destination name and a next hop (vicinity, cluster and landmark routing
// entries): name + next-hop port (2 bytes).
func (m SizeModel) PlainEntryBytes() float64 {
	return float64(m.NameBytes) + 2
}
