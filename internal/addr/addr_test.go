package addr

import (
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/topology"
)

func TestMakeSimplePath(t *testing.T) {
	g := topology.Line(5)
	a := Make(g, []graph.NodeID{0, 1, 2, 3})
	if a.Landmark != 0 || a.Dest != 3 {
		t.Fatalf("endpoints wrong: %+v", a)
	}
	if a.Hops() != 3 {
		t.Errorf("hops %d want 3", a.Hops())
	}
	if a.Bits() <= 0 {
		t.Error("encoded size must be positive")
	}
}

func TestSelfAddress(t *testing.T) {
	g := topology.Line(3)
	a := Make(g, []graph.NodeID{1})
	if a.Landmark != 1 || a.Dest != 1 || a.Hops() != 0 {
		t.Fatalf("self address wrong: %+v", a)
	}
	// Encoded size: just the gamma-coded path length 1 = 1 bit.
	if a.Bits() != 1 {
		t.Errorf("self address bits %d want 1", a.Bits())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := topology.Gnm(rng, 200, 800)
	s := graph.NewSSSP(g)
	for trial := 0; trial < 50; trial++ {
		src := graph.NodeID(rng.Intn(g.N()))
		dst := graph.NodeID(rng.Intn(g.N()))
		s.Run(src)
		path := s.PathTo(dst)
		if path == nil {
			continue
		}
		a := Make(g, path)
		buf, nbit := a.Encode(g)
		if nbit != a.Bits() {
			t.Fatalf("Encode bits %d != Make bits %d", nbit, a.Bits())
		}
		got, err := Decode(g, src, buf, nbit)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(path) {
			t.Fatalf("decoded path len %d want %d", len(got), len(path))
		}
		for i := range got {
			if got[i] != path[i] {
				t.Fatalf("decoded path differs at %d: %v vs %v", i, got, path)
			}
		}
	}
}

func TestDegreeOneCostsZeroBits(t *testing.T) {
	// On a line, interior nodes have degree 2 (1 bit/hop); endpoints
	// degree 1 (0 bits). Path 0->1->2: hop at 0 (deg 1, 0 bits), hop at 1
	// (deg 2, 1 bit); gamma(3) = 3 bits. Total 4.
	g := topology.Line(3)
	a := Make(g, []graph.NodeID{0, 1, 2})
	if a.Bits() != 4 {
		t.Errorf("bits %d want 4", a.Bits())
	}
}

func TestRingAddressGrowth(t *testing.T) {
	// On a ring, explicit routes can be long (§4.2 worst case): an
	// address across half the ring must cost ~hops bits.
	g := topology.Ring(64)
	s := graph.NewSSSP(g)
	s.Run(0)
	path := s.PathTo(32)
	a := Make(g, path)
	if a.Hops() != 32 {
		t.Fatalf("hops %d want 32", a.Hops())
	}
	if a.Bits() < 32 {
		t.Errorf("ring address should cost at least 1 bit/hop, got %d bits", a.Bits())
	}
}

func TestReverse(t *testing.T) {
	g := topology.Line(4)
	a := Make(g, []graph.NodeID{0, 1, 2, 3})
	r := a.Reverse()
	want := []graph.NodeID{3, 2, 1, 0}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("reverse %v want %v", r, want)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	g := topology.Star(5)
	// Claim a 10-node path on a 5-node star with a port stream of ones.
	buf := []byte{0xFF, 0xFF}
	if _, err := Decode(g, 0, buf, 16); err == nil {
		t.Error("expected error decoding garbage")
	}
}

func TestSizeModel(t *testing.T) {
	g := topology.Line(5)
	a := Make(g, []graph.NodeID{0, 1, 2})
	v4 := SizeModel{NameBytes: 4}
	v6 := SizeModel{NameBytes: 16}
	if v4.EntryBytes(a) != 8+a.Bytes() {
		t.Errorf("v4 entry bytes %v", v4.EntryBytes(a))
	}
	if v6.EntryBytes(a) != 32+a.Bytes() {
		t.Errorf("v6 entry bytes %v", v6.EntryBytes(a))
	}
	if v4.PlainEntryBytes() != 6 || v6.PlainEntryBytes() != 18 {
		t.Error("plain entry bytes wrong")
	}
}

func TestAddressSizeOnInternetLikeMap(t *testing.T) {
	// The §4.2 measurement: explicit routes on a router-level map are a
	// few bytes on average. On our synthetic 4000-node router-like map
	// with ~130 landmarks the mean must stay well under 8 bytes.
	rng := rand.New(rand.NewSource(9))
	g := topology.RouterLike(rng, 4000)
	// Pick random landmarks (~sqrt(n log n)).
	perm := rng.Perm(g.N())
	lms := make([]graph.NodeID, 130)
	for i := range lms {
		lms[i] = graph.NodeID(perm[i])
	}
	s := graph.NewSSSP(g)
	s.RunMulti(lms)
	total, count, max := 0.0, 0, 0.0
	for v := 0; v < g.N(); v++ {
		path := s.PathTo(graph.NodeID(v))
		if path == nil {
			t.Fatal("disconnected?")
		}
		a := Make(g, path)
		b := float64(a.Bits()) / 8
		total += b
		count++
		if b > max {
			max = b
		}
	}
	mean := total / float64(count)
	if mean > 8 {
		t.Errorf("mean explicit-route size %.2f bytes implausibly large", mean)
	}
	if max > 40 {
		t.Errorf("max explicit-route size %.2f bytes implausibly large", max)
	}
	t.Logf("address sizes on router-like map: mean=%.2fB max=%.2fB", mean, max)
}
