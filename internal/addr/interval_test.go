package addr

import (
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/topology"
)

// buildForest computes a landmark forest over g (multi-source shortest
// paths from the given landmark set).
func buildForest(g *graph.Graph, lms []graph.NodeID) (parent, lmOf []graph.NodeID) {
	s := graph.NewSSSP(g)
	s.RunMulti(lms)
	n := g.N()
	parent = make([]graph.NodeID, n)
	lmOf = make([]graph.NodeID, n)
	for v := 0; v < n; v++ {
		parent[v] = s.Parent(graph.NodeID(v))
		lmOf[v] = s.Source(graph.NodeID(v))
	}
	return parent, lmOf
}

func TestIntervalRoutesEveryNode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := topology.Gnm(rng, 400, 1600)
	lms := []graph.NodeID{3, 77, 200, 311}
	parent, lmOf := buildForest(g, lms)
	it := BuildIntervals(parent, lmOf)
	for v := 0; v < g.N(); v++ {
		path, err := it.Route(lmOf[v], it.LabelOf(graph.NodeID(v)))
		if err != nil {
			t.Fatalf("route to %d: %v", v, err)
		}
		if path[0] != lmOf[v] || path[len(path)-1] != graph.NodeID(v) {
			t.Fatalf("path endpoints wrong for %d: %v", v, path)
		}
		// The interval route must follow the same tree as the forest: its
		// length equals the tree path length.
		want := 0
		for u := graph.NodeID(v); u != graph.None; u = parent[u] {
			want++
		}
		if len(path) != want {
			t.Fatalf("node %d: interval path %d hops want %d", v, len(path), want)
		}
	}
}

func TestIntervalLabelsUniquePerTree(t *testing.T) {
	g := topology.Ring(64)
	parent, lmOf := buildForest(g, []graph.NodeID{0, 32})
	it := BuildIntervals(parent, lmOf)
	seen := map[[2]uint64]bool{}
	for v := 0; v < g.N(); v++ {
		key := [2]uint64{uint64(lmOf[v]), it.LabelOf(graph.NodeID(v))}
		if seen[key] {
			t.Fatalf("duplicate label %v", key)
		}
		seen[key] = true
	}
}

func TestIntervalBitsAreLogOfTreeSize(t *testing.T) {
	// One landmark on a 1024-node graph: tree size 1024 -> 10 bits.
	g := topology.Gnm(rand.New(rand.NewSource(2)), 1024, 4096)
	parent, lmOf := buildForest(g, []graph.NodeID{5})
	it := BuildIntervals(parent, lmOf)
	if it.BitsPerLabel() != 10 {
		t.Fatalf("bits %d want 10", it.BitsPerLabel())
	}
	// Many landmarks -> smaller trees -> fewer bits.
	lms := make([]graph.NodeID, 0, 64)
	for i := 0; i < 64; i++ {
		lms = append(lms, graph.NodeID(i*16))
	}
	parent, lmOf = buildForest(g, lms)
	it2 := BuildIntervals(parent, lmOf)
	if it2.BitsPerLabel() >= it.BitsPerLabel() {
		t.Fatalf("more landmarks should shrink labels: %d vs %d", it2.BitsPerLabel(), it.BitsPerLabel())
	}
}

func TestIntervalDeepTree(t *testing.T) {
	// A ring with one landmark yields a path-shaped tree of depth n/2:
	// exercises the iterative DFS.
	g := topology.Ring(2000)
	parent, lmOf := buildForest(g, []graph.NodeID{0})
	it := BuildIntervals(parent, lmOf)
	for _, v := range []graph.NodeID{1, 999, 1000, 1999} {
		path, err := it.Route(0, it.LabelOf(v))
		if err != nil {
			t.Fatalf("route to %d: %v", v, err)
		}
		if path[len(path)-1] != v {
			t.Fatalf("wrong destination")
		}
	}
}

func TestIntervalChildState(t *testing.T) {
	g := topology.Star(10)
	parent, lmOf := buildForest(g, []graph.NodeID{0})
	it := BuildIntervals(parent, lmOf)
	ci := it.ChildIntervals(0)
	if len(ci) != 9 {
		t.Fatalf("root should have 9 child intervals, got %d", len(ci))
	}
	// Intervals partition [1, 10) with each leaf owning one slot.
	used := map[uint64]bool{}
	for _, c := range ci {
		if c.Hi != c.Lo+1 {
			t.Fatalf("leaf interval should be a single slot: %+v", c)
		}
		if used[c.Lo] {
			t.Fatalf("overlapping intervals")
		}
		used[c.Lo] = true
	}
	// Leaves have no children.
	if len(it.ChildIntervals(3)) != 0 {
		t.Fatal("leaf should have no child intervals")
	}
}

func TestIntervalRouteErrors(t *testing.T) {
	g := topology.Line(6)
	parent, lmOf := buildForest(g, []graph.NodeID{0})
	it := BuildIntervals(parent, lmOf)
	if _, err := it.Route(3, 0); err == nil {
		t.Fatal("routing from a non-root must error")
	}
	if _, err := it.Route(0, 99); err == nil {
		t.Fatal("out-of-tree label must error")
	}
}

func TestIntervalVsExplicitSizes(t *testing.T) {
	// The paper's stated reason for explicit routes: in practice they are
	// compact. Compare the fixed label width to the mean explicit-route
	// width on a router-like map with sqrt(n log n) landmarks.
	rng := rand.New(rand.NewSource(4))
	g := topology.RouterLike(rng, 4096)
	perm := rng.Perm(g.N())
	lms := make([]graph.NodeID, 220)
	for i := range lms {
		lms[i] = graph.NodeID(perm[i])
	}
	parent, lmOf := buildForest(g, lms)
	it := BuildIntervals(parent, lmOf)

	s := graph.NewSSSP(g)
	s.RunMulti(lms)
	totalBits := 0
	for v := 0; v < g.N(); v++ {
		totalBits += Make(g, s.PathTo(graph.NodeID(v))).Bits()
	}
	meanExplicit := float64(totalBits) / float64(g.N())
	t.Logf("explicit mean %.1f bits vs fixed label %d bits (tree max %d nodes)",
		meanExplicit, it.BitsPerLabel(), 1<<uint(it.BitsPerLabel()))
	if it.BitsPerLabel() <= 0 || it.BitsPerLabel() > 16 {
		t.Fatalf("label width %d implausible", it.BitsPerLabel())
	}
}
