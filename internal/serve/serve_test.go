package serve_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"disco/internal/core"
	"disco/internal/dynamics"
	"disco/internal/graph"
	"disco/internal/serve"
	"disco/internal/snapshot"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

// buildServeEnv builds a small converged environment, its snapshot and the
// Disco instance query forks derive from.
func buildServeEnv(t *testing.T, n int, seed int64) (*static.Env, *snapshot.Snapshot, *core.Disco) {
	t.Helper()
	g := topology.GnmAvgDeg(rand.New(rand.NewSource(seed)), n, 8)
	env := static.NewEnv(g, seed)
	base, err := snapshot.Build(g, vicinity.DefaultK(n), env.Landmarks)
	if err != nil {
		t.Fatalf("snapshot build: %v", err)
	}
	return env, base, core.NewDisco(env, core.WithSeed(seed))
}

// routeKey canonicalizes one answer for comparison with the reference
// answer recomputed on the same epoch after the storm.
func routeKey(r serve.Result) string {
	if !r.OK {
		return "unreachable"
	}
	return fmt.Sprint(r.Route)
}

// obs is one recorded concurrent answer.
type obs struct {
	pair  int
	later bool
	epoch uint64
	key   string
}

// TestServeConcurrentStorm is the serve path's race suite: N query
// goroutines run a closed loop against the plane while the publisher
// drives a fail/recover storm through a dynamics.Timeline, publishing
// every post-event snapshot. Asserts, per the epoch/staleness contract:
//
//   - zero failed or torn reads (every query completes; -race catches
//     tearing);
//   - epochs observed by each goroutine are monotone non-decreasing;
//   - every answer is byte-identical to the answer its epoch's snapshot
//     gives when re-routed deterministically after the storm — i.e. every
//     concurrent answer is correct for SOME published epoch (linearizable
//     staleness), never a blend of two;
//   - reclamation accounting closes: once all readers leave, every
//     superseded epoch has been retired and only the current one is live.
func TestServeConcurrentStorm(t *testing.T) {
	const (
		n        = 192
		seed     = 3
		queriers = 8
		events   = 24
		npairs   = 16
	)
	env, base, d := buildServeEnv(t, n, seed)
	plane := serve.NewPlane(base, func(rep *snapshot.Snapshot) dynamics.Router {
		return d.ForkRepaired(rep)
	})
	tl := dynamics.NewTimeline(base)

	// Fixed query pairs so post-storm verification covers every observation.
	prng := rand.New(rand.NewSource(seed * 7))
	pairs := make([][2]graph.NodeID, npairs)
	for i := range pairs {
		pairs[i] = [2]graph.NodeID{graph.NodeID(prng.Intn(n)), graph.NodeID(prng.Intn(n))}
	}

	var done atomic.Bool
	recs := make([][]obs, queriers)
	var wg sync.WaitGroup
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(q)))
			for !done.Load() {
				pi := rng.Intn(npairs)
				later := rng.Intn(2) == 1
				res := plane.Route(pairs[pi][0], pairs[pi][1], later)
				recs[q] = append(recs[q], obs{pair: pi, later: later, epoch: res.Epoch, key: routeKey(res)})
			}
		}(q)
	}

	// The publisher: a deterministic storm over the timeline, keeping every
	// published snapshot for post-hoc verification. Epoch seq == published
	// count == tl.Version().
	published := []*snapshot.Snapshot{base}
	erng := rand.New(rand.NewSource(seed * 13))
	edges := env.G.EdgeList()
	for ev := 0; ev < events; ev++ {
		var err error
		if tl.DownCount() == 0 || erng.Intn(2) == 0 {
			var link graph.EdgeKey
			for {
				link = edges[erng.Intn(len(edges))]
				if !tl.IsDown(link) {
					break
				}
			}
			_, err = tl.Fail([]graph.EdgeKey{link})
		} else {
			down := tl.Down()
			_, err = tl.Recover(down[erng.Intn(len(down)):][:1])
		}
		if err != nil {
			done.Store(true)
			wg.Wait()
			t.Fatalf("storm event %d: %v", ev, err)
		}
		seq, perr := plane.Publish(tl.Snapshot())
		if perr != nil {
			t.Fatalf("publish event %d: %v", ev, perr)
		}
		if seq != tl.Version() {
			t.Errorf("published seq %d != timeline version %d", seq, tl.Version())
		}
		published = append(published, tl.Snapshot())
	}
	done.Store(true)
	wg.Wait()

	// Monotone epochs per goroutine.
	total := 0
	for q, rs := range recs {
		last := uint64(0)
		for i, o := range rs {
			if o.epoch < last {
				t.Fatalf("querier %d observed epoch %d after %d (obs %d): epochs must be monotone", q, o.epoch, last, i)
			}
			last = o.epoch
		}
		total += len(rs)
	}
	if total == 0 {
		t.Fatal("no queries completed during the storm")
	}

	// Every distinct (epoch, pair, phase) answer must equal the
	// deterministic re-route on that epoch's snapshot: correct for some
	// published epoch, and never a blend of two.
	type qk struct {
		epoch uint64
		pair  int
		later bool
	}
	want := make(map[qk]string)
	for _, rs := range recs {
		for _, o := range rs {
			k := qk{o.epoch, o.pair, o.later}
			ref, ok := want[k]
			if !ok {
				if o.epoch >= uint64(len(published)) {
					t.Fatalf("observed epoch %d beyond the %d published", o.epoch, len(published))
				}
				fork := d.ForkRepaired(published[o.epoch])
				var res serve.Result
				if o.later {
					res.Route, res.OK = fork.RepairedLaterRoute(pairs[o.pair][0], pairs[o.pair][1])
				} else {
					res.Route, res.OK = fork.RepairedFirstRoute(pairs[o.pair][0], pairs[o.pair][1])
				}
				res.Epoch = o.epoch
				ref = routeKey(res)
				want[k] = ref
			}
			if o.key != ref {
				t.Fatalf("epoch %d pair %v later=%v: concurrent answer %q != deterministic per-epoch answer %q",
					k.epoch, pairs[o.pair], o.later, o.key, ref)
			}
		}
	}

	// Reclamation accounting: every superseded epoch retired, current live.
	m := plane.Metrics()
	if m.Published != events+1 {
		t.Fatalf("published = %d, want %d", m.Published, events+1)
	}
	if m.Retired != m.Published-1 {
		t.Fatalf("retired = %d with all readers gone, want %d (every superseded epoch)", m.Retired, m.Published-1)
	}
	if m.Queries != uint64(total) {
		t.Fatalf("plane counted %d queries, queriers recorded %d", m.Queries, total)
	}
	if plane.Current() != uint64(events) {
		t.Fatalf("current epoch = %d, want %d", plane.Current(), events)
	}
}

// TestPlaneSingleThreadContract checks the plane's sequencing on one
// goroutine: the base publishes as epoch 0, Publish returns consecutive
// sequence numbers, fresh answers are not stale, and counters add up.
func TestPlaneSingleThreadContract(t *testing.T) {
	_, base, d := buildServeEnv(t, 96, 5)
	plane := serve.NewPlane(base, func(rep *snapshot.Snapshot) dynamics.Router {
		return d.ForkRepaired(rep)
	})
	if plane.Current() != 0 {
		t.Fatalf("base epoch = %d, want 0", plane.Current())
	}
	res := plane.Route(1, 2, false)
	if res.Epoch != 0 || res.Stale {
		t.Fatalf("fresh query on the base: %+v", res)
	}
	if !res.OK || len(res.Route) == 0 {
		t.Fatalf("connected pair undeliverable on the base snapshot: %+v", res)
	}
	tl := dynamics.NewTimeline(base)
	link := (graph.EdgeKey{U: res.Route[0], V: res.Route[1]}).Norm()
	if len(res.Route) == 1 { // s==t path degenerate; pick any edge instead
		link = base.Graph().EdgeList()[0]
	}
	if _, err := tl.Fail([]graph.EdgeKey{link}); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if seq, err := plane.Publish(tl.Snapshot()); err != nil || seq != 1 {
		t.Fatalf("second publish = (%d, %v), want (1, nil)", seq, err)
	}
	res = plane.Route(1, 2, true)
	if res.Epoch != 1 || res.Stale {
		t.Fatalf("query after publish: %+v", res)
	}
	m := plane.Metrics()
	if m.Queries != 2 || m.Published != 2 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.Retired != 1 {
		t.Fatalf("retired = %d: the superseded base epoch had no readers left", m.Retired)
	}
}

// TestPlaneClose pins the lifecycle fix: before Close the final epoch's
// publisher reference keeps it live (Retired == Published-1 forever, the
// leak); after Close with no in-flight readers every epoch — the last one
// included — is reclaimed, later Publish fails with ErrClosed, queries
// answer OK=false without disturbing the counters, and closing again is a
// no-op.
func TestPlaneClose(t *testing.T) {
	_, base, d := buildServeEnv(t, 96, 5)
	plane := serve.NewPlane(base, func(rep *snapshot.Snapshot) dynamics.Router {
		return d.ForkRepaired(rep)
	})
	tl := dynamics.NewTimeline(base)
	if _, err := tl.Fail(base.Graph().EdgeList()[:1]); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if _, err := plane.Publish(tl.Snapshot()); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	res := plane.Route(1, 2, false)
	if res.Epoch != 1 {
		t.Fatalf("pre-close query answered on epoch %d, want 1", res.Epoch)
	}
	if m := plane.Metrics(); m.Retired != m.Published-1 {
		t.Fatalf("pre-close: retired = %d, want %d (the current epoch is still held)", m.Retired, m.Published-1)
	}

	plane.Close()
	m := plane.Metrics()
	if m.Published != 2 {
		t.Fatalf("published = %d, want 2", m.Published)
	}
	if m.Retired != m.Published {
		t.Fatalf("after Close with no in-flight readers: retired = %d, want %d (the final epoch must be reclaimed too)", m.Retired, m.Published)
	}
	if _, err := plane.Publish(tl.Snapshot()); err != serve.ErrClosed {
		t.Fatalf("Publish after Close: err = %v, want ErrClosed", err)
	}
	if res := plane.Route(1, 2, false); res.OK {
		t.Fatal("Route after Close must answer OK=false")
	}
	if res := plane.Probe(1, 2, true); res.OK {
		t.Fatal("Probe after Close must answer OK=false")
	}
	if got := plane.Metrics(); got.Queries != m.Queries {
		t.Fatalf("closed-plane queries must not count: %d -> %d", m.Queries, got.Queries)
	}
	plane.Close() // idempotent: must not double-release or panic
	if got := plane.Metrics(); got.Retired != m.Retired {
		t.Fatalf("second Close changed retired: %d -> %d", m.Retired, got.Retired)
	}
}
