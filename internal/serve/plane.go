// Package serve is the lock-free query plane over the snapshot chain: the
// long-running serving mode routes queries concurrently WITH the repair
// loop that drives a dynamics.Timeline through fail/recover events,
// instead of the batch build→route→print shape of every experiment before
// it.
//
// The design is an atomically published epoch with reference-counted
// reclamation:
//
//   - The publisher (the repair loop) owns the timeline exclusively. After
//     each event it wraps the post-event snapshot in a snapshot.Handle and
//     swaps it into the plane's atomic current-epoch pointer; the
//     superseded epoch's publisher reference is released, so the old
//     chain state is reclaimed the moment its last in-flight reader
//     leaves — never under one. Reclamation includes spilled storage: the
//     handle holds its own reference on the snapshot's mapped shard file
//     (if any) and drops it at refs-zero, so retiring an epoch unmaps a
//     folded-away base's pages on the same schedule it frees its heap.
//   - Query goroutines never lock: they load the current epoch, pin it
//     with Handle.TryRetain (re-loading on the rare retire race), route on
//     a pooled per-epoch protocol fork, release, and report the epoch they
//     answered on. The only mutable shared word on the query path is the
//     epoch pointer itself.
//   - Each epoch keeps a sync.Pool of routing forks, so a query costs one
//     pool Get/Put instead of a fork construction, and forks never migrate
//     between epochs (a fork reads only its own epoch's snapshot).
//
// Why results stay deterministic per epoch: a routing fork is a pure
// function of (snapshot, s, t) — snapshots are immutable, forks own all
// their scratch, and every tie-break in the underlying Dijkstra is by node
// ID. Concurrency therefore only chooses WHICH published epoch answers a
// query (the staleness the metrics report), never what any given epoch
// answers — which is what the race suite's "correct for some published
// epoch" linearizable-staleness check asserts, and why the serve-storm
// experiment's per-epoch event log is byte-identical across runs while
// qps and latency are measured quantities.
package serve

import (
	"errors"
	"sync"
	"sync/atomic"

	"disco/internal/dynamics"
	"disco/internal/graph"
	"disco/internal/snapshot"
)

// ErrClosed is returned by Publish/PublishWith after Close: a closed
// plane accepts no new epochs (and answers no further queries).
var ErrClosed = errors.New("serve: plane is closed")

// ForkFunc builds a fresh query-side routing view over one published
// snapshot. It must return a view that is safe for exclusive use by one
// goroutine at a time (the plane pools and reuses views, never shares one
// concurrently). A view that additionally implements
// dynamics.AppendRouter upgrades the Probe path to allocation-free
// serving.
type ForkFunc func(snap *snapshot.Snapshot) dynamics.Router

// slot is one pooled query context: the routing view plus the reusable
// route buffer the allocation-free Probe path appends into.
type slot struct {
	r   dynamics.Router
	buf []graph.NodeID
}

// Epoch is one published (sequence, snapshot) pair plus its fork pool.
type Epoch struct {
	seq  uint64
	h    *snapshot.Handle
	pool sync.Pool
}

// Seq returns the epoch's publication sequence number (0 = the base).
func (e *Epoch) Seq() uint64 { return e.seq }

// Plane is the serving query plane: an atomic published-epoch pointer
// queries read lock-free while a background repair loop publishes
// post-event snapshots. Create with NewPlane; Publish from ONE publisher
// goroutine; Route from any number of query goroutines.
type Plane struct {
	fork   ForkFunc
	cur    atomic.Pointer[Epoch]
	closed atomic.Bool

	published atomic.Uint64 // epochs ever published (incl. the base)
	retired   atomic.Uint64 // superseded epochs whose last reader left
	queries   atomic.Uint64
	delivered atomic.Uint64
	stale     atomic.Uint64
}

// NewPlane publishes base as epoch 0 and returns the plane.
func NewPlane(base *snapshot.Snapshot, fork ForkFunc) *Plane {
	p := &Plane{fork: fork}
	p.Publish(base) // cannot fail: the plane is not closed yet
	return p
}

// Publish atomically installs snap as the new current epoch and returns
// its sequence number, forking query views with the plane's ForkFunc. The
// superseded epoch's publisher reference is released; its state is
// reclaimed once the last in-flight query on it completes.
// Single-publisher: callers must serialize Publish (the repair loop owns
// the timeline anyway). Returns ErrClosed after Close.
func (p *Plane) Publish(snap *snapshot.Snapshot) (uint64, error) {
	return p.PublishWith(snap, p.fork)
}

// PublishWith is Publish with a per-epoch ForkFunc — the hook the
// table-backed serving mode uses to bind each epoch to the forwarding
// tables derived for exactly that snapshot, instead of a plane-lifetime
// closure over mutable state.
func (p *Plane) PublishWith(snap *snapshot.Snapshot, fork ForkFunc) (uint64, error) {
	if p.closed.Load() {
		return 0, ErrClosed
	}
	seq := p.published.Add(1) - 1
	e := &Epoch{seq: seq}
	e.h = snapshot.NewHandle(snap, seq, func() { p.retired.Add(1) })
	e.pool.New = func() any { return &slot{r: fork(snap)} }
	if old := p.cur.Swap(e); old != nil {
		old.h.Release()
	}
	return seq, nil
}

// Close retires the plane: the current epoch's publisher reference is
// released (so with no in-flight readers Retired reaches Published) and
// subsequent Publish calls fail with ErrClosed; queries racing with Close
// return the zero Result (OK=false) without touching the counters.
// Idempotent. Call when the serving loop is done — without it, the final
// epoch's reclamation hook never fires and a long-running plane pins the
// tail of the snapshot chain forever.
func (p *Plane) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	if old := p.cur.Swap(nil); old != nil {
		old.h.Release()
	}
}

// acquire pins the current epoch for one read-side critical section. The
// TryRetain re-load loop is the whole reclamation protocol: a failed
// retain means the loaded epoch was retired in the load→retain window,
// and the publication pointer has necessarily moved on — or, after Close,
// gone entirely (nil: the caller answers OK=false).
func (p *Plane) acquire() *Epoch {
	for {
		e := p.cur.Load()
		if e == nil {
			return nil
		}
		if e.h.TryRetain() {
			return e
		}
	}
}

// Result is one answered query: the route (nil when the destination is
// unreachable on the answering epoch), the epoch that answered, and
// whether a newer epoch had already been published by completion time —
// the per-query staleness bit the metrics aggregate.
type Result struct {
	Route []graph.NodeID
	OK    bool
	Epoch uint64
	Stale bool
}

// Route answers one route query lock-free on the current epoch: first
// packets resolve the destination's name (later=false), later packets
// carry the address from the handshake (later=true). Safe for any number
// of concurrent callers.
func (p *Plane) Route(s, t graph.NodeID, later bool) Result {
	e := p.acquire()
	if e == nil {
		return Result{}
	}
	sl := e.pool.Get().(*slot)
	var route []graph.NodeID
	var ok bool
	if later {
		route, ok = sl.r.RepairedLaterRoute(s, t)
	} else {
		route, ok = sl.r.RepairedFirstRoute(s, t)
	}
	e.pool.Put(sl)
	return p.finish(e, route, ok)
}

// Probe is Route without the route: it answers deliverability on the
// current epoch and drops the path — the closed-loop load generator's
// entry point. When the epoch's fork implements dynamics.AppendRouter the
// route is materialized into the slot's pooled buffer and the whole query
// allocates nothing; otherwise it falls back to the ordinary routing
// call and discards the slice.
func (p *Plane) Probe(s, t graph.NodeID, later bool) Result {
	e := p.acquire()
	if e == nil {
		return Result{}
	}
	sl := e.pool.Get().(*slot)
	var ok bool
	if ar, fast := sl.r.(dynamics.AppendRouter); fast {
		sl.buf, ok = ar.AppendRoute(sl.buf[:0], s, t, later)
	} else if later {
		_, ok = sl.r.RepairedLaterRoute(s, t)
	} else {
		_, ok = sl.r.RepairedFirstRoute(s, t)
	}
	e.pool.Put(sl)
	return p.finish(e, nil, ok)
}

// finish releases the pinned epoch, computes staleness and settles the
// counters — the shared tail of Route and Probe.
func (p *Plane) finish(e *Epoch, route []graph.NodeID, ok bool) Result {
	stale := p.cur.Load() != e
	e.h.Release()

	p.queries.Add(1)
	if ok {
		p.delivered.Add(1)
	}
	if stale {
		p.stale.Add(1)
	}
	return Result{Route: route, OK: ok, Epoch: e.seq, Stale: stale}
}

// Current returns the sequence number of the currently published epoch
// (0 after Close: the plane no longer has one).
func (p *Plane) Current() uint64 {
	if e := p.cur.Load(); e != nil {
		return e.seq
	}
	return 0
}

// Metrics is a consistent-enough point-in-time counter snapshot (each
// counter is individually atomic; the set is not read under one lock —
// fine for reporting, not for invariant proofs mid-storm).
type Metrics struct {
	Queries   uint64 // queries answered
	Delivered uint64 // queries whose destination was reachable on their epoch
	Stale     uint64 // queries whose epoch was superseded by completion time
	Published uint64 // epochs ever published (incl. the base)
	Retired   uint64 // superseded epochs fully reclaimed (last reader left)
}

// Metrics reads the plane's counters.
func (p *Plane) Metrics() Metrics {
	return Metrics{
		Queries:   p.queries.Load(),
		Delivered: p.delivered.Load(),
		Stale:     p.stale.Load(),
		Published: p.published.Load(),
		Retired:   p.retired.Load(),
	}
}
