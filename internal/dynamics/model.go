package dynamics

import (
	"fmt"

	"disco/internal/snapshot"
)

// MessageModel prices the control messages of one timeline event from its
// blast radius. The premise is the one the repair layer is built on: the
// distributed protocol's triggered updates re-derive exactly the route
// state the snapshot repair recomputes, and it pays messages for the
// routes that actually changed —
//
//	messages ≈ PerVicEntry·(changed vicinity entries) + PerRowNode·(changed forest parents)
//
// where "changed" is the symmetric difference RepairStats records between
// the pre- and post-event state (withdrawals plus announcements). The
// coefficients are calibrated against the event-driven sim/pathvector
// churn runs at n ≤ 1024 (see eval.CalibrateMessageModel), where the full
// triggered re-convergence is measured directly; that calibration is what
// lets the churn-timeline experiment price re-convergence at router-level
// 192,244 nodes, where the event-driven protocol cannot run.
type MessageModel struct {
	PerVicEntry float64 // messages per changed vicinity-window entry
	PerRowNode  float64 // messages per changed forest-row parent field
	CalN        int     // event-driven calibration size
}

// Messages returns the modeled total control messages of one event with
// blast radius st.
func (m MessageModel) Messages(st *snapshot.RepairStats) float64 {
	if st == nil {
		return 0
	}
	return m.PerVicEntry*float64(st.VicEntriesChanged) +
		m.PerRowNode*float64(st.RowNodesChanged)
}

// String renders the calibrated coefficients for experiment headers.
func (m MessageModel) String() string {
	return fmt.Sprintf("%.3f msg/vic-entry, %.3f msg/row-parent, calibrated event-driven at n=%d",
		m.PerVicEntry, m.PerRowNode, m.CalN)
}
