// Package dynamics is the continuous-dynamics engine: a deterministic
// timeline that drives a copy-on-write chain of route-state snapshots
// through interleaved fail/recover events (Timeline), the protocol-
// agnostic interface every repaired routing view presents to it (Router),
// and blast-radius-derived control-message accounting (MessageModel) that
// prices re-convergence at sizes the event-driven simulator cannot reach.
//
// The package deliberately knows nothing about individual protocols:
// core.NDDisco, core.Disco and s4.S4 satisfy Router structurally with
// their ForkRepaired views, and the experiment harness (internal/eval)
// assembles the legs. That is what lets the timeline engine, the failures
// experiment and the churn experiments share one routing path instead of
// special-casing three protocols each.
package dynamics

import "disco/internal/graph"

// Router is the protocol-agnostic repaired-routing interface: a routing
// view over a (possibly repaired) snapshot that forwards on post-event
// state only and reports undeliverable destinations as ok=false instead of
// panicking. core.NDDisco, core.Disco and s4.S4 ForkRepaired views all
// implement it.
type Router interface {
	// RepairedFirstRoute routes a flow's first packet s ⇝ t (resolution
	// detours included) on the repaired data plane.
	RepairedFirstRoute(s, t graph.NodeID) ([]graph.NodeID, bool)
	// RepairedLaterRoute routes packets after the handshake.
	RepairedLaterRoute(s, t graph.NodeID) ([]graph.NodeID, bool)
}

// AppendRouter is the optional allocation-free extension of Router: a
// view that can append the route into a caller-supplied buffer instead of
// returning a fresh slice. The serve plane's probe path upgrades to it
// when the installed fork provides it (forward.Router does); dst is only
// appended to, and on ok=false it comes back unextended.
type AppendRouter interface {
	Router
	AppendRoute(dst []graph.NodeID, s, t graph.NodeID, later bool) ([]graph.NodeID, bool)
}

// Leg is one (router, packet phase) column of a dynamics table — the unit
// the failures and churn-timeline experiments iterate over instead of
// hard-coding protocols.
type Leg struct {
	Name  string
	R     Router
	Later bool
}

// Route routes one pair over the leg.
func (l Leg) Route(s, t graph.NodeID) ([]graph.NodeID, bool) {
	if l.Later {
		return l.R.RepairedLaterRoute(s, t)
	}
	return l.R.RepairedFirstRoute(s, t)
}

// WalkToDest walks a packet along route toward t, diverting to the direct
// path at the first node that knows one: the To-Destination peel-off every
// protocol's repaired forwarding shares (vicinity membership for
// Disco/NDDisco, cluster membership for S4). The splice is final — on a
// shortest sub-path toward t every later node knows t too — so the walk
// returns immediately at the first hit, or the unmodified route when no
// node (before t itself) knows a direct path.
func WalkToDest(route []graph.NodeID, t graph.NodeID, knows func(u graph.NodeID) bool, direct func(u graph.NodeID) []graph.NodeID) []graph.NodeID {
	for i, u := range route {
		if u == t {
			return route[:i+1]
		}
		if knows(u) {
			return append(route[:i:i], direct(u)...)
		}
	}
	return route
}

// ReversePath returns p reversed into a fresh slice — the route s ⇝ t
// recovered from the destination's stored path t ⇝ s (the handshake of
// later packets; valid because links are undirected).
func ReversePath(p []graph.NodeID) []graph.NodeID {
	rev := make([]graph.NodeID, len(p))
	for i := range p {
		rev[len(p)-1-i] = p[i]
	}
	return rev
}
