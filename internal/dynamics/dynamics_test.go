package dynamics

import (
	"bytes"
	"math/rand"
	"testing"

	"disco/internal/graph"
	"disco/internal/snapshot"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vicinity"
)

func buildBase(t *testing.T, n int, seed int64) (*static.Env, *snapshot.Snapshot) {
	t.Helper()
	g := topology.GnmAvgDeg(rand.New(rand.NewSource(seed)), n, 8)
	env := static.NewEnv(g, seed)
	s, err := snapshot.Build(g, vicinity.DefaultK(n), env.Landmarks)
	if err != nil {
		t.Fatalf("snapshot build: %v", err)
	}
	return env, s
}

// TestTimelineFailRecover drives a small interleaved sequence and checks
// the invariants the experiments rely on: the down list tracks events, the
// base snapshot is never mutated, recovering everything restores the base
// route state, and every event reports blast-radius stats.
func TestTimelineFailRecover(t *testing.T) {
	env, base := buildBase(t, 192, 3)
	tl := NewTimeline(base)
	baseBytes := base.CanonicalBytes()

	var links []graph.EdgeKey
	for u := graph.NodeID(0); len(links) < 4; u++ {
		es := env.G.Neighbors(u)
		links = append(links, (graph.EdgeKey{U: u, V: es[0].To}).Norm())
	}
	st, err := tl.Fail(links[:2])
	if err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if st.FailedLinks != 2 || st.VicRebuilt == 0 {
		t.Fatalf("unexpected fail stats: %+v", st)
	}
	if len(tl.Down()) != 2 {
		t.Fatalf("down list has %d links, want 2", len(tl.Down()))
	}
	if _, err := tl.Fail(links[:1]); err == nil {
		t.Fatal("failing an already-down link must error")
	}
	if _, err := tl.Recover([]graph.EdgeKey{links[3]}); err == nil {
		t.Fatal("recovering an up link must error")
	}
	st, err = tl.Fail(links[2:])
	if err != nil {
		t.Fatalf("Fail (second batch): %v", err)
	}
	if st.FailedLinks != 2 {
		t.Fatalf("second fail stats: %+v", st)
	}
	st, err = tl.Recover(tl.Down())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if st.RestoredLinks != 4 || len(tl.Down()) != 0 {
		t.Fatalf("recover stats %+v, down=%d", st, len(tl.Down()))
	}
	if !bytes.Equal(tl.Snapshot().CanonicalBytes(), baseBytes) {
		t.Fatal("recovering every link did not restore the base route state")
	}
	if !bytes.Equal(base.CanonicalBytes(), baseBytes) {
		t.Fatal("the base snapshot was mutated by the timeline")
	}
}

// TestTimelineDownDefensiveCopy is the regression test for the shared
// Down() slice bug: the returned slice used to alias the timeline's
// internal sorted down list, so a caller that appended to or reordered it
// corrupted the bookkeeping. Down() now returns a defensive copy —
// Recover(tl.Down()) plus arbitrary caller-side mutation of the returned
// slice must leave the chain consistent and land back on the base state.
func TestTimelineDownDefensiveCopy(t *testing.T) {
	env, base := buildBase(t, 192, 3)
	tl := NewTimeline(base)
	baseBytes := base.CanonicalBytes()

	var links []graph.EdgeKey
	for u := graph.NodeID(0); len(links) < 3; u++ {
		es := env.G.Neighbors(u)
		links = append(links, (graph.EdgeKey{U: u, V: es[0].To}).Norm())
	}
	if _, err := tl.Fail(links); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if tl.Version() != 1 {
		t.Fatalf("Version = %d after one event, want 1", tl.Version())
	}

	// Mutating the returned slice must not touch the timeline's view.
	d := tl.Down()
	d[0], d[1] = d[1], d[0]
	d = append(d, graph.EdgeKey{U: 190, V: 191})
	_ = d
	if tl.DownCount() != 3 {
		t.Fatalf("DownCount = %d after caller-side mutation, want 3", tl.DownCount())
	}
	for _, l := range links {
		if !tl.IsDown(l) {
			t.Fatalf("link %v lost from the down list after caller-side mutation", l)
		}
	}

	// The Recover(tl.Down()) idiom with concurrent caller-side writes to
	// the passed slice's backing array: the recovery must consume the values
	// it was handed and fully restore the base.
	all := tl.Down()
	if _, err := tl.Recover(all); err != nil {
		t.Fatalf("Recover(Down()): %v", err)
	}
	all[0] = graph.EdgeKey{U: 1, V: 1} // scribble over the consumed slice
	if tl.DownCount() != 0 {
		t.Fatalf("DownCount = %d after recovering everything, want 0", tl.DownCount())
	}
	if tl.Version() != 2 {
		t.Fatalf("Version = %d after two events, want 2", tl.Version())
	}
	if !bytes.Equal(tl.Snapshot().CanonicalBytes(), baseBytes) {
		t.Fatal("recover-all after caller-side mutation did not restore the base route state")
	}
	// A second Down() call sees fresh, unaliased storage.
	if got := tl.Down(); len(got) != 0 {
		t.Fatalf("Down() after recover-all = %v, want empty", got)
	}
}

func TestTimelineRejectsUnknownLink(t *testing.T) {
	_, base := buildBase(t, 96, 5)
	tl := NewTimeline(base)
	if _, err := tl.Fail([]graph.EdgeKey{{U: 0, V: graph.NodeID(95)}}); err == nil {
		// (node 0 adjacent to 95 is possible but vanishingly unlikely at
		// avg degree 8; tolerate by checking a guaranteed-missing self pair)
		if _, err := tl.Fail([]graph.EdgeKey{{U: 1, V: 1}}); err == nil {
			t.Fatal("failing an invalid link must error")
		}
	}
}

func TestWalkToDest(t *testing.T) {
	route := []graph.NodeID{1, 2, 3, 4, 5}
	direct := func(u graph.NodeID) []graph.NodeID { return []graph.NodeID{u, 9, 5} }
	got := WalkToDest(route, 5, func(u graph.NodeID) bool { return u == 3 }, direct)
	want := []graph.NodeID{1, 2, 3, 9, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	// No node knows t: the route is returned unmodified.
	got = WalkToDest(route, 5, func(graph.NodeID) bool { return false }, direct)
	if len(got) != 5 || got[4] != 5 {
		t.Fatalf("unmodified walk: %v", got)
	}
	// t reached directly: truncate there.
	got = WalkToDest(route, 3, func(graph.NodeID) bool { return false }, direct)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("truncated walk: %v", got)
	}
}

func TestReversePath(t *testing.T) {
	p := []graph.NodeID{4, 7, 2}
	r := ReversePath(p)
	if r[0] != 2 || r[1] != 7 || r[2] != 4 {
		t.Fatalf("ReversePath: %v", r)
	}
	if p[0] != 4 {
		t.Fatal("ReversePath mutated its input")
	}
}

func TestMessageModel(t *testing.T) {
	m := MessageModel{PerVicEntry: 2, PerRowNode: 0.5, CalN: 256}
	st := &snapshot.RepairStats{VicEntriesChanged: 30, RowNodesChanged: 200}
	got := m.Messages(st)
	want := 2.0*30 + 0.5*200
	if got != want {
		t.Fatalf("Messages = %v, want %v", got, want)
	}
	if m.Messages(nil) != 0 {
		t.Fatal("nil stats must price to 0")
	}
}
