package dynamics

import (
	"fmt"
	"sort"

	"disco/internal/graph"
	"disco/internal/snapshot"
)

// Timeline drives one converged environment's route state through a
// deterministic sequence of interleaved link failures and recoveries. Each
// event advances the snapshot chain copy-on-write (snapshot.ApplyFailures
// / ApplyRecoveries), so per-event cost is the event's blast radius, not a
// rebuild; the chain's incremental overlays plus fold compaction keep a
// long timeline's memory bounded by the base shard store plus a capped
// overlay chain. The base snapshot and
// graph are never mutated — link weights for recoveries come from the
// base topology, which is what defines "the link comes back".
type Timeline struct {
	base    *snapshot.Snapshot
	baseG   *graph.Graph
	cur     *snapshot.Snapshot
	down    []graph.EdgeKey // currently failed base links, sorted
	version uint64          // events successfully applied so far
}

// NewTimeline starts a timeline at a converged snapshot (built from
// scratch, with every base link up).
func NewTimeline(base *snapshot.Snapshot) *Timeline {
	return &Timeline{base: base, baseG: base.Graph(), cur: base}
}

// Snapshot returns the current chained snapshot — the post-event data
// plane experiments route on.
func (tl *Timeline) Snapshot() *snapshot.Snapshot { return tl.cur }

// Version returns the number of events (Fail/Recover calls) successfully
// applied so far — the epoch sequence number a serving plane publishes the
// post-event snapshot under. 0 at the base snapshot.
func (tl *Timeline) Version() uint64 { return tl.version }

// Down returns the currently failed links, ascending. The slice is a
// defensive copy: callers may sort, append to or otherwise mutate it (the
// common Recover(tl.Down()) idiom edits the down list mid-iteration)
// without desynchronizing the timeline's bookkeeping.
func (tl *Timeline) Down() []graph.EdgeKey {
	return append([]graph.EdgeKey(nil), tl.down...)
}

// DownCount returns the number of currently failed links without copying
// the down list.
func (tl *Timeline) DownCount() int { return len(tl.down) }

// IsDown reports whether the link is currently failed.
func (tl *Timeline) IsDown(key graph.EdgeKey) bool {
	_, ok := tl.downIndex(key.Norm())
	return ok
}

// downIndex returns the position of key in the sorted down list and
// whether it is present.
func (tl *Timeline) downIndex(key graph.EdgeKey) (int, bool) {
	i := sort.Search(len(tl.down), func(i int) bool {
		return tl.down[i].U > key.U || (tl.down[i].U == key.U && tl.down[i].V >= key.V)
	})
	return i, i < len(tl.down) && tl.down[i] == key
}

// normKeys returns the normalized copy of links, so the bookkeeping below
// never aliases a caller-owned slice.
func normKeys(links []graph.EdgeKey) []graph.EdgeKey {
	keys := make([]graph.EdgeKey, len(links))
	for i, l := range links {
		keys[i] = l.Norm()
	}
	return keys
}

// Fail advances the timeline by a failure event: the given base links (all
// currently up) go down. Returns the repair's blast-radius stats.
func (tl *Timeline) Fail(links []graph.EdgeKey) (*snapshot.RepairStats, error) {
	keys := normKeys(links)
	for _, key := range keys {
		if tl.baseG.EdgeID(key.U, key.V) < 0 {
			return nil, fmt.Errorf("dynamics: link %d-%d is not in the base topology", key.U, key.V)
		}
		if _, ok := tl.downIndex(key); ok {
			return nil, fmt.Errorf("dynamics: link %d-%d is already down", key.U, key.V)
		}
	}
	next, err := tl.cur.ApplyFailures(keys)
	if err != nil {
		return nil, err
	}
	tl.cur = next
	tl.version++
	for _, key := range keys {
		if i, ok := tl.downIndex(key); !ok {
			tl.down = append(tl.down, graph.EdgeKey{})
			copy(tl.down[i+1:], tl.down[i:])
			tl.down[i] = key
		}
	}
	return next.RepairStats(), nil
}

// Recover advances the timeline by a recovery event: the given links (all
// currently down) come back with their base-topology weights. Passing
// Down() itself recovers everything.
func (tl *Timeline) Recover(links []graph.EdgeKey) (*snapshot.RepairStats, error) {
	keys := normKeys(links)
	restores := make([]graph.WeightedLink, 0, len(keys))
	for _, key := range keys {
		if _, ok := tl.downIndex(key); !ok {
			return nil, fmt.Errorf("dynamics: link %d-%d is not down", key.U, key.V)
		}
		restores = append(restores, graph.WeightedLink{
			U: key.U, V: key.V, W: tl.baseG.EdgeWeight(key.U, key.V),
		})
	}
	next, err := tl.cur.ApplyRecoveries(restores)
	if err != nil {
		return nil, err
	}
	tl.cur = next
	tl.version++
	for _, key := range keys {
		if i, ok := tl.downIndex(key); ok {
			tl.down = append(tl.down[:i], tl.down[i+1:]...)
		}
	}
	return next.RepairStats(), nil
}
