package eval

import (
	"fmt"
	"math/rand"

	"disco/internal/core"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/parallel"
)

// CongestionResult holds per-edge usage CDFs (right panels of Figs. 4 and
// 5, and Fig. 10).
type CongestionResult struct {
	Kind   TopoKind
	N      int
	Edges  int
	Labels []string
	CDFs   []*metrics.CDF
}

// Format renders the summary, highlighting the tail the figures zoom into.
func (r *CongestionResult) Format() string {
	s := metrics.FormatSeries(
		fmt.Sprintf("Congestion (paths per edge) — %s, n=%d, m=%d edges", r.Kind, r.N, r.Edges),
		r.Labels, r.CDFs)
	// Tail view (the figures plot CDF from 0.995 / 0.999).
	s += "  tail quantiles (p99, p99.9, max):\n"
	for i, l := range r.Labels {
		c := r.CDFs[i]
		s += fmt.Sprintf("    %-14s %8.0f %8.0f %8.0f\n", l, c.Quantile(0.99), c.Quantile(0.999), c.Max())
	}
	return s
}

// Get returns the CDF for a labeled series, or nil.
func (r *CongestionResult) Get(label string) *metrics.CDF {
	for i, l := range r.Labels {
		if l == label {
			return r.CDFs[i]
		}
	}
	return nil
}

// congestionOf routes one flow per node to a uniform random destination
// and counts per-edge usage (§5.2 Congestion). Destinations are drawn
// serially up front — preserving the historical draw sequence — then the
// per-source routing fans out over the worker pool: fork yields one
// worker-private route function, and each worker tallies into its own
// edge counter, merged (order-independent integer sums) at the end.
func congestionOf(g *graph.Graph, rng *rand.Rand, fork func() func(s, t graph.NodeID) []graph.NodeID) *metrics.CDF {
	n := g.N()
	dests := make([]graph.NodeID, n)
	for s := 0; s < n; s++ {
		dests[s] = graph.NodeID(rng.Intn(n))
	}
	type tally struct {
		route func(s, t graph.NodeID) []graph.NodeID
		cong  *metrics.Congestion
	}
	parts := parallel.RunGather(n,
		func() *tally { return &tally{route: fork(), cong: metrics.NewCongestion(g.M())} },
		func(w *tally, s int) {
			t := dests[s]
			if t == graph.NodeID(s) {
				return
			}
			p := w.route(graph.NodeID(s), t)
			for i := 1; i < len(p); i++ {
				w.cong.AddEdgeUse(g.EdgeID(p[i-1], p[i]))
			}
		})
	total := metrics.NewCongestion(g.M())
	for _, w := range parts {
		total.Merge(w.cong)
	}
	return total.CDF()
}

// Congestion reproduces the congestion comparison: every node routes to
// one random destination under Disco (later packets), S4 (later), path
// vector (shortest paths) and optionally VRR; per-edge use counts are
// compared as CDFs over edges.
func Congestion(p *Protocols, kind TopoKind, seed int64, withVRR bool) *CongestionResult {
	g := p.Env.G
	p.EnsureSnapshot()
	res := &CongestionResult{Kind: kind, N: g.N(), Edges: g.M()}

	res.Labels = append(res.Labels, "Disco")
	res.CDFs = append(res.CDFs, congestionOf(g, rand.New(rand.NewSource(seed+3000)), func() func(s, t graph.NodeID) []graph.NodeID {
		f := p.Disco.Fork()
		return func(s, t graph.NodeID) []graph.NodeID {
			return f.LaterRoute(s, t, core.ShortcutNoPathKnowledge)
		}
	}))

	res.Labels = append(res.Labels, "Path-vector")
	res.CDFs = append(res.CDFs, congestionOf(g, rand.New(rand.NewSource(seed+3000)), func() func(s, t graph.NodeID) []graph.NodeID {
		return p.SPR.Fork().Route
	}))

	res.Labels = append(res.Labels, "S4")
	res.CDFs = append(res.CDFs, congestionOf(g, rand.New(rand.NewSource(seed+3000)), func() func(s, t graph.NodeID) []graph.NodeID {
		return p.S4.Fork().LaterRoute
	}))

	if withVRR {
		v := p.VRR(seed)
		res.Labels = append(res.Labels, "VRR")
		res.CDFs = append(res.CDFs, congestionOf(g, rand.New(rand.NewSource(seed+3000)), func() func(s, t graph.NodeID) []graph.NodeID {
			return v.Fork().Route
		}))
	}
	return res
}

// Fig10ASCongestion reproduces Fig. 10: congestion on the AS-level
// topology, where a small fraction of edges near landmarks sees more load
// than under shortest-path routing.
func Fig10ASCongestion(n int, seed int64) *CongestionResult {
	p := BuildProtocols(TopoASLike, n, seed)
	return Congestion(p, TopoASLike, seed, false)
}

// Fig45Result bundles the three panels of Fig. 4 (G(n,m)) or Fig. 5
// (geometric): state, stretch and congestion on a 1,024-node topology
// including VRR.
type Fig45Result struct {
	Kind       TopoKind
	State      *StateResult
	Stretch    *StretchResult
	Congestion *CongestionResult
}

// Format renders all three panels.
func (r *Fig45Result) Format() string {
	return r.State.Format() + r.Stretch.Format() + r.Congestion.Format()
}

// Fig45 reproduces Fig. 4 (kind = TopoGnm) or Fig. 5 (TopoGeometric).
// The panels run in sequence — each already saturates the worker pool
// internally, the shared snapshot is built once up front for the two
// routing panels, and the O(n^2)-ish VRR baseline is built once (memoized
// on p) and forked by every panel that routes through it.
func Fig45(kind TopoKind, n int, seed int64, pairs int) *Fig45Result {
	p := BuildProtocols(kind, n, seed)
	p.EnsureSnapshot()
	return &Fig45Result{
		Kind:       kind,
		State:      StateWithVRR(p, kind, seed),
		Stretch:    StretchWithVRR(p, kind, seed, pairs),
		Congestion: Congestion(p, kind, seed, true),
	}
}
