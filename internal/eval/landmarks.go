package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"disco/internal/core"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/parallel"
	"disco/internal/static"
)

// Operator-chosen landmarks (§6): "although Disco chooses landmarks
// randomly, its state and stretch bounds require only that each node has
// at least one landmark within its vicinity and that there are O~(sqrt(n))
// total landmarks. These rules would permit an operator to choose
// landmarks in non-random ways, for example to pick a more
// well-provisioned landmark." This experiment swaps the random landmark
// set for the same-sized set of highest-degree ("well-provisioned") nodes
// and measures the effect on stretch, state balance and address size.

// LandmarkStrategyRow is one strategy's measurements.
type LandmarkStrategyRow struct {
	Name          string
	FirstStretch  float64 // mean first-packet stretch (No Path Knowledge)
	LaterStretch  float64
	MaxState      int
	MeanAddrBytes float64
	Fallbacks     int
	VicinityMiss  int // nodes with no landmark in their vicinity
}

// LandmarkStrategyResult compares landmark-selection strategies.
type LandmarkStrategyResult struct {
	N    int
	Kind TopoKind
	Rows []LandmarkStrategyRow
}

// Format renders the comparison.
func (r *LandmarkStrategyResult) Format() string {
	out := fmt.Sprintf("Operator-chosen landmarks (§6), %s n=%d\n", r.Kind, r.N)
	out += fmt.Sprintf("  %-12s %12s %12s %10s %12s %10s %8s\n",
		"strategy", "first-stretch", "later-stretch", "max-state", "addr-bytes", "fallbacks", "lm-miss")
	for _, row := range r.Rows {
		out += fmt.Sprintf("  %-12s %12.3f %12.3f %10d %12.2f %10d %8d\n",
			row.Name, row.FirstStretch, row.LaterStretch, row.MaxState,
			row.MeanAddrBytes, row.Fallbacks, row.VicinityMiss)
	}
	return out
}

// LandmarkStrategies runs the comparison on one topology: random
// self-selection (the protocol default) vs the same number of
// highest-degree nodes vs the same number of lowest-degree nodes (an
// adversarially bad operator).
func LandmarkStrategies(kind TopoKind, n int, seed int64, pairs int) *LandmarkStrategyResult {
	g := BuildTopo(kind, n, seed)
	base := static.NewEnv(g, seed)
	count := len(base.Landmarks)

	byDegree := make([]graph.NodeID, n)
	for i := range byDegree {
		byDegree[i] = graph.NodeID(i)
	}
	sort.Slice(byDegree, func(i, j int) bool {
		di, dj := g.Degree(byDegree[i]), g.Degree(byDegree[j])
		if di != dj {
			return di > dj
		}
		return byDegree[i] < byDegree[j]
	})
	top := append([]graph.NodeID(nil), byDegree[:count]...)
	bottom := append([]graph.NodeID(nil), byDegree[n-count:]...)
	sort.Slice(top, func(i, j int) bool { return top[i] < top[j] })
	sort.Slice(bottom, func(i, j int) bool { return bottom[i] < bottom[j] })

	res := &LandmarkStrategyResult{N: n, Kind: kind}
	ps := metrics.SamplePairs(rand.New(rand.NewSource(seed+7000)), n, pairs)

	measure := func(name string, lms []graph.NodeID) {
		var env *static.Env
		if lms == nil {
			env = base
		} else {
			env = static.NewEnv(g, seed, static.WithLandmarks(lms))
		}
		d := core.NewDisco(env, core.WithSeed(seed))
		// Each strategy has its own landmark set, hence its own snapshot;
		// the build is parallel and every fork below shares it.
		installSnapshot(d)
		row := LandmarkStrategyRow{Name: name}
		// Per-pair stretch on the worker pool (forked data planes), with
		// the float sums reduced in pair order so results are identical
		// at any worker count.
		type pairSample struct {
			ok           bool
			first, later float64
		}
		samples := make([]pairSample, len(ps))
		forks := parallel.RunGather(len(ps), d.Fork, func(f *core.Disco, i int) {
			s, t := graph.NodeID(ps[i].Src), graph.NodeID(ps[i].Dst)
			short := f.ND.ShortestDist(s, t)
			if short == 0 {
				return
			}
			samples[i] = pairSample{
				ok:    true,
				first: g.PathLength(f.FirstRoute(s, t, core.ShortcutNoPathKnowledge)) / short,
				later: g.PathLength(f.LaterRoute(s, t, core.ShortcutNoPathKnowledge)) / short,
			}
		})
		var fsum, lsum float64
		cnt := 0
		for _, sm := range samples {
			if !sm.ok {
				continue
			}
			fsum += sm.first
			lsum += sm.later
			cnt++
		}
		row.FirstStretch = fsum / float64(cnt)
		row.LaterStretch = lsum / float64(cnt)
		for _, f := range forks {
			fb, _ := f.Fallbacks()
			row.Fallbacks += fb
		}
		_, dE, _, _ := d.StateVectors()
		for _, e := range dE {
			if e > row.MaxState {
				row.MaxState = e
			}
		}
		mean, _, _ := env.AddrSizeStats()
		row.MeanAddrBytes = mean
		// Count nodes violating the "landmark within vicinity" condition
		// the guarantees need — one truncated Dijkstra per node, fanned
		// out with per-worker forks and integer-summed misses.
		type missTally struct {
			nd     *core.NDDisco
			misses int
		}
		tallies := parallel.RunGather(n,
			func() *missTally { return &missTally{nd: d.ND.Fork()} },
			func(t *missTally, v int) {
				if !t.nd.Vicinity(graph.NodeID(v)).Contains(env.LMOf[v]) {
					t.misses++
				}
			})
		for _, t := range tallies {
			row.VicinityMiss += t.misses
		}
		res.Rows = append(res.Rows, row)
	}
	measure("random", nil)
	measure("high-degree", top)
	measure("low-degree", bottom)
	return res
}
