package eval

import (
	"math"
	"strings"
	"testing"

	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/parallel"
	"disco/internal/pathtree"
)

// TestRepairedRoutingValidity drives the repaired-state routing paths of
// core and s4 directly and checks the properties the failures experiment
// depends on: every delivered route is a real path on the failed topology
// with the right endpoints and stretch >= 1, delivery never crosses a
// partition, NDDisco delivers whenever the destination's component kept a
// landmark, and S4's later packets deliver exactly within the component
// (cluster flooding fills landmark-less components).
func TestRepairedRoutingValidity(t *testing.T) {
	n := 192
	p := BuildProtocols(TopoGnm, n, 7)
	g := p.Env.G
	snap := buildSnapshot(g, p.Disco.ND.K, p.Env.Landmarks)

	// A mixed failure: one whole node plus a handful of links — enough to
	// partition a few stragglers at this size.
	rng := parallel.TaskRNG(7, 0)
	var fails []graph.EdgeKey
	victim := graph.NodeID(rng.Intn(n))
	for _, e := range g.Neighbors(victim) {
		fails = append(fails, (graph.EdgeKey{U: victim, V: e.To}).Norm())
	}
	for i := 0; i < 6; i++ {
		u := graph.NodeID(rng.Intn(n))
		es := g.Neighbors(u)
		fails = append(fails, (graph.EdgeKey{U: u, V: es[rng.Intn(len(es))].To}).Norm())
	}
	rep, err := snap.ApplyFailures(fails)
	if err != nil {
		t.Fatalf("ApplyFailures: %v", err)
	}
	fg := rep.Graph()
	labels, _ := fg.Components()
	hasLM := map[int32]bool{}
	for _, lm := range p.Env.Landmarks {
		hasLM[labels[lm]] = true
	}

	dest := pathtree.NewLazy(fg)
	d := p.Disco.ForkRepaired(rep)
	s4f := p.S4.ForkRepaired(rep, dest)
	check := func(name string, s, tt graph.NodeID, route []graph.NodeID, ok bool) {
		t.Helper()
		connected := labels[s] == labels[tt]
		if ok && !connected {
			t.Fatalf("%s: delivered %d->%d across a partition", name, s, tt)
		}
		if !ok {
			return
		}
		if len(route) == 0 || route[0] != s || route[len(route)-1] != tt {
			t.Fatalf("%s: route %d->%d has wrong endpoints: %v", name, s, tt, route)
		}
		dest.Bind(tt)
		short := dest.Dist(s)
		st := metrics.Stretch(fg.PathLength(route), short) // panics on a dead hop
		if st < 1-1e-9 || math.IsNaN(st) {
			t.Fatalf("%s: route %d->%d has stretch %v < 1", name, s, tt, st)
		}
	}
	for _, pr := range metrics.SamplePairs(parallel.TaskRNG(7, 1), n, 300) {
		s, tt := graph.NodeID(pr.Src), graph.NodeID(pr.Dst)
		connected := labels[s] == labels[tt]

		r, ok := d.ND.RepairedFirstRoute(s, tt)
		check("ND-first", s, tt, r, ok)
		if connected && hasLM[labels[tt]] && !ok {
			t.Fatalf("ND-first: %d->%d undelivered although %d's component kept a landmark", s, tt, tt)
		}
		r, ok = d.ND.RepairedLaterRoute(s, tt)
		check("ND-later", s, tt, r, ok)
		r, ok = d.RepairedFirstRoute(s, tt)
		check("Disco-first", s, tt, r, ok)
		r, ok = s4f.RepairedFirstRoute(s, tt)
		check("S4-first", s, tt, r, ok)
		r, ok = s4f.RepairedLaterRoute(s, tt)
		check("S4-later", s, tt, r, ok)
		if ok != connected {
			t.Fatalf("S4-later: delivery=%v connected=%v for %d->%d (cluster flooding must fill the component)", ok, connected, s, tt)
		}
	}
}

// TestFailureScenariosFormat sanity-checks the table wiring (full
// determinism and values are covered by TestWorkerCountInvariance and the
// golden).
func TestFailureScenariosFormat(t *testing.T) {
	out := FailureScenarios(TopoGnm, 128, 3, 40).Format()
	for _, want := range []string{"link-random", "node-random", "region", "flap", "shards%"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("format printed NaN/Inf:\n%s", out)
	}
}
