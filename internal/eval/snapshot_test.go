package eval

import "testing"

// TestSnapshotEquivalence is the refactor's safety net: every figure
// experiment must produce byte-identical output whether routing runs on
// the shared immutable snapshot (the default) or on the legacy per-fork
// lazy caches. Cases with compactExact additionally run on the compact
// (bit-packed, float32-distance) encoding and must still match byte for
// byte — these are the exactness-claimed figures: distance-independent
// state accounting, plus every routing figure on an integer-weight
// topology, where float32 quantization is lossless. Geometric-topology
// routing figures are deliberately NOT claimed (Euclidean distances
// quantize), which is why exact mode stays the default. Sizes are scaled
// down; the paths exercised are the same ones the full sizes use.
func TestSnapshotEquivalence(t *testing.T) {
	cases := []struct {
		name         string
		short        bool // keep in -short runs
		compactExact bool // output must also be byte-identical on the compact encoding
		run          func() string
	}{
		{"Fig2State", true, true, func() string { return Fig2State(TopoGnm, 192, 1).Format() }},
		{"Fig3Stretch", true, false, func() string { return Fig3Stretch(TopoGeometric, 192, 3, 60).Format() }},
		{"Fig3StretchGnm", true, true, func() string { return Fig3Stretch(TopoGnm, 192, 3, 60).Format() }},
		{"Fig45", true, true, func() string { return Fig45(TopoGnm, 128, 4, 40).Format() }},
		{"Fig6Shortcuts", false, false, func() string {
			return Fig6Shortcuts([]Fig6Spec{
				{Label: "gnm-128", Kind: TopoGnm, N: 128},
				{Label: "geo-128", Kind: TopoGeometric, N: 128},
			}, 5, 40).Format()
		}},
		{"Fig7StateBytes", false, true, func() string { return Fig7StateBytes(256, 6).Format() }},
		{"Fig9Scaling", false, false, func() string { return Fig9Scaling([]int{128, 192}, 8, 40).Format() }},
		{"Fig10ASCongestion", false, true, func() string { return Fig10ASCongestion(192, 9).Format() }},
		{"LandmarkStrategies", false, true, func() string { return LandmarkStrategies(TopoASLike, 192, 15, 40).Format() }},
		{"EstimateError", true, true, func() string { return EstimateError(192, 11, 0.4, 40).Format() }},
	}
	defer SetSnapshotBacked(true)
	defer SetSnapshotCompact(false)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && !tc.short {
				t.Skip("short mode: covered by the full run")
			}
			SetSnapshotCompact(false)
			SetSnapshotBacked(true)
			snap := tc.run()
			SetSnapshotBacked(false)
			legacy := tc.run()
			SetSnapshotBacked(true)
			if snap != legacy {
				t.Errorf("output differs between snapshot-backed and legacy cache paths:\n--- snapshot ---\n%s--- legacy ---\n%s", snap, legacy)
			}
			if !tc.compactExact {
				return
			}
			SetSnapshotCompact(true)
			compact := tc.run()
			SetSnapshotCompact(false)
			if compact != snap {
				t.Errorf("output differs between compact and exact snapshot encodings (exactness is claimed for this figure):\n--- compact ---\n%s--- exact ---\n%s", compact, snap)
			}
		})
	}
}
