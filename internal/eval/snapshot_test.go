package eval

import "testing"

// TestSnapshotEquivalence is the refactor's safety net: every figure
// experiment must produce byte-identical output whether routing runs on
// the shared immutable snapshot (the default) or on the legacy per-fork
// lazy caches. Sizes are scaled down; the paths exercised are the same
// ones the full sizes use.
func TestSnapshotEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		short bool // keep in -short runs
		run   func() string
	}{
		{"Fig2State", true, func() string { return Fig2State(TopoGnm, 192, 1).Format() }},
		{"Fig3Stretch", true, func() string { return Fig3Stretch(TopoGeometric, 192, 3, 60).Format() }},
		{"Fig45", true, func() string { return Fig45(TopoGnm, 128, 4, 40).Format() }},
		{"Fig6Shortcuts", false, func() string {
			return Fig6Shortcuts([]Fig6Spec{
				{Label: "gnm-128", Kind: TopoGnm, N: 128},
				{Label: "geo-128", Kind: TopoGeometric, N: 128},
			}, 5, 40).Format()
		}},
		{"Fig7StateBytes", false, func() string { return Fig7StateBytes(256, 6).Format() }},
		{"Fig9Scaling", false, func() string { return Fig9Scaling([]int{128, 192}, 8, 40).Format() }},
		{"Fig10ASCongestion", false, func() string { return Fig10ASCongestion(192, 9).Format() }},
		{"LandmarkStrategies", false, func() string { return LandmarkStrategies(TopoASLike, 192, 15, 40).Format() }},
		{"EstimateError", true, func() string { return EstimateError(192, 11, 0.4, 40).Format() }},
	}
	defer SetSnapshotBacked(true)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && !tc.short {
				t.Skip("short mode: covered by the full run")
			}
			SetSnapshotBacked(true)
			snap := tc.run()
			SetSnapshotBacked(false)
			legacy := tc.run()
			SetSnapshotBacked(true)
			if snap != legacy {
				t.Errorf("output differs between snapshot-backed and legacy cache paths:\n--- snapshot ---\n%s--- legacy ---\n%s", snap, legacy)
			}
		})
	}
}
