package eval

import (
	"strings"
	"testing"
)

// TestServeStormDeterministicEvents: the per-epoch event log must be
// byte-identical across runs and independent of the querier count — the
// invariance half of the epoch/staleness contract (concurrency picks
// which epoch answers a live query, never what an epoch contains).
func TestServeStormDeterministicEvents(t *testing.T) {
	a, err := ServeStorm(TopoGnm, 128, 23, 40, 8, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServeStorm(TopoGnm, 128, 23, 40, 8, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.FormatEvents() != b.FormatEvents() {
		t.Errorf("event log differs between 1 and 4 queriers:\n--- 1 ---\n%s--- 4 ---\n%s",
			a.FormatEvents(), b.FormatEvents())
	}
}

// TestServeStormReplaysChurnTimeline: for one (seed, n, kind) the storm's
// event sequence (kind, links, down, blast radius) must be identical to
// -exp churn-timeline's — serve-storm replays it, by contract.
func TestServeStormReplaysChurnTimeline(t *testing.T) {
	ct, err := ChurnTimeline(TopoGnm, 128, 23, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := ServeStorm(TopoGnm, 128, 23, 40, 8, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.Events) != len(ss.Events) {
		t.Fatalf("event counts differ: churn-timeline %d, serve-storm %d", len(ct.Events), len(ss.Events))
	}
	for i := range ct.Events {
		c, s := ct.Events[i], ss.Events[i]
		if c.Kind != s.Kind || c.Links != s.Links || c.DownAfter != s.DownAfter ||
			c.ShardsPct != s.ShardsPct || c.Pairs != s.Pairs || c.Connected != s.Connected || c.Legs != s.Legs {
			t.Errorf("event %d differs: churn-timeline %+v vs serve-storm %+v", i, c, s)
		}
		if s.Epoch != uint64(i+1) {
			t.Errorf("event %d published as epoch %d, want %d", i, s.Epoch, i+1)
		}
	}
}

// TestServeStormLoadSanity: the measured side must account consistently —
// every started query completes (zero failed reads), the reclamation
// ledger closes, and the latency percentiles are ordered.
func TestServeStormLoadSanity(t *testing.T) {
	r, err := ServeStorm(TopoGnm, 128, 23, 40, 8, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	l := r.Load
	if l.Published != uint64(len(r.Events))+1 {
		t.Errorf("published %d epochs, want %d (base + one per event)", l.Published, len(r.Events)+1)
	}
	if l.Retired != l.Published {
		t.Errorf("retired %d epochs with the load drained and the plane closed, want %d (all of them)", l.Retired, l.Published)
	}
	if l.Delivered > l.Queries || l.Stale > l.Queries {
		t.Errorf("impossible accounting: %+v", l)
	}
	if l.Queries > 0 && l.P99us < l.P50us {
		t.Errorf("p99 (%v) < p50 (%v)", l.P99us, l.P50us)
	}
	if !strings.Contains(r.Format(), "measured:") {
		t.Error("Format must include the measured line")
	}
	if strings.Contains(r.FormatEvents(), "measured:") {
		t.Error("FormatEvents must not include measured quantities")
	}
}

// TestServeStormTablesEventLog: the forwarding-table plane must leave the
// deterministic event log untouched — the probe routes through the
// protocol legs, never the plane — and must report itself on the measured
// line. This is the end-to-end half of the table/fork equivalence story
// (internal/forward pins per-route byte identity).
func TestServeStormTablesEventLog(t *testing.T) {
	fw, err := ServeStorm(TopoGnm, 128, 23, 40, 8, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ServeStorm(TopoGnm, 128, 23, 40, 8, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if fw.FormatEvents() != tb.FormatEvents() {
		t.Errorf("event log differs between plane kinds:\n--- fork-and-walk ---\n%s--- tables ---\n%s",
			fw.FormatEvents(), tb.FormatEvents())
	}
	if tb.Load.Plane != "tables" || fw.Load.Plane != "fork-and-walk" {
		t.Errorf("plane kinds misreported: %q / %q", fw.Load.Plane, tb.Load.Plane)
	}
	if !strings.Contains(tb.Format(), "on the tables plane") {
		t.Errorf("measured line must name the plane kind:\n%s", tb.Format())
	}
	if tb.Load.Retired != tb.Load.Published {
		t.Errorf("tables plane: retired %d of %d published epochs", tb.Load.Retired, tb.Load.Published)
	}
}

// TestServeStormFormatZeroQueries: a storm no query completes in (tiny
// machines, instant storms) must print 0%/0 qps, never NaN — the
// divide-by-query-count guards in Format.
func TestServeStormFormatZeroQueries(t *testing.T) {
	r := &ServeStormResult{Kind: TopoGnm, N: 16, PairsN: 1,
		Load: ServeLoad{Queriers: 4, Plane: "tables"}}
	out := r.Format()
	if strings.Contains(out, "NaN") || strings.Contains(out, "nan") {
		t.Errorf("zero-query Format prints NaN:\n%s", out)
	}
	if !strings.Contains(out, "0 queries in 0.00s (0 qps)") {
		t.Errorf("zero-query measured line malformed:\n%s", out)
	}
	if !strings.Contains(out, "0.00% delivered, 0.00% stale") {
		t.Errorf("zero-query percentages malformed:\n%s", out)
	}
}

func TestServeStormValidatesInputs(t *testing.T) {
	if _, err := ServeStorm(TopoGnm, 4, 1, 40, 4, 1, false); err == nil {
		t.Error("n below the G(n,m) floor must error")
	}
	if _, err := ServeStorm(TopoGnm, 128, 1, 0, 4, 1, false); err == nil {
		t.Error("pairs < 1 must error")
	}
}
