package eval

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"disco/internal/dynamics"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/parallel"
	"disco/internal/pathtree"
	"disco/internal/snapshot"
)

// The failure-scenario experiment family: the paper evaluates messaging
// "during initial convergence only, leaving continuous churn to future
// work" (§5), and the churn experiment prices the control messages of one
// failure. This file measures the other half — what the data plane
// delivers AFTER failures — by repairing the shared route-state snapshot
// incrementally (snapshot.ApplyFailures, blast-radius cost) and routing
// Disco/NDDisco/S4 over the repaired state: random link failures, random
// node failures, regional outages (a failed BFS ball) and link flapping,
// reporting delivery ratio and post-failure stretch against shortest
// paths on the failed topology. Because repair shares every untouched
// shard with the parent snapshot, the family runs at the same paper-scale
// sizes the compact encoding unlocked (-full).

// legAgg accumulates one leg's delivered-pair count and stretch sum.
// Legs are indexed in column order: Disco-first, ND-first, ND-later,
// S4-first, S4-later.
type legAgg struct {
	Delivered  int
	StretchSum float64
}

// FailureRow is one scenario × parameter row of the failures table,
// aggregated over its trials.
type FailureRow struct {
	Scenario string
	Param    string
	Trials   int

	LinksFailed int     // total links failed, summed over trials
	Repairs     int     // ApplyFailures calls performed (flap > trials)
	ShardsPct   float64 // mean % of snapshot shards rebuilt per repair

	Pairs     int // sampled pairs, summed over trials
	Connected int // pairs whose endpoints remain connected
	Legs      [numLegs]legAgg
}

// FailureResult is the full table.
type FailureResult struct {
	Kind   TopoKind
	N      int
	PairsN int // pairs sampled per trial
	Rows   []FailureRow
}

// Format renders the table: per row the repair cost (percentage of
// snapshot shards — vicinity windows plus forest rows — rebuilt per
// repair), the surviving connectivity, and per-leg delivery ratio and
// mean stretch over delivered pairs.
func (r *FailureResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failure scenarios — %s, n=%d (%d pairs × trials per row; stretch vs shortest path on the failed topology)\n",
		r.Kind, r.N, r.PairsN)
	fmt.Fprintf(&b, "  %-12s %-9s %6s %8s %7s |%8s %7s %7s %7s %7s |%8s %8s %8s %8s %8s\n",
		"scenario", "param", "links", "shards%", "conn%",
		"dlv:"+legNames[0], legNames[1], legNames[2], legNames[3], legNames[4],
		"st:"+legNames[0], legNames[1], legNames[2], legNames[3], legNames[4])
	for _, row := range r.Rows {
		conn := 0.0
		if row.Pairs > 0 {
			conn = 100 * float64(row.Connected) / float64(row.Pairs)
		}
		dlv := func(leg int) float64 {
			if row.Connected == 0 {
				return 0
			}
			return 100 * float64(row.Legs[leg].Delivered) / float64(row.Connected)
		}
		st := func(leg int) float64 {
			if row.Legs[leg].Delivered == 0 {
				return 0
			}
			return row.Legs[leg].StretchSum / float64(row.Legs[leg].Delivered)
		}
		fmt.Fprintf(&b, "  %-12s %-9s %6.1f %8.2f %7.1f |%8.1f %7.1f %7.1f %7.1f %7.1f |%8.3f %8.3f %8.3f %8.3f %8.3f\n",
			row.Scenario, row.Param,
			float64(row.LinksFailed)/float64(row.Trials), row.ShardsPct, conn,
			dlv(0), dlv(1), dlv(2), dlv(3), dlv(4),
			st(0), st(1), st(2), st(3), st(4))
	}
	return b.String()
}

// failureSpec defines one row's failure-drawing rule.
type failureSpec struct {
	scenario string
	param    string
	flaps    int // > 1 for the flapping scenario
	draw     func(rng *rand.Rand, g *graph.Graph, edges []graph.EdgeKey) []graph.EdgeKey
}

// failureSpecs builds the scenario grid for size n over base graph g.
func failureSpecs(n int, g *graph.Graph) []failureSpec {
	m := g.M()
	pickEdges := func(rng *rand.Rand, edges []graph.EdgeKey, count int) []graph.EdgeKey {
		seen := make(map[int]bool, count)
		out := make([]graph.EdgeKey, 0, count)
		for len(out) < count {
			i := rng.Intn(len(edges))
			if seen[i] {
				continue
			}
			seen[i] = true
			out = append(out, edges[i])
		}
		return out
	}
	linkRow := func(f float64) failureSpec {
		count := int(math.Round(f * float64(m)))
		if count < 1 {
			count = 1
		}
		return failureSpec{
			scenario: "link-random",
			param:    fmt.Sprintf("f=%.1f%%", 100*f),
			draw: func(rng *rand.Rand, g *graph.Graph, edges []graph.EdgeKey) []graph.EdgeKey {
				return pickEdges(rng, edges, count)
			},
		}
	}
	incident := func(g *graph.Graph, nodes []graph.NodeID) []graph.EdgeKey {
		var out []graph.EdgeKey
		for _, v := range nodes {
			for _, e := range g.Neighbors(v) {
				out = append(out, (graph.EdgeKey{U: v, V: e.To}).Norm())
			}
		}
		return out // ApplyFailures deduplicates
	}
	nodeRow := func(f float64) failureSpec {
		count := int(math.Round(f * float64(n)))
		if count < 1 {
			count = 1
		}
		return failureSpec{
			scenario: "node-random",
			param:    fmt.Sprintf("f=%.1f%%", 100*f),
			draw: func(rng *rand.Rand, g *graph.Graph, edges []graph.EdgeKey) []graph.EdgeKey {
				seen := make(map[graph.NodeID]bool, count)
				nodes := make([]graph.NodeID, 0, count)
				for len(nodes) < count {
					v := graph.NodeID(rng.Intn(n))
					if seen[v] {
						continue
					}
					seen[v] = true
					nodes = append(nodes, v)
				}
				return incident(g, nodes)
			},
		}
	}
	regionRow := func(ball int) failureSpec {
		return failureSpec{
			scenario: "region",
			param:    fmt.Sprintf("ball=%d", ball),
			draw: func(rng *rand.Rand, g *graph.Graph, edges []graph.EdgeKey) []graph.EdgeKey {
				center := graph.NodeID(rng.Intn(n))
				sp := graph.NewSSSP(g)
				sp.RunK(center, ball)
				nodes := append([]graph.NodeID(nil), sp.Order()...)
				return incident(g, nodes)
			},
		}
	}
	ball1, ball2 := n/128, n/32
	if ball1 < 8 {
		ball1 = 8
	}
	if ball2 < 16 {
		ball2 = 16
	}
	return []failureSpec{
		linkRow(0.002),
		linkRow(0.01),
		linkRow(0.05),
		nodeRow(0.005),
		nodeRow(0.02),
		regionRow(ball1),
		regionRow(ball2),
		{
			scenario: "flap",
			param:    "1 link ×5",
			flaps:    5,
			draw: func(rng *rand.Rand, g *graph.Graph, edges []graph.EdgeKey) []graph.EdgeKey {
				return pickEdges(rng, edges, 1)
			},
		},
	}
}

// FailureScenarios runs the family on one topology: build the converged
// environment and its shared snapshot once, then per trial draw a failure
// set, repair the snapshot incrementally, and route sampled pairs over
// the repaired state. Trials derive their randomness via the TaskSeed
// rule and pair routing fans out over the worker pool with results merged
// in pair order, so output is bit-identical at any -workers value.
func FailureScenarios(kind TopoKind, n int, seed int64, pairs int) *FailureResult {
	const trials = 3
	p := BuildProtocols(kind, n, seed)
	g := p.Env.G
	snap := buildSnapshot(g, p.Disco.ND.K, p.Env.Landmarks)

	// Edge list indexed by EID for uniform link draws.
	edges := g.EdgeList()

	res := &FailureResult{Kind: kind, N: n, PairsN: pairs}
	for rowIdx, spec := range failureSpecs(n, g) {
		row := FailureRow{Scenario: spec.scenario, Param: spec.param, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			rng := parallel.TaskRNG(seed*1000003+int64(rowIdx), trial)
			fails := spec.draw(rng, g, edges)
			rep, err := snap.ApplyFailures(fails)
			if err != nil {
				panic(fmt.Sprintf("eval: failure repair: %v", err))
			}
			st := rep.RepairStats()
			flaps := spec.flaps
			if flaps < 1 {
				flaps = 1
			}
			// A flapping link repairs once per down transition; the parent
			// snapshot serves the up phases for free (immutability), so only
			// the repeated repair cost accumulates. Repair is deterministic,
			// so the later down transitions cost exactly what the first one
			// measured — account for them without redoing the work.
			row.LinksFailed += st.FailedLinks
			row.ShardsPct += float64(flaps) * 100 * st.ShardsRebuilt()
			row.Repairs += flaps

			samples := routeFailurePairs(p, rep, metrics.SamplePairs(rng, n, pairs))
			for _, sm := range samples {
				row.Pairs++
				if !sm.connected {
					continue
				}
				row.Connected++
				for leg := range sm.ok {
					if sm.ok[leg] {
						row.Legs[leg].Delivered++
						row.Legs[leg].StretchSum += sm.st[leg]
					}
				}
			}
		}
		row.ShardsPct /= float64(row.Repairs)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// failureSample is one routed pair: ground-truth connectivity on the
// failed topology, then per-leg deliverability and stretch.
type failureSample struct {
	connected bool
	ok        [numLegs]bool
	st        [numLegs]float64
}

// numLegs is the number of (protocol, packet-phase) columns every
// dynamics table reports, and legNames their labels in column order —
// the single source both repairedLegs and the failures/churn-timeline
// table headers render from, so reordering or adding a leg cannot
// silently mislabel a column.
const numLegs = 5

var legNames = [numLegs]string{"D-f", "ND-f", "ND-l", "S4-f", "S4-l"}

// repairedLegs builds one worker's routing legs over a repaired snapshot
// through the protocol-agnostic dynamics.Router interface: Disco first
// packets, NDDisco first/later, S4 first/later. The Disco fork embeds the
// NDDisco fork the ND legs route on, and every leg shares the worker's
// destination scratch where the protocol needs one.
func repairedLegs(p *Protocols, rep *snapshot.Snapshot, dest *pathtree.Lazy) [numLegs]dynamics.Leg {
	d := p.Disco.ForkRepaired(rep)
	s4f := p.S4.ForkRepaired(rep, dest)
	return [numLegs]dynamics.Leg{
		{Name: legNames[0], R: d},
		{Name: legNames[1], R: d.ND},
		{Name: legNames[2], R: d.ND, Later: true},
		{Name: legNames[3], R: s4f},
		{Name: legNames[4], R: s4f, Later: true},
	}
}

// failScratch is one worker's routing state over a repaired snapshot.
type failScratch struct {
	dest *pathtree.Lazy
	legs [numLegs]dynamics.Leg
}

// routeFailurePairs routes every sampled pair over the repaired snapshot
// on the worker pool, returning samples in pair order. The same machinery
// serves the failures family and the churn timeline — protocols appear
// only as dynamics.Leg entries.
func routeFailurePairs(p *Protocols, rep *snapshot.Snapshot, ps []metrics.Pair) []failureSample {
	fg := rep.Graph()
	return parallel.MapScratch(len(ps),
		func() *failScratch {
			dest := pathtree.NewLazy(fg)
			return &failScratch{dest: dest, legs: repairedLegs(p, rep, dest)}
		},
		func(sc *failScratch, i int) failureSample {
			s, t := graph.NodeID(ps[i].Src), graph.NodeID(ps[i].Dst)
			sc.dest.Bind(t)
			short := sc.dest.Dist(s)
			if math.IsInf(short, 1) || short == 0 {
				return failureSample{} // disconnected (or degenerate) pair
			}
			out := failureSample{connected: true}
			for leg := range sc.legs {
				route, ok := sc.legs[leg].Route(s, t)
				if !ok {
					continue
				}
				out.ok[leg] = true
				out.st[leg] = metrics.Stretch(fg.PathLength(route), short)
			}
			return out
		})
}
