package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"disco/internal/core"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/parallel"
	"disco/internal/pathtree"
)

// Fig9Point is one network size's measurement in the scaling sweep.
type Fig9Point struct {
	N            int
	DiscoFirst   float64 // mean stretch
	DiscoLater   float64
	S4First      float64
	S4Later      float64
	DiscoState   float64 // mean entries
	NDDiscoState float64
	S4State      float64
}

// Fig9Result is the Fig. 9 pair of curves: mean stretch and mean state vs
// n on geometric random graphs.
type Fig9Result struct {
	Points []Fig9Point
}

// Format renders both panels.
func (r *Fig9Result) Format() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 9 — Scaling on geometric random graphs")
	fmt.Fprintf(&b, "  %6s | %11s %11s %11s %11s | %11s %11s %11s\n",
		"n", "Disco-first", "Disco-later", "S4-first", "S4-later", "Disco-state", "ND-state", "S4-state")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %6d | %11.3f %11.3f %11.3f %11.3f | %11.1f %11.1f %11.1f\n",
			p.N, p.DiscoFirst, p.DiscoLater, p.S4First, p.S4Later,
			p.DiscoState, p.NDDiscoState, p.S4State)
	}
	return b.String()
}

// Fig9Scaling reproduces Fig. 9: mean first/later stretch for Disco and S4
// plus mean per-node state for Disco, NDDisco and S4, on geometric random
// graphs of increasing size (the paper sweeps 2k-16k).
func Fig9Scaling(sizes []int, seed int64, pairs int) *Fig9Result {
	res := &Fig9Result{}
	for _, n := range sizes {
		p := BuildProtocols(TopoGeometric, n, seed)
		p.EnsureSnapshot()
		pt := Fig9Point{N: n}

		ps := metrics.SamplePairs(rand.New(rand.NewSource(seed+4000)), n, pairs)
		g := p.Env.G
		// Per-pair stretch fans out over the worker pool (forks sharing
		// the snapshot plus one destination-tree scratch per worker); the
		// float sums reduce in pair order below, so the means are
		// identical at any worker count.
		samples := parallel.MapScratch(len(ps),
			func() *stretchScratch {
				dest := pathtree.NewLazy(g)
				return &stretchScratch{d: p.Disco.ForkWith(dest), s4: p.S4.ForkWith(dest)}
			},
			func(sc *stretchScratch, i int) stretchSample {
				s, t := graph.NodeID(ps[i].Src), graph.NodeID(ps[i].Dst)
				short := sc.d.ND.ShortestDist(s, t)
				if short == 0 {
					return stretchSample{}
				}
				return stretchSample{
					ok:         true,
					discoFirst: stretchOf(g, sc.d.FirstRoute(s, t, core.ShortcutNoPathKnowledge), short),
					discoLater: stretchOf(g, sc.d.LaterRoute(s, t, core.ShortcutNoPathKnowledge), short),
					s4First:    stretchOf(g, sc.s4.FirstRoute(s, t), short),
					s4Later:    stretchOf(g, sc.s4.LaterRoute(s, t), short),
				}
			})
		var df, dl, sf, sl float64
		count := 0
		for _, sm := range samples {
			if !sm.ok {
				continue
			}
			df += sm.discoFirst
			dl += sm.discoLater
			sf += sm.s4First
			sl += sm.s4Later
			count++
		}
		pt.DiscoFirst = df / float64(count)
		pt.DiscoLater = dl / float64(count)
		pt.S4First = sf / float64(count)
		pt.S4Later = sl / float64(count)

		ndE, dE, _, _ := p.Disco.StateVectors()
		s4E := p.S4.StateEntries(p.S4.ClusterSizesAll())
		pt.DiscoState = intsToCDF(dE).Mean()
		pt.NDDiscoState = intsToCDF(ndE).Mean()
		pt.S4State = intsToCDF(s4E).Mean()

		res.Points = append(res.Points, pt)
	}
	return res
}
