package eval

import (
	"fmt"
	"math/rand"

	"disco/internal/graph"
	"disco/internal/parallel"
	"disco/internal/pathvector"
	"disco/internal/sim"
	"disco/internal/vicinity"
)

// ChurnResult measures the incremental control cost of a single link
// failure — the step past the paper's "initial convergence only" messaging
// evaluation (§5). The cost splits into two very different phases:
// triggered withdrawals and reselection (Triggered — proportional to the
// failure's blast radius, tiny), and the periodic full-table refresh
// (Refresh — a fixed per-period cost on the order of one initial
// convergence, amortized over every failure in the period) that restores
// the exact vicinity invariant the compact acceptance rule cannot recover
// through triggered updates alone.
type ChurnResult struct {
	N         int
	Trials    int
	Initial   float64 // messages/node, initial convergence
	Triggered float64 // messages/node for withdrawal-driven re-convergence
	Refresh   float64 // messages/node for one full refresh round

	// Failed lists the links failed per trial (canonical endpoint order) —
	// all non-bridges, so no trial ever partitions the network. The bridge
	// regression test pins this.
	Failed []graph.EdgeKey

	// TriggeredEach is the per-trial triggered cost (messages/node), in
	// trial order — the samples the churn-timeline message model regresses
	// against the same failures' snapshot blast radii. Triggered above is
	// their mean.
	TriggeredEach []float64
}

// Format renders the comparison. The ratio lines need a nonzero initial
// convergence cost; when it is missing (a degenerate input that slipped
// past ChurnCost's validation) they are omitted rather than printed as
// NaN/Inf.
func (r *ChurnResult) Format() string {
	s := fmt.Sprintf(
		"Churn cost (NDDisco vicinity protocol), G(n,m) n=%d, %d failures\n"+
			"  initial convergence:        %.0f messages/node\n",
		r.N, r.Trials, r.Initial)
	if r.Initial <= 0 {
		return s + "  (no initial-convergence messages: per-failure ratios undefined)\n"
	}
	return s + fmt.Sprintf(
		"  triggered re-convergence:   %.1f messages/node per failure (%.2f%% of initial)\n"+
			"  periodic refresh round:     %.0f messages/node per period (%.1fx initial, amortized over all failures in the period)\n",
		r.Triggered, 100*r.Triggered/r.Initial, r.Refresh, r.Refresh/r.Initial)
}

// ChurnCost runs the experiment on the standard G(n,m) topology: converge
// once, then fail `trials` random non-bridge links one at a time on fresh
// clones and count the re-convergence messages. n < 2 or trials < 1 is an
// input error.
func ChurnCost(n int, seed int64, trials int) (*ChurnResult, error) {
	if n < 2 {
		return nil, fmt.Errorf("eval: churn needs n >= 2, got %d", n)
	}
	if trials < 1 {
		return nil, fmt.Errorf("eval: churn needs trials >= 1, got %d", trials)
	}
	return ChurnCostOn(BuildTopo(TopoGnm, n, seed), seed, trials)
}

// ChurnCostOn is ChurnCost on a caller-supplied connected graph (the
// bridge regression test runs it on topologies with known bridges). The
// failed links are drawn uniformly, redrawing deterministically whenever
// the draw lands on a bridge: failing a bridge would partition the
// network and fold a count-to-infinity withdrawal storm into the
// Triggered/Refresh averages, which are defined for fail-over — not
// partition — events.
func ChurnCostOn(g *graph.Graph, seed int64, trials int) (*ChurnResult, error) {
	n := g.N()
	if trials < 1 {
		return nil, fmt.Errorf("eval: churn needs trials >= 1, got %d", trials)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("eval: churn needs a connected graph; messages/node over a partitioned one would be silently skewed")
	}
	env := staticEnv(g, seed)
	k := vicinity.DefaultK(n)
	cfg := pathvector.Config{Mode: pathvector.ModeVicinity, K: k, IsLandmark: env.IsLM}

	// Bridge set once (O(n+m)); a graph whose every link is a bridge (a
	// tree) has no valid trial at all.
	bridges := g.Bridges()
	hasNonBridge := false
	for _, b := range bridges {
		if !b {
			hasNonBridge = true
			break
		}
	}
	if !hasNonBridge {
		return nil, fmt.Errorf("eval: churn needs a non-bridge link; every link of the graph is a bridge")
	}

	res := &ChurnResult{N: n, Trials: trials}
	// Draw every trial's failed link serially up front (preserving the
	// historical draw sequence: on bridge-free graphs the drawn links are
	// exactly what the unchecked draw produced). A draw that lands on a
	// bridge is discarded and redrawn — deterministically, since the
	// redraws extend the same serial stream.
	rng := rand.New(rand.NewSource(seed + 9000))
	type failure struct{ u, v graph.NodeID }
	fails := make([]failure, trials)
	for i := range fails {
		for {
			u := graph.NodeID(rng.Intn(n))
			es := g.Neighbors(u)
			if len(es) == 0 {
				continue // isolated node: redraw
			}
			e := es[rng.Intn(len(es))]
			if bridges[e.EID] {
				continue // bridge: failing it would partition G
			}
			fails[i] = failure{u: u, v: e.To}
			break
		}
		res.Failed = append(res.Failed, (graph.EdgeKey{U: fails[i].u, V: fails[i].v}).Norm())
	}

	// Converge once; the converged tables are the shared immutable input
	// every trial starts from. Each trial then clones the converged
	// instance — an O(state) copy instead of re-running the whole initial
	// convergence — and fails its link on the clone. Clones share the
	// read-only path slices and the graph; trials fan out over the worker
	// pool and their float tallies reduce in trial order.
	var baseEng sim.Engine
	base := pathvector.New(g, &baseEng, cfg)
	base.Start()
	if _, q := baseEng.Run(0); !q {
		return nil, fmt.Errorf("eval: churn initial convergence did not quiesce")
	}
	res.Initial = float64(base.Messages) / float64(n)

	type trialResult struct {
		triggered, refresh float64
		err                error
	}
	results := parallel.Map(trials, func(i int) trialResult {
		var eng sim.Engine
		p, err := base.Clone(&eng)
		if err != nil {
			return trialResult{err: err}
		}
		if err := p.FailLink(fails[i].u, fails[i].v); err != nil {
			return trialResult{err: err}
		}
		p.PruneStale()
		if _, q := eng.Run(0); !q {
			return trialResult{err: fmt.Errorf("eval: failure re-convergence did not quiesce")}
		}
		afterWithdraw := p.Messages
		p.RefreshUntilStable(16)
		return trialResult{
			triggered: float64(afterWithdraw) / float64(n),
			refresh:   float64(p.Messages-afterWithdraw) / float64(n),
		}
	})
	totalTriggered, totalRefresh := 0.0, 0.0
	for _, tr := range results {
		if tr.err != nil {
			return nil, tr.err
		}
		res.TriggeredEach = append(res.TriggeredEach, tr.triggered)
		totalTriggered += tr.triggered
		totalRefresh += tr.refresh
	}
	res.Triggered = totalTriggered / float64(trials)
	res.Refresh = totalRefresh / float64(trials)
	return res, nil
}
