package eval

import (
	"fmt"
	"math/rand"

	"disco/internal/graph"
	"disco/internal/parallel"
	"disco/internal/pathvector"
	"disco/internal/sim"
	"disco/internal/vicinity"
)

// ChurnResult measures the incremental control cost of a single link
// failure — the step past the paper's "initial convergence only" messaging
// evaluation (§5). The cost splits into two very different phases:
// triggered withdrawals and reselection (Triggered — proportional to the
// failure's blast radius, tiny), and the periodic full-table refresh
// (Refresh — a fixed per-period cost on the order of one initial
// convergence, amortized over every failure in the period) that restores
// the exact vicinity invariant the compact acceptance rule cannot recover
// through triggered updates alone.
type ChurnResult struct {
	N         int
	Trials    int
	Initial   float64 // messages/node, initial convergence
	Triggered float64 // messages/node for withdrawal-driven re-convergence
	Refresh   float64 // messages/node for one full refresh round
}

// Format renders the comparison.
func (r *ChurnResult) Format() string {
	return fmt.Sprintf(
		"Churn cost (NDDisco vicinity protocol), G(n,m) n=%d, %d failures\n"+
			"  initial convergence:        %.0f messages/node\n"+
			"  triggered re-convergence:   %.1f messages/node per failure (%.2f%% of initial)\n"+
			"  periodic refresh round:     %.0f messages/node per period (%.1fx initial, amortized over all failures in the period)\n",
		r.N, r.Trials, r.Initial, r.Triggered,
		100*r.Triggered/r.Initial, r.Refresh, r.Refresh/r.Initial)
}

// ChurnCost runs the experiment: converge once, then fail `trials` random
// (non-bridge) links one at a time on fresh instances and count the
// re-convergence messages.
func ChurnCost(n int, seed int64, trials int) *ChurnResult {
	g := BuildTopo(TopoGnm, n, seed)
	env := staticEnv(g, seed)
	k := vicinity.DefaultK(n)
	cfg := pathvector.Config{Mode: pathvector.ModeVicinity, K: k, IsLandmark: env.IsLM}

	res := &ChurnResult{N: n, Trials: trials}
	// Draw every trial's failed link serially up front (preserving the
	// historical draw sequence).
	rng := rand.New(rand.NewSource(seed + 9000))
	type failure struct{ u, v graph.NodeID }
	fails := make([]failure, trials)
	for i := range fails {
		u := graph.NodeID(rng.Intn(n))
		es := g.Neighbors(u)
		fails[i] = failure{u: u, v: es[rng.Intn(len(es))].To}
	}

	// Converge once; the converged tables are the shared immutable input
	// every trial starts from. Each trial then clones the converged
	// instance — an O(state) copy instead of re-running the whole initial
	// convergence — and fails its link on the clone. Clones share the
	// read-only path slices and the graph; trials fan out over the worker
	// pool and their float tallies reduce in trial order.
	var baseEng sim.Engine
	base := pathvector.New(g, &baseEng, cfg)
	base.Start()
	if _, q := baseEng.Run(0); !q {
		panic("eval: initial convergence failed")
	}
	res.Initial = float64(base.Messages) / float64(n)

	type trialResult struct{ triggered, refresh float64 }
	results := parallel.Map(trials, func(i int) trialResult {
		var eng sim.Engine
		p := base.Clone(&eng)
		p.FailLink(fails[i].u, fails[i].v)
		p.PruneStale()
		if _, q := eng.Run(0); !q {
			panic("eval: failure re-convergence did not quiesce")
		}
		afterWithdraw := p.Messages
		p.RefreshUntilStable(16)
		return trialResult{
			triggered: float64(afterWithdraw) / float64(n),
			refresh:   float64(p.Messages-afterWithdraw) / float64(n),
		}
	})
	totalTriggered, totalRefresh := 0.0, 0.0
	for _, tr := range results {
		totalTriggered += tr.triggered
		totalRefresh += tr.refresh
	}
	res.Triggered = totalTriggered / float64(trials)
	res.Refresh = totalRefresh / float64(trials)
	return res
}
