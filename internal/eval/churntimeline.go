package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"disco/internal/dynamics"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/parallel"
	"disco/internal/snapshot"
	"disco/internal/vicinity"
)

// The churn-timeline experiment: continuous dynamics at paper scale. The
// event-driven simulator prices the control messages of churn exactly, but
// only up to n≈1024 (the paper's own Fig. 8 ceiling); the snapshot chain
// repairs route state at blast-radius cost at any size but counts shards,
// not messages. This file joins the two: CalibrateMessageModel measures,
// on an n ≤ 1024 event-driven run, how many triggered messages one
// recomputed vicinity entry and one forest-row node cost, and ChurnTimeline
// then drives a deterministic interleaved fail/recover timeline over the
// snapshot chain — at router-level 192,244 nodes under -full — pricing
// every event's re-convergence with the calibrated model and measuring
// per-event delivery through the same dynamics.Router legs the failures
// family routes on.

// TimelineEventRow is one fail/recover event of the churn timeline.
type TimelineEventRow struct {
	Step      int
	Kind      string // "fail" or "recover"
	Links     int    // links failed/restored by this event
	DownAfter int    // links down once the event is applied

	VicRebuilt      int // vicinity windows recomputed
	RowsRebuilt     int // forest rows fully recomputed
	VicEntriesMoved int // vicinity entries that actually changed
	RowParentsMoved int // forest parent fields that actually changed
	ShardsPct       float64
	MsgPerNode      float64 // modeled triggered messages per node

	Pairs     int
	Connected int
	Legs      [numLegs]legAgg
}

// ChurnTimelineResult is the full timeline report.
type ChurnTimelineResult struct {
	Kind    TopoKind
	N       int
	PairsN  int
	Model   dynamics.MessageModel
	CalInit float64 // initial convergence msgs/node at calibration scale
	Events  []TimelineEventRow
}

// Format renders the timeline: per event the blast radius (windows, rows,
// patches), the modeled message cost, and per-leg delivery over connected
// pairs — the observable that prices partitions.
func (r *ChurnTimelineResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Churn timeline — %s, n=%d (%d pairs/event; blast-radius message model: %s)\n",
		r.Kind, r.N, r.PairsN, r.Model)
	fmt.Fprintf(&b, "  %3s %-7s %5s %4s |%6s %5s %7s %7s %7s %9s |%6s %7s %6s %6s %6s %6s\n",
		"ev", "kind", "links", "down",
		"vic", "rows", "Δvic", "Δpar", "shards%", "msg/node",
		"conn%", "dlv:"+legNames[0], legNames[1], legNames[2], legNames[3], legNames[4])
	total := 0.0
	for _, ev := range r.Events {
		conn := 0.0
		if ev.Pairs > 0 {
			conn = 100 * float64(ev.Connected) / float64(ev.Pairs)
		}
		dlv := func(leg int) float64 {
			if ev.Connected == 0 {
				return 0
			}
			return 100 * float64(ev.Legs[leg].Delivered) / float64(ev.Connected)
		}
		fmt.Fprintf(&b, "  %3d %-7s %5d %4d |%6d %5d %7d %7d %7.2f %9.1f |%6.1f %7.1f %6.1f %6.1f %6.1f %6.1f\n",
			ev.Step, ev.Kind, ev.Links, ev.DownAfter,
			ev.VicRebuilt, ev.RowsRebuilt, ev.VicEntriesMoved, ev.RowParentsMoved, ev.ShardsPct, ev.MsgPerNode,
			conn, dlv(0), dlv(1), dlv(2), dlv(3), dlv(4))
		total += ev.MsgPerNode
	}
	fmt.Fprintf(&b, "  total modeled re-convergence over %d events: %.1f messages/node (initial convergence at calibration scale: %.0f)\n",
		len(r.Events), total, r.CalInit)
	return b.String()
}

// CalibrateMessageModel fits the blast-radius message model against the
// event-driven protocol at size calN (≤ 1024, where the full simulation is
// affordable). ChurnCost fails single links on the converged path-vector
// instance and measures each failure's triggered re-convergence exactly;
// the identical failures applied to the snapshot give each failure's
// changed-entry blast radius. A least-squares fit of
//
//	triggered_i ≈ PerVicEntry·(changed vic entries)_i + PerRowNode·(changed row parents)_i
//
// over the trials identifies both coefficients (failures that miss every
// landmark tree pin the vicinity term; tree hits add the row term); if the
// trials are degenerate (singular normal equations or a negative
// coefficient) the fit falls back to one shared proportionality constant.
// Deterministic at any worker count. Returns the model and the initial
// convergence cost (messages/node) for context.
func CalibrateMessageModel(calN int, seed int64, trials int) (dynamics.MessageModel, float64, error) {
	g := BuildTopo(TopoGnm, calN, seed)
	env := staticEnv(g, seed)
	k := vicinity.DefaultK(calN)

	// Measured triggered cost of real single-link failures, from the same
	// event-driven churn experiment the paper's §5 future work points at.
	cr, err := ChurnCostOn(g, seed, trials)
	if err != nil {
		return dynamics.MessageModel{}, 0, fmt.Errorf("eval: calibration churn: %w", err)
	}

	// Blast radius of the identical failures on the snapshot side.
	snap, err := snapshot.Build(g, k, env.Landmarks)
	if err != nil {
		return dynamics.MessageModel{}, 0, fmt.Errorf("eval: calibration snapshot: %w", err)
	}
	type blast struct {
		vic, row float64
		err      error
	}
	blasts := parallel.Map(len(cr.Failed), func(i int) blast {
		rep, err := snap.ApplyFailures([]graph.EdgeKey{cr.Failed[i]})
		if err != nil {
			return blast{err: fmt.Errorf("eval: calibration repair of %v: %w", cr.Failed[i], err)}
		}
		st := rep.RepairStats()
		return blast{vic: float64(st.VicEntriesChanged), row: float64(st.RowNodesChanged)}
	})
	for _, bl := range blasts {
		if bl.err != nil {
			return dynamics.MessageModel{}, 0, bl.err
		}
	}

	var svv, svr, srr, svt, srt, sv, sr, st float64
	for i, bl := range blasts {
		t := cr.TriggeredEach[i] * float64(calN) // per-trial total messages
		svv += bl.vic * bl.vic
		svr += bl.vic * bl.row
		srr += bl.row * bl.row
		svt += bl.vic * t
		srt += bl.row * t
		sv += bl.vic
		sr += bl.row
		st += t
	}
	model := dynamics.MessageModel{CalN: calN}
	if det := svv*srr - svr*svr; det > 1e-9*svv*srr {
		a := (srr*svt - svr*srt) / det
		b := (svv*srt - svr*svt) / det
		if a >= 0 && b >= 0 {
			model.PerVicEntry, model.PerRowNode = a, b
			return model, cr.Initial, nil
		}
	}
	if sv+sr > 0 { // degenerate trials: one shared constant
		c := st / (sv + sr)
		model.PerVicEntry, model.PerRowNode = c, c
	}
	return model, cr.Initial, nil
}

// churnTimelineEvents is the default timeline length.
const churnTimelineEvents = 16

// ChurnTimeline runs the continuous-churn experiment on one topology:
// build the converged environment and its shared snapshot once, calibrate
// the message model event-driven at min(n, 1024), then drive `events`
// interleaved fail/recover events through a dynamics.Timeline — each event
// repairs the snapshot chain at blast-radius cost, is priced by the model,
// and routes `pairs` sampled pairs over the repaired state through the
// shared dynamics legs. Event draws derive from the TaskSeed rule and pair
// routing fans out over the worker pool with in-order merges, so output is
// bit-identical at any -workers value. Partitions are allowed (links are
// drawn uniformly, bridges included): delivery ratio is the observable.
func ChurnTimeline(kind TopoKind, n int, seed int64, pairs, events int) (*ChurnTimelineResult, error) {
	// The calibration topology is G(n,m) at average degree 8, which needs
	// m = 4n <= n(n-1)/2, i.e. n >= 9 — below that topology.Gnm panics
	// rather than returning the error this API promises.
	if n < 9 {
		return nil, fmt.Errorf("eval: churn timeline needs n >= 9 (G(n,m) at average degree 8), got %d", n)
	}
	if pairs < 1 {
		return nil, fmt.Errorf("eval: churn timeline needs pairs >= 1, got %d", pairs)
	}
	if events <= 0 {
		events = churnTimelineEvents
	}

	calN := n
	if calN > 1024 {
		calN = 1024
	}
	model, calInit, err := CalibrateMessageModel(calN, seed, 8)
	if err != nil {
		return nil, err
	}

	p := BuildProtocols(kind, n, seed)
	g := p.Env.G
	k := p.Disco.ND.K
	snap := buildSnapshot(g, k, p.Env.Landmarks)
	tl := dynamics.NewTimeline(snap)

	// Base edge list indexed by EID for uniform draws; the timeline itself
	// is the single book of which links are down.
	edges := g.EdgeList()

	res := &ChurnTimelineResult{Kind: kind, N: n, PairsN: pairs, Model: model, CalInit: calInit}
	for ev := 0; ev < events; ev++ {
		row := TimelineEventRow{Step: ev}
		kindStr, nlinks, st, rng, err := stormStep(tl, edges, seed, ev)
		if err != nil {
			return nil, err
		}
		row.Kind, row.Links = kindStr, nlinks
		row.DownAfter = tl.DownCount()
		row.VicRebuilt = st.VicRebuilt
		row.RowsRebuilt = st.RowsRebuilt
		row.VicEntriesMoved = st.VicEntriesChanged
		row.RowParentsMoved = st.RowNodesChanged
		row.ShardsPct = 100 * st.ShardsRebuilt()
		row.MsgPerNode = model.Messages(st) / float64(n)

		for _, sm := range routeFailurePairs(p, tl.Snapshot(), metrics.SamplePairs(rng, n, pairs)) {
			row.Pairs++
			if !sm.connected {
				continue
			}
			row.Connected++
			for leg := range sm.ok {
				if sm.ok[leg] {
					row.Legs[leg].Delivered++
					row.Legs[leg].StretchSum += sm.st[leg]
				}
			}
		}
		res.Events = append(res.Events, row)
	}
	return res, nil
}

// stormStep draws and applies churn-timeline event `ev` on the timeline:
// with the down list empty or a fair coin, fail 1-2 uniform distinct alive
// links, otherwise recover 1-2 uniform distinct down links. It returns the
// event kind, the link count, the repair's blast-radius stats and the
// event's task RNG — positioned exactly after the draw, so the caller's
// pair sampling continues the same stream. This is the single definition
// of the deterministic storm sequence: ChurnTimeline prices it and
// ServeStorm replays it against a live query load, so for one (seed, n,
// kind) both experiments see the identical events.
func stormStep(tl *dynamics.Timeline, edges []graph.EdgeKey, seed int64, ev int) (kind string, links int, st *snapshot.RepairStats, rng *rand.Rand, err error) {
	rng = parallel.TaskRNG(seed*1000003+29, ev)
	if tl.DownCount() == 0 || rng.Intn(2) == 0 {
		// Failure event: 1-2 uniform distinct alive links.
		count := 1 + rng.Intn(2)
		drawn := drawAlive(rng, edges, tl, count)
		if st, err = tl.Fail(drawn); err != nil {
			return "", 0, nil, nil, fmt.Errorf("eval: timeline fail (event %d): %w", ev, err)
		}
		return "fail", len(drawn), st, rng, nil
	}
	// Recovery event: 1-2 uniform distinct down links.
	max := 2
	if down := tl.DownCount(); down < max {
		max = down
	}
	count := 1 + rng.Intn(max)
	drawn := drawDown(rng, tl.Down(), count)
	if st, err = tl.Recover(drawn); err != nil {
		return "", 0, nil, nil, fmt.Errorf("eval: timeline recover (event %d): %w", ev, err)
	}
	return "recover", len(drawn), st, rng, nil
}

// drawAlive draws `count` distinct currently-alive links uniformly from
// the base edge list by deterministic rejection.
func drawAlive(rng *rand.Rand, edges []graph.EdgeKey, tl *dynamics.Timeline, count int) []graph.EdgeKey {
	if avail := len(edges) - tl.DownCount(); count > avail {
		count = avail
	}
	picked := make(map[graph.EdgeKey]bool, count)
	out := make([]graph.EdgeKey, 0, count)
	for len(out) < count {
		e := edges[rng.Intn(len(edges))]
		if tl.IsDown(e) || picked[e] {
			continue
		}
		picked[e] = true
		out = append(out, e)
	}
	return out
}

// drawDown draws `count` distinct currently-down links uniformly from the
// sorted down list by deterministic rejection.
func drawDown(rng *rand.Rand, downList []graph.EdgeKey, count int) []graph.EdgeKey {
	picked := make(map[int]bool, count)
	out := make([]graph.EdgeKey, 0, count)
	for len(out) < count {
		i := rng.Intn(len(downList))
		if picked[i] {
			continue
		}
		picked[i] = true
		out = append(out, downList[i])
	}
	return out
}
