package eval

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite the golden files under testdata/ with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update. The goldens pin the reproduced numbers: a refactor
// that silently shifts any figure's values fails here before anyone
// compares against the paper again.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/eval -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s.\n--- want ---\n%s--- got ---\n%s\n(if the change is intended, regenerate with -update)", path, want, got)
	}
}

func TestGoldenFig2State(t *testing.T) {
	checkGolden(t, "fig2_state_gnm256", Fig2State(TopoGnm, 256, 1).Format())
}

// TestGoldenCompact pins the compact snapshot encoding to the same golden
// files the exact regime produces for the exactness-claimed figures: on
// the unit-weight G(n,m) topology, fig2 and fig4 must not move by a single
// byte when the route state is bit-packed and distances round-trip through
// float32. (Never run with -update: these goldens belong to the exact
// regime; a compact run that needs its own golden is an equivalence bug.)
func TestGoldenCompact(t *testing.T) {
	if *updateGoldens {
		t.Skip("goldens are written by the exact regime")
	}
	defer SetSnapshotCompact(false)
	SetSnapshotBacked(true) // compact only takes effect on the snapshot path
	SetSnapshotCompact(true)
	checkGolden(t, "fig2_state_gnm256", Fig2State(TopoGnm, 256, 1).Format())
	checkGolden(t, "fig4_gnm256", Fig45(TopoGnm, 256, 4, 80).Format())
}

func TestGoldenFig3Stretch(t *testing.T) {
	checkGolden(t, "fig3_stretch_geo512", Fig3Stretch(TopoGeometric, 512, 3, 150).Format())
}

func TestGoldenFig4Gnm(t *testing.T) {
	checkGolden(t, "fig4_gnm256", Fig45(TopoGnm, 256, 4, 80).Format())
}

func TestGoldenFig5Geometric(t *testing.T) {
	checkGolden(t, "fig5_geo256", Fig45(TopoGeometric, 256, 4, 80).Format())
}

func TestGoldenFig6Shortcuts(t *testing.T) {
	checkGolden(t, "fig6_shortcuts_256", Fig6Shortcuts([]Fig6Spec{
		{Label: "Geometric", Kind: TopoGeometric, N: 256},
		{Label: "GNM", Kind: TopoGnm, N: 256},
	}, 5, 80).Format())
}

func TestGoldenFig9Scaling(t *testing.T) {
	checkGolden(t, "fig9_scaling_256_512", Fig9Scaling([]int{256, 512}, 8, 80).Format())
}

// TestGoldenFailures pins the failure-scenario family. The parameters
// match the CI smoke step (`discosim -exp failures -n 256 -seed 1`), which
// diffs the harness's stdout against this same golden file.
func TestGoldenFailures(t *testing.T) {
	checkGolden(t, "failures_gnm256", FailureScenarios(TopoGnm, 256, 1, 500).Format())
}

// TestGoldenServeStorm pins the serving mode's deterministic per-epoch
// event log. The parameters match the CI serve-smoke step
// (`discosim -exp serve-storm -n 256 -seed 1`), which strips the measured
// "measured:" line and diffs the rest against this same golden file —
// only FormatEvents output lands here, never wall-clock quantities.
func TestGoldenServeStorm(t *testing.T) {
	r, err := ServeStorm(TopoGnm, 256, 1, 500, 0, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "serve_storm_gnm256", r.FormatEvents())
}

// TestGoldenChurnTimeline pins the continuous-churn timeline — blast radii,
// calibrated message model and per-event delivery. The parameters match
// the CI smoke step (`discosim -exp churn-timeline -n 256 -seed 1`), which
// diffs the harness's stdout against this same golden file.
func TestGoldenChurnTimeline(t *testing.T) {
	r, err := ChurnTimeline(TopoGnm, 256, 1, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "churn_timeline_gnm256", r.Format())
}
