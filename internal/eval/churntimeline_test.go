package eval

import (
	"strings"
	"testing"

	"disco/internal/graph"
	"disco/internal/snapshot"
	"disco/internal/vicinity"
)

// TestChurnTimelineFormat sanity-checks the timeline wiring: events of
// both kinds occur, the model calibrated to something positive, and no
// NaN/Inf leaks into the table. (Determinism and values are pinned by
// TestWorkerCountInvariance and the golden.)
func TestChurnTimelineFormat(t *testing.T) {
	r, err := ChurnTimeline(TopoGnm, 128, 3, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) != churnTimelineEvents {
		t.Fatalf("got %d events, want %d", len(r.Events), churnTimelineEvents)
	}
	kinds := map[string]int{}
	for _, ev := range r.Events {
		kinds[ev.Kind]++
	}
	if kinds["fail"] == 0 || kinds["recover"] == 0 {
		t.Fatalf("timeline must interleave failures and recoveries, got %v", kinds)
	}
	if r.Model.PerVicEntry <= 0 && r.Model.PerRowNode <= 0 {
		t.Fatalf("calibration produced a zero model: %+v", r.Model)
	}
	out := r.Format()
	for _, want := range []string{"fail", "recover", "msg/node", "calibrated event-driven", "total modeled re-convergence"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("format printed NaN/Inf:\n%s", out)
	}
}

// TestChurnTimelineInputErrors pins the input validation: sizes below the
// calibration topology's G(n,m) floor must error, not panic downstream.
func TestChurnTimelineInputErrors(t *testing.T) {
	for _, n := range []int{1, 8} {
		if _, err := ChurnTimeline(TopoGnm, n, 1, 10, 4); err == nil {
			t.Errorf("n=%d should error", n)
		}
	}
	if _, err := ChurnTimeline(TopoGnm, 128, 1, 0, 4); err == nil {
		t.Error("pairs=0 should error")
	}
}

// TestCalibrateMessageModel checks the calibration against ground truth:
// the fitted model must reproduce the measured mean triggered cost of the
// calibration failures to within a factor — it is a least-squares fit of
// exactly those samples — and both coefficients must be non-negative.
func TestCalibrateMessageModel(t *testing.T) {
	calN := 192
	model, initial, err := CalibrateMessageModel(calN, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if model.PerVicEntry < 0 || model.PerRowNode < 0 {
		t.Fatalf("negative coefficient: %+v", model)
	}
	if model.PerVicEntry == 0 && model.PerRowNode == 0 {
		t.Fatalf("zero model: %+v", model)
	}
	if initial <= 0 {
		t.Fatalf("initial convergence %v", initial)
	}
	if model.CalN != calN {
		t.Fatalf("CalN = %d, want %d", model.CalN, calN)
	}

	// Re-measure the same churn trials and compare model vs measurement in
	// aggregate: the fit minimizes squared error over these very samples,
	// so the totals must agree within a small factor.
	g := BuildTopo(TopoGnm, calN, 7)
	cr, err := ChurnCostOn(g, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	env := staticEnv(g, 7)
	base, err := snapshot.Build(g, vicinity.DefaultK(calN), env.Landmarks)
	if err != nil {
		t.Fatal(err)
	}
	var measured, modeled float64
	for i, link := range cr.Failed {
		rep, err := base.ApplyFailures([]graph.EdgeKey{link})
		if err != nil {
			t.Fatal(err)
		}
		measured += cr.TriggeredEach[i] * float64(calN)
		modeled += model.Messages(rep.RepairStats())
	}
	if measured <= 0 {
		t.Fatalf("no triggered messages measured")
	}
	if ratio := modeled / measured; ratio < 0.5 || ratio > 2 {
		t.Fatalf("model prices the calibration failures at %.1f msgs vs %.1f measured (ratio %.2f)", modeled, measured, ratio)
	}
	t.Logf("calibration: %s; aggregate model/measured = %.3f", model, modeled/measured)
}
