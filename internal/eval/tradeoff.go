package eval

import (
	"fmt"
	"math/rand"

	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/tzk"
)

// TradeoffPoint is one k's measurement in the state/stretch sweep.
type TradeoffPoint struct {
	K            int
	MeanState    float64
	MaxState     int
	MeanStretch  float64
	MaxStretch   float64
	StretchBound int // the theoretical 2k-1
}

// TradeoffResult answers §6's open question empirically: the
// Thorup–Zwick k-level family translated to the simulator, sweeping the
// state/stretch tradeoff that Disco instantiates at k=2.
type TradeoffResult struct {
	N      int
	Kind   TopoKind
	Points []TradeoffPoint
}

// Format renders the staircase.
func (r *TradeoffResult) Format() string {
	out := fmt.Sprintf("State/stretch tradeoff (TZ k-level family, §6 future work), %s n=%d\n", r.Kind, r.N)
	out += fmt.Sprintf("  %3s %12s %10s %13s %12s %8s\n", "k", "mean-state", "max-state", "mean-stretch", "max-stretch", "bound")
	for _, p := range r.Points {
		out += fmt.Sprintf("  %3d %12.1f %10d %13.3f %12.3f %8d\n",
			p.K, p.MeanState, p.MaxState, p.MeanStretch, p.MaxStretch, p.StretchBound)
	}
	return out
}

// TradeoffSweep builds the TZ scheme for each k and measures mean/max
// state and stretch over sampled pairs.
func TradeoffSweep(kind TopoKind, n int, ks []int, seed int64, pairs int) *TradeoffResult {
	g := BuildTopo(kind, n, seed)
	ps := metrics.SamplePairs(rand.New(rand.NewSource(seed+8000)), n, pairs)
	res := &TradeoffResult{N: n, Kind: kind}
	for _, k := range ks {
		s := tzk.New(g, k, rand.New(rand.NewSource(seed+int64(100*k))))
		pt := TradeoffPoint{K: k, StretchBound: 2*k - 1}
		entries := s.StateEntries()
		tot := 0
		for _, e := range entries {
			tot += e
			if e > pt.MaxState {
				pt.MaxState = e
			}
		}
		pt.MeanState = float64(tot) / float64(n)
		sum, cnt := 0.0, 0
		for _, pr := range ps {
			u, v := graph.NodeID(pr.Src), graph.NodeID(pr.Dst)
			true_ := s.TrueDist(u, v)
			if true_ == 0 {
				continue
			}
			st := g.PathLength(s.Route(u, v)) / true_
			sum += st
			cnt++
			if st > pt.MaxStretch {
				pt.MaxStretch = st
			}
		}
		pt.MeanStretch = sum / float64(cnt)
		res.Points = append(res.Points, pt)
	}
	return res
}
