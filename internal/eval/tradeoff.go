package eval

import (
	"fmt"
	"math/rand"

	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/parallel"
	"disco/internal/tzk"
)

// TradeoffPoint is one k's measurement in the state/stretch sweep.
type TradeoffPoint struct {
	K            int
	MeanState    float64
	MaxState     int
	MeanStretch  float64
	MaxStretch   float64
	StretchBound int // the theoretical 2k-1
}

// TradeoffResult answers §6's open question empirically: the
// Thorup–Zwick k-level family translated to the simulator, sweeping the
// state/stretch tradeoff that Disco instantiates at k=2.
type TradeoffResult struct {
	N      int
	Kind   TopoKind
	Points []TradeoffPoint
}

// Format renders the staircase.
func (r *TradeoffResult) Format() string {
	out := fmt.Sprintf("State/stretch tradeoff (TZ k-level family, §6 future work), %s n=%d\n", r.Kind, r.N)
	out += fmt.Sprintf("  %3s %12s %10s %13s %12s %8s\n", "k", "mean-state", "max-state", "mean-stretch", "max-stretch", "bound")
	for _, p := range r.Points {
		out += fmt.Sprintf("  %3d %12.1f %10d %13.3f %12.3f %8d\n",
			p.K, p.MeanState, p.MaxState, p.MeanStretch, p.MaxStretch, p.StretchBound)
	}
	return out
}

// tradeoffSeedBase offsets the per-k TaskSeed streams away from the pair
// sample's (seed+8000) stream.
const tradeoffSeedBase = 8100

// TradeoffSweep builds the TZ scheme for each k and measures mean/max
// state and stretch over sampled pairs. The pair sample is drawn serially
// up front; each k's level sampling uses a private parallel.TaskSeed
// stream, so the per-pair stretch sweep inside each k runs through the
// worker pool on scheme forks with bit-identical output at any worker
// count. The outer k loop stays serial: nesting two pool fan-outs would
// multiply concurrency past the -workers bound.
func TradeoffSweep(kind TopoKind, n int, ks []int, seed int64, pairs int) *TradeoffResult {
	g := BuildTopo(kind, n, seed)
	g.Finalize()
	ps := metrics.SamplePairs(rand.New(rand.NewSource(seed+8000)), n, pairs)
	res := &TradeoffResult{N: n, Kind: kind}
	for ki := range ks {
		k := ks[ki]
		s := tzk.New(g, k, parallel.TaskRNG(seed+tradeoffSeedBase, ki))
		pt := TradeoffPoint{K: k, StretchBound: 2*k - 1}
		entries := s.StateEntries()
		tot := 0
		for _, e := range entries {
			tot += e
			if e > pt.MaxState {
				pt.MaxState = e
			}
		}
		pt.MeanState = float64(tot) / float64(n)
		type sample struct {
			ok bool
			st float64
		}
		samples := parallel.MapScratch(len(ps), s.Fork, func(f *tzk.Scheme, i int) sample {
			u, v := graph.NodeID(ps[i].Src), graph.NodeID(ps[i].Dst)
			true_ := f.TrueDist(u, v)
			if true_ == 0 {
				return sample{}
			}
			return sample{ok: true, st: g.PathLength(f.Route(u, v)) / true_}
		})
		sum, cnt := 0.0, 0
		for _, sm := range samples {
			if !sm.ok {
				continue
			}
			sum += sm.st
			cnt++
			if sm.st > pt.MaxStretch {
				pt.MaxStretch = sm.st
			}
		}
		pt.MeanStretch = sum / float64(cnt)
		res.Points = append(res.Points, pt)
	}
	return res
}
