package eval

import (
	"fmt"
	"math/rand"

	"disco/internal/core"
	"disco/internal/estimate"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/names"
	"disco/internal/parallel"
	"disco/internal/pathvector"
	"disco/internal/sim"
	"disco/internal/sloppy"
	"disco/internal/static"
	"disco/internal/vicinity"
)

// AccuracyResult is the §5 "accuracy of static simulation" cross-check.
type AccuracyResult struct {
	N                 int
	VicinityAgreement float64 // fraction of nodes with identical vicinities
	LMDistAgreement   float64 // fraction of nodes with identical landmark distance
	StretchDeltaPct   float64 // |static - event| mean later-packet stretch, percent
}

// Format renders the check. The paper reports a <1% stretch difference;
// here the converged *tables* (vicinities, landmark distances) agree
// exactly, and the residual stretch delta comes only from equal-length
// shortest-path tie-breaks interacting with backtrack trimming when routes
// are materialized.
func (r *AccuracyResult) Format() string {
	return fmt.Sprintf(
		"Static-vs-event-simulator accuracy, n=%d (paper: within ~0.9%%)\n"+
			"  vicinity tables identical at %.1f%% of nodes\n"+
			"  landmark distances identical at %.1f%% of nodes\n"+
			"  mean later-packet stretch difference: %.3f%%\n",
		r.N, 100*r.VicinityAgreement, 100*r.LMDistAgreement, r.StretchDeltaPct)
}

// StaticAccuracy runs the full event-driven path-vector protocol to
// convergence on a G(n,m) graph and compares its converged tables with the
// static simulator's, then compares the later-packet stretch both induce
// over sampled pairs.
func StaticAccuracy(n int, seed int64, pairs int) *AccuracyResult {
	g := BuildTopo(TopoGnm, n, seed)
	env := staticEnv(g, seed)
	k := vicinity.DefaultK(n)

	var eng sim.Engine
	p := pathvector.New(g, &eng, pathvector.Config{
		Mode: pathvector.ModeVicinity, K: k, IsLandmark: env.IsLM,
	})
	p.Start()
	if _, q := eng.Run(0); !q {
		panic("eval: event simulation did not converge")
	}

	nd := core.NewNDDisco(env, core.WithK(k))
	vicAgree, lmAgree := 0, 0
	for v := 0; v < n; v++ {
		want := nd.Vicinity(graph.NodeID(v))
		got := p.VicinitySet(graph.NodeID(v))
		same := got.Size() == want.Size()
		if same {
			for _, e := range want.Entries {
				ge, ok := got.Find(e.Node)
				if !ok || ge.Dist != e.Dist {
					same = false
					break
				}
			}
		}
		if same {
			vicAgree++
		}
		// Landmark distance from the event run.
		best := graph.Inf
		for _, lm := range env.Landmarks {
			if d := p.BestDist(graph.NodeID(v), lm); d < best {
				best = d
			}
		}
		if env.IsLM[v] {
			best = 0
		}
		if best == env.LMDist[v] {
			lmAgree++
		}
	}

	// Later-packet stretch from both data planes. Routes are assembled
	// from each plane's own tables; identical tables must induce
	// identical stretch.
	ps := metrics.SamplePairs(rand.New(rand.NewSource(seed+5000)), n, pairs)
	sumStatic, sumEvent := 0.0, 0.0
	count := 0
	for _, pr := range ps {
		s, t := graph.NodeID(pr.Src), graph.NodeID(pr.Dst)
		short := nd.ShortestDist(s, t)
		if short == 0 {
			continue
		}
		sumStatic += g.PathLength(nd.LaterRoute(s, t, core.ShortcutNone)) / short
		sumEvent += eventLaterLen(p, env, nd, s, t) / short
		count++
	}
	meanStatic := sumStatic / float64(count)
	meanEvent := sumEvent / float64(count)
	delta := 100 * abs(meanStatic-meanEvent) / meanStatic
	return &AccuracyResult{
		N:                 n,
		VicinityAgreement: float64(vicAgree) / float64(n),
		LMDistAgreement:   float64(lmAgree) / float64(n),
		StretchDeltaPct:   delta,
	}
}

// eventLaterLen computes the later-packet route length using only the
// event-driven protocol's converged tables (vicinity paths and landmark
// paths), mirroring NDDisco's routing logic.
func eventLaterLen(p *pathvector.Protocol, env *static.Env, nd *core.NDDisco, s, t graph.NodeID) float64 {
	g := env.G
	if s == t {
		return 0
	}
	if env.IsLM[t] {
		return g.PathLength(p.BestPath(s, t))
	}
	if path := p.BestPath(s, t); path != nil {
		// t in s's vicinity (or a stored landmark route).
		return g.PathLength(path)
	}
	if rev := p.BestPath(t, s); rev != nil {
		// Handshake: t knows the path and tells s.
		return g.PathLength(rev)
	}
	// Landmark route: s ⇝ l_t plus t's explicit route, with the same
	// backtrack trimming the static router applies.
	lt := env.LMOf[t]
	up := p.BestPath(s, lt)
	down := env.AddrOf(t).Path
	total := g.PathLength(up) + g.PathLength(down)
	// Trim immediate backtrack across the joint (x,l,x -> x).
	for len(up) >= 2 && len(down) >= 2 && up[len(up)-2] == down[1] {
		total -= 2 * g.EdgeWeight(down[0], down[1])
		up = up[:len(up)-1]
		down = down[1:]
	}
	return total
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ErrorResult is the §5 "Error in Estimating Number of Nodes" experiment.
type ErrorResult struct {
	N           int
	ErrFrac     float64
	GroupMisses int     // (node, group) pairs with no resolver in the vicinity
	NodePairs   int     // total (node, group) pairs checked
	MeanStretch float64 // mean first-packet stretch under error
	BaseStretch float64 // mean first-packet stretch with exact estimates
	DeltaPct    float64
	Fallbacks   int // routes that needed the landmark DB
	Unreachable int // routes that failed outright (always 0: fallback covers)
}

// Format renders the experiment (paper: with 40% error all nodes reach all
// groups and mean stretch rises 0.6%; with 60% error a single node missed
// a single group).
func (r *ErrorResult) Format() string {
	return fmt.Sprintf(
		"Estimate-error experiment, n=%d, ±%.0f%% error\n"+
			"  vicinity/group misses: %d of %d (node,group) pairs\n"+
			"  mean first-packet stretch: %.4f (exact-estimate baseline %.4f, +%.2f%%)\n"+
			"  landmark-DB fallbacks: %d, unreachable: %d\n",
		r.N, 100*r.ErrFrac, r.GroupMisses, r.NodePairs,
		r.MeanStretch, r.BaseStretch, r.DeltaPct, r.Fallbacks, r.Unreachable)
}

// EstimateError reproduces the robustness experiment: inject uniform
// random error into every node's estimate of n, rebuild the sloppy
// grouping, and measure (a) how many (node, group) pairs lost their
// vicinity resolver and (b) the change in mean first-packet stretch. All
// PRNG draws (pair sample, error injection) happen serially up front, per
// the parallel.TaskSeed rule; the pair sweeps and the miss scan then fan
// out over the worker pool on snapshot-backed forks, with sums reduced in
// task order, so the result is identical at any worker count.
func EstimateError(n int, seed int64, errFrac float64, pairs int) *ErrorResult {
	g := BuildTopo(TopoGnm, n, seed)

	// Serial up-front draws.
	basePairs := metrics.SamplePairs(rand.New(rand.NewSource(seed+6000)), n, pairs)
	est := estimate.InjectError(rand.New(rand.NewSource(seed+6001)), n, errFrac)

	baseEnv := static.NewEnv(g, seed)
	base := core.NewDisco(baseEnv, core.WithSeed(seed))
	installSnapshot(base)
	baseMean, _ := meanFirstStretch(base, basePairs)

	env := static.NewEnv(g, seed, static.WithNEst(est))
	d := core.NewDisco(env, core.WithSeed(seed))
	installSnapshot(d)

	// Miss scan: for every node s and every group id under s's own k, is
	// there a vicinity member w whose (mutual) group matches? Integer
	// tallies merge order-independently across workers.
	view := d.View
	type missCount struct{ misses, checked int }
	perNode := parallel.MapScratch(n, d.ND.Fork, func(nd *core.NDDisco, s int) missCount {
		sv := graph.NodeID(s)
		ks := view.KOf(sv)
		vs := nd.Vicinity(sv)
		var mc missCount
		for gid := uint64(0); gid < 1<<uint(ks); gid++ {
			mc.checked++
			found := false
			for _, e := range vs.Entries {
				if sloppy.GroupID(env.Hashes[e.Node], ks) == gid {
					found = true
					break
				}
			}
			if !found {
				mc.misses++
			}
		}
		return mc
	})
	misses, checked := 0, 0
	for _, mc := range perNode {
		misses += mc.misses
		checked += mc.checked
	}

	errMean, fb := meanFirstStretch(d, basePairs)
	return &ErrorResult{
		N:           n,
		ErrFrac:     errFrac,
		GroupMisses: misses,
		NodePairs:   checked,
		MeanStretch: errMean,
		BaseStretch: baseMean,
		DeltaPct:    100 * (errMean - baseMean) / baseMean,
		Fallbacks:   fb,
	}
}

// meanFirstStretch computes the mean first-packet stretch over ps on the
// worker pool, plus the total landmark-DB fallback count. The float sum
// reduces in pair order; fallback counters sum over forks
// (order-independent integers).
func meanFirstStretch(d *core.Disco, ps []metrics.Pair) (mean float64, fallbacks int) {
	g := d.Env().G
	type sample struct {
		ok bool
		st float64
	}
	samples := make([]sample, len(ps))
	forks := parallel.RunGather(len(ps), d.Fork, func(f *core.Disco, i int) {
		s, t := graph.NodeID(ps[i].Src), graph.NodeID(ps[i].Dst)
		short := f.ND.ShortestDist(s, t)
		if short == 0 {
			return
		}
		samples[i] = sample{ok: true, st: g.PathLength(f.FirstRoute(s, t, core.ShortcutNoPathKnowledge)) / short}
	})
	total, count := 0.0, 0
	for _, sm := range samples {
		if !sm.ok {
			continue
		}
		total += sm.st
		count++
	}
	for _, f := range forks {
		fb, _ := f.Fallbacks()
		fallbacks += fb
	}
	return total / float64(count), fallbacks
}

// ResolveImbalanceResult is the §4.5 consistent-hashing load-balance
// ablation: single vs multiple hash functions.
type ResolveImbalanceResult struct {
	N          int
	Landmarks  int
	Imbalance1 float64 // max/mean keys with 1 hash function
	Imbalance8 float64 // with 8
}

// Format renders the ablation.
func (r *ResolveImbalanceResult) Format() string {
	return fmt.Sprintf(
		"Resolution-DB load imbalance (max/mean), n=%d, %d landmarks: 1 hash fn %.2f, 8 hash fns %.2f\n",
		r.N, r.Landmarks, r.Imbalance1, r.Imbalance8)
}

// ResolveImbalance measures consistent hashing's load imbalance with 1 and
// 8 hash functions per landmark (§4.5: multiple functions cut the Θ(log n)
// imbalance).
func ResolveImbalance(n int, seed int64) *ResolveImbalanceResult {
	g := BuildTopo(TopoGnm, n, seed)
	env := staticEnv(g, seed)
	keys := make([]names.Hash, n)
	copy(keys, env.Hashes)
	d1 := core.NewDisco(env, core.WithResolveVNodes(1))
	d8 := core.NewDisco(env, core.WithResolveVNodes(8))
	return &ResolveImbalanceResult{
		N:          n,
		Landmarks:  len(env.Landmarks),
		Imbalance1: d1.DB.Imbalance(keys),
		Imbalance8: d8.DB.Imbalance(keys),
	}
}
