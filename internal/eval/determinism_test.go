package eval

import (
	"flag"
	"testing"

	"disco/internal/parallel"
)

// invarianceWorkers is the pooled worker count the invariance test
// compares against workers=1. CI runs the test at -workers 1, 4 and 16 so
// schedule-dependent bugs that only appear at particular pool widths are
// caught.
var invarianceWorkers = flag.Int("workers", 8, "pooled worker count TestWorkerCountInvariance compares against workers=1")

// atWorkers runs fn with the process-wide worker pool bounded to w and
// restores the default afterwards.
func atWorkers(t *testing.T, w int, fn func() string) string {
	t.Helper()
	parallel.SetWorkers(w)
	defer parallel.SetWorkers(0)
	return fn()
}

// TestWorkerCountInvariance is the harness's core guarantee: every
// parallelized experiment formats to byte-identical output with 1 worker
// and with -workers (default 8), on the same seed. Under -race this
// doubles as the data-race sweep over every concurrent experiment path,
// including the shared-snapshot reads every fork performs.
func TestWorkerCountInvariance(t *testing.T) {
	cases := []struct {
		name  string
		short bool // keep in -short runs (the race job's quick sweep)
		run   func() string
	}{
		{"Fig2State", true, func() string { return Fig2State(TopoGnm, 192, 1).Format() }},
		{"Fig3Stretch", true, func() string { return Fig3Stretch(TopoGeometric, 192, 3, 60).Format() }},
		{"Fig45", true, func() string { return Fig45(TopoGnm, 128, 4, 40).Format() }},
		{"Fig6Shortcuts", false, func() string {
			return Fig6Shortcuts([]Fig6Spec{
				{Label: "gnm-128", Kind: TopoGnm, N: 128},
				{Label: "geo-128", Kind: TopoGeometric, N: 128},
			}, 5, 40).Format()
		}},
		{"Fig7StateBytes", false, func() string { return Fig7StateBytes(256, 6).Format() }},
		{"Fig8Convergence", false, func() string { return Fig8Convergence([]int{64, 96, 128, 192}, 96, 13).Format() }},
		{"Fig9Scaling", false, func() string { return Fig9Scaling([]int{128, 192}, 8, 40).Format() }},
		{"Fig10ASCongestion", false, func() string { return Fig10ASCongestion(192, 9).Format() }},
		{"LandmarkStrategies", false, func() string { return LandmarkStrategies(TopoASLike, 192, 15, 40).Format() }},
		{"EstimateError", false, func() string { return EstimateError(192, 11, 0.4, 40).Format() }},
		{"TradeoffSweep", false, func() string { return TradeoffSweep(TopoGnm, 192, []int{1, 2, 3}, 19, 40).Format() }},
		{"ChurnCost", true, func() string {
			r, err := ChurnCost(96, 17, 2)
			if err != nil {
				return "churn error: " + err.Error()
			}
			return r.Format()
		}},
		{"FailureScenarios", true, func() string { return FailureScenarios(TopoGnm, 192, 21, 40).Format() }},
		{"ChurnTimeline", true, func() string {
			r, err := ChurnTimeline(TopoGnm, 128, 23, 40, 0)
			if err != nil {
				return "churn-timeline error: " + err.Error()
			}
			return r.Format()
		}},
		{"ServeStorm", true, func() string {
			// Only the deterministic event log — the measured load is
			// wall-clock by design. Queriers run concurrently with the
			// pooled probe routing, so under -race this case doubles as a
			// query-plane-vs-repair-loop race sweep.
			r, err := ServeStorm(TopoGnm, 128, 23, 40, 8, 4, false)
			if err != nil {
				return "serve-storm error: " + err.Error()
			}
			return r.FormatEvents()
		}},
	}
	pooledWorkers := *invarianceWorkers
	if pooledWorkers < 1 {
		pooledWorkers = 1
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && !tc.short {
				t.Skip("short mode: covered by the full run")
			}
			serial := atWorkers(t, 1, tc.run)
			pooled := atWorkers(t, pooledWorkers, tc.run)
			if serial != pooled {
				t.Errorf("output differs between workers=1 and workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s", pooledWorkers, serial, pooledWorkers, pooled)
			}
			again := atWorkers(t, pooledWorkers, tc.run)
			if pooled != again {
				t.Errorf("output not stable across repeated workers=%d runs", pooledWorkers)
			}
		})
	}
}
