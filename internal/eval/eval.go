// Package eval is the experiment harness: one entry point per table and
// figure of the paper's evaluation (§5), each returning a printable result
// that reports the same rows/series the paper does. cmd/discosim and the
// root-level benchmarks are thin wrappers around this package.
//
// Default sizes are scaled down from the paper's (which reach 192,244
// nodes) so the whole suite runs on a laptop; every function takes explicit
// sizes so cmd/discosim -full can run paper scale. EXPERIMENTS.md records
// paper-reported vs measured values.
package eval

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"disco/internal/core"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/s4"
	"disco/internal/snapshot"
	"disco/internal/spr"
	"disco/internal/static"
	"disco/internal/topology"
	"disco/internal/vrr"
)

// TopoKind names the evaluation topologies of §5.1.
type TopoKind string

const (
	// TopoGnm is the G(n,m) random graph with average degree 8.
	TopoGnm TopoKind = "gnm"
	// TopoGeometric is the geometric random graph with Euclidean link
	// latencies and average degree 8.
	TopoGeometric TopoKind = "geometric"
	// TopoASLike stands in for the 30,610-node AS-level Internet map.
	TopoASLike TopoKind = "aslike"
	// TopoRouterLike stands in for the 192,244-node router-level map.
	TopoRouterLike TopoKind = "routerlike"
)

// BuildTopo generates the named topology at size n, seeded.
func BuildTopo(kind TopoKind, n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case TopoGnm:
		return topology.GnmAvgDeg(rng, n, 8)
	case TopoGeometric:
		return topology.Geometric(rng, n, 8)
	case TopoASLike:
		return topology.ASLike(rng, n)
	case TopoRouterLike:
		return topology.RouterLike(rng, n)
	}
	panic(fmt.Sprintf("eval: unknown topology %q", kind))
}

// snapshotBacked selects whether routing experiments precompute the shared
// immutable snapshot (the default) or run on the legacy per-fork caches.
// The snapshot-equivalence test flips it to assert both paths produce
// byte-identical output; there is no other reason to turn it off.
var snapshotBacked atomic.Bool

func init() { snapshotBacked.Store(true) }

// SetSnapshotBacked toggles snapshot-backed routing for subsequently built
// experiments (tests only).
func SetSnapshotBacked(on bool) { snapshotBacked.Store(on) }

// SnapshotBacked reports whether routing experiments use the shared
// snapshot layer.
func SnapshotBacked() bool { return snapshotBacked.Load() }

// snapshotCompact selects the compact (bit-packed, float32-distance)
// snapshot encoding for subsequently built experiments — the regime that
// fits paper-scale -full runs in memory. Exact storage stays the default:
// compact output is byte-identical on the integer-weight topologies and
// may shift at float32 precision on metric (geometric) ones, so figures
// that claim exactness keep the exact escape hatch unless -compact is
// asked for.
var snapshotCompact atomic.Bool

// SetSnapshotCompact toggles the compact snapshot encoding for
// subsequently built experiments (cmd/discosim -compact and tests).
func SetSnapshotCompact(on bool) { snapshotCompact.Store(on) }

// SnapshotCompact reports whether snapshots are built in the compact
// encoding regime.
func SnapshotCompact() bool { return snapshotCompact.Load() }

// SetSnapshotSpill directs subsequently built compact snapshots (and
// chain folds) to write their base shard storage to files under dir,
// served through read-only mappings (cmd/discosim -spill). Empty string
// disables. A pass-through to snapshot.SetSpillDir so the harness
// configures every storage knob in one place.
func SetSnapshotSpill(dir string) { snapshot.SetSpillDir(dir) }

// buildSnapshot dispatches to the selected encoding regime. The
// experiment topologies are connected by construction, so a build error
// here is a harness bug; panicking with the diagnosable error (outside
// any worker pool) is the right failure mode for the harness, while
// library callers of snapshot.Build handle the error themselves.
func buildSnapshot(g *graph.Graph, k int, landmarks []graph.NodeID) *snapshot.Snapshot {
	build := snapshot.Build
	if SnapshotCompact() {
		build = snapshot.BuildCompact
	}
	s, err := build(g, k, landmarks)
	if err != nil {
		panic(fmt.Sprintf("eval: snapshot build failed: %v", err))
	}
	return s
}

// Protocols bundles the protocol instances built over one environment so
// experiments share landmarks, names and caches.
type Protocols struct {
	Env   *static.Env
	Disco *core.Disco
	S4    *s4.S4
	SPR   *spr.SPR

	mu   sync.Mutex
	snap *snapshot.Snapshot
	vrrs map[int64]*vrr.VRR
}

// EnsureSnapshot builds (once) the shared immutable snapshot — the flat
// vicinity table plus the landmark shortest-path forest, computed in
// parallel — and installs it into the Disco and S4 data planes, so every
// subsequent Fork() shares it instead of rebuilding private caches. A
// no-op when snapshot backing is toggled off. Call before routing sweeps;
// state-only experiments don't need it.
func (p *Protocols) EnsureSnapshot() {
	if !SnapshotBacked() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.snap != nil {
		return
	}
	p.snap = buildSnapshot(p.Env.G, p.Disco.ND.K, p.Env.Landmarks)
	p.Disco.ND.UseSnapshot(p.snap)
	p.S4.UseSnapshot(p.snap)
}

// installSnapshot builds and installs a snapshot for a standalone Disco
// instance outside a Protocols bundle (per-strategy environments and the
// estimate-error experiment). A no-op when snapshot backing is off.
func installSnapshot(d *core.Disco) {
	if !SnapshotBacked() {
		return
	}
	env := d.Env()
	d.ND.UseSnapshot(buildSnapshot(env.G, d.ND.K, env.Landmarks))
}

// BuildProtocols constructs the common environment and protocol stack.
func BuildProtocols(kind TopoKind, n int, seed int64) *Protocols {
	g := BuildTopo(kind, n, seed)
	env := static.NewEnv(g, seed)
	return &Protocols{
		Env:   env,
		Disco: core.NewDisco(env, core.WithSeed(seed)),
		S4:    s4.New(env, 1),
		SPR:   spr.New(env),
	}
}

// VRR builds the VRR baseline over the same environment (1,024-node
// experiments only in the paper). Construction is O(n^2)-ish, so the
// converged instance is memoized per seed: the three Fig. 4/5 panels share
// one build, each forking it for concurrent routing. Construction is
// deterministic, so memoization never changes results.
func (p *Protocols) VRR(seed int64) *vrr.VRR {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.vrrs[seed]; ok {
		return v
	}
	rng := rand.New(rand.NewSource(seed))
	v := vrr.New(p.Env, 4, graph.NodeID(rng.Intn(p.Env.N())))
	// The memoized instance lives for the whole experiment; keep only the
	// sealed flat representation.
	v.Compact()
	if p.vrrs == nil {
		p.vrrs = make(map[int64]*vrr.VRR)
	}
	p.vrrs[seed] = v
	return v
}

// staticEnv builds the shared environment (indirection so experiment files
// read uniformly).
func staticEnv(g *graph.Graph, seed int64) *static.Env { return static.NewEnv(g, seed) }

// intsToCDF converts entry counts to a CDF.
func intsToCDF(xs []int) *metrics.CDF {
	fs := make([]float64, len(xs))
	for i, v := range xs {
		fs[i] = float64(v)
	}
	return metrics.NewCDF(fs)
}

// sampleCDF builds a CDF over the values of xs at the sampled indices.
func sampleCDF(xs []int, idx []int) *metrics.CDF {
	fs := make([]float64, len(idx))
	for i, j := range idx {
		fs[i] = float64(xs[j])
	}
	return metrics.NewCDF(fs)
}
