package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"disco/internal/core"
	"disco/internal/graph"
	"disco/internal/metrics"
)

// StretchResult holds stretch CDFs per series (Fig. 3 and the middle
// panels of Figs. 4 and 5).
type StretchResult struct {
	Kind      TopoKind
	N         int
	Pairs     int
	Labels    []string
	CDFs      []*metrics.CDF
	Fallbacks int // Disco first-packet landmark-DB fallbacks observed
}

// Format renders the figure's summary rows.
func (r *StretchResult) Format() string {
	s := metrics.FormatSeries(
		fmt.Sprintf("Path stretch — %s, n=%d, %d src-dst pairs", r.Kind, r.N, r.Pairs),
		r.Labels, r.CDFs)
	if r.Fallbacks > 0 {
		s += fmt.Sprintf("  (Disco landmark-DB fallbacks: %d)\n", r.Fallbacks)
	}
	return s
}

// Get returns the CDF for a labeled series, or nil.
func (r *StretchResult) Get(label string) *metrics.CDF {
	for i, l := range r.Labels {
		if l == label {
			return r.CDFs[i]
		}
	}
	return nil
}

// stretchOf computes route-length/shortest for a route function.
func stretchOf(g interface {
	PathLength([]graph.NodeID) float64
}, route []graph.NodeID, shortest float64) float64 {
	return metrics.Stretch(g.PathLength(route), shortest)
}

// Fig3Stretch reproduces Fig. 3: CDFs over sampled source-destination
// pairs of first- and later-packet stretch for Disco and S4, using the
// paper's default "No Path Knowledge" shortcutting for Disco.
func Fig3Stretch(kind TopoKind, n int, seed int64, pairs int) *StretchResult {
	p := BuildProtocols(kind, n, seed)
	return stretchOver(p, kind, seed, pairs, false)
}

// StretchWithVRR adds the VRR series (middle panels of Figs. 4 and 5).
func StretchWithVRR(p *Protocols, kind TopoKind, seed int64, pairs int) *StretchResult {
	return stretchOver(p, kind, seed, pairs, true)
}

func stretchOver(p *Protocols, kind TopoKind, seed int64, pairs int, withVRR bool) *StretchResult {
	n := p.Env.N()
	ps := metrics.SamplePairs(rand.New(rand.NewSource(seed+1000)), n, pairs)
	g := p.Env.G

	discoFirst := make([]float64, 0, pairs)
	discoLater := make([]float64, 0, pairs)
	s4First := make([]float64, 0, pairs)
	s4Later := make([]float64, 0, pairs)
	var vrrSt []float64
	var vr interface {
		Route(s, t graph.NodeID) []graph.NodeID
	}
	if withVRR {
		vr = p.VRR(seed)
	}
	p.Disco.ResetCounters()
	for _, pr := range ps {
		s, t := graph.NodeID(pr.Src), graph.NodeID(pr.Dst)
		short := p.Disco.ND.ShortestDist(s, t)
		if short == 0 {
			continue
		}
		discoFirst = append(discoFirst, stretchOf(g, p.Disco.FirstRoute(s, t, core.ShortcutNoPathKnowledge), short))
		discoLater = append(discoLater, stretchOf(g, p.Disco.LaterRoute(s, t, core.ShortcutNoPathKnowledge), short))
		s4First = append(s4First, stretchOf(g, p.S4.FirstRoute(s, t), short))
		s4Later = append(s4Later, stretchOf(g, p.S4.LaterRoute(s, t), short))
		if withVRR {
			vrrSt = append(vrrSt, stretchOf(g, vr.Route(s, t), short))
		}
	}
	fb, _ := p.Disco.Fallbacks()
	res := &StretchResult{
		Kind:  kind,
		N:     n,
		Pairs: pairs,
		Labels: []string{
			"Disco-First", "Disco-Later", "S4-First", "S4-Later",
		},
		CDFs: []*metrics.CDF{
			metrics.NewCDF(discoFirst), metrics.NewCDF(discoLater),
			metrics.NewCDF(s4First), metrics.NewCDF(s4Later),
		},
		Fallbacks: fb,
	}
	if withVRR {
		res.Labels = append(res.Labels, "VRR")
		res.CDFs = append(res.CDFs, metrics.NewCDF(vrrSt))
	}
	return res
}

// Fig6Result is the shortcutting-heuristics table: mean first-packet
// stretch per heuristic per topology.
type Fig6Result struct {
	Topos  []string
	Rows   []Fig6Row
	NPairs int
}

// Fig6Row is one heuristic's mean stretch across the topologies.
type Fig6Row struct {
	Heuristic core.Shortcut
	Means     []float64
}

// Format renders the Fig. 6 table.
func (r *Fig6Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — Mean first-packet stretch by shortcutting heuristic (%d pairs)\n", r.NPairs)
	fmt.Fprintf(&b, "  %-36s", "heuristic")
	for _, t := range r.Topos {
		fmt.Fprintf(&b, " %16s", t)
	}
	fmt.Fprintln(&b)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-36s", row.Heuristic.String())
		for _, m := range row.Means {
			fmt.Fprintf(&b, " %16.3f", m)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig6Spec names one column of the Fig. 6 table.
type Fig6Spec struct {
	Label string
	Kind  TopoKind
	N     int
}

// Fig6Shortcuts reproduces the Fig. 6 table: mean stretch of NDDisco first
// packets under each of the six shortcutting heuristics, across the given
// topologies (the paper uses AS-level, router-level, geometric-16384 and
// GNM-16384).
func Fig6Shortcuts(specs []Fig6Spec, seed int64, pairs int) *Fig6Result {
	res := &Fig6Result{NPairs: pairs}
	type sampled struct {
		nd    *core.NDDisco
		pairs []metrics.Pair
	}
	var cols []sampled
	for _, sp := range specs {
		res.Topos = append(res.Topos, sp.Label)
		p := BuildProtocols(sp.Kind, sp.N, seed)
		cols = append(cols, sampled{
			nd:    p.Disco.ND,
			pairs: metrics.SamplePairs(rand.New(rand.NewSource(seed+2000)), sp.N, pairs),
		})
	}
	for _, sc := range core.AllShortcuts {
		row := Fig6Row{Heuristic: sc}
		for _, col := range cols {
			total, count := 0.0, 0
			for _, pr := range col.pairs {
				s, t := graph.NodeID(pr.Src), graph.NodeID(pr.Dst)
				short := col.nd.ShortestDist(s, t)
				if short == 0 {
					continue
				}
				total += stretchOf(col.nd.Env.G, col.nd.FirstRoute(s, t, sc), short)
				count++
			}
			row.Means = append(row.Means, total/float64(count))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}
