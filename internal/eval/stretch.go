package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"disco/internal/core"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/parallel"
	"disco/internal/pathtree"
	"disco/internal/s4"
	"disco/internal/vrr"
)

// StretchResult holds stretch CDFs per series (Fig. 3 and the middle
// panels of Figs. 4 and 5).
type StretchResult struct {
	Kind      TopoKind
	N         int
	Pairs     int
	Labels    []string
	CDFs      []*metrics.CDF
	Fallbacks int // Disco first-packet landmark-DB fallbacks observed
}

// Format renders the figure's summary rows.
func (r *StretchResult) Format() string {
	s := metrics.FormatSeries(
		fmt.Sprintf("Path stretch — %s, n=%d, %d src-dst pairs", r.Kind, r.N, r.Pairs),
		r.Labels, r.CDFs)
	if r.Fallbacks > 0 {
		s += fmt.Sprintf("  (Disco landmark-DB fallbacks: %d)\n", r.Fallbacks)
	}
	return s
}

// Get returns the CDF for a labeled series, or nil.
func (r *StretchResult) Get(label string) *metrics.CDF {
	for i, l := range r.Labels {
		if l == label {
			return r.CDFs[i]
		}
	}
	return nil
}

// stretchOf computes route-length/shortest for a route function.
func stretchOf(g interface {
	PathLength([]graph.NodeID) float64
}, route []graph.NodeID, shortest float64) float64 {
	return metrics.Stretch(g.PathLength(route), shortest)
}

// Fig3Stretch reproduces Fig. 3: CDFs over sampled source-destination
// pairs of first- and later-packet stretch for Disco and S4, using the
// paper's default "No Path Knowledge" shortcutting for Disco.
func Fig3Stretch(kind TopoKind, n int, seed int64, pairs int) *StretchResult {
	p := BuildProtocols(kind, n, seed)
	return stretchOver(p, kind, seed, pairs, false)
}

// StretchWithVRR adds the VRR series (middle panels of Figs. 4 and 5).
func StretchWithVRR(p *Protocols, kind TopoKind, seed int64, pairs int) *StretchResult {
	return stretchOver(p, kind, seed, pairs, true)
}

// stretchSample is one sampled pair's measurements; ok is false for pairs
// skipped because the endpoints coincide in distance (short == 0).
type stretchSample struct {
	ok                     bool
	discoFirst, discoLater float64
	s4First, s4Later       float64
	vrr                    float64
}

// stretchScratch is one worker's private routing state for a stretch sweep.
type stretchScratch struct {
	d  *core.Disco
	s4 *s4.S4
	vr *vrr.VRR
}

func stretchOver(p *Protocols, kind TopoKind, seed int64, pairs int, withVRR bool) *StretchResult {
	n := p.Env.N()
	ps := metrics.SamplePairs(rand.New(rand.NewSource(seed+1000)), n, pairs)
	g := p.Env.G
	p.EnsureSnapshot()

	var vr *vrr.VRR
	if withVRR {
		vr = p.VRR(seed)
	}
	// Fan the per-pair route computations out over the worker pool. Each
	// worker forks the data planes, which share the precomputed snapshot
	// (vicinities, landmark trees) and one destination-tree scratch per
	// worker, so the Dijkstra for a pair's stretch denominator is reused
	// by every protocol routing that pair. Routes are pure functions of
	// the environment, so the samples — and hence the CDFs — are
	// identical at any worker count.
	samples := make([]stretchSample, len(ps))
	forks := parallel.RunGather(len(ps),
		func() *stretchScratch {
			dest := pathtree.NewLazy(g)
			sc := &stretchScratch{d: p.Disco.ForkWith(dest), s4: p.S4.ForkWith(dest)}
			if withVRR {
				sc.vr = vr.Fork()
			}
			return sc
		},
		func(sc *stretchScratch, i int) {
			s, t := graph.NodeID(ps[i].Src), graph.NodeID(ps[i].Dst)
			short := sc.d.ND.ShortestDist(s, t)
			if short == 0 {
				return
			}
			out := stretchSample{ok: true}
			out.discoFirst = stretchOf(g, sc.d.FirstRoute(s, t, core.ShortcutNoPathKnowledge), short)
			out.discoLater = stretchOf(g, sc.d.LaterRoute(s, t, core.ShortcutNoPathKnowledge), short)
			out.s4First = stretchOf(g, sc.s4.FirstRoute(s, t), short)
			out.s4Later = stretchOf(g, sc.s4.LaterRoute(s, t), short)
			if withVRR {
				out.vrr = stretchOf(g, sc.vr.Route(s, t), short)
			}
			samples[i] = out
		})

	// Merge in pair order so output bytes never depend on the schedule.
	discoFirst := make([]float64, 0, pairs)
	discoLater := make([]float64, 0, pairs)
	s4First := make([]float64, 0, pairs)
	s4Later := make([]float64, 0, pairs)
	var vrrSt []float64
	for _, sm := range samples {
		if !sm.ok {
			continue
		}
		discoFirst = append(discoFirst, sm.discoFirst)
		discoLater = append(discoLater, sm.discoLater)
		s4First = append(s4First, sm.s4First)
		s4Later = append(s4Later, sm.s4Later)
		if withVRR {
			vrrSt = append(vrrSt, sm.vrr)
		}
	}
	fb := 0
	for _, sc := range forks {
		f, _ := sc.d.Fallbacks()
		fb += f
	}
	res := &StretchResult{
		Kind:  kind,
		N:     n,
		Pairs: pairs,
		Labels: []string{
			"Disco-First", "Disco-Later", "S4-First", "S4-Later",
		},
		CDFs: []*metrics.CDF{
			metrics.NewCDF(discoFirst), metrics.NewCDF(discoLater),
			metrics.NewCDF(s4First), metrics.NewCDF(s4Later),
		},
		Fallbacks: fb,
	}
	if withVRR {
		res.Labels = append(res.Labels, "VRR")
		res.CDFs = append(res.CDFs, metrics.NewCDF(vrrSt))
	}
	return res
}

// Fig6Result is the shortcutting-heuristics table: mean first-packet
// stretch per heuristic per topology.
type Fig6Result struct {
	Topos  []string
	Rows   []Fig6Row
	NPairs int
}

// Fig6Row is one heuristic's mean stretch across the topologies.
type Fig6Row struct {
	Heuristic core.Shortcut
	Means     []float64
}

// Format renders the Fig. 6 table.
func (r *Fig6Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — Mean first-packet stretch by shortcutting heuristic (%d pairs)\n", r.NPairs)
	fmt.Fprintf(&b, "  %-36s", "heuristic")
	for _, t := range r.Topos {
		fmt.Fprintf(&b, " %16s", t)
	}
	fmt.Fprintln(&b)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-36s", row.Heuristic.String())
		for _, m := range row.Means {
			fmt.Fprintf(&b, " %16.3f", m)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig6Spec names one column of the Fig. 6 table.
type Fig6Spec struct {
	Label string
	Kind  TopoKind
	N     int
}

// Fig6Shortcuts reproduces the Fig. 6 table: mean stretch of NDDisco first
// packets under each of the six shortcutting heuristics, across the given
// topologies (the paper uses AS-level, router-level, geometric-16384 and
// GNM-16384).
func Fig6Shortcuts(specs []Fig6Spec, seed int64, pairs int) *Fig6Result {
	res := &Fig6Result{NPairs: pairs}
	type sampled struct {
		nd    *core.NDDisco
		pairs []metrics.Pair
	}
	var cols []sampled
	for _, sp := range specs {
		res.Topos = append(res.Topos, sp.Label)
		p := BuildProtocols(sp.Kind, sp.N, seed)
		p.EnsureSnapshot()
		cols = append(cols, sampled{
			nd:    p.Disco.ND,
			pairs: metrics.SamplePairs(rand.New(rand.NewSource(seed+2000)), sp.N, pairs),
		})
	}
	// One parallel sweep per column; each pair task evaluates all six
	// heuristics against one worker-private fork of the shared snapshot.
	// Per-heuristic means then reduce in pair order, exactly as the serial
	// loops did.
	nSC := len(core.AllShortcuts)
	colMeans := make([][]float64, len(cols)) // [col][heuristic]
	for ci, col := range cols {
		type pairStretch struct {
			ok bool
			st []float64 // per heuristic
		}
		cps := col.pairs
		nd := col.nd
		samples := parallel.MapScratch(len(cps),
			nd.Fork,
			func(f *core.NDDisco, i int) pairStretch {
				s, t := graph.NodeID(cps[i].Src), graph.NodeID(cps[i].Dst)
				short := f.ShortestDist(s, t)
				if short == 0 {
					return pairStretch{}
				}
				out := pairStretch{ok: true, st: make([]float64, nSC)}
				for si, sc := range core.AllShortcuts {
					out.st[si] = stretchOf(f.Env.G, f.FirstRoute(s, t, sc), short)
				}
				return out
			})
		means := make([]float64, nSC)
		for si := range core.AllShortcuts {
			total, count := 0.0, 0
			for _, sm := range samples {
				if !sm.ok {
					continue
				}
				total += sm.st[si]
				count++
			}
			means[si] = total / float64(count)
		}
		colMeans[ci] = means
	}
	for si, sc := range core.AllShortcuts {
		row := Fig6Row{Heuristic: sc}
		for ci := range cols {
			row.Means = append(row.Means, colMeans[ci][si])
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}
