package eval

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disco/internal/dynamics"
	"disco/internal/forward"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/serve"
	"disco/internal/snapshot"
)

// The serve-storm experiment: the serving mode under measurement. A
// serve.Plane answers route queries from a closed-loop concurrent query
// load while the repair loop replays the churn-timeline event sequence
// (the same stormStep draws, so for one (seed, n, kind) the events are
// identical to -exp churn-timeline's) through a dynamics.Timeline and
// publishes every post-event snapshot. Two kinds of output come out:
//
//   - The deterministic per-epoch event log (FormatEvents): event kind,
//     links, blast radius, and per-leg delivery of a fixed pair sample
//     routed ON the published epoch. Byte-identical across runs and at any
//     -workers / -queriers value (per-epoch routing is deterministic; see
//     the internal/serve package comment), so it is golden-diffable.
//   - Measured serving metrics (the "measured:" line): queries/sec, p50
//     and p99 query latency, delivered fraction, and staleness — the
//     fraction of queries answered on an epoch that had already been
//     superseded by completion time. Wall-clock quantities, excluded from
//     goldens.
type ServeStormResult struct {
	Kind   TopoKind
	N      int
	PairsN int
	Events []ServeEventRow
	Load   ServeLoad
}

// ServeEventRow is one published epoch of the storm: the event that
// produced it and the deterministic probe routed on it.
type ServeEventRow struct {
	Step      int
	Kind      string // "fail" or "recover"
	Links     int
	DownAfter int
	Epoch     uint64 // plane epoch this event published as

	ShardsPct float64

	Pairs     int
	Connected int
	Legs      [numLegs]legAgg
}

// ServeLoad is the measured (nondeterministic) side of the storm.
type ServeLoad struct {
	Queriers  int
	Plane     string // query-plane kind: "fork-and-walk" or "tables"
	Queries   uint64
	Delivered uint64
	Stale     uint64
	Secs      float64
	P50us     float64 // concurrent query latency percentiles, microseconds
	P99us     float64
	Published uint64
	Retired   uint64
}

// FormatEvents renders the deterministic per-epoch event log — the part
// goldens and the serve-smoke CI job diff.
func (r *ServeStormResult) FormatEvents() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serve storm — %s, n=%d (%d events replaying the churn timeline; %d probe pairs/epoch)\n",
		r.Kind, r.N, len(r.Events), r.PairsN)
	fmt.Fprintf(&b, "  %3s %-7s %5s %4s %5s |%7s |%6s %7s %6s %6s %6s %6s\n",
		"ev", "kind", "links", "down", "epoch", "shards%",
		"conn%", "dlv:"+legNames[0], legNames[1], legNames[2], legNames[3], legNames[4])
	down := 0
	for _, ev := range r.Events {
		conn := 0.0
		if ev.Pairs > 0 {
			conn = 100 * float64(ev.Connected) / float64(ev.Pairs)
		}
		dlv := func(leg int) float64 {
			if ev.Connected == 0 {
				return 0
			}
			return 100 * float64(ev.Legs[leg].Delivered) / float64(ev.Connected)
		}
		fmt.Fprintf(&b, "  %3d %-7s %5d %4d %5d |%7.2f |%6.1f %7.1f %6.1f %6.1f %6.1f %6.1f\n",
			ev.Step, ev.Kind, ev.Links, ev.DownAfter, ev.Epoch, ev.ShardsPct,
			conn, dlv(0), dlv(1), dlv(2), dlv(3), dlv(4))
		down = ev.DownAfter
	}
	fmt.Fprintf(&b, "  storm: %d events published, %d links down at the end\n", len(r.Events), down)
	return b.String()
}

// Format renders the event log plus the measured serving metrics.
func (r *ServeStormResult) Format() string {
	l := r.Load
	qps, dlvPct, stalePct := 0.0, 0.0, 0.0
	if l.Secs > 0 {
		qps = float64(l.Queries) / l.Secs
	}
	if l.Queries > 0 {
		dlvPct = 100 * float64(l.Delivered) / float64(l.Queries)
		stalePct = 100 * float64(l.Stale) / float64(l.Queries)
	}
	plane := l.Plane
	if plane == "" {
		plane = "fork-and-walk"
	}
	return r.FormatEvents() + fmt.Sprintf(
		"  measured: %d queriers on the %s plane, %d queries in %.2fs (%.0f qps), p50 %.1fµs p99 %.1fµs, %.2f%% delivered, %.2f%% stale, epochs %d published / %d reclaimed\n",
		l.Queriers, plane, l.Queries, l.Secs, qps, l.P50us, l.P99us, dlvPct, stalePct, l.Published, l.Retired)
}

// latHist is a lock-free-enough (single-writer) log-scale latency
// histogram: 64 power-of-two exponent rows × 16 sub-buckets gives ~6%
// value resolution at constant memory, so a -full-scale storm's query
// load never accumulates unbounded per-sample state.
type latHist struct {
	counts [64 * 16]uint64
	n      uint64
}

func (h *latHist) add(ns int64) {
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns)) - 1
	var sub uint64
	if b >= 4 {
		sub = (uint64(ns) >> (b - 4)) & 15
	} else {
		sub = (uint64(ns) << (4 - b)) & 15
	}
	h.counts[b*16+int(sub)]++
	h.n++
}

func (h *latHist) merge(o *latHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
}

// quantile returns the q-quantile in nanoseconds (bucket midpoint).
func (h *latHist) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			b, sub := i/16, i%16
			return float64(uint64(1)<<b) * (1 + (float64(sub)+0.5)/16)
		}
	}
	return 0
}

// ServeStorm runs the serving mode: publish the base snapshot on a
// serve.Plane, hammer it with `queriers` closed-loop query goroutines
// (0 = GOMAXPROCS), and replay `events` churn-timeline events (0 = 16)
// through the repair loop, publishing every post-event snapshot and
// routing a deterministic probe of `pairs` sampled pairs on each. The
// event log is bit-identical at any -workers and -queriers value — and
// independent of the plane kind, since the probe routes through the
// protocol legs, not the plane; the measured load is wall-clock.
//
// tables selects the forwarding fast path: query forks are
// forward.Router views over compiled next-hop interval tables, derived
// per epoch by invalidating only the event's blast radius
// (RepairStats.VicTouched/RowsTouched) — instead of protocol forks
// walking the snapshot. The table plane serves NDDisco forwarding
// (address-carrying packets); the fork-and-walk plane serves Disco's
// resolution-inclusive first packets, so the two modes' measured
// delivered fractions can differ while the event log stays identical.
func ServeStorm(kind TopoKind, n int, seed int64, pairs, events, queriers int, tables bool) (*ServeStormResult, error) {
	if n < 9 {
		return nil, fmt.Errorf("eval: serve storm needs n >= 9 (G(n,m) at average degree 8), got %d", n)
	}
	if pairs < 1 {
		return nil, fmt.Errorf("eval: serve storm needs pairs >= 1, got %d", pairs)
	}
	if events <= 0 {
		events = churnTimelineEvents
	}
	if queriers <= 0 {
		queriers = runtime.GOMAXPROCS(0)
	}

	p := BuildProtocols(kind, n, seed)
	g := p.Env.G
	snap := buildSnapshot(g, p.Disco.ND.K, p.Env.Landmarks)
	tl := dynamics.NewTimeline(snap)
	edges := g.EdgeList()

	var plane *serve.Plane
	var tbls *forward.Tables
	planeKind := "fork-and-walk"
	if tables {
		planeKind = "tables"
		tbls = forward.Compile(snap, p.Env.Landmarks, p.Env.LMOf)
		tbls.Precompile() // pay the compile before the clock starts
		base := tbls
		plane = serve.NewPlane(snap, func(*snapshot.Snapshot) dynamics.Router {
			return base.NewRouter()
		})
	} else {
		plane = serve.NewPlane(snap, func(rep *snapshot.Snapshot) dynamics.Router {
			return p.Disco.ForkRepaired(rep)
		})
	}
	defer plane.Close()

	// The query load: closed-loop goroutines, each with its own RNG and
	// latency histogram, running until the storm completes. Their pair
	// draws are intentionally outside the deterministic TaskSeed universe —
	// they measure the serving plane, they never feed the event log.
	var done atomic.Bool
	hists := make([]*latHist, queriers)
	var wg sync.WaitGroup
	//disco:measured query-plane latency measurement; feeds the latency histogram, never the event log
	start := time.Now()
	for q := 0; q < queriers; q++ {
		hists[q] = &latHist{}
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed ^ (0x5e17e + int64(q)*0x9e37)))
			for !done.Load() {
				s, t := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
				later := rng.Intn(2) == 1
				//disco:measured per-probe serving latency sample
				t0 := time.Now()
				plane.Probe(s, t, later)
				//disco:measured per-probe serving latency sample
				hists[q].add(time.Since(t0).Nanoseconds())
			}
		}(q)
	}

	res := &ServeStormResult{Kind: kind, N: n, PairsN: pairs}
	for ev := 0; ev < events; ev++ {
		kindStr, nlinks, st, rng, err := stormStep(tl, edges, seed, ev)
		if err != nil {
			done.Store(true)
			wg.Wait()
			return nil, err
		}
		var epoch uint64
		if tables {
			// Derive the epoch's tables from the previous epoch's by
			// invalidating exactly this event's blast radius, and bind the
			// epoch's forks to them.
			tbls = tbls.Derive(tl.Snapshot(), st)
			cur := tbls
			epoch, err = plane.PublishWith(tl.Snapshot(), func(*snapshot.Snapshot) dynamics.Router {
				return cur.NewRouter()
			})
		} else {
			epoch, err = plane.Publish(tl.Snapshot())
		}
		if err != nil {
			done.Store(true)
			wg.Wait()
			return nil, err
		}
		row := ServeEventRow{
			Step: ev, Kind: kindStr, Links: nlinks, DownAfter: tl.DownCount(),
			Epoch: epoch, ShardsPct: 100 * st.ShardsRebuilt(),
		}
		// Deterministic probe on the just-published epoch, same sampling
		// stream as churn-timeline.
		for _, sm := range routeFailurePairs(p, tl.Snapshot(), metrics.SamplePairs(rng, n, pairs)) {
			row.Pairs++
			if !sm.connected {
				continue
			}
			row.Connected++
			for leg := range sm.ok {
				if sm.ok[leg] {
					row.Legs[leg].Delivered++
					row.Legs[leg].StretchSum += sm.st[leg]
				}
			}
		}
		res.Events = append(res.Events, row)
	}
	done.Store(true)
	wg.Wait()
	//disco:measured storm wall-clock for the throughput report
	secs := time.Since(start).Seconds()
	// The storm is over and the queriers have drained: close the plane so
	// the final epoch's publisher handle is released too — Metrics then
	// reports every published epoch reclaimed, not all-but-one.
	plane.Close()

	merged := &latHist{}
	for _, h := range hists {
		merged.merge(h)
	}
	m := plane.Metrics()
	res.Load = ServeLoad{
		Queriers: queriers, Plane: planeKind, Queries: m.Queries, Delivered: m.Delivered,
		Stale: m.Stale, Secs: secs,
		P50us: merged.quantile(0.50) / 1e3, P99us: merged.quantile(0.99) / 1e3,
		Published: m.Published, Retired: m.Retired,
	}
	return res, nil
}
