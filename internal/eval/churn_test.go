package eval

import (
	"math/rand"
	"strings"
	"testing"

	"disco/internal/graph"
)

// dumbbell builds two 4-cliques joined by a single bridge (0—4): a graph
// where a uniform link draw has a real chance of landing on the bridge.
func dumbbell() *graph.Graph {
	g := graph.New(8)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.AddEdge(graph.NodeID(a), graph.NodeID(b), 1)
			g.AddEdge(graph.NodeID(a+4), graph.NodeID(b+4), 1)
		}
	}
	g.AddEdge(0, 4, 1)
	g.Finalize()
	return g
}

// naiveDrawHitsBridge replicates the pre-fix draw sequence (uniform node,
// uniform incident link, no bridge check) and reports whether any of the
// `trials` draws lands on a bridge.
func naiveDrawHitsBridge(g *graph.Graph, seed int64, trials int) bool {
	bridges := g.Bridges()
	rng := rand.New(rand.NewSource(seed + 9000))
	for i := 0; i < trials; i++ {
		u := graph.NodeID(rng.Intn(g.N()))
		es := g.Neighbors(u)
		e := es[rng.Intn(len(es))]
		if bridges[e.EID] {
			return true
		}
	}
	return false
}

// TestChurnCostRedrawsBridges is the regression test for the documented
// "random (non-bridge) links" contract: on a graph with a known bridge,
// and a seed whose unchecked draw sequence provably lands on it, every
// link ChurnCost actually fails must be a non-bridge. The pre-fix code
// (uniform draw, no bridge check) fails exactly this assertion.
func TestChurnCostRedrawsBridges(t *testing.T) {
	g := dumbbell()
	const trials = 4
	seed := int64(-1)
	for s := int64(0); s < 500; s++ {
		if naiveDrawHitsBridge(g, s, trials) {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed in [0,500) drives the unchecked draw onto the bridge — widen the search")
	}
	r, err := ChurnCostOn(g, seed, trials)
	if err != nil {
		t.Fatalf("ChurnCostOn: %v", err)
	}
	if len(r.Failed) != trials {
		t.Fatalf("recorded %d failed links, want %d", len(r.Failed), trials)
	}
	bridges := g.Bridges()
	for _, f := range r.Failed {
		id := g.EdgeID(f.U, f.V)
		if id < 0 {
			t.Fatalf("failed link %d-%d does not exist", f.U, f.V)
		}
		if bridges[id] {
			t.Errorf("ChurnCost failed bridge %d-%d: the non-bridge redraw is broken", f.U, f.V)
		}
	}
}

// TestChurnCostValidation pins the input-validation errors and the
// degenerate cases that previously printed NaN/Inf.
func TestChurnCostValidation(t *testing.T) {
	if _, err := ChurnCost(1, 1, 3); err == nil {
		t.Error("n < 2 should error")
	}
	if _, err := ChurnCost(64, 1, 0); err == nil {
		t.Error("trials = 0 should error")
	}
	if _, err := ChurnCostOn(dumbbell(), 1, -1); err == nil {
		t.Error("negative trials should error")
	}
	// A tree has only bridges: no valid trial exists.
	tree := graph.New(4)
	tree.AddEdge(0, 1, 1)
	tree.AddEdge(1, 2, 1)
	tree.AddEdge(2, 3, 1)
	tree.Finalize()
	if _, err := ChurnCostOn(tree, 1, 1); err == nil {
		t.Error("all-bridge graph should error")
	}
	// Format never emits NaN/Inf, even on a zero-initial result.
	degenerate := &ChurnResult{N: 8, Trials: 1}
	if out := degenerate.Format(); strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("Format printed NaN/Inf:\n%s", out)
	}
}

// TestChurnCostDisconnectedErrors: a disconnected graph (two separate
// triangles — plenty of non-bridge links) must be rejected, not averaged
// into skewed messages/node figures.
func TestChurnCostDisconnectedErrors(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 3, 1)
	g.Finalize()
	if _, err := ChurnCostOn(g, 1, 1); err == nil {
		t.Error("disconnected graph should error")
	}
}
