package eval

import (
	"fmt"
	"strings"

	"disco/internal/addr"
	"disco/internal/graph"
	"disco/internal/metrics"
	"disco/internal/parallel"
)

// StateResult holds per-protocol state CDFs (Fig. 2 and the state panels
// of Figs. 4 and 5).
type StateResult struct {
	Kind   TopoKind
	N      int
	Labels []string
	CDFs   []*metrics.CDF
}

// Format renders the result as the figure's summary table.
func (r *StateResult) Format() string {
	return metrics.FormatSeries(
		fmt.Sprintf("State at a node (entries) — %s, n=%d", r.Kind, r.N),
		r.Labels, r.CDFs)
}

// Get returns the CDF for a labeled series, or nil.
func (r *StateResult) Get(label string) *metrics.CDF {
	for i, l := range r.Labels {
		if l == label {
			return r.CDFs[i]
		}
	}
	return nil
}

// Fig2State reproduces Fig. 2: the CDF over nodes of data-plane state for
// Disco, NDDisco and S4 on one topology. The paper runs it on the
// 16,384-node geometric graph and the AS-level and router-level Internet
// maps.
func Fig2State(kind TopoKind, n int, seed int64) *StateResult {
	p := BuildProtocols(kind, n, seed)
	ndE, dE, _, _ := p.Disco.StateVectors()
	s4E := p.S4.StateEntries(p.S4.ClusterSizesAll())
	return &StateResult{
		Kind:   kind,
		N:      n,
		Labels: []string{"Disco", "ND-Disco", "S4"},
		CDFs:   []*metrics.CDF{intsToCDF(dE), intsToCDF(ndE), intsToCDF(s4E)},
	}
}

// StateWithVRR extends the state comparison with VRR and path vector (the
// left panels of Figs. 4 and 5, 1,024-node topologies). The VRR instance
// is the memoized sealed build; its entry counts read off the flat offset
// arrays.
func StateWithVRR(p *Protocols, kind TopoKind, seed int64) *StateResult {
	ndE, dE, _, _ := p.Disco.StateVectors()
	s4E := p.S4.StateEntries(p.S4.ClusterSizesAll())
	v := p.VRR(seed)
	return &StateResult{
		Kind:   kind,
		N:      p.Env.N(),
		Labels: []string{"Disco", "ND-Disco", "S4", "VRR", "Path-vector"},
		CDFs: []*metrics.CDF{
			intsToCDF(dE), intsToCDF(ndE), intsToCDF(s4E),
			intsToCDF(v.StateEntries()), intsToCDF(p.SPR.StateEntries()),
		},
	}
}

// Fig7Row is one protocol's row of the Fig. 7 table.
type Fig7Row struct {
	Name                    string
	MeanEntries, MaxEntries float64
	MeanKBv4, MaxKBv4       float64 // kilobytes with IPv4-sized names
	MeanKBv6, MaxKBv6       float64 // kilobytes with IPv6-sized names
}

// Fig7Result is the Fig. 7 table: state at a node on the router-level
// topology in entries and bytes.
type Fig7Result struct {
	N    int
	Rows []Fig7Row
}

// Format renders the table in the paper's layout.
func (r *Fig7Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — State at a node, router-level topology (n=%d)\n", r.N)
	fmt.Fprintf(&b, "  %-10s %12s %12s %11s %11s %11s %11s\n",
		"protocol", "entries-mean", "entries-max", "KB(v4)mean", "KB(v4)max", "KB(v6)mean", "KB(v6)max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %12.1f %12.0f %11.2f %11.2f %11.2f %11.2f\n",
			row.Name, row.MeanEntries, row.MaxEntries,
			row.MeanKBv4, row.MaxKBv4, row.MeanKBv6, row.MaxKBv6)
	}
	return b.String()
}

// Fig7StateBytes reproduces Fig. 7 on the router-like topology: mean/max
// state in entries and in kilobytes under IPv4- and IPv6-sized names.
func Fig7StateBytes(n int, seed int64) *Fig7Result {
	p := BuildProtocols(TopoRouterLike, n, seed)
	ndE, dE, ndB, dB := p.Disco.StateVectors()
	clusters := p.S4.ClusterSizesAll()
	s4E := p.S4.StateEntries(clusters)
	avgAddr, _, _ := p.Env.AddrSizeStats()
	v4 := addr.SizeModel{NameBytes: 4}
	v6 := addr.SizeModel{NameBytes: 16}

	res := &Fig7Result{N: n}
	// bytesStats computes per-node byte sizes on the worker pool and
	// reduces them in node order, so the float mean never depends on the
	// schedule.
	bytesStats := func(at func(v int) float64) (mean, max float64) {
		sizes := parallel.Map(n, at)
		total := 0.0
		for _, b := range sizes {
			total += b
			if b > max {
				max = b
			}
		}
		return total / float64(n), max
	}
	// S4 bytes: landmarks+cluster+labels are plain entries; resolution
	// entries carry addresses.
	nLM := len(p.Env.Landmarks)
	keys := p.Env.Hashes
	resLoad := make([]int, n)
	for lm, c := range p.S4.DB.Load(keys) {
		resLoad[lm] = c
	}
	s4Bytes := func(m addr.SizeModel) (mean, max float64) {
		return bytesStats(func(v int) float64 {
			labels := p.Env.G.Degree(graph.NodeID(v))
			if lim := nLM + clusters[v]; labels > lim {
				labels = lim
			}
			return float64(nLM+clusters[v])*m.PlainEntryBytes() +
				float64(labels)*2 +
				float64(resLoad[v])*(float64(2*m.NameBytes)+avgAddr)
		})
	}
	ndBytes := func(m addr.SizeModel) (mean, max float64) {
		return bytesStats(func(v int) float64 { return ndB[v].Bytes(m, avgAddr) })
	}
	dBytes := func(m addr.SizeModel) (mean, max float64) {
		return bytesStats(func(v int) float64 { return dB[v].Bytes(m, avgAddr) })
	}

	push := func(name string, entries []int, bytesFn func(addr.SizeModel) (float64, float64)) {
		c := intsToCDF(entries)
		m4, x4 := bytesFn(v4)
		m6, x6 := bytesFn(v6)
		res.Rows = append(res.Rows, Fig7Row{
			Name:        name,
			MeanEntries: c.Mean(), MaxEntries: c.Max(),
			MeanKBv4: m4 / 1024, MaxKBv4: x4 / 1024,
			MeanKBv6: m6 / 1024, MaxKBv6: x6 / 1024,
		})
	}
	push("S4", s4E, s4Bytes)
	push("ND-Disco", ndE, ndBytes)
	push("Disco", dE, dBytes)
	return res
}

// AddrSizeResult is the §4.2 explicit-route size measurement.
type AddrSizeResult struct {
	N                 int
	MeanB, P95B, MaxB float64
}

// Format renders the measurement.
func (r *AddrSizeResult) Format() string {
	return fmt.Sprintf("Address (explicit route) sizes on router-like map n=%d: mean=%.2fB p95=%.2fB max=%.3fB\n"+
		"  (paper, CAIDA router map: mean=2.93B p95=5B max=10.625B)\n",
		r.N, r.MeanB, r.P95B, r.MaxB)
}

// AddrSizes reproduces the §4.2 address-size measurement on the
// router-like topology.
func AddrSizes(n int, seed int64) *AddrSizeResult {
	g := BuildTopo(TopoRouterLike, n, seed)
	env := staticEnv(g, seed)
	mean, p95, max := env.AddrSizeStats()
	return &AddrSizeResult{N: n, MeanB: mean, P95B: p95, MaxB: max}
}
