package eval

import (
	"strings"
	"testing"
)

func TestFig2StateSmall(t *testing.T) {
	r := Fig2State(TopoGnm, 256, 1)
	if len(r.CDFs) != 3 {
		t.Fatal("want 3 series")
	}
	disco := r.Get("Disco")
	nd := r.Get("ND-Disco")
	if disco == nil || nd == nil || r.Get("S4") == nil {
		t.Fatal("missing series")
	}
	if disco.Mean() <= nd.Mean() {
		t.Errorf("Disco mean state (%v) must exceed NDDisco (%v): group addresses", disco.Mean(), nd.Mean())
	}
	if !strings.Contains(r.Format(), "State at a node") {
		t.Error("Format output wrong")
	}
}

func TestFig2S4TailOnHeavyTopo(t *testing.T) {
	// On the AS-like power-law graph, S4's max state must blow far past
	// its mean (the Fig. 2 middle-panel signature) while Disco stays flat.
	// The imbalance ratio (max/median) grows with n for S4 — at paper
	// scale it reaches ~13x — while Disco's stays near 1 on any topology.
	// At this test size assert the ordering, not the asymptotic magnitude.
	r := Fig2State(TopoASLike, 2048, 2)
	s4 := r.Get("S4")
	disco := r.Get("Disco")
	s4Ratio := s4.Max() / s4.Quantile(0.5)
	discoRatio := disco.Max() / disco.Quantile(0.5)
	if s4Ratio < 1.8*discoRatio {
		t.Errorf("S4 imbalance (%.2f) should far exceed Disco's (%.2f)", s4Ratio, discoRatio)
	}
	if discoRatio > 1.6 {
		t.Errorf("Disco state should be balanced: max %v p50 %v", disco.Max(), disco.Quantile(0.5))
	}
}

func TestFig3StretchSmall(t *testing.T) {
	r := Fig3Stretch(TopoGeometric, 512, 3, 150)
	for _, label := range []string{"Disco-First", "Disco-Later", "S4-First", "S4-Later"} {
		c := r.Get(label)
		if c == nil || c.N() == 0 {
			t.Fatalf("series %s missing", label)
		}
		if c.Min() < 1-1e-9 {
			t.Errorf("%s has stretch < 1", label)
		}
	}
	if r.Get("Disco-Later").Max() > 3+1e-6 {
		t.Errorf("Disco later stretch exceeded 3: %v", r.Get("Disco-Later").Max())
	}
	// First-packet S4 should have the worst tail on a weighted graph.
	if r.Get("S4-First").Max() <= r.Get("S4-Later").Max() {
		t.Errorf("S4 first tail should exceed later tail")
	}
}

func TestFig45Small(t *testing.T) {
	r := Fig45(TopoGnm, 256, 4, 100)
	if r.State.Get("VRR") == nil || r.State.Get("Path-vector") == nil {
		t.Fatal("VRR/PV series missing")
	}
	if r.Stretch.Get("VRR") == nil {
		t.Fatal("VRR stretch missing")
	}
	if r.Congestion.Get("Disco") == nil {
		t.Fatal("congestion missing")
	}
	// Path-vector state is n-1 + degree at every node.
	pv := r.State.Get("Path-vector")
	if pv.Min() < 255 {
		t.Errorf("PV state min %v below n-1", pv.Min())
	}
	out := r.Format()
	if !strings.Contains(out, "Congestion") {
		t.Error("format incomplete")
	}
}

func TestFig6Small(t *testing.T) {
	r := Fig6Shortcuts([]Fig6Spec{
		{Label: "gnm-256", Kind: TopoGnm, N: 256},
		{Label: "geo-256", Kind: TopoGeometric, N: 256},
	}, 5, 100)
	if len(r.Rows) != 6 {
		t.Fatalf("want 6 heuristics, got %d", len(r.Rows))
	}
	// No Shortcutting must be the worst (or tied) in every column;
	// Path Knowledge the best (or tied).
	for c := range r.Topos {
		none := r.Rows[0].Means[c]
		pk := r.Rows[5].Means[c]
		for _, row := range r.Rows {
			if row.Means[c] > none+1e-9 {
				t.Errorf("%s beats No Shortcutting in column %d", row.Heuristic, c)
			}
		}
		if pk > none {
			t.Errorf("Path Knowledge should not exceed No Shortcutting")
		}
	}
	if !strings.Contains(r.Format(), "No Path Knowledge") {
		t.Error("format incomplete")
	}
}

func TestFig7Small(t *testing.T) {
	r := Fig7StateBytes(1024, 6)
	if len(r.Rows) != 3 {
		t.Fatal("want 3 rows")
	}
	for _, row := range r.Rows {
		if row.MeanEntries <= 0 || row.MaxEntries < row.MeanEntries {
			t.Errorf("row %s entries implausible: %+v", row.Name, row)
		}
		if row.MeanKBv6 <= row.MeanKBv4 {
			t.Errorf("IPv6 names must cost more than IPv4: %+v", row)
		}
	}
	// The Table-7 signature: S4's max/mean ratio exceeds Disco's (at paper
	// scale S4 reaches ~13x vs Disco's ~1.1x; the gap shrinks at small n
	// where landmarks are a large node fraction).
	s4r, dr := r.Rows[0], r.Rows[2]
	if s4r.MaxEntries/s4r.MeanEntries < 1.4*(dr.MaxEntries/dr.MeanEntries) {
		t.Errorf("S4 should break worst-case bounds vs Disco: S4 %0.f/%0.f Disco %0.f/%0.f",
			s4r.MaxEntries, s4r.MeanEntries, dr.MaxEntries, dr.MeanEntries)
	}
}

func TestFig8Small(t *testing.T) {
	r := Fig8Convergence([]int{64, 128, 256}, 128, 7)
	if len(r.Points) != 3 {
		t.Fatal("want 3 points")
	}
	last := r.Points[2]
	if !last.PVExtrapolated {
		t.Error("PV beyond cap must be extrapolated")
	}
	if last.NDDisco <= 0 || last.S4 <= 0 || last.Disco1 <= last.NDDisco {
		t.Errorf("messaging counts implausible: %+v", last)
	}
	if last.Disco3 <= last.Disco1 {
		t.Errorf("3 fingers must cost more than 1: %+v", last)
	}
	// Path vector must dominate the compact protocols at the largest size.
	if last.PathVector <= last.NDDisco {
		t.Errorf("full PV should cost more than NDDisco: %+v", last)
	}
}

func TestFig9Small(t *testing.T) {
	r := Fig9Scaling([]int{256, 512}, 8, 80)
	if len(r.Points) != 2 {
		t.Fatal("want 2 points")
	}
	for _, p := range r.Points {
		if p.DiscoLater > 3+1e-6 || p.DiscoLater < 1 {
			t.Errorf("Disco later mean stretch %v out of range", p.DiscoLater)
		}
		if p.S4First < p.S4Later {
			t.Errorf("S4 first mean below later: %+v", p)
		}
		if p.DiscoState <= p.NDDiscoState {
			t.Errorf("Disco state must exceed NDDisco: %+v", p)
		}
	}
	// State grows with n.
	if r.Points[1].DiscoState <= r.Points[0].DiscoState {
		t.Errorf("state should grow with n")
	}
}

func TestFig10Small(t *testing.T) {
	r := Fig10ASCongestion(1024, 9)
	if r.Get("Disco") == nil || r.Get("Path-vector") == nil || r.Get("S4") == nil {
		t.Fatal("series missing")
	}
	// Total edge usage must be positive and the tails ordered sanely.
	if r.Get("Disco").Max() <= 0 {
		t.Error("no congestion recorded")
	}
}

func TestAddrSizesSmall(t *testing.T) {
	r := AddrSizes(2048, 10)
	if r.MeanB <= 0 || r.P95B < r.MeanB || r.MaxB < r.P95B {
		t.Fatalf("address size stats disordered: %+v", r)
	}
	if r.MeanB > 8 {
		t.Errorf("mean address size %v too large", r.MeanB)
	}
}

func TestStaticAccuracySmall(t *testing.T) {
	r := StaticAccuracy(192, 11, 100)
	if r.VicinityAgreement < 0.999 {
		t.Errorf("vicinity agreement %v, static and event simulators must coincide", r.VicinityAgreement)
	}
	if r.LMDistAgreement < 0.999 {
		t.Errorf("landmark distance agreement %v", r.LMDistAgreement)
	}
	// Tables agree exactly; materialized routes differ only through
	// equal-length shortest-path tie-breaks interacting with backtrack
	// trimming — the same effect behind the paper's ~0.9% delta.
	if r.StretchDeltaPct > 5 {
		t.Errorf("stretch delta %v%% too large", r.StretchDeltaPct)
	}
}

func TestEstimateErrorSmall(t *testing.T) {
	r := EstimateError(512, 12, 0.4, 120)
	if r.NodePairs == 0 {
		t.Fatal("no (node,group) pairs checked")
	}
	if r.MeanStretch < 1 || r.BaseStretch < 1 {
		t.Fatal("stretch below 1")
	}
	// The paper: tiny impact at 40% error.
	if r.DeltaPct > 25 {
		t.Errorf("stretch delta %v%% implausibly large for 40%% error", r.DeltaPct)
	}
}

func TestFingerExperimentSmall(t *testing.T) {
	r := FingerExperiment(1024, 13)
	if r.Mean3 >= r.Mean1 {
		t.Errorf("3 fingers should cut mean travel: %v vs %v", r.Mean3, r.Mean1)
	}
	if r.Msgs3 <= r.Msgs1 {
		t.Errorf("3 fingers should cost more messages")
	}
}

func TestResolveImbalanceSmall(t *testing.T) {
	r := ResolveImbalance(2048, 14)
	if r.Imbalance8 >= r.Imbalance1 {
		t.Errorf("8 hash functions should cut imbalance: %v vs %v", r.Imbalance8, r.Imbalance1)
	}
}

func TestLandmarkStrategiesSmall(t *testing.T) {
	r := LandmarkStrategies(TopoASLike, 512, 15, 100)
	if len(r.Rows) != 3 {
		t.Fatal("want 3 strategies")
	}
	for _, row := range r.Rows {
		if row.LaterStretch > 3+1e-6 || row.LaterStretch < 1 {
			t.Errorf("%s later stretch %v out of range", row.Name, row.LaterStretch)
		}
		if row.MaxState <= 0 {
			t.Errorf("%s max state missing", row.Name)
		}
	}
	// High-degree landmarks on a power-law graph sit near everything:
	// addresses should be no longer than under random selection.
	random, high := r.Rows[0], r.Rows[1]
	if high.MeanAddrBytes > random.MeanAddrBytes*1.2 {
		t.Errorf("high-degree landmarks should not lengthen addresses: %v vs %v",
			high.MeanAddrBytes, random.MeanAddrBytes)
	}
	// Low-degree (adversarial) landmarks must be visibly worse than
	// high-degree on at least one axis.
	low := r.Rows[2]
	if low.MeanAddrBytes <= high.MeanAddrBytes && low.FirstStretch <= high.FirstStretch {
		t.Errorf("adversarial landmarks should cost something: %+v vs %+v", low, high)
	}
	if !strings.Contains(r.Format(), "high-degree") {
		t.Error("format incomplete")
	}
}

func TestTradeoffSweepSmall(t *testing.T) {
	r := TradeoffSweep(TopoGnm, 512, []int{1, 2, 3}, 16, 100)
	if len(r.Points) != 3 {
		t.Fatal("want 3 points")
	}
	for i, p := range r.Points {
		if p.MaxStretch > float64(p.StretchBound)+1e-9 {
			t.Errorf("k=%d stretch %v exceeds bound %d", p.K, p.MaxStretch, p.StretchBound)
		}
		if i > 0 && p.MeanState >= r.Points[i-1].MeanState {
			t.Errorf("state should shrink with k: %+v", r.Points)
		}
	}
	if r.Points[0].MeanStretch != 1 {
		t.Errorf("k=1 must route on shortest paths, mean %v", r.Points[0].MeanStretch)
	}
	if !strings.Contains(r.Format(), "tradeoff") {
		t.Error("format incomplete")
	}
}

func TestChurnCostSmall(t *testing.T) {
	r, err := ChurnCost(128, 17, 3)
	if err != nil {
		t.Fatalf("ChurnCost: %v", err)
	}
	if r.Initial <= 0 {
		t.Fatal("no initial messages")
	}
	if r.Triggered <= 0 {
		t.Fatal("failure re-convergence should cost messages")
	}
	// Triggered re-convergence after one failure must be a small fraction
	// of initial convergence; the refresh round is a full-table flood and
	// lands within a small multiple of initial.
	if r.Triggered >= r.Initial/4 {
		t.Errorf("triggered cost %v should be well below initial %v", r.Triggered, r.Initial)
	}
	if r.Refresh > 4*r.Initial {
		t.Errorf("refresh round %v implausibly above initial %v", r.Refresh, r.Initial)
	}
	if !strings.Contains(r.Format(), "Churn cost") {
		t.Error("format incomplete")
	}
}

func TestBuildTopoKinds(t *testing.T) {
	for _, k := range []TopoKind{TopoGnm, TopoGeometric, TopoASLike, TopoRouterLike} {
		g := BuildTopo(k, 300, 1)
		if g.N() != 300 || !g.Connected() {
			t.Errorf("topology %s broken", k)
		}
	}
}

func TestBuildTopoUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildTopo("nope", 10, 1)
}
