package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"disco/internal/graph"
	"disco/internal/overlay"
	"disco/internal/parallel"
	"disco/internal/pathvector"
	"disco/internal/sim"
	"disco/internal/sloppy"
	"disco/internal/vicinity"
)

// Fig8Point is the per-size measurement of messages/node to convergence.
type Fig8Point struct {
	N              int
	PathVector     float64 // full path vector (extrapolated above PVCap)
	PVExtrapolated bool
	S4             float64 // landmark phase + cluster phase
	NDDisco        float64 // single vicinity path-vector run
	Disco1         float64 // NDDisco + registration + 1-finger overlay
	Disco3         float64 // NDDisco + registration + 3-finger overlay
}

// Fig8Result is the Fig. 8 curve set.
type Fig8Result struct {
	Points []Fig8Point
}

// Format renders the series.
func (r *Fig8Result) Format() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 8 — Mean messages per node until convergence, G(n,m) graphs")
	fmt.Fprintf(&b, "  %6s %14s %10s %10s %10s %10s\n", "n", "path-vector", "S4", "ND-Disco", "Disco-1f", "Disco-3f")
	for _, p := range r.Points {
		pv := fmt.Sprintf("%.0f", p.PathVector)
		if p.PVExtrapolated {
			pv += "*"
		}
		fmt.Fprintf(&b, "  %6d %14s %10.0f %10.0f %10.0f %10.0f\n",
			p.N, pv, p.S4, p.NDDisco, p.Disco1, p.Disco3)
	}
	fmt.Fprintln(&b, "  (* linearly extrapolated, as in the paper beyond 512 nodes)")
	return b.String()
}

// runPV executes one event-driven protocol run to quiescence and returns
// total messages.
func runPV(g *graph.Graph, cfg pathvector.Config) (int64, *pathvector.Protocol) {
	var eng sim.Engine
	p := pathvector.New(g, &eng, cfg)
	p.Start()
	if _, q := eng.Run(0); !q {
		panic("eval: protocol failed to quiesce")
	}
	return p.Messages, p
}

// Fig8Convergence reproduces Fig. 8 on G(n,m) graphs of the given sizes.
// Full path vector is simulated up to pvCap nodes and linearly extrapolated
// beyond, exactly as the paper does beyond 512 nodes. The per-size
// convergence simulations are independent (each draws from fixed per-size
// seeds), so the sizes fan out over the worker pool; only the PV
// extrapolation — which chains size results — runs serially afterwards,
// in size order, making the output identical at any worker count.
func Fig8Convergence(sizes []int, pvCap int, seed int64) *Fig8Result {
	res := &Fig8Result{}
	points := parallel.Map(len(sizes), func(i int) Fig8Point {
		n := sizes[i]
		g := BuildTopo(TopoGnm, n, seed)
		env := staticEnv(g, seed)
		k := vicinity.DefaultK(n)
		pt := Fig8Point{N: n}

		// Full path vector (small sizes only; extrapolated below).
		if n <= pvCap {
			msgs, _ := runPV(g, pathvector.Config{Mode: pathvector.ModeFull})
			pt.PathVector = float64(msgs) / float64(n)
		}

		// S4: landmark flood then cluster-scoped flood.
		lmMsgs, _ := runPV(g, pathvector.Config{Mode: pathvector.ModeLandmarksOnly, IsLandmark: env.IsLM})
		clMsgs, _ := runPV(g, pathvector.Config{Mode: pathvector.ModeCluster, IsLandmark: env.IsLM, LMDist: env.LMDist})
		pt.S4 = float64(lmMsgs+clMsgs) / float64(n)

		// NDDisco: one vicinity run learns landmarks and vicinities.
		ndMsgs, _ := runPV(g, pathvector.Config{Mode: pathvector.ModeVicinity, K: k, IsLandmark: env.IsLM})
		pt.NDDisco = float64(ndMsgs) / float64(n)

		// Disco = NDDisco + name-independence messaging (§4.3-4.4):
		// address registration at the owning landmark (one message per
		// node), finger lookups through the resolution DB (query +
		// response per out-link), and the overlay dissemination flood.
		view := sloppy.BuildView(env.Hashes, env.NEst)
		extra := func(fingers int, overlaySeed int64) float64 {
			net := overlay.Build(env.Hashes, view, fingers, rand.New(rand.NewSource(overlaySeed)))
			total, _ := net.DisseminateAll()
			msgs := int64(total.Messages)
			for v := 0; v < n; v++ {
				msgs++ // registration message v -> owner(h(v))
				// finger/ring lookups: query + response per out-link
				msgs += int64(2 * len(net.OutLinks(graph.NodeID(v))))
			}
			return float64(msgs) / float64(n)
		}
		pt.Disco1 = pt.NDDisco + extra(1, seed+11)
		pt.Disco3 = pt.NDDisco + extra(3, seed+13)
		return pt
	})

	// Serial pass in size order: extrapolate PV from the last two
	// simulated sizes, exactly as the serial loop did.
	type pvSample struct {
		n       int
		perNode float64
	}
	var pvSamples []pvSample
	for i := range points {
		pt := points[i]
		if pt.N <= pvCap {
			pvSamples = append(pvSamples, pvSample{n: pt.N, perNode: pt.PathVector})
		} else if len(pvSamples) >= 2 {
			a := pvSamples[len(pvSamples)-2]
			b := pvSamples[len(pvSamples)-1]
			slope := (b.perNode - a.perNode) / float64(b.n-a.n)
			pt.PathVector = b.perNode + slope*float64(pt.N-b.n)
			pt.PVExtrapolated = true
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// FingerResult is the §5 finger-count experiment.
type FingerResult struct {
	N                      int
	Mean1, Mean3           float64 // mean announcement travel distance (overlay hops)
	Max1, Max3             int
	Msgs1, Msgs3           int
	MsgIncreasePct         float64
	AvgDegree1, AvgDegree3 float64
}

// Format renders the comparison (paper, 1,024-node G(n,m): 5.77/24 with 1
// finger vs 3.04/16 with 3 fingers, +3.3% messages).
func (r *FingerResult) Format() string {
	return fmt.Sprintf(
		"Finger experiment, n=%d (paper: mean/max 5.77/24 -> 3.04/16, +3.3%% messages)\n"+
			"  1 finger : mean travel %.2f hops, max %d, %d messages, avg overlay degree %.2f\n"+
			"  3 fingers: mean travel %.2f hops, max %d, %d messages, avg overlay degree %.2f\n"+
			"  message increase: %.1f%%\n",
		r.N, r.Mean1, r.Max1, r.Msgs1, r.AvgDegree1,
		r.Mean3, r.Max3, r.Msgs3, r.AvgDegree3, r.MsgIncreasePct)
}

// FingerExperiment reproduces the 1-vs-3-finger dissemination comparison
// on a G(n,m) graph.
func FingerExperiment(n int, seed int64) *FingerResult {
	g := BuildTopo(TopoGnm, n, seed)
	env := staticEnv(g, seed)
	view := sloppy.BuildView(env.Hashes, env.NEst)
	n1 := overlay.Build(env.Hashes, view, 1, rand.New(rand.NewSource(seed+21)))
	n3 := overlay.Build(env.Hashes, view, 3, rand.New(rand.NewSource(seed+23)))
	t1, m1 := n1.DisseminateAll()
	t3, m3 := n3.DisseminateAll()
	return &FingerResult{
		N:     n,
		Mean1: m1, Mean3: m3,
		Max1: t1.MaxHops, Max3: t3.MaxHops,
		Msgs1: t1.Messages, Msgs3: t3.Messages,
		MsgIncreasePct: 100 * (float64(t3.Messages) - float64(t1.Messages)) / float64(t1.Messages),
		AvgDegree1:     n1.AvgDegree(),
		AvgDegree3:     n3.AvgDegree(),
	}
}
