// Package load type-checks Go packages from source with no tooling
// dependencies beyond the standard library — the loader behind
// internal/lint/analysistest. It resolves imports GOPATH-style: a
// package path is looked up under Root/src first (the testdata stub
// tree), then in GOROOT via go/build (standard library, honoring build
// tags), so analyzer testdata can shadow repo packages like "snapshot"
// or "parallel" with small stubs while still importing real stdlib
// packages such as sort or sync/atomic.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package: the parsed files of the package
// itself plus everything an analysis.Pass needs.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// Loader loads and memoizes packages under one file set.
type Loader struct {
	// Root is the GOPATH-style source root: package path p resolves to
	// Root/src/p if that directory exists.
	Root string

	Fset *token.FileSet

	pkgs    map[string]*types.Package
	loading map[string]bool
	// stdlib is the fallback importer for GOROOT packages. The "source"
	// importer type-checks from $GOROOT/src, so the loader works with
	// no compiled export data and no network at all.
	stdlib types.Importer
}

// NewLoader returns a Loader rooted at root (testdata directory with a
// src/ subdirectory).
func NewLoader(root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Fset:   fset,
		pkgs:   make(map[string]*types.Package),
		stdlib: importer.ForCompiler(fset, "source", nil),
	}
}

// Load parses and type-checks the package at import path path,
// resolving its imports recursively.
func (l *Loader) Load(path string) (*Package, error) {
	dir := filepath.Join(l.Root, "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("load %s: no directory %s", path, dir)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load %s: %v", path, err)
	}
	l.pkgs[path] = pkg
	return &Package{Path: path, Files: files, Pkg: pkg, Info: info, Fset: l.Fset}, nil
}

// Import implements types.Importer: testdata stubs shadow everything,
// then the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	dir := filepath.Join(l.Root, "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err == nil {
		if l.loading[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		if l.loading == nil {
			l.loading = make(map[string]bool)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	// Standard library: verify it really is under GOROOT before
	// delegating, so a typoed stub path fails with a clear message.
	if bp, err := build.Default.Import(path, "", build.FindOnly); err != nil || !bp.Goroot {
		return nil, fmt.Errorf("import %q: not in testdata src/ and not in GOROOT", path)
	}
	pkg, err := l.stdlib.Import(path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test .go file in dir, sorted by name so
// diagnostics come out in a stable order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
