package seedrand_test

import (
	"testing"

	"disco/internal/lint/analysistest"
	"disco/internal/lint/seedrand"
)

func TestSeedRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), seedrand.Analyzer, "eval", "other")
}
