// Package seedrand flags nondeterministic entropy sources in
// deterministic packages: the schedule- and process-dependent global
// math/rand stream, rand sources constructed from non-seed
// expressions, and wall-clock reads outside measurement-annotated
// code.
//
// The contract: every random draw in the harness flows from an
// explicit seed (the -seed flag, or parallel.TaskSeed's per-task
// derivation), so any figure reruns bit-identically. Three ways to
// break it, one check each:
//
//   - rand.Intn and friends on the package-level source: randomly
//     seeded per process since Go 1.20, and shared — draw order then
//     depends on goroutine schedule. Use rand.New(rand.NewSource(seed))
//     or parallel.TaskRNG.
//   - rand.NewSource(expr) (and v2's NewPCG/NewChaCha8) where expr
//     neither is a constant nor mentions a seed: the classic
//     time.Now().UnixNano() seeding that makes every run unique.
//     The check is lexical — any identifier or callee containing
//     "seed" (TaskSeed, cfg.Seed, seed+1) passes.
//   - time.Now / time.Since: wall clock is legal only on measurement
//     paths whose values never reach deterministic output (the
//     "measured:" qps/latency lines of eval/servestorm.go). Those
//     sites carry //disco:measured <reason>.
//
// Test files are skipped.
package seedrand

import (
	"go/ast"
	"go/types"
	"strings"

	"disco/internal/lint/analysis"
	"disco/internal/lint/maporder"
)

// Analyzer is the seedrand check.
var Analyzer = &analysis.Analyzer{
	Name:      "seedrand",
	Doc:       "flags global math/rand, non-seed rand sources, and wall-clock reads outside //disco:measured sites",
	Directive: "measured",
	Run:       run,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that draw from the shared, randomly-seeded source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

// sourceCtors are the rand constructors whose every argument must be
// seed-derived.
var sourceCtors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !maporder.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[name] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the process-global stream (randomly seeded, schedule-shared); use rand.New(rand.NewSource(seed)) or parallel.TaskRNG", name)
				} else if sourceCtors[name] && !seedDerived(pass, call.Args) {
					pass.Reportf(call.Pos(),
						"rand.%s argument is not derived from a seed; thread the experiment seed (or parallel.TaskSeed) through, or waive with //disco:measured <reason>", name)
				}
			case "time":
				if name == "Now" || name == "Since" {
					pass.Reportf(call.Pos(),
						"time.%s in deterministic package %s; wall clock is only legal on measurement paths annotated //disco:measured <reason>", name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}

// seedDerived reports whether the argument list plausibly derives from
// an explicit seed: every argument either is a compile-time constant
// or mentions an identifier / callee whose name contains "seed".
func seedDerived(pass *analysis.Pass, args []ast.Expr) bool {
	if len(args) == 0 {
		return false
	}
	for _, a := range args {
		if tv, ok := pass.TypesInfo.Types[a]; ok && tv.Value != nil {
			continue
		}
		if !mentionsSeed(a) {
			return false
		}
	}
	return true
}

func mentionsSeed(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if strings.Contains(strings.ToLower(id.Name), "seed") {
				found = true
			}
		}
		return !found
	})
	return found
}
