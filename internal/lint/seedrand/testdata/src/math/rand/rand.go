// Package rand is a stub of math/rand for analyzer testdata: seedrand
// matches the import path and selector names, not the real library.
package rand

type Source interface{ Int63() int64 }

type Rand struct{}

func NewSource(seed int64) Source        { return nil }
func New(src Source) *Rand               { return &Rand{} }
func (r *Rand) Intn(n int) int           { return 0 }
func (r *Rand) Float64() float64         { return 0 }
func Intn(n int) int                     { return 0 }
func Float64() float64                   { return 0 }
func Perm(n int) []int                   { return nil }
func Shuffle(n int, swap func(i, j int)) {}
