// Package eval exercises seedrand: deterministic package, so all
// entropy must flow from explicit seeds and wall clock must be waived.
package eval

import (
	"math/rand"
	"time"
)

type config struct {
	Seed int64
}

// --- flagged ---

func globalStream(n int) int {
	return rand.Intn(n) // want `rand.Intn draws from the process-global stream`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the process-global stream`
}

func clockSeeded() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `rand.NewSource argument is not derived from a seed` `time.Now in deterministic package eval`
}

func opaqueSeeded(x int64) rand.Source {
	return rand.NewSource(x) // want `rand.NewSource argument is not derived from a seed`
}

func bareClock() time.Time {
	return time.Now() // want `time.Now in deterministic package eval`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in deterministic package eval`
}

// --- allowed ---

func explicitSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func derivedSeed(c config, task int64) rand.Source {
	return rand.NewSource(c.Seed ^ task<<1)
}

func seedCallee(taskSeed func(int) int64, task int) rand.Source {
	return rand.NewSource(taskSeed(task))
}

func constantSeed() rand.Source {
	return rand.NewSource(42)
}

// --- waived ---

func measured() time.Time {
	//disco:measured latency sample for the qps report, never in figure data
	return time.Now()
}

func measuredSameLine(t0 time.Time) time.Duration {
	return time.Since(t0) //disco:measured wall-clock aside in the progress log
}
