// Package other is outside the deterministic set: seedrand must stay
// silent here.
package other

import (
	"math/rand"
	"time"
)

func anythingGoes() (int, time.Time) {
	return rand.Intn(7), time.Now()
}
