// Package time is a stub of the standard library's time for analyzer
// testdata.
package time

type Time struct{}

type Duration int64

func Now() Time                     { return Time{} }
func Since(t Time) Duration         { return 0 }
func (t Time) UnixNano() int64      { return 0 }
func (d Duration) Seconds() float64 { return 0 }
