// Package snapmutate turns the snapshot immutability contract — "what
// Fork() shares is never written after build" — into a static check.
//
// snapshot.Snapshot exposes no fields, so the contract is about
// provenance, not types: the slices and pointers its accessors return
// (Vicinity, Landmarks, ForestParents, Graph; vicinity.Table.Of) alias
// storage shared by every fork, repair child and serve epoch, and a
// write through any of them corrupts all of those at once — the kind
// of bug -race only catches if two goroutines happen to collide during
// the test run.
//
// The analyzer does an intra-function taint walk: results of the
// sealed accessors are tainted, taint propagates through
// reference-typed assignments (slices, maps, pointers — a struct value
// copied out of a tainted slice is the caller's own), and it flags
//
//   - assignments or ++/-- through a tainted access chain
//     (vs.Entries[i].Dist = x, parents[j] = p),
//   - append with a tainted first argument (may write the shared
//     backing array in place),
//   - sort-like calls on tainted values (sort.Slice(parents, ...)
//     mutates shared rows),
//   - known mutator methods on a tainted *graph.Graph (AddEdge, ...).
//
// The defining package of each accessor is exempt — build, repair and
// fold legitimately write the storage they own. Reviewed exceptions
// elsewhere carry //disco:mutates <reason>.
package snapmutate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"disco/internal/lint/analysis"
)

// Analyzer is the snapmutate check.
var Analyzer = &analysis.Analyzer{
	Name:      "snapmutate",
	Doc:       "flags writes through sealed snapshot/vicinity/forest storage outside its defining package",
	Directive: "mutates",
	Run:       run,
}

// sealedAccessors maps (package path suffix, receiver type name) to the
// methods whose results alias shared sealed storage. Methods that
// return fresh per-call allocations (PathFrom, Members, DecodeForestRow)
// are deliberately absent.
var sealedAccessors = map[[2]string][]string{
	{"snapshot", "Snapshot"}: {"Vicinity", "Landmarks", "ForestParents", "Graph"},
	{"vicinity", "Table"}:    {"Of"},
}

// graphMutators are methods that structurally modify a graph; calling
// one on a graph obtained from a sealed snapshot rewrites shared
// topology.
var graphMutators = map[string]bool{
	"AddEdge": true, "AddNode": true, "AddLink": true,
	"RemoveEdge": true, "SetWeight": true, "Finalize": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc taints sealed-accessor results within one function body
// (function literals included — they share the captured variables) and
// reports writes through them.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	t := &tainter{pass: pass, objs: make(map[types.Object]bool)}
	// Propagate to fixpoint: assignments appear in source order almost
	// always, but a loop body may taint a variable used above it.
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
							changed = t.propagate(id, rhs) || changed
						}
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && t.tainted(n.X) {
					if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && refLike(pass.TypesInfo.TypeOf(id)) {
						changed = t.mark(id) || changed
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				t.checkWrite(lhs, n.TokPos)
			}
		case *ast.IncDecStmt:
			t.checkWrite(n.X, n.TokPos)
		case *ast.CallExpr:
			t.checkCall(n)
		}
		return true
	})
}

type tainter struct {
	pass *analysis.Pass
	objs map[types.Object]bool
}

// mark taints id's object; reports whether that was new.
func (t *tainter) mark(id *ast.Ident) bool {
	obj := t.pass.TypesInfo.ObjectOf(id)
	if obj == nil || t.objs[obj] {
		return false
	}
	t.objs[obj] = true
	return true
}

// propagate taints lhs if rhs is a tainted expression of a
// reference-carrying type.
func (t *tainter) propagate(lhs *ast.Ident, rhs ast.Expr) bool {
	if !t.tainted(rhs) || !refLike(t.pass.TypesInfo.TypeOf(rhs)) {
		return false
	}
	return t.mark(lhs)
}

// tainted reports whether the root of e's access chain is sealed: a
// sealed-accessor call, a tainted identifier, or &-of-tainted.
func (t *tainter) tainted(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			e = x.X
		case *ast.Ident:
			obj := t.pass.TypesInfo.ObjectOf(x)
			return obj != nil && t.objs[obj]
		case *ast.CallExpr:
			return t.sealedCall(x)
		default:
			return false
		}
	}
}

// sealedCall reports whether call invokes a sealed accessor defined
// outside the current package.
func (t *tainter) sealedCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := t.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() == t.pass.Pkg {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	key := [2]string{pathSuffix(named.Obj().Pkg()), named.Obj().Name()}
	for _, m := range sealedAccessors[key] {
		if m == fn.Name() {
			return true
		}
	}
	return false
}

// checkWrite reports a write whose access chain roots in sealed
// storage. A bare tainted identifier on the left is a rebinding, not a
// write through shared memory, so at least one selector/index/deref
// step is required.
func (t *tainter) checkWrite(lhs ast.Expr, pos token.Pos) {
	lhs = ast.Unparen(lhs)
	if _, ok := lhs.(*ast.Ident); ok {
		return
	}
	if t.tainted(lhs) {
		t.pass.Reportf(pos,
			"write through sealed snapshot storage shared by every fork; copy before mutating, or waive with //disco:mutates <reason>")
	}
}

// checkCall flags append/sort/graph-mutator calls that modify sealed
// storage in place.
func (t *tainter) checkCall(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "append" && len(call.Args) > 0 {
			if b, ok := t.pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "append" && t.tainted(call.Args[0]) {
				t.pass.Reportf(call.Pos(),
					"append to a slice aliasing sealed snapshot storage may write the shared backing array; copy first, or waive with //disco:mutates <reason>")
			}
		}
		if strings.Contains(strings.ToLower(fun.Name), "sort") {
			t.checkSortArgs(call)
		}
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		// Match the qualified name: sort.Slice's selector is just
		// "Slice", the package qualifier carries the "sort".
		if strings.Contains(strings.ToLower(types.ExprString(call.Fun)), "sort") || name == "Reverse" {
			t.checkSortArgs(call)
		}
		if graphMutators[name] && t.tainted(fun.X) && t.isGraph(fun.X) {
			t.pass.Reportf(call.Pos(),
				"%s on a graph obtained from a sealed snapshot rewrites shared topology; operate on a copy, or waive with //disco:mutates <reason>", name)
		}
	}
}

func (t *tainter) checkSortArgs(call *ast.CallExpr) {
	for _, a := range call.Args {
		if t.tainted(a) && refLike(t.pass.TypesInfo.TypeOf(a)) {
			t.pass.Reportf(call.Pos(),
				"in-place sort of sealed snapshot storage; sort a copy, or waive with //disco:mutates <reason>")
			return
		}
	}
}

func (t *tainter) isGraph(e ast.Expr) bool {
	typ := t.pass.TypesInfo.TypeOf(e)
	if typ == nil {
		return false
	}
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem()
	}
	named, ok := typ.(*types.Named)
	return ok && named.Obj().Name() == "Graph" && pathSuffix(named.Obj().Pkg()) == "graph"
}

func refLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Interface, *types.Chan:
		return true
	}
	return false
}

func pathSuffix(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
