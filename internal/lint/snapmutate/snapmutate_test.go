package snapmutate_test

import (
	"testing"

	"disco/internal/lint/analysistest"
	"disco/internal/lint/snapmutate"
)

func TestSnapMutate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), snapmutate.Analyzer, "eval", "snapshot")
}
