// Package sort is a stub of the standard library's sort for analyzer
// testdata: snapmutate matches sort calls by name only.
package sort

func Slice(x any, less func(i, j int) bool) {}
func Ints(x []int)                          {}
