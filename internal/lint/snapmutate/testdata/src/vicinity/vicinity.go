// Package vicinity is a stub of the repo's vicinity package for
// snapmutate testdata: Table.Of is a sealed accessor.
package vicinity

import "graph"

type Entry struct {
	Node, Parent graph.NodeID
	Dist         float64
}

type Set struct {
	Entries []Entry
}

type Table struct {
	sets map[graph.NodeID]*Set
}

func (t *Table) Of(v graph.NodeID) *Set { return t.sets[v] }
