// Package graph is a stub of the repo's graph package for snapmutate
// testdata: the analyzer matches the Graph type and its mutator method
// names by package-path suffix.
package graph

type NodeID int32

type Graph struct {
	n int
}

func (g *Graph) N() int                         { return g.n }
func (g *Graph) AddEdge(a, b NodeID, w float64) {}
func (g *Graph) RemoveEdge(a, b NodeID)         {}
func (g *Graph) Finalize()                      {}
