// Package eval exercises snapmutate from outside the defining
// packages: every write through a sealed accessor's result must be
// flagged, copies and fresh allocations must not.
package eval

import (
	"sort"

	"graph"
	"snapshot"
	"vicinity"
)

// --- flagged: writes through sealed storage ---

func writeVicinity(s *snapshot.Snapshot, v graph.NodeID) {
	vs := s.Vicinity(v)
	vs.Entries[0].Dist = 0 // want `write through sealed snapshot storage`
}

func writeLandmarks(s *snapshot.Snapshot) {
	lms := s.Landmarks()
	lms[0] = 3 // want `write through sealed snapshot storage`
}

func writeDirect(s *snapshot.Snapshot) {
	s.ForestParents(0)[1] = 2 // want `write through sealed snapshot storage`
}

func writeThroughAlias(s *snapshot.Snapshot) {
	p := s.ForestParents(0)
	q := p
	q[1] = 0 // want `write through sealed snapshot storage`
}

func incThroughAlias(s *snapshot.Snapshot, v graph.NodeID) {
	vs := s.Vicinity(v)
	vs.Entries[2].Dist++ // want `write through sealed snapshot storage`
}

func appendShared(s *snapshot.Snapshot) []graph.NodeID {
	lms := s.Landmarks()
	return append(lms, 1) // want `append to a slice aliasing sealed snapshot storage`
}

func sortShared(s *snapshot.Snapshot) {
	parents := s.ForestParents(0)
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] }) // want `in-place sort of sealed snapshot storage`
}

func mutateTopology(s *snapshot.Snapshot) {
	s.Graph().AddEdge(1, 2, 1.5) // want `AddEdge on a graph obtained from a sealed snapshot`
}

func mutateTopologyAlias(s *snapshot.Snapshot) {
	g := s.Graph()
	g.RemoveEdge(1, 2) // want `RemoveEdge on a graph obtained from a sealed snapshot`
}

func writeTableSet(t *vicinity.Table, v graph.NodeID) {
	t.Of(v).Entries[0].Dist = 9 // want `write through sealed snapshot storage`
}

// --- allowed ---

func valueCopyBreaksTaint(s *snapshot.Snapshot, v graph.NodeID) vicinity.Entry {
	e := s.Vicinity(v).Entries[0]
	e.Dist = 7 // a struct value copied out of the slice is the caller's own
	return e
}

func freshAllocation(s *snapshot.Snapshot, v graph.NodeID) {
	path := s.PathFrom(0, v)
	path[0] = 5 // PathFrom returns a fresh slice per call
}

func copyThenSort(s *snapshot.Snapshot) []graph.NodeID {
	shared := s.Landmarks()
	own := make([]graph.NodeID, len(shared))
	copy(own, shared)
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
	return own
}

func readOnly(s *snapshot.Snapshot, v graph.NodeID) float64 {
	total := 0.0
	for _, e := range s.Vicinity(v).Entries {
		total += e.Dist
	}
	return total
}

// --- waived ---

func waivedWrite(s *snapshot.Snapshot) {
	ps := s.ForestParents(0)
	//disco:mutates scratch snapshot owned by this benchmark, never forked
	ps[0] = 0
}
