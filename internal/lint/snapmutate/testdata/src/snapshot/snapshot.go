// Package snapshot is a stub of the repo's snapshot package for
// snapmutate testdata. Its accessor set mirrors the real sealed
// surface; the writes below are in the defining package and must be
// exempt.
package snapshot

import (
	"graph"
	"vicinity"
)

type Snapshot struct {
	vic       map[graph.NodeID]*vicinity.Set
	landmarks []graph.NodeID
	parents   [][]graph.NodeID
	g         *graph.Graph
}

func (s *Snapshot) Vicinity(v graph.NodeID) *vicinity.Set { return s.vic[v] }
func (s *Snapshot) Landmarks() []graph.NodeID             { return s.landmarks }
func (s *Snapshot) ForestParents(root int) []graph.NodeID { return s.parents[root] }
func (s *Snapshot) Graph() *graph.Graph                   { return s.g }

// PathFrom returns a fresh allocation, so it is not sealed.
func (s *Snapshot) PathFrom(root int, v graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, 4)
	for u := v; u >= 0; u = s.parents[root][u] {
		out = append(out, u)
	}
	return out
}

// rebuild writes the storage it owns: the defining package is exempt.
func (s *Snapshot) rebuild(root int) {
	ps := s.ForestParents(root)
	for i := range ps {
		ps[i] = -1
	}
}
