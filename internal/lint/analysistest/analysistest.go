// Package analysistest runs an analyzer over GOPATH-style testdata
// packages and checks its diagnostics against `// want` comments — a
// miniature of golang.org/x/tools/go/analysis/analysistest with the
// same testdata layout and comment syntax, so suites written against
// it port to the real harness unchanged.
//
// A want comment lists one quoted regexp per expected diagnostic on
// its line:
//
//	for k := range m { // want `range over map`
//
// Lines with no want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"disco/internal/lint/analysis"
	"disco/internal/lint/load"
)

// TestData returns the testdata directory of the calling test's
// package ("testdata" relative to the test's working directory).
func TestData() string { return "testdata" }

// Run loads each testdata package, applies the analyzer, and reports
// any mismatch between produced diagnostics and // want expectations
// as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		loader := load.NewLoader(testdata)
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		directives := analysis.ParseDirectives(pkg.Fset, pkg.Files)
		pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, directives)
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer %s failed: %v", path, a.Name, err)
			continue
		}
		check(t, pkg, pass.Diagnostics())
	}
}

type key struct {
	file string
	line int
}

// check matches diagnostics against want comments line by line.
func check(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg.Fset, pkg.Files)
	got := make(map[key][]string)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}
	for k, res := range wants {
		msgs := got[k]
		for _, re := range res {
			matched := -1
			for i, m := range msgs {
				if m != "" && re.MatchString(m) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", k.file, k.line, re, msgs)
				continue
			}
			msgs[matched] = "" // consumed
		}
		for _, m := range msgs {
			if m != "" {
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
			}
		}
		delete(got, k)
	}
	for k, msgs := range got {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

// collectWants parses `// want "re" ...` comments into per-line
// expectation lists.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[key][]*regexp.Regexp {
	t.Helper()
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWant(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					continue
				}
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], res...)
			}
		}
	}
	return wants
}

// parseWant splits a want payload into its quoted regexps. Both "..."
// and `...` quoting are accepted.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted regexp, found %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated regexp in %q", s)
		}
		pat := s[1 : 1+end]
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, err
		}
		res = append(res, re)
		s = s[2+end:]
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return res, nil
}
