// Package eval exercises handleref: every successful TryRetain must be
// matched by a Release, a defer Release, or an ownership escape on
// every path out of the retained region.
package eval

import "snapshot"

func work()                    {}
func use(s *snapshot.Snapshot) {}
func sink(h *snapshot.Handle)  {}

// --- flagged ---

func leakOnFallOff(h *snapshot.Handle) {
	if h.TryRetain() { // want `successful TryRetain of h is not matched by a Release on every path`
		work()
	}
}

func leakOnOnePath(h *snapshot.Handle, ok bool) {
	if h.TryRetain() { // want `successful TryRetain of h is not matched by a Release on every path`
		if ok {
			h.Release()
			return
		}
		work() // this path drops the reference on the floor
	}
}

func leakNegatedGuard(h *snapshot.Handle) {
	if !h.TryRetain() { // want `successful TryRetain of h is not matched by a Release on every path`
		return
	}
	use(h.Snapshot())
	// fall-off without Release
}

func leakOkAssign(h *snapshot.Handle) {
	ok := h.TryRetain() // want `successful TryRetain of h is not matched by a Release on every path`
	if ok {
		work()
	}
}

func discardedResult(h *snapshot.Handle) {
	_ = h.TryRetain() // want `TryRetain result discarded`
}

func discardedExpr(h *snapshot.Handle) {
	h.TryRetain() // want `TryRetain result discarded`
}

func leakInSwitch(h *snapshot.Handle, mode int) {
	if h.TryRetain() { // want `successful TryRetain of h is not matched by a Release on every path`
		switch mode {
		case 0:
			h.Release()
		default:
			work() // leaks
		}
	}
}

// --- balanced ---

func releaseOnExit(h *snapshot.Handle) {
	if h.TryRetain() {
		use(h.Snapshot())
		h.Release()
	}
}

func deferRelease(h *snapshot.Handle) {
	if h.TryRetain() {
		defer h.Release()
		use(h.Snapshot())
	}
}

func deferClosureRelease(h *snapshot.Handle) {
	if h.TryRetain() {
		defer func() { h.Release() }()
		use(h.Snapshot())
	}
}

func releaseBothBranches(h *snapshot.Handle, ok bool) {
	if h.TryRetain() {
		if ok {
			h.Release()
			return
		}
		h.Release()
	}
}

func negatedGuardBalanced(h *snapshot.Handle) {
	if !h.TryRetain() {
		return
	}
	use(h.Snapshot())
	h.Release()
}

func okAssignBalanced(h *snapshot.Handle) {
	ok := h.TryRetain()
	if ok {
		h.Release()
	}
}

func okAssignNegated(h *snapshot.Handle) {
	ok := h.TryRetain()
	if !ok {
		return
	}
	use(h.Snapshot())
	h.Release()
}

func switchAllRelease(h *snapshot.Handle, mode int) {
	if h.TryRetain() {
		switch mode {
		case 0:
			h.Release()
		default:
			h.Release()
		}
	}
}

// --- escapes: ownership transferred, caller releases ---

func escapeReturn(h *snapshot.Handle) *snapshot.Handle {
	if h.TryRetain() {
		return h
	}
	return nil
}

func escapeCall(h *snapshot.Handle) {
	if h.TryRetain() {
		sink(h)
	}
}

type entry struct {
	h *snapshot.Handle
}

func escapeContainer(e *entry) *entry {
	if e.h.TryRetain() {
		return e // returning the struct holding the handle aliases it
	}
	return nil
}

func escapeGoroutine(h *snapshot.Handle) {
	if h.TryRetain() {
		go func() {
			use(h.Snapshot())
			h.Release()
		}()
	}
}

// --- waived ---

func waivedPin(h *snapshot.Handle) {
	//disco:retained deliberate long-lived pin held until process exit
	if h.TryRetain() {
		work()
	}
}
