// Package snapshot is a stub of the repo's snapshot package for
// handleref testdata: the analyzer matches the Handle type by name and
// package-path suffix.
package snapshot

type Snapshot struct{}

type Handle struct {
	refs int64
}

func (h *Handle) TryRetain() bool     { return h.refs > 0 }
func (h *Handle) Retain()             { h.refs++ }
func (h *Handle) Release()            { h.refs-- }
func (h *Handle) Snapshot() *Snapshot { return nil }
func (h *Handle) Epoch() uint64       { return 0 }
func (h *Handle) Refs() int64         { return h.refs }
