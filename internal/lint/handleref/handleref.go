// Package handleref checks the exact-refcount reclamation contract of
// snapshot.Handle (PR 6): a successful TryRetain pins an epoch, and
// the pin must be dropped by exactly one Release on every path out of
// the retained region — a leaked reference keeps a folded-away chain
// base (and its spill mapping) alive forever, and the dynamic tests
// only catch that if a storm happens to retire the right epoch.
//
// The analysis is intra-function and syntactic over the guarded
// region:
//
//	if h.TryRetain() {        // region = the success branch
//	        ...               // every exit must Release h,
//	}                         // defer h.Release(), or pass h on
//
// `ok := h.TryRetain(); if ok { ... }` and the negated guard
// `if !h.TryRetain() { return }` (region = the rest of the block) are
// recognized too. Within the region, a path is satisfied by
//
//   - h.Release() or defer h.Release() (directly or inside a deferred
//     closure),
//   - any escape of h — returning it, passing it to a call, assigning
//     it elsewhere, capturing it in a goroutine: ownership transfer is
//     beyond intra-function analysis, so escapes silence the check
//     rather than false-positive on the serve plane's publish path.
//
// A fall-off or return with the reference still held is reported, as
// is a TryRetain whose result is discarded (the caller cannot know
// whether it holds a reference). Deliberate long-lived pins carry
// //disco:retained <reason>.
package handleref

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"disco/internal/lint/analysis"
)

// Analyzer is the handleref check.
var Analyzer = &analysis.Analyzer{
	Name:      "handleref",
	Doc:       "checks that every successful snapshot.Handle.TryRetain is matched by a Release on all paths (defer-aware)",
	Directive: "retained",
	Run:       run,
}

// handleMethods are the Handle methods that use the receiver without
// transferring ownership; any other appearance of the receiver
// expression counts as an escape.
var handleMethods = map[string]bool{
	"TryRetain": true, "Retain": true, "Release": true,
	"Snapshot": true, "Epoch": true, "Refs": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			body, ok := funcBody(n)
			if !ok || body == nil {
				return true
			}
			checkBody(pass, body)
			return true
		})
	}
	return nil
}

func funcBody(n ast.Node) (*ast.BlockStmt, bool) {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body, true
	case *ast.FuncLit:
		return n.Body, true
	}
	return nil, false
}

// checkBody scans one function body's statement lists for TryRetain
// guards and verifies their success regions.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var walkList func(list []ast.Stmt)
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			walkList(s.List)
		case *ast.IfStmt:
			walkList(s.Body.List)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.ForStmt:
			walkList(s.Body.List)
		case *ast.RangeStmt:
			walkList(s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				walkList(c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				walkList(c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				walkList(c.(*ast.CommClause).Body)
			}
		case *ast.LabeledStmt:
			walk(s.Stmt)
		}
	}
	walkList = func(list []ast.Stmt) {
		for i, s := range list {
			checkStmt(pass, s, list[i+1:])
			walk(s)
		}
	}
	walkList(body.List)
}

// checkStmt recognizes the TryRetain guard shapes rooted at s. tail is
// the rest of s's statement list (the success region of a negated
// guard, and where `ok := h.TryRetain()` finds its `if ok`).
func checkStmt(pass *analysis.Pass, s ast.Stmt, tail []ast.Stmt) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if call, recv, neg := retainCond(pass, s.Cond); call != nil {
			if neg {
				// if !h.TryRetain() { bail }: region = rest of the
				// enclosing block, provided the failure branch leaves.
				if terminates(s.Body) {
					verifyRegion(pass, call, recv, tail, true)
				}
			} else {
				verifyRegion(pass, call, recv, s.Body.List, true)
			}
		}
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return
		}
		call, recv := retainCall(pass, s.Rhs[0])
		if call == nil {
			return
		}
		lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
		if !ok {
			return
		}
		if lhs.Name == "_" {
			pass.Reportf(call.Pos(), "TryRetain result discarded: the caller cannot know whether it holds a reference to release")
			return
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		// Find the `if ok` / `if !ok` consuming the result.
		for _, t := range tail {
			ifs, ok := t.(*ast.IfStmt)
			if !ok {
				continue
			}
			cond := ast.Unparen(ifs.Cond)
			neg := false
			if u, isNeg := cond.(*ast.UnaryExpr); isNeg && u.Op == token.NOT {
				cond, neg = ast.Unparen(u.X), true
			}
			if id, isID := cond.(*ast.Ident); isID && pass.TypesInfo.ObjectOf(id) == obj {
				if neg {
					if terminates(ifs.Body) {
						idx := indexOf(tail, t)
						verifyRegion(pass, call, recv, tail[idx+1:], true)
					}
				} else {
					verifyRegion(pass, call, recv, ifs.Body.List, true)
				}
				return
			}
		}
	case *ast.ExprStmt:
		if call, _ := retainCall(pass, s.X); call != nil {
			pass.Reportf(call.Pos(), "TryRetain result discarded: the caller cannot know whether it holds a reference to release")
		}
	}
}

func indexOf(list []ast.Stmt, s ast.Stmt) int {
	for i, t := range list {
		if t == s {
			return i
		}
	}
	return -1
}

// retainCond unwraps an if condition to a TryRetain call, reporting
// whether it was negated.
func retainCond(pass *analysis.Pass, cond ast.Expr) (*ast.CallExpr, string, bool) {
	cond = ast.Unparen(cond)
	neg := false
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		cond, neg = ast.Unparen(u.X), true
	}
	call, recv := retainCall(pass, cond)
	return call, recv, neg
}

// retainCall matches e as a snapshot.Handle TryRetain call and returns
// the receiver's canonical expression string.
func retainCall(pass *analysis.Pass, e ast.Expr) (*ast.CallExpr, string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "TryRetain" {
		return nil, ""
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return nil, ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Handle" {
		return nil, ""
	}
	if pkg := named.Obj().Pkg(); pkg == nil || pathSuffix(pkg.Path()) != "snapshot" {
		return nil, ""
	}
	return call, types.ExprString(ast.Unparen(sel.X))
}

// terminates reports whether a block always leaves the enclosing
// statement list (ends in return/branch/panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// verifyRegion simulates the success region: every return must be
// preceded by a Release, defer Release, or escape of recv, and — when
// the region is a closed block (checkFall) — so must the normal exit.
func verifyRegion(pass *analysis.Pass, retain *ast.CallExpr, recv string, region []ast.Stmt, checkFall bool) {
	sim := &simulator{pass: pass, recv: recv, retain: retain}
	falls, st := sim.run(region, false)
	if checkFall && falls && !st {
		sim.report()
	}
}

// simulator walks a region tracking one boolean: is the reference
// released (or ownership transferred) on the current path?
type simulator struct {
	pass     *analysis.Pass
	recv     string
	retain   *ast.CallExpr
	reported bool
}

func (s *simulator) report() {
	if s.reported {
		return
	}
	s.reported = true
	s.pass.Reportf(s.retain.Pos(),
		"successful TryRetain of %s is not matched by a Release on every path; release, defer the release, or waive with //disco:retained <reason>", s.recv)
}

// run simulates list from state st; it returns whether control can
// fall out the end normally and the (conservative) state there.
func (s *simulator) run(list []ast.Stmt, st bool) (falls bool, out bool) {
	for _, stmt := range list {
		if term := s.step(stmt, &st); term {
			return false, st
		}
	}
	return true, st
}

// step processes one statement, updating *st; it reports whether the
// path terminates here (return/branch).
func (s *simulator) step(stmt ast.Stmt, st *bool) (terminated bool) {
	switch stmt := stmt.(type) {
	case *ast.ExprStmt:
		if s.isRelease(stmt.X) {
			*st = true
		} else if !*st && s.mentionsRecv(stmt) {
			*st = true // passed to a call: ownership escape
		}
	case *ast.DeferStmt:
		if s.mentionsRecv(stmt) {
			*st = true // defer h.Release(), or closure holding h
		}
	case *ast.ReturnStmt:
		if !*st && s.mentionsRecv(stmt) {
			*st = true // returning the handle transfers ownership
		}
		if !*st {
			s.report()
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the region; the surrounding code
		// owns the reference there — beyond this region's analysis.
		return true
	case *ast.IfStmt:
		thenFalls, thenSt := s.run(stmt.Body.List, *st)
		elseFalls, elseSt := true, *st
		if stmt.Else != nil {
			switch e := stmt.Else.(type) {
			case *ast.BlockStmt:
				elseFalls, elseSt = s.run(e.List, *st)
			case *ast.IfStmt:
				est := *st
				term := s.step(e, &est)
				elseFalls, elseSt = !term, est
			}
		}
		switch {
		case thenFalls && elseFalls:
			*st = thenSt && elseSt
		case thenFalls:
			*st = thenSt
		case elseFalls:
			*st = elseSt
		default:
			return true
		}
	case *ast.BlockStmt:
		falls, out := s.run(stmt.List, *st)
		*st = out
		if !falls {
			return true
		}
	case *ast.ForStmt:
		// Optimistic: a release anywhere in the loop body counts, so
		// retry loops don't false-positive.
		_, out := s.run(stmt.Body.List, *st)
		*st = *st || out
	case *ast.RangeStmt:
		_, out := s.run(stmt.Body.List, *st)
		*st = *st || out
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses [][]ast.Stmt
		switch sw := stmt.(type) {
		case *ast.SwitchStmt:
			for _, c := range sw.Body.List {
				clauses = append(clauses, c.(*ast.CaseClause).Body)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range sw.Body.List {
				clauses = append(clauses, c.(*ast.CaseClause).Body)
			}
		case *ast.SelectStmt:
			for _, c := range sw.Body.List {
				clauses = append(clauses, c.(*ast.CommClause).Body)
			}
		}
		all := true
		anyFalls := false
		for _, body := range clauses {
			falls, out := s.run(body, *st)
			if falls {
				anyFalls = true
				all = all && out
			}
		}
		if anyFalls {
			*st = all
		}
	default:
		if !*st && s.mentionsRecv(stmt) {
			*st = true // assignment/send/go capturing the handle: escape
		}
	}
	return false
}

// isRelease matches recv.Release().
func (s *simulator) isRelease(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	return types.ExprString(ast.Unparen(sel.X)) == s.recv
}

// mentionsRecv reports whether n uses the receiver expression outside
// a plain Handle method call — i.e. in a way that can transfer or
// alias the reference (argument, return value, assignment, closure
// capture) or that releases it inside a deferred closure.
func (s *simulator) mentionsRecv(n ast.Node) bool {
	accounted := make(map[ast.Expr]bool)
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := m.(*ast.SelectorExpr); ok && handleMethods[sel.Sel.Name] {
			if types.ExprString(ast.Unparen(sel.X)) == s.recv {
				if sel.Sel.Name == "Release" {
					found = true // a release reached through any path here
					return false
				}
				accounted[sel.X] = true
			}
		}
		if e, ok := m.(ast.Expr); ok && !accounted[e] {
			str := types.ExprString(ast.Unparen(e))
			// The receiver itself, or any prefix of its chain (the
			// struct holding the handle): returning or passing the
			// container aliases the reference just the same.
			if str == s.recv || strings.HasPrefix(s.recv, str+".") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func pathSuffix(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
