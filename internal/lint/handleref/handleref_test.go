package handleref_test

import (
	"testing"

	"disco/internal/lint/analysistest"
	"disco/internal/lint/handleref"
)

func TestHandleRef(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), handleref.Analyzer, "eval")
}
