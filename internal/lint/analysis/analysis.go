// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis: just enough framework to write the
// repo's contract lints (cmd/discolint) against the standard library
// alone. The API deliberately mirrors x/tools — Analyzer, Pass,
// Diagnostic, Reportf — so the analyzers can migrate to the real
// framework wholesale if the dependency ever becomes available; the
// driver half (vet.cfg protocol, testdata loader) lives in
// internal/lint/vetdriver and internal/lint/analysistest.
//
// What this clone intentionally drops: facts (no cross-package
// analysis), analyzer dependencies / ResultOf (each discolint analyzer
// is independent), and suggested fixes. What it adds over the original:
// first-class //disco: suppression directives (directive.go) — every
// Pass filters its own reports through the directive table, so an
// annotated line never reaches the driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags
	// (lowercase identifier, e.g. "maporder").
	Name string

	// Doc is the analyzer's documentation: first line is a summary,
	// the rest elaborates the contract it enforces.
	Doc string

	// Directive, if non-empty, names the //disco: directive (without
	// the prefix) that suppresses this analyzer's diagnostics on the
	// annotated line, e.g. "orderinvariant" for //disco:orderinvariant.
	Directive string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass holds one package's worth of input to an Analyzer.Run and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// directives is the per-file //disco: directive table, shared by
	// every analyzer running over the same package.
	directives *DirectiveTable

	diagnostics []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// NewPass assembles a Pass for one package. directives may be nil (no
// suppression).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, directives *DirectiveTable) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, directives: directives}
}

// Reportf reports a diagnostic at pos unless a matching //disco:
// directive suppresses it on that line (or the line above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// suppressed reports whether a directive accepted by the analyzer sits
// on the diagnostic's line or the line immediately above it (the
// conventional "annotate the statement" position).
func (p *Pass) suppressed(pos token.Pos) bool {
	if p.directives == nil || p.Analyzer.Directive == "" {
		return false
	}
	position := p.Fset.Position(pos)
	return p.directives.Covers(p.Analyzer.Directive, position.Filename, position.Line)
}

// Diagnostics returns the collected reports in source order of
// appearance (the order Run reported them).
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// IsTestFile reports whether the file containing pos is a _test.go
// file. Analyzers whose contract targets library determinism (maporder,
// seedrand, mergeorder) skip test files: tests assert on sorted or
// order-insensitive views and annotating every assertion loop would
// drown the signal.
func (p *Pass) IsTestFile(f *ast.File) bool {
	name := p.Fset.Position(f.Package).Filename
	return len(name) >= 8 && name[len(name)-8:] == "_test.go"
}
