// //disco: suppression directives — the escape hatch that turns each
// contract lint from a hard wall into a reviewed waiver. A directive is
// a comment of the form
//
//	//disco:<name> <reason>
//
// placed on the flagged line or on the line directly above the flagged
// statement. The reason is mandatory: a bare //disco:orderinvariant is
// itself a diagnostic, so every waiver carries its justification in the
// source next to the code it excuses. Directive names in use:
//
//	//disco:orderinvariant — maporder, mergeorder: the iteration or
//	    merge order provably cannot reach output (pure counting,
//	    cache eviction, set union).
//	//disco:measured — seedrand: wall-clock or unseeded randomness on
//	    a measurement-only path (qps/latency timing) whose values are
//	    excluded from deterministic output.
//	//disco:mutates — snapmutate: a reviewed write to sealed state
//	    (e.g. the defining package's own white-box test).
//	//disco:retained — handleref: a successful TryRetain whose Release
//	    happens beyond this function by documented ownership transfer.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix is the comment prefix all suppression directives share.
const DirectivePrefix = "//disco:"

// Directive is one parsed //disco: comment.
type Directive struct {
	Name   string // e.g. "orderinvariant"
	Reason string // text after the name; empty is an error
	Pos    token.Pos
	Line   int
	File   string
}

// DirectiveTable indexes every //disco: directive of one package by
// file and line for O(1) suppression checks.
type DirectiveTable struct {
	// byFileLine maps file name -> line -> directives on that line.
	byFileLine map[string]map[int][]Directive
	all        []Directive
}

// ParseDirectives scans the comments of files for //disco: directives.
// Non-directive comments and //disco:generate-style unknown names are
// kept too — validation (unknown name, missing reason) is the driver's
// job, not the parser's.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *DirectiveTable {
	t := &DirectiveTable{byFileLine: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, DirectivePrefix)
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				d := Directive{
					Name:   name,
					Reason: strings.TrimSpace(reason),
					Pos:    c.Pos(),
					Line:   pos.Line,
					File:   pos.Filename,
				}
				lines := t.byFileLine[d.File]
				if lines == nil {
					lines = make(map[int][]Directive)
					t.byFileLine[d.File] = lines
				}
				lines[d.Line] = append(lines[d.Line], d)
				t.all = append(t.all, d)
			}
		}
	}
	return t
}

// Covers reports whether a directive named name sits on line, or on the
// line immediately above it, in file. A directive with an empty reason
// does not suppress — the missing reason surfaces as its own
// diagnostic (see Validate) and the underlying finding stays visible.
func (t *DirectiveTable) Covers(name, file string, line int) bool {
	lines := t.byFileLine[file]
	if lines == nil {
		return false
	}
	for _, cand := range [2]int{line, line - 1} {
		for _, d := range lines[cand] {
			if d.Name == name && d.Reason != "" {
				return true
			}
		}
	}
	return false
}

// KnownDirectives is the closed set of directive names the suite
// accepts; anything else under //disco: is a typo worth flagging.
var KnownDirectives = map[string]bool{
	"orderinvariant": true,
	"measured":       true,
	"mutates":        true,
	"retained":       true,
}

// Validate reports malformed directives: unknown names and missing
// reasons. The driver runs it once per package alongside the analyzers
// so a misspelled waiver can't silently disable nothing.
func (t *DirectiveTable) Validate(report func(pos token.Pos, format string, args ...any)) {
	for _, d := range t.all {
		if !KnownDirectives[d.Name] {
			report(d.Pos, "unknown //disco: directive %q (known: orderinvariant, measured, mutates, retained)", d.Name)
			continue
		}
		if d.Reason == "" {
			report(d.Pos, "//disco:%s directive needs a reason: //disco:%s <why this site is exempt>", d.Name, d.Name)
		}
	}
}
