package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const directiveSrc = `package p

func f(m map[int]int) {
	//disco:orderinvariant pure counting
	for range m {
	}
	for range m { //disco:measured qps aside
	}
	//disco:orderinvariant
	for range m {
	}
	//disco:oderinvariant typo goes unnoticed without Validate
	for range m {
	}
}
`

func parseDirectiveTable(t *testing.T) (*token.FileSet, *DirectiveTable) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, ParseDirectives(fset, []*ast.File{f})
}

func TestDirectiveCovers(t *testing.T) {
	_, tab := parseDirectiveTable(t)
	for _, tc := range []struct {
		name string
		line int
		want bool
	}{
		{"orderinvariant", 5, true},   // line above the loop
		{"orderinvariant", 4, true},   // the directive's own line
		{"measured", 7, true},         // same line
		{"orderinvariant", 10, false}, // reason missing: must not suppress
		{"measured", 5, false},        // wrong name
		{"orderinvariant", 15, false}, // no directive anywhere near
	} {
		if got := tab.Covers(tc.name, "p.go", tc.line); got != tc.want {
			t.Errorf("Covers(%q, %d) = %v, want %v", tc.name, tc.line, got, tc.want)
		}
	}
}

func TestDirectiveValidate(t *testing.T) {
	_, tab := parseDirectiveTable(t)
	var msgs []string
	tab.Validate(func(pos token.Pos, format string, args ...any) {
		msgs = append(msgs, fmt.Sprintf(format, args...))
	})
	if len(msgs) != 2 {
		t.Fatalf("Validate produced %d diagnostics, want 2: %v", len(msgs), msgs)
	}
	if !strings.Contains(msgs[0], "needs a reason") {
		t.Errorf("first diagnostic = %q, want missing-reason", msgs[0])
	}
	if !strings.Contains(msgs[1], `unknown //disco: directive "oderinvariant"`) {
		t.Errorf("second diagnostic = %q, want unknown-name", msgs[1])
	}
}
