// Package vetdriver implements the `go vet -vettool` unit-checker
// protocol against the standard library alone — the role
// golang.org/x/tools/go/analysis/unitchecker plays for x/tools
// analyzers.
//
// The protocol (cmd/go/internal/work.(*Builder).vet): the go command
// first invokes the tool with -V=full and expects "<name> version
// <v>" on stdout (the build-cache tool ID); it then invokes the tool
// once per package, in the package directory, with a single argument —
// the path to a JSON vet.cfg file naming the package's Go files and,
// for every dependency, the compiled export-data file the go command
// just built. The tool type-checks from those (no source re-analysis
// of dependencies, no network), runs its analyzers, prints diagnostics
// to stderr and exits nonzero if it found any.
package vetdriver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"

	"disco/internal/lint/analysis"
)

// Config mirrors the fields of cmd/go's vet.cfg that the driver needs;
// unknown fields are ignored by encoding/json.
type Config struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	GoVersion   string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// Run executes the suite over the package described by cfgPath,
// writing diagnostics to w. It returns the number of diagnostics, or
// an error for protocol/typecheck failures.
func Run(cfgPath string, analyzers []*analysis.Analyzer, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	// Dependencies resolve through the export data the go command
	// compiled for this build: map the source import path through
	// ImportMap, open the PackageFile archive, and let the toolchain's
	// own gc importer decode it.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, "amd64"),
		Error:     func(error) {}, // collect via returned error; keep going
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	if cfg.VetxOnly {
		// Dependency-only pass: discolint keeps no cross-package facts,
		// so there is nothing to compute or report.
		return 0, nil
	}

	diags := Analyze(fset, files, pkg, info, analyzers)
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return len(diags), nil
}

// Analyze runs the suite plus directive validation over one
// type-checked package and returns the diagnostics sorted by position.
func Analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	directives := analysis.ParseDirectives(fset, files)
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, files, pkg, info, directives)
		if err := a.Run(pass); err != nil {
			diags = append(diags, analysis.Diagnostic{
				Pos:      files[0].Package,
				Message:  fmt.Sprintf("analyzer failed: %v", err),
				Analyzer: a.Name,
			})
			continue
		}
		diags = append(diags, pass.Diagnostics()...)
	}
	directives.Validate(func(pos token.Pos, format string, args ...any) {
		diags = append(diags, analysis.Diagnostic{
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
			Analyzer: "directive",
		})
	})
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}
