package mergeorder_test

import (
	"testing"

	"disco/internal/lint/analysistest"
	"disco/internal/lint/mergeorder"
)

func TestMergeOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), mergeorder.Analyzer, "eval")
}
