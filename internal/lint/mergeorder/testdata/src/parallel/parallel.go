// Package parallel is a stub of the repo's worker pool for mergeorder
// testdata: same entry-point names and closure signatures, sequential
// execution.
package parallel

func Run(n int, fn func(task int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func RunScratch[S any](n int, newScratch func() S, fn func(scratch S, task int)) {
	s := newScratch()
	for i := 0; i < n; i++ {
		fn(s, i)
	}
}

func RunGather[S any](n int, newScratch func() S, fn func(scratch S, task int)) []S {
	out := make([]S, n)
	for i := 0; i < n; i++ {
		out[i] = newScratch()
		fn(out[i], i)
	}
	return out
}

func Map[T any](n int, fn func(task int) T) []T {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		out[i] = fn(i)
	}
	return out
}

func MapScratch[S, T any](n int, newScratch func() S, fn func(scratch S, task int) T) []T {
	s := newScratch()
	out := make([]T, n)
	for i := 0; i < n; i++ {
		out[i] = fn(s, i)
	}
	return out
}
