// Package eval exercises mergeorder: pool closures may write only
// task-indexed storage, per-worker scratch, and their own locals.
package eval

import "parallel"

// --- flagged ---

func appendShared(n int) []int {
	var results []int
	parallel.Run(n, func(task int) {
		results = append(results, task*task) // want `write to captured variable from a parallel task closure`
	})
	return results
}

func sharedScalar(n int, xs []float64) float64 {
	total := 0.0
	parallel.Run(n, func(task int) {
		total += xs[task] // want `write to captured variable from a parallel task closure`
	})
	return total
}

func sharedMap(n int) map[int]int {
	seen := make(map[int]int)
	parallel.Run(n, func(task int) {
		seen[task] = task // want `write to a map captured by a parallel task closure`
	})
	return seen
}

func nonTaskIndex(n int, out []int) {
	parallel.Run(n, func(task int) {
		for k := 0; k < 4; k++ {
			out[k] = k // want `captured slice is written at an index not derived from the task parameter`
		}
	})
}

func sharedCounterInc(n int) int {
	hits := 0
	parallel.Run(n, func(task int) {
		hits++ // want `write to captured variable from a parallel task closure`
	})
	return hits
}

// --- allowed ---

func taskIndexed(n int, xs []float64) []float64 {
	out := make([]float64, n)
	parallel.Run(n, func(task int) {
		out[task] = xs[task] * 2
	})
	return out
}

func taskDerivedIndex(n int, out []int) {
	parallel.Run(n, func(task int) {
		out[2*task] = task
		out[2*task+1] = -task
	})
}

func structuredRow(n int, rows []struct{ Sum int }) {
	parallel.Run(n, func(task int) {
		rows[task].Sum = task
	})
}

func mapResult(n int) []int {
	return parallel.Map(n, func(task int) int {
		local := task * 3 // locals are free
		return local
	})
}

func explicitInstantiation(n int) []int {
	return parallel.Map[int](n, func(task int) int { return task })
}

func scratchWrites(n int) {
	parallel.RunScratch(n, func() []int { return make([]int, 8) },
		func(scratch []int, task int) {
			scratch[0] += task // per-worker scratch: free by construction
		})
}

func gather(n int) []*[4]int {
	return parallel.RunGather(n, func() *[4]int { return new([4]int) },
		func(scratch *[4]int, task int) {
			scratch[task%4]++
		})
}

// --- waived ---

func waivedTally(n int) int {
	total := 0
	parallel.Run(n, func(task int) {
		//disco:orderinvariant integer tally; addition commutes and the pool joins before the read
		total += task
	})
	return total
}
