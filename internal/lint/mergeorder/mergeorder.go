// Package mergeorder enforces internal/parallel's task-ordered-merge
// rule inside the closures handed to the worker pool: tasks may write
// only to task-indexed storage. A closure that appends to a captured
// slice, writes a captured map, or stores to a captured slice at a
// position not derived from the task index produces schedule-dependent
// results (and usually a data race) — exactly the class
// TestWorkerCountInvariance exists to catch dynamically, caught here
// at vet time instead.
//
// For every call to parallel.Run / RunScratch / RunGather / Map /
// MapScratch, the analyzer takes the function-literal argument, treats
// its final parameter as the task index, and flags inside the body:
//
//   - x = append(x, ...) or any assignment/++/-- whose target is a
//     captured (free) variable with no index step: a shared scalar or
//     slice-header write, ordered by the schedule;
//   - writes through a captured map (concurrent map writes fault, and
//     even a mutex would leave insertion order schedule-dependent);
//   - s[i] = v through a captured slice/array where no index in the
//     access chain mentions the task parameter: out[task] and
//     rows[task].Col are fine, out[k] for a loop-local k is not.
//
// Writes through the per-worker scratch parameter and through locals
// declared inside the closure are free by construction. Per-worker
// accumulators whose reduction really is order-independent (RunGather
// integer tallies) carry //disco:orderinvariant <reason>. Test files
// are skipped.
package mergeorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"disco/internal/lint/analysis"
)

// Analyzer is the mergeorder check.
var Analyzer = &analysis.Analyzer{
	Name:      "mergeorder",
	Doc:       "flags parallel.Run/Map closures writing captured state at non-task-indexed locations",
	Directive: "orderinvariant",
	Run:       run,
}

// poolFuncs maps the parallel-pool entry points to the position of the
// task-taking function literal (always the last argument).
var poolFuncs = map[string]bool{
	"Run": true, "RunScratch": true, "RunGather": true,
	"Map": true, "MapScratch": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			lit := poolClosure(pass, call)
			if lit == nil || len(lit.Type.Params.List) == 0 {
				return true
			}
			checkClosure(pass, lit)
			return true
		})
	}
	return nil
}

// poolClosure returns the task closure if call is a parallel-pool
// fan-out, else nil.
func poolClosure(pass *analysis.Pass, call *ast.CallExpr) *ast.FuncLit {
	fun := call.Fun
	// Strip explicit instantiation: parallel.Map[int](...)
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = idx.X
	case *ast.IndexListExpr:
		fun = idx.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || !poolFuncs[sel.Sel.Name] {
		return nil
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || pathSuffix(fn.Pkg().Path()) != "parallel" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	lit, _ := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	return lit
}

// checkClosure flags order-dependent writes to captured state inside
// one task closure.
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit) {
	params := lit.Type.Params.List
	last := params[len(params)-1]
	if len(last.Names) == 0 {
		return // task index unnamed: nothing can be task-indexed
	}
	taskObj := pass.TypesInfo.ObjectOf(last.Names[len(last.Names)-1])
	if taskObj == nil {
		return
	}
	c := &checker{pass: pass, lit: lit, task: taskObj}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkWrite(lhs, n.TokPos)
			}
		case *ast.IncDecStmt:
			c.checkWrite(n.X, n.TokPos)
		}
		return true
	})
}

type checker struct {
	pass *analysis.Pass
	lit  *ast.FuncLit
	task types.Object
}

// free reports whether obj is captured from outside the closure.
func (c *checker) free(obj types.Object) bool {
	if obj == nil {
		return false
	}
	pos := obj.Pos()
	return pos.IsValid() && (pos < c.lit.Pos() || pos > c.lit.End())
}

// checkWrite analyzes one write target. It unwinds the access chain to
// the root, noting map index steps and whether any index mentions the
// task parameter.
func (c *checker) checkWrite(lhs ast.Expr, pos token.Pos) {
	mapStep := false
	taskIndexed := false
	indexed := false
	e := lhs
walk:
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			// Selecting through a package name or a field: if x.X is a
			// package qualifier this is a global write (free by
			// definition); handled at the root below.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := c.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					e = x.Sel
					continue
				}
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			indexed = true
			if t := c.pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					mapStep = true
				}
			}
			if c.mentionsTask(x.Index) {
				taskIndexed = true
			}
			e = x.X
		case *ast.Ident:
			obj := c.pass.TypesInfo.ObjectOf(e.(*ast.Ident))
			if !c.free(obj) {
				return // local or parameter (scratch): free to write
			}
			break walk
		default:
			return // writes through calls/composites: out of scope
		}
	}
	switch {
	case mapStep:
		c.pass.Reportf(pos,
			"write to a map captured by a parallel task closure: concurrent map writes fault and insertion order is schedule-dependent; write task-indexed storage and merge in task order, or waive with //disco:orderinvariant <reason>")
	case !indexed:
		c.pass.Reportf(pos,
			"write to captured variable from a parallel task closure is ordered by the worker schedule; write task-indexed storage (out[task] = ...) and merge in task order, or waive with //disco:orderinvariant <reason>")
	case !taskIndexed:
		c.pass.Reportf(pos,
			"captured slice is written at an index not derived from the task parameter; tasks must confine writes to task-indexed storage, or waive with //disco:orderinvariant <reason>")
	}
}

// mentionsTask reports whether any identifier in e resolves to the
// task parameter.
func (c *checker) mentionsTask(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.ObjectOf(id) == c.task {
			found = true
		}
		return !found
	})
	return found
}

func pathSuffix(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
