package maporder_test

import (
	"testing"

	"disco/internal/lint/analysistest"
	"disco/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), maporder.Analyzer, "eval", "other")
}

func TestDeterministic(t *testing.T) {
	for path, want := range map[string]bool{
		"disco/internal/eval":  true,
		"disco/internal/lint":  false,
		"eval":                 true,
		"disco/cmd/discosim":   true,
		"disco/internal/serve": true,
		"other":                false,
	} {
		if got := maporder.Deterministic(path); got != want {
			t.Errorf("Deterministic(%q) = %v, want %v", path, got, want)
		}
	}
}
