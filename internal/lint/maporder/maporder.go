// Package maporder flags `range` over a map in the repo's
// deterministic packages — the bug class behind PR 1's vrr.nextHop and
// pathvector.PruneStale fixes, where Go's randomized map iteration
// order leaked into figure output and corrupted goldens.
//
// The contract: bit-identical output at any -workers count and across
// runs. A map range breaks it unless the iteration provably cannot
// reach output. The analyzer therefore allows, without annotation:
//
//   - the collect-then-sort idiom: the body only appends keys/values
//     to storage that a later statement in the same block sorts
//     (sort.Ints, sort.Slice, slices.Sort, a local sortByID — any
//     callee whose qualified name mentions "sort", taking the same
//     expression as argument or receiver);
//   - distinct-slot stores `m[k] = v` indexed by the range key: each
//     iteration writes its own slot, so the interleaving is
//     invisible;
//   - pure integer accumulation (+=, counters, |=, &=, ^=, *=) and
//     delete() calls, order-independent by commutativity;
//   - arbitrary work on body-local variables (declared inside the
//     loop), which die before the next iteration can observe them;
//
// composed under if/continue control flow and nested loops, provided
// no expression reads state the loop itself mutates (other than a
// slot indexed by the range key). Everything else — float
// accumulation (non-associative), early break, first-match
// selection, min/max folds, writes keyed by anything but the loop
// variables — needs an explicit reviewed waiver:
//
//	//disco:orderinvariant <why the order cannot reach output>
//
// Ranging over maps.Keys/maps.Values/maps.All is flagged identically
// (same randomized order, one call away). Test files are skipped: the
// dynamic invariance suites own test determinism.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"disco/internal/lint/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name:      "maporder",
	Doc:       "flags range over a map in deterministic packages unless collected-and-sorted, slot-indexed, or waived with //disco:orderinvariant",
	Directive: "orderinvariant",
	Run:       run,
}

// deterministicPkgs lists, by final import-path segment, the packages
// whose output feeds goldens or worker-invariance checks — which in
// this repo is every library and command package except the lint suite
// itself. Matching by last segment keeps the analyzer testable against
// small testdata packages ("eval") while covering the real tree
// ("disco/internal/eval").
var deterministicPkgs = map[string]bool{
	"addr": true, "bits": true, "core": true, "dynamics": true,
	"estimate": true, "eval": true, "forward": true, "graph": true,
	"landmark": true, "metrics": true, "names": true, "overlay": true,
	"parallel": true, "pathtree": true, "pathvector": true, "resolve": true,
	"s4": true, "serve": true, "sim": true, "sloppy": true,
	"snapshot": true, "spr": true, "static": true, "topology": true,
	"tzk": true, "vicinity": true, "vrr": true,
	"discosim": true, "topogen": true,
}

// Deterministic reports whether the package at path is held to the
// bit-identical-output contract.
func Deterministic(path string) bool {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return deterministicPkgs[path]
}

func run(pass *analysis.Pass) error {
	if !Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, s := range list {
				for {
					if ls, ok := s.(*ast.LabeledStmt); ok {
						s = ls.Stmt
						continue
					}
					break
				}
				if rs, ok := s.(*ast.RangeStmt); ok {
					checkRange(pass, rs, list[i+1:])
				}
			}
			return true
		})
	}
	return nil
}

// checkRange flags rs if it ranges over a map (or a maps.Keys-style
// iterator) and its body is not provably order-independent.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, tail []ast.Stmt) {
	what := mapRangeKind(pass, rs.X)
	if what == "" {
		return
	}
	c := newClassifier(pass, rs)
	if c.listSafe(rs.Body.List) {
		ok := true
		for _, target := range c.appended {
			if !sortedLater(pass, target, tail) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
	}
	pass.Reportf(rs.For,
		"range over %s has schedule-dependent iteration order in deterministic package %s; collect and sort the keys, or waive with //disco:orderinvariant <reason>",
		what, pass.Pkg.Path())
}

// mapRangeKind reports what nondeterministically-ordered thing x is:
// "" if none, else a description for the diagnostic.
func mapRangeKind(pass *analysis.Pass, x ast.Expr) string {
	t := pass.TypesInfo.TypeOf(x)
	if t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return "map"
		}
	}
	if call, ok := ast.Unparen(x).(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if isPkgFunc(pass, sel, "maps", "Keys", "Values", "All") {
				return "maps." + sel.Sel.Name + " iterator"
			}
		}
	}
	return ""
}

// isPkgFunc reports whether sel selects one of names from the package
// with import path pkgPath.
func isPkgFunc(pass *analysis.Pass, sel *ast.SelectorExpr, pkgPath string, names ...string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return true
		}
	}
	return false
}

// classifier decides whether a loop body is order-independent. Two
// facts drive the decision, gathered in a pre-pass over the body:
//
//   - locals: objects declared inside the body. They are reborn every
//     iteration, so no interleaving can flow through them; arbitrary
//     mutation of locals is fine as long as the values assigned are
//     themselves order-clean.
//   - written: outer objects the body mutates (accumulators, appended
//     slices, stored-into maps). Any *read* of these — other than the
//     slot indexed by the range key — would let one iteration observe
//     another, so expressions mentioning them are impure.
type classifier struct {
	pass     *analysis.Pass
	keyObj   types.Object // the range key variable, if an ident
	locals   map[types.Object]bool
	written  map[types.Object]bool
	appended []string // canonical exprs that must be sorted in the tail
}

func newClassifier(pass *analysis.Pass, rs *ast.RangeStmt) *classifier {
	c := &classifier{
		pass:    pass,
		locals:  make(map[types.Object]bool),
		written: make(map[types.Object]bool),
	}
	if rs.Tok == token.DEFINE {
		if id, ok := rs.Key.(*ast.Ident); ok {
			c.keyObj = pass.TypesInfo.ObjectOf(id)
			c.locals[c.keyObj] = true
		}
		if id, ok := rs.Value.(*ast.Ident); ok {
			c.locals[pass.TypesInfo.ObjectOf(id)] = true
		}
	} else {
		c.markWritten(rs.Key)
		c.markWritten(rs.Value)
	}
	c.collect(rs.Body)
	return c
}

// collect records every object the body declares and every target it
// writes. Writes through calls cannot happen: calls are impure below.
func (c *classifier) collect(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if n.Tok == token.DEFINE {
					if id, ok := lhs.(*ast.Ident); ok {
						c.locals[c.pass.TypesInfo.ObjectOf(id)] = true
					}
				} else {
					c.markWritten(lhs)
				}
			}
		case *ast.IncDecStmt:
			c.markWritten(n.X)
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						c.locals[c.pass.TypesInfo.ObjectOf(id)] = true
					}
				}
			} else {
				c.markWritten(n.Key)
				c.markWritten(n.Value)
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, sp := range gd.Specs {
					if vs, ok := sp.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							c.locals[c.pass.TypesInfo.ObjectOf(id)] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(n.Args) > 0 {
					c.markWritten(n.Args[0])
				}
			}
		}
		return true
	})
}

func (c *classifier) markWritten(e ast.Expr) {
	if obj := rootObj(c.pass, e); obj != nil {
		c.written[obj] = true
	}
}

// rootObj walks an lvalue to the identifier at its base: o.vic[v] → o,
// *p → p, m[k] → m.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			return pass.TypesInfo.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// writtenOuter reports whether obj is mutated by the body yet survives
// across iterations (declared outside it).
func (c *classifier) writtenOuter(obj types.Object) bool {
	return obj != nil && c.written[obj] && !c.locals[obj]
}

// isKey reports whether e is exactly the range key variable.
func (c *classifier) isKey(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && c.keyObj != nil && c.pass.TypesInfo.ObjectOf(id) == c.keyObj
}

func (c *classifier) listSafe(list []ast.Stmt) bool {
	for _, s := range list {
		if !c.stmtSafe(s) {
			return false
		}
	}
	return true
}

func (c *classifier) stmtSafe(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return c.assignSafe(s)
	case *ast.IncDecStmt:
		return c.incDecSafe(s)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, sp := range gd.Specs {
			vs, ok := sp.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if !c.pure(v) {
					return false
				}
			}
		}
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(call.Args) == 2 {
					// The map being deleted from is a write target, not
					// a read; only its path and the key must be clean.
					return c.lvalueSafe(call.Args[0]) && c.pure(call.Args[1])
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtSafe(s.Init) {
			return false
		}
		if !c.pure(s.Cond) {
			return false
		}
		if !c.listSafe(s.Body.List) {
			return false
		}
		if s.Else != nil {
			return c.stmtSafe(s.Else)
		}
		return true
	case *ast.ForStmt:
		if s.Init != nil && !c.stmtSafe(s.Init) {
			return false
		}
		if s.Cond != nil && !c.pure(s.Cond) {
			return false
		}
		if s.Post != nil && !c.stmtSafe(s.Post) {
			return false
		}
		return c.listSafe(s.Body.List)
	case *ast.RangeStmt:
		// The nested iteration's own order (if it is a map) is judged
		// separately by the main walk; here only its mutations matter.
		if !c.pure(s.X) {
			return false
		}
		return c.listSafe(s.Body.List)
	case *ast.BlockStmt:
		return c.listSafe(s.List)
	case *ast.BranchStmt:
		// continue only decides per-key whether the (order-free) body
		// runs; break/goto would make the result depend on which keys
		// were seen first, so they stay unsafe.
		return s.Tok == token.CONTINUE && s.Label == nil
	case *ast.EmptyStmt:
		return true
	default:
		return false
	}
}

func (c *classifier) assignSafe(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.DEFINE:
		for _, lhs := range s.Lhs {
			if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
				return false
			}
		}
		return c.argsPure(s.Rhs)

	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
		token.SHL_ASSIGN, token.SHR_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 || !c.pure(s.Rhs[0]) {
			return false
		}
		if c.locals[rootObj(c.pass, s.Lhs[0])] {
			// Body-local: any op on any type, it dies with the iteration.
			return c.lvalueSafe(s.Lhs[0])
		}
		// Outer accumulator: commutative-and-associative only over the
		// integers (+=, *=, &=, |=, ^=); float accumulation and the
		// non-commutative ops (-=, /=, %=, shifts) are order-dependent.
		switch s.Tok {
		case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			return isIntegral(c.pass.TypesInfo.TypeOf(s.Lhs[0])) && c.lvalueSafe(s.Lhs[0])
		}
		return false

	case token.ASSIGN:
		if len(s.Lhs) != len(s.Rhs) {
			return false
		}
		if len(s.Lhs) > 1 {
			// Parallel assignment (swaps etc.): locals only.
			for _, lhs := range s.Lhs {
				if !c.locals[rootObj(c.pass, lhs)] {
					return false
				}
			}
			return c.argsPure(s.Rhs)
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		if target, call := appendTarget(c.pass, lhs, rhs); call != nil {
			// x = append(x, ...): if x is body-local the result dies
			// with the iteration; if it survives the loop it must be
			// sorted in the tail.
			if !c.argsPure(call.Args[1:]) {
				return false
			}
			if !c.locals[rootObj(c.pass, lhs)] {
				c.appended = append(c.appended, target)
			}
			return true
		}
		if c.locals[rootObj(c.pass, lhs)] {
			return c.lvalueSafe(lhs) && c.pure(rhs)
		}
		// Distinct-slot store into outer storage: m[key] = v. Each
		// iteration owns its slot, so interleaving cannot show.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && c.isKey(ix.Index) {
			return c.lvalueSafe(ix.X) && c.pure(rhs)
		}
		return false
	}
	return false
}

func (c *classifier) incDecSafe(s *ast.IncDecStmt) bool {
	if !c.lvalueSafe(s.X) {
		return false
	}
	if c.locals[rootObj(c.pass, s.X)] {
		return true
	}
	// m[k]++ / counter++ on outer state: integer increments commute.
	return isIntegral(c.pass.TypesInfo.TypeOf(s.X))
}

// lvalueSafe vets the *path* of a write target: every index or pointer
// hop on the way to the slot must itself be order-clean (the root may
// well be a written object — that is the point of writing to it).
func (c *classifier) lvalueSafe(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			if !c.isKey(x.Index) && !c.pure(x.Index) {
				return false
			}
			e = x.X
		default:
			return false
		}
	}
}

func (c *classifier) argsPure(args []ast.Expr) bool {
	for _, a := range args {
		// make(map[K]V, n) and friends take a type as their first
		// argument; types are not evaluated.
		if tv, ok := c.pass.TypesInfo.Types[a]; ok && tv.IsType() {
			continue
		}
		if !c.pure(a) {
			return false
		}
	}
	return true
}

// pureBuiltins never observe mutable state beyond their arguments.
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "make": true, "new": true,
	"min": true, "max": true, "abs": true, "append": false, // append handled explicitly
}

// pure reports whether evaluating e cannot observe state the loop body
// mutates: no reads of written-outer objects (except the slot indexed
// by the range key), and no calls other than conversions and
// argument-only builtins (an arbitrary call may read anything).
func (c *classifier) pure(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return true
		}
		obj := c.pass.TypesInfo.ObjectOf(e)
		if obj == nil {
			// Unresolved: only safe if it is a predeclared value
			// (true/false/nil/iota resolve, so this is defensive).
			return false
		}
		return !c.writtenOuter(obj)
	case *ast.BasicLit:
		return true
	case *ast.IndexExpr:
		if c.isKey(e.Index) {
			// Reading the iteration's own slot of a written map/slice:
			// no other iteration touches it.
			return c.lvalueSafe(e.X)
		}
		return c.pure(e.X) && c.pure(e.Index)
	case *ast.SelectorExpr:
		return c.pure(e.X)
	case *ast.StarExpr:
		return c.pure(e.X)
	case *ast.UnaryExpr:
		return c.pure(e.X)
	case *ast.BinaryExpr:
		return c.pure(e.X) && c.pure(e.Y)
	case *ast.SliceExpr:
		for _, x := range []ast.Expr{e.X, e.Low, e.High, e.Max} {
			if x != nil && !c.pure(x) {
				return false
			}
		}
		return true
	case *ast.TypeAssertExpr:
		return c.pure(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if !c.pure(kv.Value) {
					return false
				}
				continue
			}
			if !c.pure(el) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		if tv, ok := c.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return c.argsPure(e.Args) // conversion
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && pureBuiltins[b.Name()] {
				return c.argsPure(e.Args)
			}
		}
		return false
	default:
		return false
	}
}

func isIntegral(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// appendTarget matches `lhs = append(lhs, ...)` and returns lhs's
// canonical expression string plus the append call.
func appendTarget(pass *analysis.Pass, lhs, rhs ast.Expr) (string, *ast.CallExpr) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return "", nil
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return "", nil
	}
	target := types.ExprString(ast.Unparen(lhs))
	if target != types.ExprString(ast.Unparen(call.Args[0])) {
		return "", nil
	}
	return target, call
}

// sortedLater reports whether some statement after the loop passes the
// collected expression to a callee whose qualified name mentions "sort"
// (sort.Ints, sort.Slice, slices.SortFunc, a local sortByID helper) or
// calls a sort-named method on it.
func sortedLater(pass *analysis.Pass, target string, tail []ast.Stmt) bool {
	found := false
	for _, s := range tail {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := types.ExprString(call.Fun)
			if !strings.Contains(strings.ToLower(name), "sort") {
				return true
			}
			for _, a := range call.Args {
				if types.ExprString(ast.Unparen(a)) == target {
					found = true
				}
			}
			// ds.Sort() — target as the method receiver.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if types.ExprString(ast.Unparen(sel.X)) == target {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
