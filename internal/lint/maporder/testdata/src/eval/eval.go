// Package eval exercises maporder: its final path segment puts it in
// the deterministic set, so every map range here must prove
// order-independence or carry a waiver.
package eval

import (
	"maps"
	"sort"
)

// --- flagged: order reaches output ---

func collectUnsorted(m map[int]int) []int {
	var out []int
	for k := range m { // want `range over map has schedule-dependent iteration order`
		out = append(out, k)
	}
	return out
}

func floatAccumulate(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map has schedule-dependent iteration order`
		sum += v
	}
	return sum
}

func earlyBreak(m map[int]int) (int, bool) {
	for k, v := range m { // want `range over map has schedule-dependent iteration order`
		if v > 10 {
			return k, true
		}
		break
	}
	return 0, false
}

func firstMatchFold(m map[int]int) int {
	best := -1
	for k, v := range m { // want `range over map has schedule-dependent iteration order`
		if v > 0 && best < 0 {
			best = k
		}
	}
	return best
}

func mapsKeysIterator(m map[int]int) []int {
	var out []int
	for _, k := range maps.Keys(m) { // want `range over maps.Keys iterator has schedule-dependent iteration order`
		out = append(out, k)
	}
	return out
}

func writeNonKeySlot(m map[int]int, out []int) {
	i := 0
	for _, v := range m { // want `range over map has schedule-dependent iteration order`
		out[i] = v
		i++
	}
}

func condReadsAccumulator(m map[int]int) int {
	n := 0
	for _, v := range m { // want `range over map has schedule-dependent iteration order`
		if n < 100 {
			n += v
		}
	}
	return n
}

func callInBody(m map[int]int, sink func(int)) {
	for k := range m { // want `range over map has schedule-dependent iteration order`
		sink(k)
	}
}

// --- allowed without annotation ---

func collectThenSortInts(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func collectThenSortSlice(m map[int]int) []int {
	var out []int
	for k, v := range m {
		if v > 0 {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectThroughField(s *struct{ keys []int }, m map[int]bool) {
	for k := range m {
		s.keys = append(s.keys, k)
	}
	sort.Ints(s.keys)
}

func distinctSlot(m map[int]int, out []int) {
	for k, v := range m {
		out[k] = v
	}
}

func distinctSlotCommaOk(src, dst map[int]int) {
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
}

func intAccumulate(m map[int]int) (int, int) {
	n, bits := 0, 0
	for _, v := range m {
		n += v
		bits |= v
	}
	return n, bits
}

func counter(m map[int]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

func expire(m map[int]float64, now float64) int {
	n := 0
	for k, e := range m {
		if e < now {
			delete(m, k)
			n++
		}
	}
	return n
}

func deepCopy(src map[int]map[int]float64) map[int]map[int]float64 {
	dst := make(map[int]map[int]float64, len(src))
	for k, inner := range src {
		cp := make(map[int]float64, len(inner))
		for ik, iv := range inner {
			cp[ik] = iv
		}
		dst[k] = cp
	}
	return dst
}

func bodyLocalWork(m map[int]uint64) uint64 {
	var total uint64
	for k, v := range m {
		h := uint64(k)
		for i := 0; i < 8; i++ {
			h ^= v >> uint(i)
			h *= 1099511628211
		}
		total += h
	}
	return total
}

// --- waived ---

func waivedSameLine(m map[int]int) int {
	best := -1
	for _, v := range m { //disco:orderinvariant max-fold over ints; max is commutative
		if v > best {
			best = v
		}
	}
	return best
}

func waivedLineAbove(m map[int]int, sink func(int)) {
	//disco:orderinvariant sink is a test double with no output
	for k := range m {
		sink(k)
	}
}
