// Package sort is a stub of the standard library's sort for analyzer
// testdata: maporder matches sort calls by name only.
package sort

func Ints(x []int)                                {}
func Slice(x any, less func(i, j int) bool)       {}
func SliceStable(x any, less func(i, j int) bool) {}
