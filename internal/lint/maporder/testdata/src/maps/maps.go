// Package maps is a stub of the standard library's maps for analyzer
// testdata: maporder flags ranging over Keys/Values/All by call shape,
// whatever they return.
package maps

func Keys[M ~map[K]V, K comparable, V any](m M) []K   { return nil }
func Values[M ~map[K]V, K comparable, V any](m M) []V { return nil }
