// Package other is outside the deterministic set: maporder must stay
// silent here no matter what the loops do.
package other

func anythingGoes(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
