// Package lint assembles discolint, the repo's contract-enforcement
// analyzer suite. Each analyzer turns one prose contract from the
// ROADMAP into a static check:
//
//	maporder   — bit-identical output: no raw map iteration in
//	             deterministic packages (internal/parallel contract)
//	seedrand   — bit-identical output: all entropy flows from explicit
//	             seeds; wall clock only on //disco:measured paths
//	snapmutate — snapshot immutability: what Fork() shares is never
//	             written outside its defining package
//	handleref  — exact-refcount reclamation: every successful
//	             Handle.TryRetain has a Release on every path
//	mergeorder — task-ordered merges: pool closures write only
//	             task-indexed storage
//
// The driver half lives in internal/lint/vetdriver (the go vet
// -vettool protocol) and cmd/discolint (the binary).
package lint

import (
	"disco/internal/lint/analysis"
	"disco/internal/lint/handleref"
	"disco/internal/lint/maporder"
	"disco/internal/lint/mergeorder"
	"disco/internal/lint/seedrand"
	"disco/internal/lint/snapmutate"
)

// Analyzers returns the full discolint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		seedrand.Analyzer,
		snapmutate.Analyzer,
		handleref.Analyzer,
		mergeorder.Analyzer,
	}
}
