// Package topology generates the network topologies of the paper's
// evaluation (§5.1): G(n,m) uniform random graphs, geometric random graphs
// with Euclidean link latencies, and synthetic Internet-like (AS-level and
// router-level) power-law graphs standing in for the CAIDA maps, plus the
// adversarial constructions used in tests (ring, star, grid, and the
// two-level tree of the paper's footnote 6 on which S4 needs Θ(n) state).
//
// Every generator takes an explicit *rand.Rand so topologies are exactly
// reproducible, and every generator returns a connected, Finalized graph.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"disco/internal/graph"
)

// edgeKey canonically identifies an undirected node pair.
func edgeKey(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Gnm returns a connected G(n,m)-style uniform random graph with unit edge
// weights. Connectivity is guaranteed by first building a uniform random
// spanning tree (random attachment order) and then adding m-(n-1) distinct
// uniform random extra edges; the paper's G(n,m) graphs use m = 4n for an
// average degree of 8. It panics if m < n-1 or m exceeds the complete graph.
func Gnm(rng *rand.Rand, n, m int) *graph.Graph {
	if n < 1 {
		panic("topology: Gnm needs n >= 1")
	}
	maxM := n * (n - 1) / 2
	if m < n-1 || m > maxM {
		panic(fmt.Sprintf("topology: Gnm m=%d out of [n-1=%d, %d]", m, n-1, maxM))
	}
	g := graph.New(n)
	seen := make(map[uint64]bool, m)
	// Random spanning tree: attach each node (in random order) to a random
	// already-attached node.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := graph.NodeID(perm[i])
		v := graph.NodeID(perm[rng.Intn(i)])
		g.AddEdge(u, v, 1)
		seen[edgeKey(u, v)] = true
	}
	for g.M() < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || seen[edgeKey(u, v)] {
			continue
		}
		seen[edgeKey(u, v)] = true
		g.AddEdge(u, v, 1)
	}
	g.Finalize()
	return g
}

// GnmAvgDeg returns Gnm with m chosen for the given average degree
// (m = n*avgDeg/2), the paper's parameterization ("with m set so that the
// average degree is 8").
func GnmAvgDeg(rng *rand.Rand, n int, avgDeg float64) *graph.Graph {
	return Gnm(rng, n, int(float64(n)*avgDeg/2))
}

// Geometric returns a connected geometric random graph: n points uniform in
// the unit square, an edge between every pair at Euclidean distance < r
// where r = sqrt(avgDeg/(pi*n)), and edge weights equal to the Euclidean
// distance — the paper's latency-annotated topology (§5.1, §5.2 "the
// geometric random graph includes link latencies"). Any secondary components
// are attached to the largest one through their geometrically closest node
// pair (weight = that distance), preserving both n and metric weights.
func Geometric(rng *rand.Rand, n int, avgDeg float64) *graph.Graph {
	if n < 1 {
		panic("topology: Geometric needs n >= 1")
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	r := math.Sqrt(avgDeg / (math.Pi * float64(n)))
	g := graph.New(n)

	// Grid bucketing: cells of side r; only neighboring cells can hold
	// nodes within range.
	cells := int(math.Ceil(1 / r))
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[int][]graph.NodeID)
	cellOf := func(i int) int {
		cx := int(xs[i] / r)
		cy := int(ys[i] / r)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cy*cells + cx
	}
	for i := 0; i < n; i++ {
		bucket[cellOf(i)] = append(bucket[cellOf(i)], graph.NodeID(i))
	}
	dist := func(a, b graph.NodeID) float64 {
		dx := xs[a] - xs[b]
		dy := ys[a] - ys[b]
		return math.Hypot(dx, dy)
	}
	for i := 0; i < n; i++ {
		u := graph.NodeID(i)
		cx := int(xs[i] / r)
		cy := int(ys[i] / r)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				for _, v := range bucket[ny*cells+nx] {
					if v <= u {
						continue // each pair once
					}
					if d := dist(u, v); d < r && d > 0 {
						g.AddEdge(u, v, d)
					}
				}
			}
		}
	}

	// Stitch secondary components onto the largest by closest pair.
	label, count := g.Components()
	for count > 1 {
		sizes := make([]int, count)
		for _, c := range label {
			sizes[c]++
		}
		big := 0
		for c, s := range sizes {
			if s > sizes[big] {
				big = c
			}
		}
		// For each other component, find its closest node pair to the big
		// component (O(n^2) worst case; components are tiny in practice).
		var members [][]graph.NodeID
		members = make([][]graph.NodeID, count)
		for i, c := range label {
			members[c] = append(members[c], graph.NodeID(i))
		}
		for c := 0; c < count; c++ {
			if c == big {
				continue
			}
			bu, bv := graph.None, graph.None
			bd := math.Inf(1)
			for _, u := range members[c] {
				for _, v := range members[big] {
					if d := dist(u, v); d < bd {
						bd, bu, bv = d, u, v
					}
				}
			}
			g.AddEdge(bu, bv, bd)
		}
		label, count = g.Components()
	}
	g.Finalize()
	return g
}

// prefAttach builds a preferential-attachment graph: each new node attaches
// to `per` distinct existing nodes chosen proportionally to current degree
// (via the repeated-endpoint trick). Unit edge weights.
func prefAttach(rng *rand.Rand, n, per int) *graph.Graph {
	if n < per+1 {
		panic(fmt.Sprintf("topology: prefAttach needs n > per (n=%d per=%d)", n, per))
	}
	g := graph.New(n)
	// endpoints holds one entry per edge endpoint: sampling uniformly from
	// it is degree-proportional sampling.
	endpoints := make([]graph.NodeID, 0, 2*n*per)
	seen := make(map[uint64]bool)
	// Seed clique of per+1 nodes.
	for u := 0; u <= per; u++ {
		for v := u + 1; v <= per; v++ {
			g.AddEdge(graph.NodeID(u), graph.NodeID(v), 1)
			seen[edgeKey(graph.NodeID(u), graph.NodeID(v))] = true
			endpoints = append(endpoints, graph.NodeID(u), graph.NodeID(v))
		}
	}
	for u := per + 1; u < n; u++ {
		added := 0
		for added < per {
			var v graph.NodeID
			if len(endpoints) == 0 {
				v = graph.NodeID(rng.Intn(u))
			} else {
				v = endpoints[rng.Intn(len(endpoints))]
			}
			if v == graph.NodeID(u) || seen[edgeKey(graph.NodeID(u), v)] {
				// Fall back to uniform if the degree distribution is so
				// skewed we keep re-hitting the same hub.
				v = graph.NodeID(rng.Intn(u))
				if v == graph.NodeID(u) || seen[edgeKey(graph.NodeID(u), v)] {
					continue
				}
			}
			g.AddEdge(graph.NodeID(u), v, 1)
			seen[edgeKey(graph.NodeID(u), v)] = true
			endpoints = append(endpoints, graph.NodeID(u), v)
			added++
		}
	}
	g.Finalize()
	return g
}

// ASLike returns a synthetic stand-in for the paper's 30,610-node AS-level
// Internet map [49]: a preferential-attachment power-law graph (2 edges per
// new node, average degree ~4) with unit weights. See DESIGN.md §3 for why
// this substitution preserves the evaluated behaviour (heavy-tailed hubs
// blow up S4's clusters; unweighted links cap stretch).
func ASLike(rng *rand.Rand, n int) *graph.Graph {
	return prefAttach(rng, n, 2)
}

// RouterLike returns a synthetic stand-in for the paper's 192,244-node
// router-level Internet map [48]: preferential attachment with 3 edges per
// new node (average degree ~6) plus a 10% fringe of degree-1 stub routers,
// mimicking the hub-and-stub structure of router maps. Unit weights.
func RouterLike(rng *rand.Rand, n int) *graph.Graph {
	stubs := n / 10
	core := n - stubs
	g0 := prefAttach(rng, core, 3)
	g := graph.New(n)
	for u := 0; u < core; u++ {
		for _, e := range g0.Neighbors(graph.NodeID(u)) {
			if e.To > graph.NodeID(u) {
				g.AddEdge(graph.NodeID(u), e.To, 1)
			}
		}
	}
	for s := core; s < n; s++ {
		g.AddEdge(graph.NodeID(s), graph.NodeID(rng.Intn(core)), 1)
	}
	g.Finalize()
	return g
}

// Ring returns an n-cycle with unit weights: the worst case for explicit
// route length (§4.2: "as much as O~(sqrt(n)) bits in a ring network").
func Ring(n int) *graph.Graph {
	if n < 3 {
		panic("topology: Ring needs n >= 3")
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), 1)
	}
	g.Finalize()
	return g
}

// Line returns an n-node path graph with unit weights.
func Line(n int) *graph.Graph {
	if n < 2 {
		panic("topology: Line needs n >= 2")
	}
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	g.Finalize()
	return g
}

// Star returns a star with n-1 leaves attached to node 0, unit weights.
func Star(n int) *graph.Graph {
	if n < 2 {
		panic("topology: Star needs n >= 2")
	}
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, graph.NodeID(i), 1)
	}
	g.Finalize()
	return g
}

// Grid returns a rows x cols grid with unit weights.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}
	g.Finalize()
	return g
}

// S4WorstTree returns the two-level tree of the paper's footnote 6: a root
// with k children at distance 1, each child with k children (grandchildren)
// along edges of distance 2. With uniform-random landmarks most
// grandchildren end up in the root's S4 cluster, forcing Θ(n) state at the
// root, while Disco's fixed-size vicinities stay bounded. Node 0 is the
// root; nodes 1..k are children; the rest are grandchildren.
func S4WorstTree(k int) *graph.Graph {
	if k < 1 {
		panic("topology: S4WorstTree needs k >= 1")
	}
	n := 1 + k + k*k
	g := graph.New(n)
	for c := 1; c <= k; c++ {
		g.AddEdge(0, graph.NodeID(c), 1)
		for j := 0; j < k; j++ {
			gc := 1 + k + (c-1)*k + j
			g.AddEdge(graph.NodeID(c), graph.NodeID(gc), 2)
		}
	}
	g.Finalize()
	return g
}
