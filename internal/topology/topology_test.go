package topology

import (
	"math"
	"math/rand"
	"testing"

	"disco/internal/graph"
)

func TestGnmProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Gnm(rng, 200, 800)
	if g.N() != 200 || g.M() != 800 {
		t.Fatalf("N=%d M=%d want 200,800", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatal("Gnm must be connected")
	}
	if ad := g.AvgDegree(); ad != 8 {
		t.Errorf("avg degree %v want 8", ad)
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(graph.NodeID(u)) {
			if e.Weight != 1 {
				t.Fatalf("Gnm weight %v want 1", e.Weight)
			}
		}
	}
}

func TestGnmDeterministic(t *testing.T) {
	a := Gnm(rand.New(rand.NewSource(42)), 100, 300)
	b := Gnm(rand.New(rand.NewSource(42)), 100, 300)
	if a.M() != b.M() {
		t.Fatal("same seed must give same graph")
	}
	for u := 0; u < a.N(); u++ {
		na, nb := a.Neighbors(graph.NodeID(u)), b.Neighbors(graph.NodeID(u))
		if len(na) != len(nb) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range na {
			if na[i].To != nb[i].To {
				t.Fatalf("node %d adjacency differs", u)
			}
		}
	}
}

func TestGnmNoDuplicateEdges(t *testing.T) {
	g := Gnm(rand.New(rand.NewSource(3)), 50, 200)
	for u := 0; u < g.N(); u++ {
		ns := g.Neighbors(graph.NodeID(u))
		for i := 1; i < len(ns); i++ {
			if ns[i].To == ns[i-1].To {
				t.Fatalf("duplicate edge %d-%d", u, ns[i].To)
			}
		}
	}
}

func TestGnmAvgDeg(t *testing.T) {
	g := GnmAvgDeg(rand.New(rand.NewSource(5)), 128, 8)
	if g.M() != 512 {
		t.Errorf("M=%d want 512", g.M())
	}
}

func TestGnmRejectsBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m < n-1")
		}
	}()
	Gnm(rand.New(rand.NewSource(1)), 10, 5)
}

func TestGeometricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Geometric(rng, 500, 8)
	if g.N() != 500 {
		t.Fatalf("N=%d want 500", g.N())
	}
	if !g.Connected() {
		t.Fatal("geometric graph must be connected after stitching")
	}
	// Average degree should be in the ballpark of the target (boundary
	// effects push it below 8).
	if ad := g.AvgDegree(); ad < 4 || ad > 10 {
		t.Errorf("avg degree %v implausible for target 8", ad)
	}
	// Euclidean weights: all in (0, sqrt(2)].
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(graph.NodeID(u)) {
			if e.Weight <= 0 || e.Weight > math.Sqrt2 {
				t.Fatalf("weight %v out of range", e.Weight)
			}
		}
	}
}

func TestGeometricTriangleInequalityOnWeights(t *testing.T) {
	// Shortest-path distances in a metric-weight graph must satisfy the
	// triangle inequality (sanity for the stretch analysis).
	g := Geometric(rand.New(rand.NewSource(9)), 120, 8)
	s := graph.NewSSSP(g)
	d := make([][]float64, g.N())
	for u := 0; u < g.N(); u++ {
		s.Run(graph.NodeID(u))
		d[u] = make([]float64, g.N())
		for v := 0; v < g.N(); v++ {
			d[u][v] = s.Dist(graph.NodeID(v))
		}
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 500; trial++ {
		a, b, c := rng.Intn(g.N()), rng.Intn(g.N()), rng.Intn(g.N())
		if d[a][c] > d[a][b]+d[b][c]+1e-9 {
			t.Fatalf("triangle violated: d(%d,%d)=%v > %v+%v", a, c, d[a][c], d[a][b], d[b][c])
		}
	}
}

func TestASLikeHeavyTail(t *testing.T) {
	g := ASLike(rand.New(rand.NewSource(4)), 2000)
	if !g.Connected() {
		t.Fatal("ASLike must be connected")
	}
	if g.MaxDegree() < 20 {
		t.Errorf("power-law graph should have hubs, max degree %d", g.MaxDegree())
	}
	if ad := g.AvgDegree(); ad < 3 || ad > 6 {
		t.Errorf("AS-like avg degree %v out of expected band", ad)
	}
}

func TestRouterLikeStructure(t *testing.T) {
	g := RouterLike(rand.New(rand.NewSource(4)), 3000)
	if g.N() != 3000 {
		t.Fatalf("N=%d want 3000", g.N())
	}
	if !g.Connected() {
		t.Fatal("RouterLike must be connected")
	}
	deg1 := 0
	for u := 0; u < g.N(); u++ {
		if g.Degree(graph.NodeID(u)) == 1 {
			deg1++
		}
	}
	if deg1 < g.N()/20 {
		t.Errorf("router-like graph should have a stub fringe, got %d degree-1 nodes", deg1)
	}
}

func TestRingLineStarGrid(t *testing.T) {
	r := Ring(10)
	if r.M() != 10 || !r.Connected() {
		t.Error("ring wrong")
	}
	l := Line(10)
	if l.M() != 9 || !l.Connected() {
		t.Error("line wrong")
	}
	s := Star(10)
	if s.M() != 9 || s.Degree(0) != 9 {
		t.Error("star wrong")
	}
	g := Grid(4, 5)
	if g.N() != 20 || g.M() != 4*4+3*5 || !g.Connected() {
		t.Errorf("grid wrong: N=%d M=%d", g.N(), g.M())
	}
}

func TestS4WorstTreeShape(t *testing.T) {
	k := 7
	g := S4WorstTree(k)
	if g.N() != 1+k+k*k {
		t.Fatalf("N=%d want %d", g.N(), 1+k+k*k)
	}
	if g.Degree(0) != k {
		t.Errorf("root degree %d want %d", g.Degree(0), k)
	}
	// Children have degree k+1; grandchildren degree 1.
	for c := 1; c <= k; c++ {
		if g.Degree(graph.NodeID(c)) != k+1 {
			t.Errorf("child %d degree %d want %d", c, g.Degree(graph.NodeID(c)), k+1)
		}
	}
	for gc := 1 + k; gc < g.N(); gc++ {
		if g.Degree(graph.NodeID(gc)) != 1 {
			t.Errorf("grandchild %d degree %d want 1", gc, g.Degree(graph.NodeID(gc)))
		}
	}
	// Distances per footnote 6: child at 1, grandchild at 3 from root.
	s := graph.NewSSSP(g)
	s.Run(0)
	if s.Dist(1) != 1 || s.Dist(graph.NodeID(1+k)) != 3 {
		t.Errorf("distances wrong: child=%v grandchild=%v", s.Dist(1), s.Dist(graph.NodeID(1+k)))
	}
	// Grandchild-to-grandchild (same parent) distance is 4.
	if k >= 2 {
		s.Run(graph.NodeID(1 + k))
		if s.Dist(graph.NodeID(2+k)) != 4 {
			t.Errorf("sibling grandchild distance %v want 4", s.Dist(graph.NodeID(2+k)))
		}
	}
}
