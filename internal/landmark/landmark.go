// Package landmark implements Disco's landmark selection (§4.2): each node
// decides locally and independently to become a landmark with probability
// p = sqrt(log n / n), giving Θ(sqrt(n log n)) landmarks w.h.p., plus the
// churn-amortization rule (a node flips its landmark status only when its
// estimate of n has changed by at least a factor of 2 since its last flip).
//
// Selection is derandomized through the node's name: the "coin" is the
// name's hash mapped to [0,1). This keeps every simulation reproducible and
// naturally yields nested landmark sets as n grows (p shrinks, so landmarks
// only demote), which is exactly the low-churn behaviour the paper wants.
// Throughout this repository log means log2.
package landmark

import (
	"math"
	"sort"

	"disco/internal/graph"
	"disco/internal/names"
)

// Prob returns the landmark self-selection probability sqrt(log2(n)/n) for
// an estimated network size n (clamped to [0,1]).
func Prob(n float64) float64 {
	if n <= 2 {
		return 1
	}
	p := math.Sqrt(math.Log2(n) / n)
	if p > 1 {
		return 1
	}
	return p
}

// coin maps a name to a uniform value in [0,1), independent of the routing
// hash h(v) (different domain-separation tag).
func coin(name names.Name) float64 {
	h := names.HashOf("landmark-coin|" + name)
	return float64(h) / math.Exp2(64)
}

// IsLandmark reports whether the named node elects itself a landmark under
// network-size estimate nEst.
func IsLandmark(name names.Name, nEst float64) bool {
	return coin(name) < Prob(nEst)
}

// Select returns the landmark set for nodes 0..len(nodeNames)-1 under a
// common network-size estimate nEst, in ascending node order. If no node
// self-selects (possible only for tiny or adversarial inputs), the node
// with the smallest coin is forced to be a landmark so the set is never
// empty — every node must have a nearest landmark for addresses to exist.
func Select(nodeNames []names.Name, nEst float64) []graph.NodeID {
	var out []graph.NodeID
	for i, nm := range nodeNames {
		if IsLandmark(nm, nEst) {
			out = append(out, graph.NodeID(i))
		}
	}
	if len(out) == 0 && len(nodeNames) > 0 {
		best, bestCoin := 0, math.Inf(1)
		for i, nm := range nodeNames {
			if c := coin(nm); c < bestCoin {
				best, bestCoin = i, c
			}
		}
		out = append(out, graph.NodeID(best))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SelectPerNode is Select under per-node estimates of n (§4.1: estimates
// come from synopsis diffusion and may differ across nodes). Node i uses
// nEst[i] for its own coin flip.
func SelectPerNode(nodeNames []names.Name, nEst []float64) []graph.NodeID {
	var out []graph.NodeID
	for i, nm := range nodeNames {
		if IsLandmark(nm, nEst[i]) {
			out = append(out, graph.NodeID(i))
		}
	}
	if len(out) == 0 && len(nodeNames) > 0 {
		best, bestCoin := 0, math.Inf(1)
		for i, nm := range nodeNames {
			if c := coin(nm); c < bestCoin {
				best, bestCoin = i, c
			}
		}
		out = append(out, graph.NodeID(best))
	}
	return out
}

// Tracker implements the churn-amortization rule for one node: "a node v
// only flips its landmark status if n has changed by at least a factor 2
// since the last time v changed its status" (§4.2). This amortizes landmark
// churn over Ω(n) joins or leaves.
type Tracker struct {
	name      names.Name
	status    bool
	lastFlipN float64
}

// NewTracker initializes the node's status from the initial estimate.
func NewTracker(name names.Name, nEst float64) *Tracker {
	return &Tracker{name: name, status: IsLandmark(name, nEst), lastFlipN: nEst}
}

// IsLandmark returns the node's current landmark status.
func (t *Tracker) IsLandmark() bool { return t.status }

// Update feeds a new estimate of n; the status is re-evaluated only when the
// estimate moved by >= 2x (up or down) since the last flip. It returns true
// if the status changed.
func (t *Tracker) Update(nEst float64) bool {
	if nEst < 2*t.lastFlipN && nEst > t.lastFlipN/2 {
		return false
	}
	want := IsLandmark(t.name, nEst)
	if want == t.status {
		// Re-evaluated without a flip: the amortization clock keeps
		// running from the old anchor so a later small change can still
		// trigger the flip once it accumulates to 2x.
		return false
	}
	t.status = want
	t.lastFlipN = nEst
	return true
}
