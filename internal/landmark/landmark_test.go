package landmark

import (
	"math"
	"testing"

	"disco/internal/names"
)

func TestProbRange(t *testing.T) {
	for _, n := range []float64{1, 2, 4, 100, 1e4, 1e8} {
		p := Prob(n)
		if p <= 0 || p > 1 {
			t.Errorf("Prob(%v)=%v out of (0,1]", n, p)
		}
	}
	if Prob(2) != 1 {
		t.Error("tiny networks should always self-select")
	}
	if Prob(100) >= Prob(10) {
		t.Error("Prob must decrease with n")
	}
}

func TestSelectExpectedCount(t *testing.T) {
	// With n = 4096 names, expect ~sqrt(n log2 n) = sqrt(4096*12) ≈ 222
	// landmarks; allow a wide band (binomial, sd ≈ 15).
	gen := names.NewGenerator(1)
	n := 4096
	lms := Select(gen.Names(n), float64(n))
	want := math.Sqrt(float64(n) * math.Log2(float64(n)))
	if float64(len(lms)) < want*0.6 || float64(len(lms)) > want*1.4 {
		t.Errorf("got %d landmarks, want around %.0f", len(lms), want)
	}
	// Sorted ascending, unique, in range.
	for i := 1; i < len(lms); i++ {
		if lms[i] <= lms[i-1] {
			t.Fatal("landmarks must be sorted unique")
		}
	}
}

func TestSelectDeterministic(t *testing.T) {
	gen := names.NewGenerator(2)
	ns := gen.Names(500)
	a := Select(ns, 500)
	b := Select(ns, 500)
	if len(a) != len(b) {
		t.Fatal("same input must give same landmarks")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same input must give same landmarks")
		}
	}
}

func TestSelectNeverEmpty(t *testing.T) {
	gen := names.NewGenerator(3)
	for n := 1; n <= 8; n++ {
		lms := Select(gen.Names(n), 1e12) // absurd estimate -> tiny p
		if len(lms) == 0 {
			t.Fatalf("n=%d: landmark set must never be empty", n)
		}
	}
}

func TestLandmarkSetsNestAsNGrows(t *testing.T) {
	// Larger n means smaller p, so landmarks at larger n must be a subset
	// of landmarks at smaller n (same names): this is the low-churn
	// property the coin construction provides.
	gen := names.NewGenerator(4)
	ns := gen.Names(2000)
	small := Select(ns, 1000)
	big := Select(ns, 64000)
	inSmall := map[int32]bool{}
	for _, v := range small {
		inSmall[int32(v)] = true
	}
	for _, v := range big {
		if !inSmall[int32(v)] {
			t.Fatalf("landmark %d at n=64000 not a landmark at n=1000", v)
		}
	}
	if len(big) >= len(small) {
		t.Errorf("landmark count should shrink with n estimate: %d vs %d", len(big), len(small))
	}
}

func TestSelectPerNodeMatchesSelectWhenUniform(t *testing.T) {
	gen := names.NewGenerator(5)
	ns := gen.Names(300)
	est := make([]float64, 300)
	for i := range est {
		est[i] = 300
	}
	a := Select(ns, 300)
	b := SelectPerNode(ns, est)
	if len(a) != len(b) {
		t.Fatalf("got %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("mismatch")
		}
	}
}

func TestTrackerAmortization(t *testing.T) {
	gen := names.NewGenerator(6)
	// Find a name that is a landmark at n=100 but not at n=10^8.
	var nm names.Name
	for i := 0; i < 10000; i++ {
		c := gen.Name(i)
		if IsLandmark(c, 100) && !IsLandmark(c, 1e8) {
			nm = c
			break
		}
	}
	if nm == "" {
		t.Skip("no suitable name found")
	}
	tr := NewTracker(nm, 100)
	if !tr.IsLandmark() {
		t.Fatal("should start as landmark")
	}
	// Small changes never flip.
	if tr.Update(150) || tr.Update(120) || tr.Update(199) {
		t.Fatal("sub-2x change must not flip status")
	}
	if !tr.IsLandmark() {
		t.Fatal("status should be unchanged")
	}
	// A 2x change re-evaluates; a massive one demotes.
	tr.Update(1e8)
	if tr.IsLandmark() {
		t.Fatal("should demote at huge n")
	}
}

func TestTrackerStableWhenStatusUnchanged(t *testing.T) {
	gen := names.NewGenerator(7)
	nm := gen.Name(0)
	tr := NewTracker(nm, 1000)
	before := tr.IsLandmark()
	// Doubling n repeatedly but status may or may not change; flips must
	// only be reported when status actually changes.
	for n := 2000.0; n < 1e6; n *= 2 {
		flipped := tr.Update(n)
		if flipped == (tr.IsLandmark() == before) {
			t.Fatal("Update must report true iff status changed")
		}
		if flipped {
			break
		}
	}
}
