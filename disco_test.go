package disco

import (
	"math"
	"math/rand"
	"testing"
)

func buildSmall(t *testing.T) *Network {
	t.Helper()
	nw, err := RandomGraph(300, 8, 42).Build(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildAndRoute(t *testing.T) {
	nw := buildSmall(t)
	if nw.N() != 300 {
		t.Fatalf("N=%d", nw.N())
	}
	if len(nw.Landmarks()) == 0 {
		t.Fatal("no landmarks")
	}
	r, err := nw.RouteFirst("node3", "node250")
	if err != nil {
		t.Fatal(err)
	}
	if r.Stretch < 1 || r.Stretch > 7+1e-9 {
		t.Fatalf("first-packet stretch %v out of [1,7]", r.Stretch)
	}
	if nw.NameOf(r.Nodes[0]) != "node3" || nw.NameOf(r.Nodes[len(r.Nodes)-1]) != "node250" {
		t.Fatal("route endpoints wrong")
	}
	later, err := nw.RouteLater("node3", "node250")
	if err != nil {
		t.Fatal(err)
	}
	if later.Stretch > 3+1e-9 {
		t.Fatalf("later-packet stretch %v > 3", later.Stretch)
	}
	if later.Length > r.Length+1e-9 {
		t.Fatalf("later route longer than first")
	}
}

func TestRouteManyPairsWithinBounds(t *testing.T) {
	nw := buildSmall(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		s := rng.Intn(300)
		d := rng.Intn(300)
		if s == d {
			continue
		}
		first, err := nw.RouteFirst(nw.NameOf(s), nw.NameOf(d))
		if err != nil {
			t.Fatal(err)
		}
		if nw.Fallbacks() == 0 && first.Stretch > 7+1e-9 {
			t.Fatalf("stretch %v > 7 without fallback", first.Stretch)
		}
	}
}

func TestUnknownNames(t *testing.T) {
	nw := buildSmall(t)
	if _, err := nw.RouteFirst("nope", "node1"); err == nil {
		t.Fatal("expected error for unknown source")
	}
	if _, err := nw.RouteFirst("node1", "nope"); err == nil {
		t.Fatal("expected error for unknown destination")
	}
	if _, ok := nw.Lookup("nope"); ok {
		t.Fatal("Lookup should miss")
	}
	if v, ok := nw.Lookup("node7"); !ok || v != 7 {
		t.Fatalf("Lookup(node7)=%d,%v", v, ok)
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	b := NewBuilder(3)
	b.AddLink(0, 1, 1).AddLink(1, 2, 1)
	b.SetName(0, "x").SetName(2, "x")
	if _, err := b.Build(Config{}); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestDisconnectedRejected(t *testing.T) {
	b := NewBuilder(4)
	b.AddLink(0, 1, 1).AddLink(2, 3, 1)
	if _, err := b.Build(Config{}); err == nil {
		t.Fatal("expected connectivity error")
	}
}

func TestStateBound(t *testing.T) {
	nw := buildSmall(t)
	n := float64(nw.N())
	bound := int(16 * math.Sqrt(n*math.Log2(n)))
	if nw.MaxState() > bound {
		t.Fatalf("max state %d exceeds O~(sqrt(n)) bound %d", nw.MaxState(), bound)
	}
	st := nw.StateOf(5)
	if st.Total != st.LandmarkRoutes+st.VicinityRoutes+st.LabelMappings+st.Resolution+st.GroupAddrs+st.OverlayLinks {
		t.Fatal("state breakdown inconsistent")
	}
	if st.VicinityRoutes == 0 || st.LandmarkRoutes == 0 {
		t.Fatal("state breakdown empty")
	}
}

func TestAddressOf(t *testing.T) {
	nw := buildSmall(t)
	a, err := nw.AddressOf("node9")
	if err != nil {
		t.Fatal(err)
	}
	isLM := false
	for _, lm := range nw.Landmarks() {
		if lm == a.Landmark {
			isLM = true
		}
	}
	if !isLM {
		t.Fatal("address landmark is not a landmark")
	}
	if a.RouteBits <= 0 {
		t.Fatal("empty encoded route")
	}
	if _, err := nw.AddressOf("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestCustomNamesAndLinks(t *testing.T) {
	b := NewBuilder(5)
	b.SetName(0, "alice").SetName(1, "bob").SetName(2, "carol")
	b.AddLink(0, 1, 1).AddLink(1, 2, 2).AddLink(2, 3, 1).AddLink(3, 4, 1).AddLink(4, 0, 3)
	nw, err := b.Build(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := nw.RouteLater("alice", "carol")
	if err != nil {
		t.Fatal(err)
	}
	if r.Length != 3 { // alice-bob-carol = 1+2
		t.Fatalf("route length %v want 3", r.Length)
	}
}

func TestGeometricAndInternetBuilders(t *testing.T) {
	for _, b := range []*Builder{
		GeometricGraph(200, 8, 1),
		InternetASLike(200, 1),
		InternetRouterLike(200, 1),
	} {
		nw, err := b.Build(Config{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if nw.N() != 200 {
			t.Fatal("wrong size")
		}
		if _, err := nw.RouteFirst("node0", "node199"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSelfCertifyingNames(t *testing.T) {
	key := []byte("this-is-a-public-key")
	name := SelfCertifyingName(key)
	if !VerifyName(name, key) {
		t.Fatal("self-certifying name must verify")
	}
	if VerifyName(name, []byte("other-key")) {
		t.Fatal("wrong key must not verify")
	}
	// Route on a self-certifying name.
	b := RandomGraph(100, 8, 3)
	b.SetName(17, name)
	nw, err := b.Build(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r, err := nw.RouteFirst("node4", name)
	if err != nil {
		t.Fatal(err)
	}
	if last := r.Nodes[len(r.Nodes)-1]; last != 17 {
		t.Fatalf("route ends at %d want 17", last)
	}
}

func TestEstimateErrorConfig(t *testing.T) {
	nw, err := RandomGraph(300, 8, 5).Build(Config{Seed: 5, EstimateError: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// All routes must still deliver (fallback covers misses).
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		s, d := rng.Intn(300), rng.Intn(300)
		if s == d {
			continue
		}
		if _, err := nw.RouteFirst(nw.NameOf(s), nw.NameOf(d)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := RandomGraph(150, 8, 9).Build(Config{Seed: 9})
	b, _ := RandomGraph(150, 8, 9).Build(Config{Seed: 9})
	ra, _ := a.RouteFirst("node3", "node140")
	rb, _ := b.RouteFirst("node3", "node140")
	if len(ra.Nodes) != len(rb.Nodes) || ra.Length != rb.Length {
		t.Fatal("same seed must give identical routes")
	}
	for i := range ra.Nodes {
		if ra.Nodes[i] != rb.Nodes[i] {
			t.Fatal("route mismatch")
		}
	}
}
