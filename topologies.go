package disco

import (
	"math/rand"

	"disco/internal/graph"
	"disco/internal/names"
	"disco/internal/topology"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func builderFromGraph(g *graph.Graph) *Builder {
	n := g.N()
	b := NewBuilder(n)
	b.g = g
	return b
}

// RandomGraph returns a Builder holding a connected G(n,m)-style uniform
// random topology with the given average degree and unit link latencies —
// the paper's G(n,m) evaluation topology.
func RandomGraph(n int, avgDeg float64, seed int64) *Builder {
	return builderFromGraph(topology.GnmAvgDeg(newRand(seed), n, avgDeg))
}

// GeometricGraph returns a Builder holding a connected geometric random
// topology: nodes in the unit square, links between nodes within range,
// link latency equal to Euclidean distance — the paper's latency-annotated
// evaluation topology.
func GeometricGraph(n int, avgDeg float64, seed int64) *Builder {
	return builderFromGraph(topology.Geometric(newRand(seed), n, avgDeg))
}

// InternetASLike returns a Builder holding a synthetic AS-level-style
// power-law topology (heavy-tailed hubs, unit latencies).
func InternetASLike(n int, seed int64) *Builder {
	return builderFromGraph(topology.ASLike(newRand(seed), n))
}

// InternetRouterLike returns a Builder holding a synthetic
// router-level-style topology (power-law core plus degree-1 stub fringe,
// unit latencies).
func InternetRouterLike(n int, seed int64) *Builder {
	return builderFromGraph(topology.RouterLike(newRand(seed), n))
}

// SelfCertifyingName derives a flat self-certifying name from a public
// key: the name is a hash of the key, so ownership is verifiable without
// any PKI (§2 of the paper).
func SelfCertifyingName(pubKey []byte) string {
	return string(names.SelfCertifying(pubKey))
}

// VerifyName checks a claimed public key against a self-certifying name.
func VerifyName(name string, pubKey []byte) bool {
	return names.Verify(names.Name(name), pubKey)
}
